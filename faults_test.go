package fivegsim

import (
	"testing"

	"fivegsim/internal/fault"
	"fivegsim/internal/radio"
)

// TestFaultParallelEquivalence is the determinism-equivalence contract
// of the fault layer at the facade: with a scenario plan armed, the
// fault experiments must render identical Lines and Values for
// Workers=1 and Workers=8. X10 fans its scenario suite out over the
// engine; X11 fans out campaign walks under a coverage hole; both draw
// every injected event from seed-keyed substreams.
func TestFaultParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fault equivalence sweep is not short-mode work")
	}
	ids := []string{"X10", "X11"}
	cfg := Config{Seed: 42, Quick: true, Faults: fault.CellFailover.Plan()}
	cfg.Workers = 1
	serial, err := RunExperiments(cfg, ids...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunExperiments(cfg, ids...)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, serial, parallel, "faulted workers 1 vs 8")

	// Distinct plans must not collide: the same campaign under a
	// different scenario renders a different report.
	cfg.Faults = fault.HandoffOutage.Plan()
	other, err := RunExperiments(cfg, "X9")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.BackhaulBrownout.Plan()
	brown, err := RunExperiments(cfg, "X9")
	if err != nil {
		t.Fatal(err)
	}
	if other[0].Lines[len(other[0].Lines)-3] == brown[0].Lines[len(brown[0].Lines)-3] {
		t.Fatal("distinct fault plans rendered an identical custom-plan row")
	}
}

// TestObsPathArmsFaults pins the facade wiring: a nil plan leaves the
// path config without an injection hook (the exact pre-fault struct); a
// non-nil plan attaches one.
func TestObsPathArmsFaults(t *testing.T) {
	cfg := QuickConfig()
	if pc := cfg.obsPath(radio.NR, true); pc.Inject != nil {
		t.Fatal("nil Faults must not attach an Inject hook")
	}
	cfg.Faults = fault.Outage("o", 0, 1)
	if pc := cfg.obsPath(radio.NR, true); pc.Inject == nil {
		t.Fatal("non-nil Faults must attach an Inject hook")
	}
}
