package fivegsim

import (
	"time"

	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
	"fivegsim/internal/energy"
	"fivegsim/internal/geom"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
	"fivegsim/internal/traffic"
	"fivegsim/internal/transport"
)

// The X-series experiments go beyond the paper's figures: they implement
// the §8 discussion items ("Can 5G replace DSL?", mobile edge computing,
// SA-mode hand-off, RRC_INACTIVE) and the DESIGN.md ablations (buffer
// sizing, A3 hysteresis, DRX timers) as first-class, reproducible runs.
func init() {
	register("X1", "Can 5G replace DSL? (CPE trace-driven study, §8)", runX1DSL)
	register("X2", "Mobile edge computing ablation (§8)", runX2MEC)
	register("X3", "A3 hysteresis sweep (ping-pong vs hand-off gain)", runX3A3)
	register("X4", "DRX timer sweep (tail/inactivity energy ablation)", runX4DRX)
	register("X5", "SA vs NSA hand-off latency", runX5SA)
	register("X6", "RRC_INACTIVE extension (SA energy state, §B)", runX6RRCI)
	register("X7", "Wired buffer sizing sweep (the §4.2 remedy)", runX7Buffer)
	register("X8", "MPTCP over 4G+5G dual connectivity (§6.3 future work)", runX8MPTCP)
}

// runX1DSL reproduces the §8 trace-driven CPE study: a 5G CPE placed at a
// favorable indoor spot (near a window) receives ≈650 Mb/s; a residential
// gNB with 3 cells shared by 50 houses then yields ≈39 Mb/s per house,
// above the 24 Mb/s average US DSL rate.
func runX1DSL(cfg Config) Result {
	campus := deploy.New(cfg.Seed)
	band := radio.BandNR()
	var rates []float64
	for _, bld := range campus.Buildings {
		// The CPE sits just inside the wall facing the strongest cell
		// ("near windows"), with a directional antenna bonus.
		for _, spot := range []geom.Point{
			{X: bld.Min.X + 2, Y: bld.Center().Y},
			{X: bld.Max.X - 2, Y: bld.Center().Y},
			{X: bld.Center().X, Y: bld.Min.Y + 2},
			{X: bld.Center().X, Y: bld.Max.Y - 2},
		} {
			best, ok := campus.BestServer(radio.NR, spot)
			if !ok {
				continue
			}
			cell := campus.CellByPCI(best.PCI)
			m := coverage.CellLockedMeasure(campus, cell, spot)
			if !m.Usable() {
				continue
			}
			rates = append(rates, radio.DLBitRate(m, band, band.PRBs))
		}
	}
	s := stats.Summarize(rates)
	// A favorable placement: the household puts the CPE at its best
	// window, so take an upper-middle quantile across candidate spots.
	favorable := stats.Percentile(rates, 60)
	const houses = 50.0
	const cells = 3.0
	perHouse := favorable * cells / houses
	return Result{
		ID: "X1", Title: "5G-as-DSL feasibility",
		Lines: []string{
			line("CPE spots sampled: %d, mean %.0f Mb/s, favorable placement (P60) %.0f Mb/s (paper ≈650)", s.N, s.Mean/1e6, favorable/1e6),
			line("50 houses on a 3-cell residential gNB: %.1f Mb/s per house (paper ≈39)", perHouse/1e6),
			line("average US DSL: 24 Mb/s → 5G %s replace DSL in this setting", verdict(perHouse > 24e6)),
		},
		Values: map[string]float64{"perHouseMbps": perHouse / 1e6, "favorableMbps": favorable / 1e6},
	}
}

func verdict(ok bool) string {
	if ok {
		return "CAN"
	}
	return "CANNOT"
}

// runX2MEC moves the server to the network edge (behind the gNB, §8): the
// legacy-Internet bottleneck and its cross traffic disappear from the
// path. Loss-based TCP recovers and the page-load download share shrinks.
func runX2MEC(cfg Config) Result {
	d := bulkDur(cfg)
	remote := netsim.DefaultPath(radio.NR, true)
	edge := remote
	edge.ServerOneWay = 300 * time.Microsecond
	edge.BottleneckOneWay = 200 * time.Microsecond
	edge.BottleneckBps = 10e9 // the edge link is not the legacy bottleneck
	edge.Cross = netsim.CrossConfig{}

	res := Result{ID: "X2", Title: "MEC ablation", Values: map[string]float64{}}
	for _, name := range []string{"cubic", "bbr"} {
		r1 := transport.RunBulk(remote, name, d)
		r2 := transport.RunBulk(edge, name, d)
		res.Lines = append(res.Lines, line("%-6s: remote %6.1f Mb/s → edge %6.1f Mb/s (%.1f×)",
			name, r1.ThroughputBps/1e6, r2.ThroughputBps/1e6, r2.ThroughputBps/r1.ThroughputBps))
		res.Values[name+"Gain"] = r2.ThroughputBps / r1.ThroughputBps
	}
	res.Lines = append(res.Lines, line("edge base RTT %.1f ms vs remote %.1f ms",
		float64(edge.BaseRTT())/1e6, float64(remote.BaseRTT())/1e6))
	res.Lines = append(res.Lines,
		"paper §8: MEC sidesteps the under-provisioned wired path for cacheable workloads;",
		"end-to-end applications (telesurgery, telephony) still need the whole path fixed")
	return res
}

func runX3A3(cfg Config) Result {
	sweeps := RunA3Sweep(cfg, []float64{1, 3, 6})
	res := Result{ID: "X3", Title: "A3 hysteresis sweep", Values: map[string]float64{}}
	for _, s := range sweeps {
		res.Lines = append(res.Lines, line("gap %.0f dB: %.1f hand-offs/min, %.0f%% gain >3 dB",
			s.GapDB, s.HOsPerMin, 100*s.GoodHOFrac))
		res.Values[line("hoPerMin@%.0f", s.GapDB)] = s.HOsPerMin
	}
	res.Lines = append(res.Lines,
		"a looser trigger hands off more often (ping-pong); a tighter one rides bad cells longer —",
		"the ISP's 3 dB / 324 ms sits between (§3.4)")
	return res
}

func runX4DRX(cfg Config) Result {
	tr := traffic.Web(cfg.Seed)
	res := Result{ID: "X4", Title: "DRX timer sweep (NSA, web trace)", Values: map[string]float64{}}
	base := energy.Replay(energy.ModelNSA, tr).EnergyJ
	res.Lines = append(res.Lines, line("stock Table 7 timers: %.1f J", base))
	res.Values["baseJ"] = base
	// The sweep is expressed through the replay by scaling the trace-side
	// effect of the tail: we emulate shorter/longer tails via the
	// RRC_INACTIVE run (tail cut short) and a doubled-tail LTE comparison.
	rrci := replayWithRRCI(tr)
	res.Lines = append(res.Lines, line("tail cut by RRC_INACTIVE-style parking: %.1f J (−%.1f%%)",
		rrci, 100*(1-rrci/base)))
	res.Values["rrciJ"] = rrci
	res.Lines = append(res.Lines,
		"the tail dominates bursty workloads; §6.2's 21.4 s double tail is the main NSA waste")
	return res
}

func runX5SA(cfg Config) Result {
	ratio := ablationSAHandoff(cfg)
	return Result{
		ID: "X5", Title: "SA vs NSA hand-off",
		Lines: []string{
			line("NSA 5G→5G over hypothetical SA Xn hand-off: %.1f× slower", ratio),
			line("expected ladders: NSA %.1f ms vs SA ≈32 ms — \"this long HO latency problem can be"+
				" resolved in the future 5G SA architecture\" (§3.4)", 108.4),
		},
		Values: map[string]float64{"nsaOverSA": ratio},
	}
}

func runX6RRCI(cfg Config) Result {
	tr := traffic.Web(cfg.Seed)
	nsa := energy.Replay(energy.ModelNSA, tr).EnergyJ
	rrci := replayWithRRCI(tr)
	return Result{
		ID: "X6", Title: "RRC_INACTIVE extension",
		Lines: []string{
			line("NSA web energy: %.1f J; with RRC_INACTIVE parking after one long-DRX cycle: %.1f J (−%.1f%%)",
				nsa, rrci, 100*(1-rrci/nsa)),
			"Rel-15 38.331 adds RRC_INACTIVE for SA \"to trade off the data transfer response and" +
				" more energy saving\" (§B); it attacks exactly the tail the NSA machine wastes",
		},
		Values: map[string]float64{"nsaJ": nsa, "rrciJ": rrci},
	}
}

// replayWithRRCI runs the NSA replay with a shortened tail that parks in
// RRC_INACTIVE (the SA extension) instead of burning the full 21.4 s
// C-DRX tail.
func replayWithRRCI(tr energy.Trace) float64 {
	return energy.ReplayWithParams(energy.ModelNSA, tr, func(p energy.DRXParams) energy.DRXParams {
		p.HasRRCI = true
		p.TResume = 120 * time.Millisecond
		p.Ttail = 2 * p.Tlong // park after two long-DRX cycles
		return p
	}).EnergyJ
}

func runX7Buffer(cfg Config) Result {
	d := bulkDur(cfg)
	res := Result{ID: "X7", Title: "Wired buffer sizing sweep", Values: map[string]float64{}}
	base := netsim.DefaultPath(radio.NR, true)
	for _, scale := range []float64{0.5, 1, 2, 4} {
		pc := base
		pc.BottleneckBufferBytes = int(float64(base.BottleneckBufferBytes) * scale)
		r := transport.RunBulk(pc, "cubic", d)
		udp := netsim.RunUDP(pc, pc.RANRateBps*0.5, udpDur(cfg)/2, false)
		res.Lines = append(res.Lines, line("buffer ×%.1f (%4.1f MB): cubic %6.1f Mb/s, UDP loss at 1/2 load %.2f%%",
			scale, float64(pc.BottleneckBufferBytes)/1e6, r.ThroughputBps/1e6, 100*udp.LossRate))
		res.Values[line("cubic@%.1f", scale)] = r.ThroughputBps
	}
	res.Lines = append(res.Lines,
		"the paper's remedy: \"the buffer size in the wired network part should be increased 2×\" (§4.2);",
		"the cost is bufferbloat for latency-sensitive flows sharing the path")
	return res
}

// runX8MPTCP explores the paper's twice-flagged future-work item: pooling
// the 4G and 5G radios with multipath TCP during the long NSA coexistence.
func runX8MPTCP(cfg Config) Result {
	d := bulkDur(cfg)
	cfgs := []netsim.PathConfig{
		netsim.DefaultPath(radio.NR, true),
		netsim.DefaultPath(radio.LTE, true),
	}
	cfgs[1].Seed = cfg.Seed + 1
	res := transport.RunMPTCPBulk(cfgs, "bbr", d)
	return Result{
		ID: "X8", Title: "MPTCP 4G+5G aggregation",
		Lines: []string{
			line("subflows: 5G %.0f Mb/s + 4G %.0f Mb/s = %.0f Mb/s aggregate",
				res.PerPathBps[0]/1e6, res.PerPathBps[1]/1e6, res.TotalBps/1e6),
			line("aggregation efficiency vs running each path alone: %.0f%%", 100*res.AggregationEfficiency),
			"§6.3: \"dynamic 4G-5G switching may also be a use case for MPTCP ... particularly" +
				" considering the long-term 4G/5G coexistence\"",
		},
		Values: map[string]float64{
			"totalMbps":  res.TotalBps / 1e6,
			"efficiency": res.AggregationEfficiency,
		},
	}
}
