package fivegsim

import (
	"time"

	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
	"fivegsim/internal/handoff"
	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
)

func surveySamples(cfg Config) int {
	if cfg.Quick {
		return 1200
	}
	return 4630 // the paper's sample count
}

func init() {
	register("T1", "Basic physical info (band, cells, mean RSRP)", runTable1)
	register("T2", "RSRP distribution and coverage holes", runTable2)
	register("F2", "Campus RSRP map and cell-72 bit-rate contour", runFig2)
	register("F3", "Indoor/outdoor bit-rate gap", runFig3)
	register("F4", "RSRQ evolution during a hand-off (PCI 226 → 44)", runFig4)
	register("F5", "RSRQ gap before/after hand-off", runFig5)
	register("F6", "Hand-off latency CDFs", runFig6)
}

func runTable1(cfg Config) Result {
	c := deploy.New(cfg.Seed)
	s := coverage.RunParallel(c, surveySamples(cfg), cfg.Seed, cfg.Workers)
	nr := s.RSRPSummary(radio.NR)
	lte := s.RSRPSummary(radio.LTE)
	return Result{
		ID: "T1", Title: "Basic physical info",
		Lines: []string{
			line("DL band           4G: 1840–1860 MHz (b3, FDD)   5G: 3500–3600 MHz (n78, TDD 3:1)"),
			line("# cells           4G: %d (paper 34)              5G: %d (paper 13)", len(c.LTECells), len(c.NRCells)),
			line("RSRP (dBm)        4G: %s (paper −84.84 ± 8.72)", lte),
			line("                  5G: %s (paper −84.03 ± 11.72)", nr),
			line("gNB density       %.2f /km² (paper 12.99)", c.GNBDensityPerKm2()),
			line("eNB density       %.2f /km² (paper 28.14)", c.ENBDensityPerKm2()),
		},
		Values: map[string]float64{
			"rsrp5G": nr.Mean, "rsrp4G": lte.Mean,
			"cells5G": float64(len(c.NRCells)), "cells4G": float64(len(c.LTECells)),
		},
	}
}

func runTable2(cfg Config) Result {
	c := deploy.New(cfg.Seed)
	s := coverage.RunParallel(c, surveySamples(cfg), cfg.Seed, cfg.Workers)
	res := Result{ID: "T2", Title: "RSRP distribution", Values: map[string]float64{}}
	paper := map[string][6]float64{
		"4G":        {0.13, 5.56, 23.60, 39.20, 29.74, 1.77},
		"5G":        {0.95, 8.15, 26.88, 39.37, 16.59, 8.07},
		"4G(6eNBs)": {0.13, 5.29, 21.86, 38.77, 30.02, 3.84},
	}
	for _, tc := range []struct {
		name    string
		tech    radio.Tech
		coSited bool
	}{{"4G", radio.LTE, false}, {"5G", radio.NR, false}, {"4G(6eNBs)", radio.LTE, true}} {
		bins := s.RSRPDistribution(tc.tech, tc.coSited)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		row := tc.name + ": "
		for i, b := range bins {
			row += line("[%.0f,%.0f)=%.2f%%(paper %.2f%%) ", b.Lo, b.Hi, 100*b.Frac(total), paper[tc.name][i])
		}
		res.Lines = append(res.Lines, row)
		res.Values["holes"+tc.name] = s.HoleFraction(tc.tech, tc.coSited)
	}
	return res
}

func runFig2(cfg Config) Result {
	c := deploy.New(cfg.Seed)
	resolution := 25.0
	if cfg.Quick {
		resolution = 60
	}
	grid := coverage.GridMapWorkers(c, radio.NR, resolution, cfg.Workers)
	usable, holes := 0, 0
	for _, row := range grid {
		for _, g := range row {
			if g.RSRPdBm >= radio.ServiceThresholdDBm {
				usable++
			} else {
				holes++
			}
		}
	}
	nrRadius := coverage.UsableRadius(c, c.CellByPCI(72))
	lteRadius := coverage.UsableRadius(c, c.CellByPCI(100))
	res := Result{
		ID: "F2", Title: "Coverage map + cell radii",
		Lines: []string{
			line("map %dx%d px at %.0f m: %d covered, %d holes (%.1f%%)",
				len(grid[0]), len(grid), resolution, usable, holes, 100*float64(holes)/float64(usable+holes)),
			line("5G usable radius (cell 72): %.0f m (paper ≈230 m)", nrRadius),
			line("4G usable radius:           %.0f m (paper ≈520 m)", lteRadius),
		},
		Values: map[string]float64{"radius5G": nrRadius, "radius4G": lteRadius},
	}
	for _, ring := range coverage.CellContour(c, c.CellByPCI(72), 40, 280, cfg.Seed) {
		res.Lines = append(res.Lines, line("cell-72 contour %3.0f–%3.0f m: mean %4.0f Mb/s, usable %3.0f%%",
			ring.LoM, ring.HiM, ring.MeanBps/1e6, 100*ring.UsableFrac))
	}
	return res
}

func runFig3(cfg Config) Result {
	c := deploy.New(cfg.Seed)
	nr := stats.Summarize(coverage.IndoorOutdoorGap(c, radio.NR, cfg.Seed))
	lte := stats.Summarize(coverage.IndoorOutdoorGap(c, radio.LTE, cfg.Seed))
	return Result{
		ID: "F3", Title: "Indoor/outdoor bit-rate gap",
		Lines: []string{
			line("5G indoor bit-rate drop: %.2f%% over %d wall pairs (paper 50.59%%)", 100*nr.Mean, nr.N),
			line("4G indoor bit-rate drop: %.2f%% over %d wall pairs (paper 20.38%%)", 100*lte.Mean, lte.N),
			line("ratio: %.2f× (paper \"more than 2×\")", nr.Mean/lte.Mean),
		},
		Values: map[string]float64{"drop5G": nr.Mean, "drop4G": lte.Mean},
	}
}

func runFig4(cfg Config) Result {
	c := deploy.New(cfg.Seed)
	series, hoIdx := handoff.CaseStudy(c, cfg.Seed)
	res := Result{ID: "F4", Title: "RSRQ evolution during hand-off", Values: map[string]float64{"hoIdx": float64(hoIdx)}}
	if hoIdx >= 0 {
		res.Lines = append(res.Lines, line("hand-off PCI %d → %d at sample %d (t=%.1fs)",
			226, 44, hoIdx, series[hoIdx].At.Seconds()))
	} else {
		// Some deployment jitters never trip A3 along the fixed walk; the
		// trace is still reported, just without a hand-off marker.
		res.Lines = append(res.Lines, line("no hand-off triggered along the case-study walk (seed %d)", cfg.Seed))
	}
	step := len(series) / 12
	for i := 0; i < len(series); i += step {
		s := series[i]
		res.Lines = append(res.Lines, line("t=%5.1fs serving=%3d RSRQ226=%6.1f RSRQ44=%6.1f dB",
			s.At.Seconds(), s.ServingPCI, s.RSRQ[226], s.RSRQ[44]))
	}
	return res
}

func campaignFor(cfg Config) *handoff.Campaign {
	hcfg := handoff.DefaultConfig()
	walks := 4
	hcfg.Duration = 40 * time.Minute
	if cfg.Quick {
		hcfg.Duration = 10 * time.Minute
		walks = 2
	}
	campus := deploy.New(cfg.Seed)
	// Walk i runs with seed cfg.Seed+1+i, the same ladder the serial
	// loop used; walks execute across cfg.Workers goroutines and merge
	// in walk order, so the campaign is identical for any worker count.
	return handoff.RunCampaigns(campus, hcfg, cfg.Seed, walks, cfg.Workers)
}

func runFig5(cfg Config) Result {
	camp := campaignFor(cfg)
	res := Result{ID: "F5", Title: "RSRQ gap before/after hand-off", Values: map[string]float64{}}
	paper := map[handoff.Kind]float64{
		handoff.FourToFour: 80, handoff.FiveToFive: 84,
		handoff.FiveToFour: 75, handoff.FourToFive: 61,
	}
	var tot, above int
	for _, k := range []handoff.Kind{handoff.FourToFour, handoff.FiveToFive, handoff.FiveToFour, handoff.FourToFive} {
		gains := camp.Gains(k)
		n3 := 0
		for _, g := range gains {
			if g > 3 {
				n3++
			}
		}
		tot += len(gains)
		above += n3
		frac := 0.0
		if len(gains) > 0 {
			frac = float64(n3) / float64(len(gains))
		}
		res.Lines = append(res.Lines, line("%-5s: n=%3d  >3dB gain: %5.1f%% (paper %.0f%%)  mean gain %s dB",
			k, len(gains), 100*frac, paper[k], stats.Summarize(gains)))
		res.Values["gain"+k.String()] = frac
	}
	res.Lines = append(res.Lines, line("overall >3dB: %.1f%% (paper ≈75%%; 25%% of HOs don't help)",
		100*float64(above)/float64(tot)))
	res.Values["overall"] = float64(above) / float64(tot)
	return res
}

func runFig6(cfg Config) Result {
	camp := campaignFor(cfg)
	res := Result{ID: "F6", Title: "Hand-off latency", Values: map[string]float64{}}
	paper := map[handoff.Kind]float64{
		handoff.FourToFour: 30.10, handoff.FiveToFive: 108.40, handoff.FourToFive: 80.23,
	}
	for _, k := range []handoff.Kind{handoff.FourToFour, handoff.FourToFive, handoff.FiveToFive} {
		lat := camp.Latencies(k)
		if len(lat) == 0 {
			res.Lines = append(res.Lines, line("%-5s: no events in this run", k))
			continue
		}
		s := stats.Summarize(lat)
		res.Lines = append(res.Lines, line("%-5s: n=%3d  latency %s ms (paper %.2f ms)", k, s.N, s, paper[k]))
		res.Values["latency"+k.String()] = s.Mean
	}
	res.Lines = append(res.Lines, line("5G-5G/4G-4G ratio: %.1f× (paper 3.6×; NSA roll-back penalty)",
		res.Values["latency5G-5G"]/res.Values["latency4G-4G"]))
	return res
}
