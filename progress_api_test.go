package fivegsim

import (
	"testing"
	"time"

	"fivegsim/internal/obs"
)

// TestOnProgressEventStream: the campaign engine emits one start and one
// finish event per experiment, serialized (the plain append below is the
// race detector's witness), with monotone completion counts, correct
// totals, and ETAs derivable from completed work. The stream must fold
// cleanly into a ProgressTracker — the exact pipeline `fgobs serve`
// runs behind /progress.
func TestOnProgressEventStream(t *testing.T) {
	delays := map[string]time.Duration{"Z90": 30 * time.Millisecond, "Z91": 10 * time.Millisecond, "Z92": 0}
	for id, d := range delays {
		id, d := id, d
		tempExperiment(t, id, func(cfg Config) Result {
			time.Sleep(d)
			return Result{ID: id, Title: id}
		})
	}
	cfg := QuickConfig()
	cfg.Workers = 3
	var events []obs.ProgressEvent
	tracker := obs.NewProgressTracker()
	cfg.OnProgress = func(ev obs.ProgressEvent) {
		events = append(events, ev)
		tracker.Observe(ev)
	}
	if _, err := RunExperiments(cfg, "Z90", "Z91", "Z92"); err != nil {
		t.Fatal(err)
	}

	starts, finishes := 0, 0
	lastCompleted := 0
	for _, ev := range events {
		if ev.Total != 3 {
			t.Fatalf("event %+v has Total %d, want 3", ev, ev.Total)
		}
		switch ev.Kind {
		case obs.ProgressExperimentStart:
			starts++
		case obs.ProgressExperimentFinish:
			finishes++
			if ev.Completed != lastCompleted+1 {
				t.Fatalf("finish events out of order: completed %d after %d", ev.Completed, lastCompleted)
			}
			lastCompleted = ev.Completed
			if ev.Failed {
				t.Fatalf("experiment %s reported failed", ev.Experiment)
			}
			if ev.Completed < 3 && ev.ETA <= 0 {
				t.Fatalf("mid-campaign finish carries no ETA: %+v", ev)
			}
			if ev.Completed == 3 && ev.ETA != 0 {
				t.Fatalf("final finish still carries an ETA: %+v", ev)
			}
		}
	}
	if starts != 3 || finishes != 3 {
		t.Fatalf("saw %d starts and %d finishes, want 3 each", starts, finishes)
	}
	snap := tracker.Snapshot()
	if !snap.Done || snap.Completed != 3 || snap.Failed != 0 || len(snap.Running) != 0 {
		t.Fatalf("tracker snapshot after the campaign = %+v", snap)
	}
}

// TestOnProgressFailedFlag: a crashing experiment still finishes — with
// Failed set — so progress consumers never hang on a wedged count.
func TestOnProgressFailedFlag(t *testing.T) {
	tempExperiment(t, "Z97", func(cfg Config) Result {
		panic("synthetic crash")
	})
	cfg := QuickConfig()
	var failed []string
	cfg.OnProgress = func(ev obs.ProgressEvent) {
		if ev.Kind == obs.ProgressExperimentFinish && ev.Failed {
			failed = append(failed, ev.Experiment)
		}
	}
	if _, err := RunExperiments(cfg, "Z97"); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != "Z97" {
		t.Fatalf("failed finishes %v, want [Z97]", failed)
	}
}

// TestOnProgressPopulationTicks: the population experiments surface
// their inner scheduling ticks through the same stream (the
// exp_population wiring of pop.Telemetry.OnTick).
func TestOnProgressPopulationTicks(t *testing.T) {
	if testing.Short() {
		t.Skip("population run is not short-mode work")
	}
	cfg := QuickConfig()
	var ticks []obs.ProgressEvent
	cfg.OnProgress = func(ev obs.ProgressEvent) {
		if ev.Kind == obs.ProgressTick {
			ticks = append(ticks, ev)
		}
	}
	if _, err := RunExperiments(cfg, "X12"); err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("X12 emitted no tick events")
	}
	for i, ev := range ticks {
		if ev.Experiment != "X12" || ev.Ticks == 0 {
			t.Fatalf("tick event %+v malformed", ev)
		}
		if ev.Tick != i+1 {
			t.Fatalf("tick sequence broken at %d: %+v", i, ev)
		}
	}
	if last := ticks[len(ticks)-1]; last.Tick != last.Ticks {
		t.Fatalf("last tick event %d/%d, want complete", last.Tick, last.Ticks)
	}
}
