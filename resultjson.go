package fivegsim

import (
	"encoding/json"
	"fmt"

	"fivegsim/internal/obs"
)

// ResultSchemaV1 is the identifier carried in the "schema" field of
// every JSON-encoded Result. The encoding is the stable wire contract
// shared by fgserve responses, the fgserve event stream and
// `fgbench -results`: explicit field names, Err flattened to a plain
// string, the run manifest embedded as its own object. New fields may
// be added within v1; renaming or retyping an existing field bumps the
// version. The shape is pinned by the golden-file test in
// resultjson_test.go.
const ResultSchemaV1 = "fivegsim.result/v1"

// resultV1 is the wire shape of a Result. Result itself keeps Go-side
// niceties (a real error in Err); this struct is what crosses process
// boundaries.
type resultV1 struct {
	Schema   string             `json:"schema"`
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	Lines    []string           `json:"lines,omitempty"`
	Values   map[string]float64 `json:"values,omitempty"`
	Err      string             `json:"error,omitempty"`
	Manifest *obs.RunManifest   `json:"manifest,omitempty"`
}

// MarshalJSON encodes the result in the versioned v1 wire shape.
func (r Result) MarshalJSON() ([]byte, error) {
	v := resultV1{
		Schema: ResultSchemaV1,
		ID:     r.ID,
		Title:  r.Title,
		Lines:  r.Lines,
		Values: r.Values,
	}
	if r.Err != nil {
		v.Err = r.Err.Error()
	}
	if r.Manifest.ExperimentID != "" || r.Manifest.Version != "" {
		m := r.Manifest
		v.Manifest = &m
	}
	return json.Marshal(v)
}

// ResultError is the flattened form a decoded Result carries in Err:
// the remote error's message, with the original type (and errors.Is
// identity) lost at the process boundary. Matching decoded errors means
// matching strings — that is the price of a stable wire format.
type ResultError string

// Error returns the flattened message.
func (e ResultError) Error() string { return string(e) }

// UnmarshalJSON decodes the v1 wire shape. A document whose schema
// field names anything other than v1 (or is absent, for tolerance of
// hand-written fixtures) is rejected, so a future v2 reader/writer skew
// fails loudly instead of dropping fields silently.
func (r *Result) UnmarshalJSON(data []byte) error {
	var v resultV1
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.Schema != "" && v.Schema != ResultSchemaV1 {
		return fmt.Errorf("fivegsim: unknown result schema %q (want %s)", v.Schema, ResultSchemaV1)
	}
	*r = Result{ID: v.ID, Title: v.Title, Lines: v.Lines, Values: v.Values}
	if v.Err != "" {
		r.Err = ResultError(v.Err)
	}
	if v.Manifest != nil {
		r.Manifest = *v.Manifest
	}
	return nil
}
