// Coverage survey: walk the campus like the paper's measurement team,
// print the RSRP distribution for both technologies, draw an ASCII
// coverage map, and locate the coverage holes.
package main

import (
	"fmt"

	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
	"fivegsim/internal/radio"
)

func main() {
	campus := deploy.New(42)
	survey := coverage.Run(campus, 4630, 42)

	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		s := survey.RSRPSummary(tech)
		fmt.Printf("%v blanket survey (%d samples): RSRP %s dBm, holes %.2f%%\n",
			tech, len(survey.Samples), s, 100*survey.HoleFraction(tech, false))
	}

	// ASCII RSRP map of the 5G layer (Fig. 2a): darker = stronger.
	fmt.Println("\n5G coverage map (#=strong, +=good, .=usable, ' '=hole, B=building):")
	grid := coverage.GridMap(campus, radio.NR, 20)
	for j := len(grid) - 1; j >= 0; j -= 2 { // y grows north; print top-down
		row := ""
		for i := 0; i < len(grid[j]); i++ {
			g := grid[j][i]
			switch {
			case g.Indoor:
				row += "B"
			case g.RSRPdBm >= -70:
				row += "#"
			case g.RSRPdBm >= -90:
				row += "+"
			case g.RSRPdBm >= -105:
				row += "."
			default:
				row += " "
			}
		}
		fmt.Println(row)
	}

	// The paper's location-A walk: how far does cell 72 reach?
	cell := campus.CellByPCI(72)
	fmt.Printf("\ncell 72 usable radius: %.0f m (the paper walks to location A at ≈230 m)\n",
		coverage.UsableRadius(campus, cell))

	drops := coverage.IndoorOutdoorGap(campus, radio.NR, 42)
	var mean float64
	for _, d := range drops {
		mean += d / float64(len(drops))
	}
	fmt.Printf("stepping indoors costs 5G %.0f%% of its bit-rate on average (%d wall pairs)\n",
		100*mean, len(drops))
}
