// Video telephony: drive the 360TEL panoramic pipeline (§5.2) at every
// resolution over both radios, then break the 4K frame delay into its
// processing and network shares — the paper's "computing is the new
// bottleneck" finding.
package main

import (
	"fmt"
	"time"

	"fivegsim/internal/radio"
	"fivegsim/internal/video"
)

func main() {
	const dur = 30 * time.Second
	fmt.Println("uplink throughput received at the RTMP server:")
	for _, row := range video.RunFig18(dur, 42) {
		scene := "static "
		if row.Dynamic {
			scene = "dynamic"
		}
		fmt.Printf("  %v %-5v %s: %6.1f Mb/s\n", row.Tech, row.Res, scene, row.Received/1e6)
	}

	dyn := video.Run(video.R57K, radio.NR, true, dur, 42)
	fmt.Printf("\n5.7K dynamic over 5G: %d playout freezes in %v (the paper counts 6)\n",
		dyn.Freezes, dur)

	s := video.Run(video.R4K, radio.NR, false, dur, 42)
	delay := s.MeanFrameDelay()
	proc := video.ProcessingLatency()
	network := delay - proc - video.PlayoutBuffer
	fmt.Printf("\n4K frame delay over 5G: %v (budget for interactive telephony: %v)\n",
		delay.Round(time.Millisecond), video.RealTimeBudget)
	fmt.Printf("  capture+splice+render %v, encode %v, decode %v\n",
		video.CaptureSpliceRender, video.EncodeLatency, video.DecodeLatency)
	fmt.Printf("  network share ≈%v — processing outweighs transmission ≈%.0f×\n",
		network.Round(time.Millisecond), float64(proc)/float64(network))
}
