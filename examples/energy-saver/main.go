// Energy saver: replay the three §6.3 workloads under the four
// power-management models, reproduce the Fig. 23 double-tail showcase,
// and export a pwrStrip battery trace.
package main

import (
	"fmt"
	"time"

	"fivegsim/internal/energy"
	"fivegsim/internal/pwrstrip"
	"fivegsim/internal/traffic"
)

func main() {
	workloads := []struct {
		name  string
		trace energy.Trace
	}{
		{"web", traffic.Web(42)},
		{"video", traffic.Video(42)},
		{"file", traffic.File(42)},
	}
	for _, w := range workloads {
		fmt.Printf("%-5s (%d MB):", w.name, w.trace.TotalBytes()>>20)
		for _, m := range energy.Models() {
			r := energy.Replay(m, w.trace)
			fmt.Printf("  %s %.0fJ", m, r.EnergyJ)
		}
		fmt.Println()
	}

	// The Fig. 23 showcase: ten web loads, 3 s apart.
	tr := energy.Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, 320)}
	for l := 0; l < 10; l++ {
		for k := 0; k < 3; k++ {
			tr.Bytes[l*30+k] = 1 << 20
		}
	}
	lte, nsa, m := energy.Showcase(tr)
	fmt.Printf("\nweb session showcase: 5G %.1f J vs 4G %.1f J (%.2f×)\n",
		nsa.EnergyJ, lte.EnergyJ, nsa.EnergyJ/lte.EnergyJ)
	fmt.Printf("tails after the last load: 4G %.1f s, 5G %.1f s — the NSA double tail\n",
		(m.LTETailEnd - m.TransferEnd).Seconds(), (m.NRTailEnd - m.TransferEnd).Seconds())

	recs := pwrstrip.Capture(nsa.Series, energy.SystemPowerW)
	peak := 0.0
	for _, r := range recs {
		if p := r.PowerW(); p > peak {
			peak = p
		}
	}
	fmt.Printf("pwrStrip: %d samples at 100 ms, peak %.2f W, integrated %.1f J\n",
		len(recs), peak, pwrstrip.EnergyJ(recs))
}
