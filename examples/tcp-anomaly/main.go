// TCP anomaly: the paper's headline transport result. Run all five
// congestion-control algorithms over the simulated 5G and 4G paths, show
// the 5G collapse of loss/delay-based TCP, and verify the paper's two
// remedies: BBR, and doubling the wired bottleneck buffer.
package main

import (
	"fmt"
	"time"

	"fivegsim/internal/cc"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/transport"
)

func main() {
	const dur = 12 * time.Second
	for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
		cfg := netsim.DefaultPath(tech, true)
		baseline := netsim.UDPBaseline(cfg, 8*time.Second).DeliveredBps
		fmt.Printf("%v UDP baseline: %.0f Mb/s\n", tech, baseline/1e6)
		for _, name := range cc.Names() {
			r := transport.RunBulk(cfg, name, dur)
			fmt.Printf("  %-6s %6.1f Mb/s  utilization %5.1f%%\n",
				name, r.ThroughputBps/1e6, 100*r.Utilization(baseline))
		}
	}

	// Remedy: "the buffer size in the wired network part should be
	// increased 2× to accommodate 5G" (§4.2).
	small := netsim.DefaultPath(radio.NR, true)
	big := small
	big.BottleneckBufferBytes *= 2
	u1 := transport.RunBulk(small, "cubic", dur)
	u2 := transport.RunBulk(big, "cubic", dur)
	fmt.Printf("\nbuffer-sizing remedy (cubic over 5G): %.0f Mb/s → %.0f Mb/s with a 2× wired buffer\n",
		u1.ThroughputBps/1e6, u2.ThroughputBps/1e6)
	fmt.Println("(the other remedy is visible above: BBR, which probes capacity instead of reacting to loss)")
}
