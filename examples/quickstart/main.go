// Quickstart: build the campus, take one physical-layer measurement, run
// one TCP flow over the simulated 5G path, and regenerate one figure via
// the experiment registry — the three levels of the public API.
package main

import (
	"fmt"
	"time"

	"fivegsim"
	"fivegsim/internal/deploy"
	"fivegsim/internal/geom"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/transport"
)

func main() {
	// 1. The physical layer: what does the phone see in the middle of the
	// campus?
	campus := deploy.New(42)
	p := geom.Point{X: 250, Y: 460}
	nr, _ := campus.BestServer(radio.NR, p)
	lte, _ := campus.BestServer(radio.LTE, p)
	fmt.Printf("at (%.0f,%.0f): 5G PCI %d RSRP %.1f dBm (SINR %.1f dB), 4G PCI %d RSRP %.1f dBm\n",
		p.X, p.Y, nr.PCI, nr.RSRPdBm, nr.SINRdB, lte.PCI, lte.RSRPdBm)
	fmt.Printf("5G link there could carry %.0f Mb/s with a full PRB grant\n",
		radio.DLBitRate(nr, radio.BandNR(), radio.BandNR().PRBs)/1e6)

	// 2. The transport layer: a 10 s BBR bulk flow over the 5G path.
	cfg := netsim.DefaultPath(radio.NR, true)
	bulk := transport.RunBulk(cfg, "bbr", 10*time.Second)
	fmt.Printf("10 s of TCP/BBR over 5G: %.0f Mb/s (srtt %v, %d loss events)\n",
		bulk.ThroughputBps/1e6, bulk.MeanRTT.Round(time.Millisecond), bulk.LossEvents)

	// 3. The campaign layer: regenerate a paper figure.
	res, err := fivegsim.Run("F3", fivegsim.QuickConfig())
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Report())
}
