package fivegsim

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fivegsim/internal/fault"
	"fivegsim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// faultPlanEmpty fails fault.Plan.Validate (a plan needs ≥1 fault).
var faultPlanEmpty = fault.Plan{Name: "empty"}

// goldenResult is a fully-populated Result with every timestamp and
// version pinned, so its encoding is byte-stable across hosts.
func goldenResult() Result {
	return Result{
		ID:    "F7",
		Title: "UDP baselines and TCP bandwidth utilization",
		Lines: []string{
			"UDP DL  905.4 Mbps (paper 900)",
			"TCP DL  674.6 Mbps (paper 670)",
		},
		Values: map[string]float64{
			"udp_dl_mbps": 905.4,
			"tcp_dl_mbps": 674.6,
		},
		Err: ResultError("fivegsim: experiment F7 panicked: synthetic crash"),
		Manifest: obs.RunManifest{
			ExperimentID:   "F7",
			Title:          "UDP baselines and TCP bandwidth utilization",
			Seed:           42,
			Quick:          true,
			Version:        "v1.0.0-test",
			StartedAt:      time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC),
			WallTime:       1500 * time.Millisecond,
			SimTime:        8 * time.Second,
			EventsExecuted: 123456,
			Metrics: []obs.Metric{
				{Name: "des.events_fired", Kind: "counter", Value: 123456},
				{Name: "netsim.queue_depth", Kind: "gauge", Value: 3, Max: 17},
			},
		},
	}
}

// TestResultJSONGolden pins the v1 wire shape: any field rename,
// retype or re-nesting shows up as a golden diff and requires a schema
// bump, not a silent break of fgserve/fgbench consumers.
func TestResultJSONGolden(t *testing.T) {
	data, err := json.MarshalIndent(goldenResult(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "result_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run ResultJSONGolden -update` to create it)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("Result v1 encoding drifted from %s:\ngot:\n%s\nwant:\n%s", path, data, want)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	orig := goldenResult()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != orig.ID || back.Title != orig.Title {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	if !reflect.DeepEqual(back.Lines, orig.Lines) || !reflect.DeepEqual(back.Values, orig.Values) {
		t.Fatalf("round trip lost payload: %+v", back)
	}
	if back.Err == nil || back.Err.Error() != orig.Err.Error() {
		t.Fatalf("round trip lost the flattened error: %v", back.Err)
	}
	if !reflect.DeepEqual(back.Manifest, orig.Manifest) {
		t.Fatalf("round trip lost the manifest:\ngot  %+v\nwant %+v", back.Manifest, orig.Manifest)
	}
}

func TestResultJSONSchemaGate(t *testing.T) {
	var r Result
	err := json.Unmarshal([]byte(`{"schema":"fivegsim.result/v9","id":"T1"}`), &r)
	if err == nil {
		t.Fatal("a v9 document decoded without error")
	}
	// An error-free result omits both error and manifest.
	data, err := json.Marshal(Result{ID: "T1", Title: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"error"`)) || bytes.Contains(data, []byte(`"manifest"`)) {
		t.Fatalf("clean result leaks empty fields: %s", data)
	}
	if !bytes.Contains(data, []byte(`"schema":"fivegsim.result/v1"`)) {
		t.Fatalf("schema field missing: %s", data)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"negative workers", Config{Workers: -2}, "Workers"},
		{"negative population", Config{Population: -1}, "Population"},
		{"empty fault plan", Config{Faults: &faultPlanEmpty}, "Faults"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("%s: error %v does not match ErrInvalidConfig", tc.name, err)
		}
		var ice *InvalidConfigError
		if !errors.As(err, &ice) || ice.Field != tc.field {
			t.Fatalf("%s: error %v does not name field %s", tc.name, err, tc.field)
		}
	}
	// The fault-plan failure keeps the underlying sentinel on the chain.
	if err := (Config{Faults: &faultPlanEmpty}).Validate(); !errors.Is(err, fault.ErrInvalidPlan) {
		t.Fatalf("fault-plan failure %v lost fault.ErrInvalidPlan", err)
	}
}

// TestRunRejectsInvalidConfig: every entry point fails fast on the same
// typed error, before any experiment runs.
func TestRunRejectsInvalidConfig(t *testing.T) {
	bad := Config{Workers: -1}
	if _, err := Run("T1", bad); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Run returned %v", err)
	}
	if _, err := RunExperiments(bad, "T1"); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("RunExperiments returned %v", err)
	}
	if res := RunAll(bad); res != nil {
		t.Fatalf("RunAll with an invalid config returned %d results", len(res))
	}
}

func TestValidateExperiments(t *testing.T) {
	if err := ValidateExperiments("T1", "F7", "X15"); err != nil {
		t.Fatal(err)
	}
	err := ValidateExperiments("T1", "NOPE")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("error %v does not match ErrUnknownExperiment", err)
	}
	var ue *UnknownExperimentError
	if !errors.As(err, &ue) || ue.ID != "NOPE" {
		t.Fatalf("error %v does not carry the offending id", err)
	}
}
