package fivegsim

import (
	"time"

	"fivegsim/internal/radio"
	"fivegsim/internal/video"
	"fivegsim/internal/web"
	"fivegsim/internal/wire"
)

func init() {
	register("F13", "RTT scatter: 4G vs 5G over 80 paths", runFig13)
	register("F14", "Per-hop RTT breakdown", runFig14)
	register("F15", "RTT vs path distance", runFig15)
	register("F16", "Page load time by website category", runFig16)
	register("F17", "Page load time vs image size", runFig17)
	register("F18", "Video throughput by resolution", runFig18)
	register("F19", "5.7K video throughput fluctuation", runFig19)
	register("F20", "4K video telephony frame delay", runFig20)
}

func runFig13(cfg Config) Result {
	pairs := wire.RTTScatter(cfg.Seed, cfg.Workers)
	s := wire.Summarize(pairs)
	res := Result{
		ID: "F13", Title: "RTT scatter over the Table 6 servers",
		Lines: []string{
			line("80 paths (4 sites × 20 servers)"),
			line("5G mean one-way latency: %.1f ms (paper 21.8 ms)", s.MeanOneWay5G.Seconds()*1000),
			line("mean RTT gap 4G−5G:      %.1f ms = %.1f%% (paper 22.3 ms, 31.86%%)",
				s.MeanRTTGap.Seconds()*1000, 100*s.GapFraction),
		},
		Values: map[string]float64{
			"oneWay5Gms": s.MeanOneWay5G.Seconds() * 1000,
			"gapMs":      s.MeanRTTGap.Seconds() * 1000,
		},
	}
	for i := 0; i < len(pairs); i += 17 {
		p := pairs[i]
		res.Lines = append(res.Lines, line("  e.g. %-28s %6.0f km: 4G %5.1f ms, 5G %5.1f ms",
			p.Server.Name, p.Server.DistanceKm, p.RTT4G.Seconds()*1000, p.RTT5G.Seconds()*1000))
	}
	return res
}

func runFig14(cfg Config) Result {
	nr := wire.HopBreakdown(radio.NR, cfg.Seed)
	lte := wire.HopBreakdown(radio.LTE, cfg.Seed)
	res := Result{ID: "F14", Title: "Per-hop RTT breakdown", Values: map[string]float64{}}
	for i := range nr {
		res.Lines = append(res.Lines, line("hop %d: 4G %6.2f ms   5G %6.2f ms", nr[i].Hop,
			lte[i].RTT.Seconds()*1000, nr[i].RTT.Seconds()*1000))
	}
	res.Lines = append(res.Lines,
		"paper: hop 1 (RAN) differs by ≈0.4 ms; the ≈20 ms reduction comes from hop 2 (flat 5G core)")
	res.Values["ranGapMs"] = (lte[0].RTT - nr[0].RTT).Seconds() * 1000
	res.Values["coreGapMs"] = (lte[1].RTT - nr[1].RTT).Seconds() * 1000
	return res
}

func runFig15(cfg Config) Result {
	bins := wire.RTTvsDistance(cfg.Seed, cfg.Workers)
	res := Result{ID: "F15", Title: "RTT vs path distance", Values: map[string]float64{}}
	for _, b := range bins {
		if b.RTT5G.N == 0 {
			continue
		}
		res.Lines = append(res.Lines, line("%5.0f–%5.0f km: 4G %6.1f ms   5G %6.1f ms   gap %5.1f ms",
			b.LoKm, b.HiKm, b.RTT4G.Mean, b.RTT5G.Mean, b.RTT4G.Mean-b.RTT5G.Mean))
	}
	res.Lines = append(res.Lines,
		"paper: RTT grows ≈5× from 100 to 2500 km; the constant ≈22 ms 5G advantage shrinks in relative terms")
	return res
}

func runFig16(cfg Config) Result {
	pages := 6
	if cfg.Quick {
		pages = 2
	}
	rows := web.RunFig16(pages, cfg.Seed)
	res := Result{ID: "F16", Title: "PLT by category", Values: map[string]float64{}}
	for _, r := range rows {
		res.Lines = append(res.Lines, line("%v %-9s: download %5.2f s + render %5.2f s = PLT %5.2f s",
			r.Tech, r.Category, r.Downloading.Seconds(), r.Rendering.Seconds(), r.PLT().Seconds()))
	}
	plt, dl := web.Reductions(rows)
	res.Lines = append(res.Lines, line("5G reduces PLT by %.1f%% (paper ≈5%%) and downloading by %.1f%% (paper 20.68%%)",
		100*plt, 100*dl))
	res.Values["pltReduction"] = plt
	res.Values["dlReduction"] = dl
	return res
}

func runFig17(cfg Config) Result {
	rows := web.RunFig17(cfg.Seed)
	res := Result{ID: "F17", Title: "PLT vs image size", Values: map[string]float64{}}
	for _, r := range rows {
		res.Lines = append(res.Lines, line("%v %2d MB: download %5.2f s + render %5.2f s",
			r.Tech, r.SizeMB, r.Downloading.Seconds(), r.Rendering.Seconds()))
	}
	res.Lines = append(res.Lines, "paper: rendering dominates large images on both technologies")
	return res
}

func videoDur(cfg Config) time.Duration {
	if cfg.Quick {
		return 10 * time.Second
	}
	return 30 * time.Second
}

func runFig18(cfg Config) Result {
	rows := video.RunFig18(videoDur(cfg), cfg.Seed)
	res := Result{ID: "F18", Title: "Uplink video throughput", Values: map[string]float64{}}
	for _, r := range rows {
		scene := "static"
		if r.Dynamic {
			scene = "dynamic"
		}
		res.Lines = append(res.Lines, line("%v %-5v %-7s: received %6.1f Mb/s", r.Tech, r.Res, scene, r.Received/1e6))
		res.Values[r.Tech.String()+r.Res.String()+scene] = r.Received
	}
	res.Lines = append(res.Lines, "paper: every resolution fits the 5G uplink; 4G cannot support 5.7K")
	return res
}

func runFig19(cfg Config) Result {
	dyn := video.Run(video.R57K, radio.NR, true, videoDur(cfg), cfg.Seed)
	static := video.Run(video.R57K, radio.NR, false, videoDur(cfg), cfg.Seed)
	res := Result{ID: "F19", Title: "5.7K throughput fluctuation (5G)", Values: map[string]float64{
		"freezes": float64(dyn.Freezes),
	}}
	ds := dyn.ThroughputSeries(time.Second)
	ss := static.ThroughputSeries(time.Second)
	for i := 0; i < len(ds) && i < len(ss); i += 3 {
		res.Lines = append(res.Lines, line("t=%2ds: static %5.1f Mb/s   dynamic %5.1f Mb/s", i, ss[i]/1e6, ds[i]/1e6))
	}
	res.Lines = append(res.Lines, line("dynamic freezes: %d (paper finds 6 in a 30 s session); static: %d",
		dyn.Freezes, static.Freezes))
	return res
}

func runFig20(cfg Config) Result {
	nr := video.Run(video.R4K, radio.NR, false, videoDur(cfg), cfg.Seed)
	lte := video.Run(video.R4K, radio.LTE, false, videoDur(cfg), cfg.Seed)
	proc := video.ProcessingLatency()
	network := nr.MeanFrameDelay() - proc - video.PlayoutBuffer
	return Result{
		ID: "F20", Title: "4K video telephony frame delay",
		Lines: []string{
			line("5G frame delay: %v (paper ≈950 ms, vs the 460 ms real-time budget)", nr.MeanFrameDelay().Round(time.Millisecond)),
			line("4G frame delay: %v (congestion at 4K)", lte.MeanFrameDelay().Round(time.Millisecond)),
			line("pipeline: capture/splice/render 440 ms + encode 160 ms + decode 50 ms = %v", proc),
			line("network share ≈%v — processing is ≈%.0f× the transmission time (paper 10×)",
				network.Round(time.Millisecond), float64(proc)/float64(network)),
		},
		Values: map[string]float64{
			"delay5Gms": nr.MeanFrameDelay().Seconds() * 1000,
			"delay4Gms": lte.MeanFrameDelay().Seconds() * 1000,
		},
	}
}
