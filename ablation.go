package fivegsim

import (
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/handoff"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
	"fivegsim/internal/transport"
)

// ablationBufferSizing returns Cubic's 5G utilization gain from doubling
// the wired bottleneck buffer (the paper's §4.2 remedy).
func ablationBufferSizing(cfg Config) float64 {
	d := bulkDur(cfg)
	small := netsim.DefaultPath(radio.NR, true)
	big := small
	big.BottleneckBufferBytes *= 2
	u1 := transport.RunBulk(small, "cubic", d).ThroughputBps
	u2 := transport.RunBulk(big, "cubic", d).ThroughputBps
	if u1 == 0 {
		return 0
	}
	return u2 / u1
}

// ablationSAHandoff returns how many times slower the NSA 5G→5G hand-off
// is than the hypothetical standalone (direct Xn) hand-off.
func ablationSAHandoff(cfg Config) float64 {
	r := rng.New(cfg.Seed).Stream("ablation.sa")
	var sa, nsa time.Duration
	n := 500
	if cfg.Quick {
		n = 100
	}
	for i := 0; i < n; i++ {
		sa += handoff.ExecuteSA(r)
		_, total := handoff.Execute(handoff.FiveToFive, r)
		nsa += total
	}
	return float64(nsa) / float64(sa)
}

// ablationA3Hysteresis runs a short campaign at the ISP's 3 dB gap and at
// an aggressive 1 dB gap and returns the hand-off rate (per minute) at
// 1 dB — the ping-pong cost of removing hysteresis.
func ablationA3Hysteresis(cfg Config) float64 {
	campus := deploy.New(cfg.Seed)
	hcfg := handoff.DefaultConfig()
	hcfg.Duration = 10 * time.Minute
	if cfg.Quick {
		hcfg.Duration = 4 * time.Minute
	}
	hcfg.A3.GapDB = 1
	hcfg.A3.TimeToTrigger = 100 * time.Millisecond
	camp := handoff.RunCampaign(campus, hcfg, cfg.Seed)
	return float64(len(camp.Events)) / hcfg.Duration.Minutes()
}

// A3Sweep compares hand-off behaviour across trigger thresholds: events
// per minute and the fraction of hand-offs that actually improved the
// link by >3 dB.
type A3Sweep struct {
	GapDB      float64
	HOsPerMin  float64
	GoodHOFrac float64
}

// RunA3Sweep is the full hysteresis ablation used by the fgbench
// extension experiments.
func RunA3Sweep(cfg Config, gaps []float64) []A3Sweep {
	campus := deploy.New(cfg.Seed)
	var out []A3Sweep
	for _, gap := range gaps {
		hcfg := handoff.DefaultConfig()
		hcfg.Duration = 10 * time.Minute
		if cfg.Quick {
			hcfg.Duration = 4 * time.Minute
		}
		hcfg.A3.GapDB = gap
		camp := handoff.RunCampaign(campus, hcfg, cfg.Seed)
		good := 0
		for _, e := range camp.Events {
			if e.Gain() > 3 {
				good++
			}
		}
		frac := 0.0
		if len(camp.Events) > 0 {
			frac = float64(good) / float64(len(camp.Events))
		}
		out = append(out, A3Sweep{
			GapDB:      gap,
			HOsPerMin:  float64(len(camp.Events)) / hcfg.Duration.Minutes(),
			GoodHOFrac: frac,
		})
	}
	return out
}
