module fivegsim

go 1.22
