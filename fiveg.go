// Package fivegsim reproduces "Understanding Operational 5G: A First
// Measurement Study on Its Coverage, Performance and Energy Consumption"
// (SIGCOMM 2020) as a calibrated simulation study.
//
// The package exposes the paper's measurement campaign as a registry of
// experiments, one per table and figure of the evaluation. Each experiment
// drives the substrates in internal/ (radio, deployment, packet-level
// network simulation, real congestion-control implementations, application
// models and the RRC/DRX energy machine) and renders the same rows and
// series the paper reports:
//
//	res, err := fivegsim.Run("F7", fivegsim.DefaultConfig())
//	fmt.Println(res.Report())
//
// Use Experiments to enumerate everything, or the cmd/fgbench binary to
// regenerate the full set.
package fivegsim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fivegsim/internal/netsim"
	"fivegsim/internal/obs"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
)

// Config parametrizes an experiment run.
type Config struct {
	// Seed keys all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Quick trades statistical depth for speed (shorter flows, fewer
	// samples) while preserving every qualitative result. Benchmarks and
	// CI use Quick; the full campaign uses !Quick.
	Quick bool
	// Workers bounds the campaign engine's concurrency: RunAll dispatches
	// experiments — and the parallelized inner loops (survey shards,
	// campaign walks, probe sweeps, hand-off reps) shard their work —
	// across this many goroutines. 0 means GOMAXPROCS, 1 (the zero-config
	// default) is the serial path. Results are bit-identical for every
	// value: work is sharded deterministically and merged in index order
	// (see internal/par and DESIGN.md's determinism contract).
	Workers int

	// Obs, when non-nil, collects simulator telemetry for the run:
	// `des.*` scheduler counters, `netsim.*` per-hop packet/byte
	// counters and occupancy histograms, `cc.*` congestion-control
	// events and `energy.*` state residencies. Nil (the default) keeps
	// the simulator on its no-op fast path.
	Obs *obs.Registry
	// Trace, when non-nil, records timestamped span/instant events
	// (packet drops, outages, profiled callbacks) into a bounded ring
	// exportable as a Chrome trace (chrome://tracing / Perfetto).
	Trace *obs.Tracer
	// Profile opts into per-event wall-clock measurement on every
	// scheduler (the `des.callback_wall_us` histogram). It costs two
	// wall-clock reads per event; leave off for benchmarks.
	Profile bool
}

// obsPath returns the calibrated path config for a technology/time of
// day with this run's telemetry options attached.
func (cfg Config) obsPath(tech radio.Tech, daytime bool) netsim.PathConfig {
	p := netsim.DefaultPath(tech, daytime)
	p.Obs = cfg.Obs
	p.Trace = cfg.Trace
	p.Profile = cfg.Profile
	return p
}

// shardObs returns a copy of cfg whose Obs — when telemetry is on — is
// a fresh per-shard registry, plus that registry so the caller can fold
// it back into cfg.Obs (Registry.Merge) in shard order once the shard
// finishes. With telemetry off both returns are the no-op nils.
func (cfg Config) shardObs() (Config, *obs.Registry) {
	if cfg.Obs == nil {
		return cfg, nil
	}
	c := cfg
	c.Obs = obs.NewRegistry()
	return c, c.Obs
}

// DefaultConfig returns the full-fidelity configuration with the
// canonical seed.
func DefaultConfig() Config { return Config{Seed: 42} }

// QuickConfig returns the reduced-duration configuration.
func QuickConfig() Config { return Config{Seed: 42, Quick: true} }

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	// Lines is the formatted table/series, one row per line, with the
	// paper's reference values alongside the measured ones.
	Lines []string
	// Values holds the headline metrics by name for programmatic checks.
	Values map[string]float64
	// Manifest records the run's provenance: seed, config, version,
	// wall/sim time, events executed and — when Config.Obs was set — the
	// full metric snapshot.
	Manifest obs.RunManifest
}

// Report renders the result as text.
func (r Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) Result
}

var registry []Experiment

func register(id, title string, run func(cfg Config) Result) {
	// Every registered run is wrapped so its Result carries a
	// RunManifest, regardless of which entry point invoked it.
	wrapped := func(cfg Config) Result {
		started := time.Now()
		res := run(cfg)
		res.Manifest = obs.NewManifest(id, title, cfg.Seed, cfg.Quick, started, time.Since(started), cfg.Obs)
		return res
	}
	registry = append(registry, Experiment{ID: id, Title: title, Run: wrapped})
}

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts T1..T4, then F2..F23, then the X extensions. Malformed
// IDs (empty or single-character) sort after everything well-formed.
func orderKey(id string) int {
	if len(id) < 2 {
		return 1 << 30
	}
	var n int
	fmt.Sscanf(id[1:], "%d", &n)
	switch id[0] {
	case 'T':
		return n
	case 'F':
		return 100 + n
	default:
		return 200 + n
	}
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Result, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(cfg), nil
		}
	}
	return Result{}, fmt.Errorf("fivegsim: unknown experiment %q", id)
}

// RunAll executes every experiment and returns the results in paper
// order. With cfg.Workers ≠ 1 the experiments are dispatched across a
// worker pool; the returned slice, each Result's Lines and Values, and
// the merged cfg.Obs instrument totals are identical for every worker
// count.
func RunAll(cfg Config) []Result {
	res, _ := RunExperiments(cfg) // no ids ⇒ cannot fail
	return res
}

// RunExperiments executes the named experiments — all of them when ids
// is empty — across up to cfg.Workers goroutines and returns the results
// in paper order regardless of scheduling. When cfg.Obs is set, each
// experiment runs against its own sub-registry (so its Manifest snapshot
// covers that run alone) and the sub-registries are merged into cfg.Obs
// in paper order. An unknown id is an error.
func RunExperiments(cfg Config, ids ...string) ([]Result, error) {
	exps := Experiments()
	if len(ids) > 0 {
		byID := make(map[string]Experiment, len(exps))
		for _, e := range exps {
			byID[e.ID] = e
		}
		picked := make([]Experiment, 0, len(ids))
		for _, id := range ids {
			e, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("fivegsim: unknown experiment %q", id)
			}
			picked = append(picked, e)
		}
		sort.SliceStable(picked, func(i, j int) bool { return orderKey(picked[i].ID) < orderKey(picked[j].ID) })
		exps = picked
	}
	type runOut struct {
		res Result
		reg *obs.Registry
	}
	outs := par.Map(cfg.Workers, len(exps), func(i int) runOut {
		c := cfg
		if cfg.Obs != nil {
			c.Obs = obs.NewRegistry()
		}
		return runOut{res: exps[i].Run(c), reg: c.Obs}
	})
	results := make([]Result, len(outs))
	for i, o := range outs {
		results[i] = o.res
		if o.reg != cfg.Obs {
			cfg.Obs.Merge(o.reg)
		}
	}
	return results, nil
}

// line is a small fmt.Sprintf helper used by the experiment files.
func line(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
