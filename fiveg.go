// Package fivegsim reproduces "Understanding Operational 5G: A First
// Measurement Study on Its Coverage, Performance and Energy Consumption"
// (SIGCOMM 2020) as a calibrated simulation study.
//
// The package exposes the paper's measurement campaign as a registry of
// experiments, one per table and figure of the evaluation. Each experiment
// drives the substrates in internal/ (radio, deployment, packet-level
// network simulation, real congestion-control implementations, application
// models and the RRC/DRX energy machine) and renders the same rows and
// series the paper reports:
//
//	res, err := fivegsim.Run("F7", fivegsim.DefaultConfig())
//	fmt.Println(res.Report())
//
// Use Experiments to enumerate everything, or the cmd/fgbench binary to
// regenerate the full set.
package fivegsim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fivegsim/internal/netsim"
	"fivegsim/internal/obs"
	"fivegsim/internal/radio"
)

// Config parametrizes an experiment run.
type Config struct {
	// Seed keys all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Quick trades statistical depth for speed (shorter flows, fewer
	// samples) while preserving every qualitative result. Benchmarks and
	// CI use Quick; the full campaign uses !Quick.
	Quick bool

	// Obs, when non-nil, collects simulator telemetry for the run:
	// `des.*` scheduler counters, `netsim.*` per-hop packet/byte
	// counters and occupancy histograms, `cc.*` congestion-control
	// events and `energy.*` state residencies. Nil (the default) keeps
	// the simulator on its no-op fast path.
	Obs *obs.Registry
	// Trace, when non-nil, records timestamped span/instant events
	// (packet drops, outages, profiled callbacks) into a bounded ring
	// exportable as a Chrome trace (chrome://tracing / Perfetto).
	Trace *obs.Tracer
	// Profile opts into per-event wall-clock measurement on every
	// scheduler (the `des.callback_wall_us` histogram). It costs two
	// wall-clock reads per event; leave off for benchmarks.
	Profile bool
}

// obsPath returns the calibrated path config for a technology/time of
// day with this run's telemetry options attached.
func (cfg Config) obsPath(tech radio.Tech, daytime bool) netsim.PathConfig {
	p := netsim.DefaultPath(tech, daytime)
	p.Obs = cfg.Obs
	p.Trace = cfg.Trace
	p.Profile = cfg.Profile
	return p
}

// DefaultConfig returns the full-fidelity configuration with the
// canonical seed.
func DefaultConfig() Config { return Config{Seed: 42} }

// QuickConfig returns the reduced-duration configuration.
func QuickConfig() Config { return Config{Seed: 42, Quick: true} }

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	// Lines is the formatted table/series, one row per line, with the
	// paper's reference values alongside the measured ones.
	Lines []string
	// Values holds the headline metrics by name for programmatic checks.
	Values map[string]float64
	// Manifest records the run's provenance: seed, config, version,
	// wall/sim time, events executed and — when Config.Obs was set — the
	// full metric snapshot.
	Manifest obs.RunManifest
}

// Report renders the result as text.
func (r Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) Result
}

var registry []Experiment

func register(id, title string, run func(cfg Config) Result) {
	// Every registered run is wrapped so its Result carries a
	// RunManifest, regardless of which entry point invoked it.
	wrapped := func(cfg Config) Result {
		started := time.Now()
		res := run(cfg)
		res.Manifest = obs.NewManifest(id, title, cfg.Seed, cfg.Quick, started, time.Since(started), cfg.Obs)
		return res
	}
	registry = append(registry, Experiment{ID: id, Title: title, Run: wrapped})
}

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts T1..T4, then F2..F23, then the X extensions. Malformed
// IDs (empty or single-character) sort after everything well-formed.
func orderKey(id string) int {
	if len(id) < 2 {
		return 1 << 30
	}
	var n int
	fmt.Sscanf(id[1:], "%d", &n)
	switch id[0] {
	case 'T':
		return n
	case 'F':
		return 100 + n
	default:
		return 200 + n
	}
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Result, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(cfg), nil
		}
	}
	return Result{}, fmt.Errorf("fivegsim: unknown experiment %q", id)
}

// RunAll executes every experiment and returns the results in paper order.
func RunAll(cfg Config) []Result {
	exps := Experiments()
	out := make([]Result, 0, len(exps))
	for _, e := range exps {
		out = append(out, e.Run(cfg))
	}
	return out
}

// line is a small fmt.Sprintf helper used by the experiment files.
func line(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
