// Package fivegsim reproduces "Understanding Operational 5G: A First
// Measurement Study on Its Coverage, Performance and Energy Consumption"
// (SIGCOMM 2020) as a calibrated simulation study.
//
// The package exposes the paper's measurement campaign as a registry of
// experiments, one per table and figure of the evaluation. Each experiment
// drives the substrates in internal/ (radio, deployment, packet-level
// network simulation, real congestion-control implementations, application
// models and the RRC/DRX energy machine) and renders the same rows and
// series the paper reports:
//
//	res, err := fivegsim.Run("F7", fivegsim.DefaultConfig())
//	fmt.Println(res.Report())
//
// Use Experiments to enumerate everything, or the cmd/fgbench binary to
// regenerate the full set.
package fivegsim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"fivegsim/internal/fault"
	"fivegsim/internal/netsim"
	"fivegsim/internal/obs"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
)

// Config parametrizes an experiment run.
type Config struct {
	// Seed keys all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Quick trades statistical depth for speed (shorter flows, fewer
	// samples) while preserving every qualitative result. Benchmarks and
	// CI use Quick; the full campaign uses !Quick.
	Quick bool
	// Workers bounds the campaign engine's concurrency: RunAll dispatches
	// experiments — and the parallelized inner loops (survey shards,
	// campaign walks, probe sweeps, hand-off reps) shard their work —
	// across this many goroutines. 0 means GOMAXPROCS, 1 (the zero-config
	// default) is the serial path. Results are bit-identical for every
	// value: work is sharded deterministically and merged in index order
	// (see internal/par and DESIGN.md's determinism contract).
	Workers int

	// Obs, when non-nil, collects simulator telemetry for the run:
	// `des.*` scheduler counters, `netsim.*` per-hop packet/byte
	// counters and occupancy histograms, `cc.*` congestion-control
	// events and `energy.*` state residencies. Nil (the default) keeps
	// the simulator on its no-op fast path.
	Obs *obs.Registry
	// Trace, when non-nil, records timestamped span/instant events
	// (packet drops, outages, profiled callbacks) into a bounded ring
	// exportable as a Chrome trace (chrome://tracing / Perfetto).
	Trace *obs.Tracer
	// Profile opts into per-event wall-clock measurement on every
	// scheduler (the `des.callback_wall_us` histogram). It costs two
	// wall-clock reads per event; leave off for benchmarks.
	Profile bool

	// Faults, when non-nil, arms the deterministic fault-injection plan
	// on every end-to-end path an experiment builds (and, for the
	// campaign-walk experiments, carves the plan's failed cells out of
	// the coverage map). Use a fault.Scenario preset or build a plan by
	// hand; (Seed, Plan) determines every injected event, so reports
	// stay bit-identical for any Workers value. Nil (the default) is
	// the exact pre-fault fast path, like Obs.
	Faults *fault.Plan

	// Population overrides the UE population size of the
	// population-scale experiments (X12–X14): the number of UEs placed
	// on the campus, or for the sweep experiments the largest sweep
	// point. 0 (the default) keeps each experiment's built-in
	// Quick/full sizing. The probe experiments (T/F series) always run
	// one UE regardless — they are the paper's methodology.
	Population int

	// OnResult, when non-nil, is invoked once per completed experiment,
	// in paper order, as results become available — progressive output
	// for long campaigns. Calls are serialized (never concurrent) but
	// may run on engine worker goroutines; keep the callback cheap. The
	// final result slice is returned as usual.
	OnResult func(Result)

	// OnProgress, when non-nil, receives the structured progress stream
	// of the campaign: an obs.ProgressExperimentStart event as each
	// experiment is claimed, an obs.ProgressExperimentFinish event (with
	// completed count and completed-work ETA) as each returns, and
	// obs.ProgressTick events from experiments that expose inner
	// granularity (the population runs report scheduling ticks). Unlike
	// OnResult, events arrive in completion order — that is the point of
	// live progress — but calls are always serialized; keep the callback
	// cheap. Feed the stream to an obs.ProgressTracker to serve it as
	// the /progress endpoint (obs.Serve, cmd/fgobs serve).
	OnProgress func(obs.ProgressEvent)
}

// obsPath returns the calibrated path config for a technology/time of
// day with this run's telemetry options attached.
func (cfg Config) obsPath(tech radio.Tech, daytime bool) netsim.PathConfig {
	p := netsim.DefaultPath(tech, daytime)
	p.Obs = cfg.Obs
	p.Trace = cfg.Trace
	p.Profile = cfg.Profile
	if cfg.Faults != nil {
		p.Inject = fault.Hook(cfg.Faults)
	}
	return p
}

// shardObs returns a copy of cfg whose Obs — when telemetry is on — is
// a fresh per-shard registry, plus that registry so the caller can fold
// it back into cfg.Obs (Registry.Merge) in shard order once the shard
// finishes. With telemetry off both returns are the no-op nils.
func (cfg Config) shardObs() (Config, *obs.Registry) {
	if cfg.Obs == nil {
		return cfg, nil
	}
	c := cfg
	c.Obs = obs.NewRegistry()
	return c, c.Obs
}

// DefaultConfig returns the full-fidelity configuration with the
// canonical seed.
func DefaultConfig() Config { return Config{Seed: 42} }

// QuickConfig returns the reduced-duration configuration.
func QuickConfig() Config { return Config{Seed: 42, Quick: true} }

// Validate checks the config at the API boundary and returns a typed
// *InvalidConfigError — matchable with errors.Is(err, ErrInvalidConfig)
// — on the first problem found: a negative worker count, a negative
// population override, or a fault plan that fails fault.Plan.Validate
// (the underlying fault.ErrInvalidPlan stays on the error chain). Every
// Run* entry point calls Validate, and so does the fgserve admission
// path, so a bad spec fails fast with the same error shape everywhere.
func (cfg Config) Validate() error {
	if cfg.Workers < 0 {
		return &InvalidConfigError{Field: "Workers",
			Reason: fmt.Sprintf("negative worker count %d (0 = all cores, 1 = serial)", cfg.Workers)}
	}
	if cfg.Population < 0 {
		return &InvalidConfigError{Field: "Population",
			Reason: fmt.Sprintf("negative population override %d", cfg.Population)}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return &InvalidConfigError{Field: "Faults", Reason: "invalid fault plan", Cause: err}
		}
	}
	return nil
}

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	// Lines is the formatted table/series, one row per line, with the
	// paper's reference values alongside the measured ones.
	Lines []string
	// Values holds the headline metrics by name for programmatic checks.
	Values map[string]float64
	// Manifest records the run's provenance: seed, config, version,
	// wall/sim time, events executed and — when Config.Obs was set — the
	// full metric snapshot.
	Manifest obs.RunManifest
	// Err is non-nil when the experiment crashed instead of completing
	// (an *ExperimentPanicError); the campaign carries on and reports
	// the crash here rather than dying. Lines and Values are empty for
	// an errored result.
	Err error
}

// Report renders the result as text.
func (r Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Err != nil {
		fmt.Fprintf(&b, "  FAILED: %v\n", r.Err)
	}
	for _, l := range r.Lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}

// Typed errors of the public API, matchable with errors.Is/As.
var (
	// ErrUnknownExperiment is wrapped by every unknown-id failure of
	// Run/RunExperiments; errors.As against *UnknownExperimentError
	// recovers the offending id.
	ErrUnknownExperiment = errors.New("fivegsim: unknown experiment")
	// ErrExperimentPanic is wrapped by Result.Err when a registered Run
	// panicked; errors.As against *ExperimentPanicError recovers the
	// panic value and stack.
	ErrExperimentPanic = errors.New("fivegsim: experiment panicked")
	// ErrInvalidConfig is wrapped by every Config.Validate failure;
	// errors.As against *InvalidConfigError recovers the offending
	// field.
	ErrInvalidConfig = errors.New("fivegsim: invalid config")
)

// InvalidConfigError reports a Config field that fails validation.
// Cause, when non-nil, is the underlying error (a fault-plan failure
// keeps fault.ErrInvalidPlan matchable through the chain).
type InvalidConfigError struct {
	Field  string
	Reason string
	Cause  error
}

func (e *InvalidConfigError) Error() string {
	s := fmt.Sprintf("fivegsim: invalid config: %s: %s", e.Field, e.Reason)
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

// Is matches ErrInvalidConfig.
func (e *InvalidConfigError) Is(target error) bool { return target == ErrInvalidConfig }

// Unwrap exposes the underlying cause (nil for field-only failures).
func (e *InvalidConfigError) Unwrap() error { return e.Cause }

// UnknownExperimentError reports a request for an id the registry does
// not hold.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return fmt.Sprintf("fivegsim: unknown experiment %q", e.ID)
}

// Is matches ErrUnknownExperiment.
func (e *UnknownExperimentError) Is(target error) bool { return target == ErrUnknownExperiment }

// ExperimentPanicError is the recovered crash of one experiment,
// converted into an error result so one bad run cannot kill a whole
// campaign.
type ExperimentPanicError struct {
	ID    string
	Value interface{} // the recovered panic value
	Stack []byte      // the crashing goroutine's stack
}

func (e *ExperimentPanicError) Error() string {
	return fmt.Sprintf("fivegsim: experiment %s panicked: %v", e.ID, e.Value)
}

// Is matches ErrExperimentPanic.
func (e *ExperimentPanicError) Is(target error) bool { return target == ErrExperimentPanic }

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) Result
}

var registry []Experiment

func register(id, title string, run func(cfg Config) Result) {
	// Every registered run is wrapped so its Result carries a
	// RunManifest regardless of which entry point invoked it, and so a
	// panicking experiment yields an error result (Result.Err) instead
	// of tearing down the campaign.
	wrapped := func(cfg Config) (res Result) {
		started := time.Now()
		defer func() {
			if r := recover(); r != nil {
				res = Result{ID: id, Title: title,
					Err: &ExperimentPanicError{ID: id, Value: r, Stack: debug.Stack()}}
			}
			res.Manifest = obs.NewManifest(id, title, cfg.Seed, cfg.Quick, started, time.Since(started), cfg.Obs)
		}()
		return run(cfg)
	}
	registry = append(registry, Experiment{ID: id, Title: title, Run: wrapped})
}

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts T1..T4, then F2..F23, then the X extensions. Malformed
// IDs (empty or single-character) sort after everything well-formed.
func orderKey(id string) int {
	if len(id) < 2 {
		return 1 << 30
	}
	var n int
	fmt.Sscanf(id[1:], "%d", &n)
	switch id[0] {
	case 'T':
		return n
	case 'F':
		return 100 + n
	default:
		return 200 + n
	}
}

// ValidateExperiments checks every id against the registry and returns
// a typed *UnknownExperimentError — matchable with errors.Is(err,
// ErrUnknownExperiment) — for the first id the registry does not hold.
// It is the same admission check every Run* entry point performs;
// services (cmd/fgserve) call it at the boundary so a bad spec fails
// before it is queued.
func ValidateExperiments(ids ...string) error {
	known := make(map[string]bool, len(registry))
	for _, e := range registry {
		known[e.ID] = true
	}
	for _, id := range ids {
		if !known[id] {
			return &UnknownExperimentError{ID: id}
		}
	}
	return nil
}

// Run executes the experiment with the given ID. It is a convenience
// wrapper over RunContext with a background context — new callers
// should prefer the context-first form, which adds cancellation; this
// wrapper exists for callers with nothing to cancel.
func Run(id string, cfg Config) (Result, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext is the canonical single-experiment entry point: a context
// canceled before the experiment starts returns ctx.Err() (wrapped, so
// errors.Is matches); an experiment already running is not interrupted.
// An unknown id is an *UnknownExperimentError; a config that fails
// Config.Validate is an *InvalidConfigError.
func RunContext(ctx context.Context, id string, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("fivegsim: run canceled: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	for _, e := range registry {
		if e.ID == id {
			return e.Run(cfg), nil
		}
	}
	return Result{}, &UnknownExperimentError{ID: id}
}

// RunAll executes every experiment and returns the results in paper
// order. It is a convenience wrapper over RunExperimentsContext with a
// background context and no id filter; a config that fails
// Config.Validate yields nil. New callers should prefer
// RunExperimentsContext, the canonical implementation, which adds
// cancellation and surfaces validation errors. With cfg.Workers ≠ 1 the
// experiments are dispatched across a worker pool; the returned slice,
// each Result's Lines and Values, and the merged cfg.Obs instrument
// totals are identical for every worker count.
func RunAll(cfg Config) []Result {
	res, _ := RunExperiments(cfg) // no ids, background context ⇒ only Validate can fail
	return res
}

// RunExperiments executes the named experiments — all of them when ids
// is empty — and returns the results in paper order. It is a
// convenience wrapper over RunExperimentsContext with a background
// context; new callers should prefer the context-first form, which adds
// cancellation.
func RunExperiments(cfg Config, ids ...string) ([]Result, error) {
	return RunExperimentsContext(context.Background(), cfg, ids...)
}

// RunExperimentsContext is the canonical campaign entry point: it
// executes the named experiments — all of them when ids is empty —
// across up to cfg.Workers goroutines and returns the results in paper
// order regardless of scheduling. A config that fails Config.Validate
// returns a typed *InvalidConfigError before anything runs.
//
// When cfg.Obs is set, each experiment runs against its own
// sub-registry (so its Manifest snapshot covers that run alone) and the
// sub-registries are merged into cfg.Obs in paper order as the
// paper-order frontier advances — cfg.Obs is live during the campaign
// (serve it with obs.Serve), not only after it. When cfg.OnResult is
// set it is invoked once per result, in paper order, as experiments
// complete; cfg.OnProgress receives the completion-order progress
// stream. An unknown id is an *UnknownExperimentError.
//
// Cancellation is checked between experiments (the internal/par shard
// boundary): after ctx is canceled no new experiment starts, in-flight
// experiments finish, and the call returns a wrapped ctx.Err() — match
// it with errors.Is(err, context.Canceled) — discarding the partial
// results (results already streamed through OnResult, and their metrics
// already merged into cfg.Obs, stand).
func RunExperimentsContext(ctx context.Context, cfg Config, ids ...string) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	exps := Experiments()
	if len(ids) > 0 {
		byID := make(map[string]Experiment, len(exps))
		for _, e := range exps {
			byID[e.ID] = e
		}
		picked := make([]Experiment, 0, len(ids))
		for _, id := range ids {
			e, ok := byID[id]
			if !ok {
				return nil, &UnknownExperimentError{ID: id}
			}
			picked = append(picked, e)
		}
		sort.SliceStable(picked, func(i, j int) bool { return orderKey(picked[i].ID) < orderKey(picked[j].ID) })
		exps = picked
	}
	type runOut struct {
		res Result
		reg *obs.Registry
	}
	outs := make([]runOut, len(exps))
	// Streaming state: emit completed results — and merge their
	// sub-registries into cfg.Obs — from the paper-order frontier, so
	// OnResult sees results in order no matter which worker finishes
	// first and a live /metrics endpoint watching cfg.Obs fills in as
	// the campaign runs instead of only at the end. Frontier merging in
	// paper order produces the same final totals as the end-of-campaign
	// merge it replaces.
	var emitMu sync.Mutex
	emitted := make([]bool, len(exps))
	emitNext := 0
	// Progress state: completion counter and campaign clock for the
	// ETA; progMu serializes every OnProgress call (tick events from
	// inside experiments included).
	var progMu sync.Mutex
	progDone := 0
	progStart := time.Now()
	emitProgress := func(ev obs.ProgressEvent) {
		progMu.Lock()
		cfg.OnProgress(ev)
		progMu.Unlock()
	}
	err := par.DoCtx(ctx, cfg.Workers, par.ShardSize(len(exps), 1), func(r par.Range) {
		i := r.Lo
		c := cfg
		if cfg.Obs != nil {
			c.Obs = obs.NewRegistry()
		}
		if cfg.OnProgress != nil {
			// Experiments see the serialized emitter, so their inner
			// tick events interleave safely with the engine's own.
			c.OnProgress = emitProgress
			progMu.Lock()
			done := progDone
			progMu.Unlock()
			emitProgress(obs.ProgressEvent{
				Kind: obs.ProgressExperimentStart, Experiment: exps[i].ID,
				Completed: done, Total: len(exps), Elapsed: time.Since(progStart),
			})
		}
		outs[i] = runOut{res: exps[i].Run(c), reg: c.Obs}
		if cfg.OnProgress != nil {
			progMu.Lock()
			progDone++
			done := progDone
			elapsed := time.Since(progStart)
			cfg.OnProgress(obs.ProgressEvent{
				Kind: obs.ProgressExperimentFinish, Experiment: exps[i].ID,
				Completed: done, Total: len(exps), Failed: outs[i].res.Err != nil,
				Elapsed: elapsed, ETA: obs.EstimateETA(elapsed, done, len(exps)),
			})
			progMu.Unlock()
		}
		emitMu.Lock()
		emitted[i] = true
		for emitNext < len(exps) && emitted[emitNext] {
			if o := outs[emitNext]; o.reg != nil && o.reg != cfg.Obs {
				cfg.Obs.Merge(o.reg)
			}
			if cfg.OnResult != nil {
				cfg.OnResult(outs[emitNext].res)
			}
			emitNext++
		}
		emitMu.Unlock()
	})
	if err != nil {
		return nil, fmt.Errorf("fivegsim: campaign canceled: %w", err)
	}
	results := make([]Result, len(outs))
	for i, o := range outs {
		results[i] = o.res
	}
	return results, nil
}

// line is a small fmt.Sprintf helper used by the experiment files.
func line(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
