GO ?= go

.PHONY: build test race faults pop pop-dynamics serve serve-test bench bench-smoke ci

build:
	$(GO) build ./...

# Tier-1 verification: what every PR must keep green.
test:
	$(GO) build ./... && $(GO) test ./...

# Race pass over the parallel campaign engine: -short trims the long
# statistical sweeps to one seed but always runs the Workers=8 paths
# (TestRunAllParallelRace and the worker-equivalence tests).
race:
	$(GO) test -race -short ./...

# The unabridged suite under the race detector (slow; not part of ci).
race-full:
	$(GO) test -race ./...

# Fault-injection suite under the race detector: plan validation,
# scenario presets, (Seed, Plan) determinism and the context-aware
# engine paths.
faults:
	$(GO) test -race -short -run 'Fault|Injection|Plan|Scenario|Ctx|Cancellation' ./internal/fault/ ./internal/par/ .

# Population-layer suite under the race detector: PRB-scheduler property
# tests, Workers-equivalence determinism, the N=1 probe regression and
# the zero-alloc tick guards.
pop:
	$(GO) test -race -short ./internal/pop/ ./internal/traffic/ ./internal/deploy/

# Population-dynamics property suite under the race detector: churn
# conservation, A3 TTT/hysteresis invariants, ping-pong detection,
# load-coupling boundedness and cancellation safety (ci.sh runs the
# same selection).
pop-dynamics:
	$(GO) test -race -short -run 'Churn|A3|PingPong|LoadCoupling|Dynamics|AttachSkip|ProbeContract|EstimateETA' \
		./internal/pop/ ./internal/handoff/ ./internal/obs/

# Launch the fgserve campaign service on the default address
# (127.0.0.1:9237). POST specs to /campaigns; ctrl-c drains.
serve:
	$(GO) run ./cmd/fgserve

# Campaign-service suite under the race detector: spec validation,
# paper-order streaming, two-tenant fairness, mid-campaign cancel and
# the HTTP surface end to end.
serve-test:
	$(GO) test -race ./internal/serve/

# Scheduler/telemetry overhead benches plus the per-figure benches, then
# the fgperf harness regenerating the checked-in regression baseline
# (BENCH_10.json; includes the campaign-scale benches, so this is slow).
bench:
	$(GO) test -run xxx -bench=BenchmarkSchedulerObs -benchtime=2s .
	$(GO) test -run xxx -bench=. -benchmem .
	$(GO) run ./cmd/fgperf bench -out BENCH_10.json

# The quick fgperf subset gated against the checked-in baseline — the
# same check CI's bench-smoke step runs.
bench-smoke:
	$(GO) run ./cmd/fgperf bench -quick -compare BENCH_10.json

# Serial vs parallel wall-clock of the full quick campaign.
bench-workers:
	$(GO) test -run xxx -bench=BenchmarkRunAllWorkers -benchtime=1x .

ci:
	./scripts/ci.sh
