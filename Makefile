GO ?= go

.PHONY: build test race bench ci

build:
	$(GO) build ./...

# Tier-1 verification: what every PR must keep green.
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Scheduler/telemetry overhead benches plus the per-figure benches.
bench:
	$(GO) test -run xxx -bench=BenchmarkSchedulerObs -benchtime=2s .
	$(GO) test -run xxx -bench=. -benchmem .

ci:
	./scripts/ci.sh
