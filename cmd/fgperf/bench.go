package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"fivegsim/internal/perf"
)

// benchMain implements `fgperf bench`: run the named hot-path benchmarks,
// optionally write the JSON report, and optionally gate against a prior
// report, exiting nonzero on regression.
//
//	fgperf bench -quick -out BENCH_10.json
//	fgperf bench -quick -compare BENCH_10.json -threshold 0.15
//	fgperf bench -filter '^Survey' -compare BENCH_10.json
func benchMain(args []string) {
	fs := flag.NewFlagSet("fgperf bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "run only the cheap benchmark subset (CI smoke)")
	filter := fs.String("filter", "", "run only benchmarks matching this regexp")
	out := fs.String("out", "", "write the JSON report to this path")
	compare := fs.String("compare", "", "gate against this baseline report")
	threshold := fs.Float64("threshold", 0.15, "ns/op regression gate (fraction over baseline)")
	list := fs.Bool("list", false, "list benchmark names and exit")
	fs.Parse(args)

	var match func(string) bool
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			log.Fatalf("fgperf bench: bad -filter: %v", err)
		}
		match = re.MatchString
	}

	if *list {
		for _, sp := range perf.Specs() {
			tag := ""
			if sp.Quick {
				tag = " (quick)"
			}
			fmt.Printf("%s%s\n", sp.Name, tag)
		}
		return
	}

	results := perf.Run(*quick, match, func(name string) {
		fmt.Fprintf(os.Stderr, "bench %s...\n", name)
	})
	report := perf.Report{Schema: 1, Host: perf.CurrentHost(), Benchmarks: results}
	for _, r := range results {
		fmt.Printf("%-18s %12d ns/op %10d allocs/op %12d B/op  (n=%d)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.N)
	}

	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			log.Fatalf("fgperf bench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *compare != "" {
		baseline, err := perf.ReadReport(*compare)
		if err != nil {
			log.Fatalf("fgperf bench: %v", err)
		}
		c := perf.Compare(baseline, report, *threshold)
		for _, w := range c.Warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		if len(c.Failures) > 0 {
			for _, f := range c.Failures {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", *compare)
	}
}
