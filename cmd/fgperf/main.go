// Command fgperf is the iperf3-equivalent load generator for the
// simulated paths: UDP baselines, rate sweeps, and TCP bulk flows under
// any of the five congestion-control algorithms.
//
//	fgperf -tech 5g -cc bbr -t 20s
//	fgperf -tech 4g -udp -rate 100M -t 10s
//	fgperf -tech 5g -udp -baseline
//
// The bench subcommand runs the hot-path benchmark harness instead (see
// internal/perf): named benchmarks, a JSON report, and a regression gate
// against a checked-in baseline.
//
//	fgperf bench -quick -compare BENCH_8.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fivegsim/internal/cc"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/transport"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		benchMain(os.Args[2:])
		return
	}
	techFlag := flag.String("tech", "5g", "radio technology: 4g or 5g")
	ccName := flag.String("cc", "bbr", "congestion control: "+strings.Join(cc.Names(), ", "))
	udp := flag.Bool("udp", false, "run UDP instead of TCP")
	baseline := flag.Bool("baseline", false, "with -udp: measure the peak deliverable rate")
	rate := flag.String("rate", "500M", "with -udp: offered rate, e.g. 250M or 1G")
	duration := flag.Duration("t", 15*time.Second, "run duration")
	night := flag.Bool("night", false, "late-night load profile")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	tech := radio.NR
	if strings.EqualFold(*techFlag, "4g") || strings.EqualFold(*techFlag, "lte") {
		tech = radio.LTE
	}
	cfg := netsim.DefaultPath(tech, !*night)
	cfg.Seed = *seed

	switch {
	case *udp && *baseline:
		r := netsim.UDPBaseline(cfg, *duration)
		fmt.Printf("%v UDP baseline: %.1f Mb/s (loss %.2f%%, offered %.1f Mb/s)\n",
			tech, r.DeliveredBps/1e6, 100*r.LossRate, r.OfferedBps/1e6)
	case *udp:
		bps, err := parseRate(*rate)
		if err != nil {
			log.Fatalf("fgperf: %v", err)
		}
		r := netsim.RunUDP(cfg, bps, *duration, false)
		fmt.Printf("%v UDP at %.1f Mb/s for %v: delivered %.1f Mb/s, loss %.2f%%\n",
			tech, bps/1e6, *duration, r.DeliveredBps/1e6, 100*r.LossRate)
	default:
		if cc.New(*ccName) == nil {
			log.Fatalf("fgperf: unknown congestion control %q (have %s)", *ccName, strings.Join(cc.Names(), ", "))
		}
		r := transport.RunBulk(cfg, *ccName, *duration)
		fmt.Printf("%v TCP/%s for %v:\n", tech, *ccName, *duration)
		fmt.Printf("  throughput:      %.1f Mb/s (%.1f%% of the radio goodput)\n",
			r.ThroughputBps/1e6, 100*r.ThroughputBps/cfg.RANRateBps)
		fmt.Printf("  retransmissions: %d (loss events %d, RTOs %d)\n", r.Retransmits, r.LossEvents, r.RTOs)
		fmt.Printf("  smoothed RTT:    %v\n", r.MeanRTT.Round(time.Millisecond))
	}
}

// parseRate parses "880M", "1.2G", "5000000".
func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}
