// Command fgserve runs the fivegsim campaign service: a long-running
// HTTP/JSON endpoint that accepts versioned campaign specs, runs them
// on a bounded job queue where concurrent campaigns share the worker
// pool fairly, and streams per-result progress.
//
// Usage:
//
//	fgserve                          # serve on 127.0.0.1:9237
//	fgserve -addr 127.0.0.1:0        # pick a free port
//	fgserve -pool 4 -max 16          # 4 unit workers, 16 admitted campaigns
//	fgserve -pprof                   # mount /debug/pprof/
//
// Submit a campaign and watch it:
//
//	curl -X POST localhost:9237/campaigns -d '{
//	  "schema": "fgserve.spec/v1",
//	  "experiments": ["T1", "F7"], "seeds": [42], "quick": true}'
//	curl localhost:9237/campaigns/c0001/stream      # NDJSON result stream
//	curl localhost:9237/campaigns/c0001             # status + ETA
//	curl localhost:9237/campaigns/c0001/report      # paper-order text report
//	curl localhost:9237/campaigns/c0001/manifest    # run-manifest artifact
//	curl -X DELETE localhost:9237/campaigns/c0001   # cancel
//	curl localhost:9237/metrics                     # live Prometheus scrape
//
// SIGINT/SIGTERM drains gracefully: admission closes, campaigns are
// canceled, in-flight experiments finish (bounded by serve.DrainGrace)
// and the process exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fivegsim/internal/obs"
	"fivegsim/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9237", "listen address (port 0 picks a free port)")
	pool := flag.Int("pool", 0, "worker-pool size shared by all campaigns (0 = all cores)")
	maxActive := flag.Int("max", 0, "max campaigns queued or running at once (0 = default 8)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	trace := flag.Bool("trace", false, "record a Chrome trace ring served at /trace")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer(0)
	}
	svc := serve.New(serve.Options{
		PoolWorkers: *pool, MaxActive: *maxActive, Tracer: tracer, Pprof: *pprofOn,
	})
	srv, err := svc.Start(ctx, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgserve:", err)
		os.Exit(1)
	}
	fmt.Printf("fgserve: serving campaigns on http://%s (POST /campaigns; GET /campaigns/{id}[/stream|/report|/manifest]; /metrics)\n", srv.Addr)
	if err := srv.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "fgserve:", err)
		os.Exit(1)
	}
	fmt.Println("fgserve: drained clean")
}
