package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fivegsim/internal/obs"
	"fivegsim/internal/serve"
)

// cmdServe runs a campaign behind a live telemetry endpoint. It
// delegates to internal/serve — the same service cmd/fgserve runs — by
// submitting one campaign built from the flags and streaming its
// events to stdout, so the endpoint exposes the full campaign API
// (/campaigns, NDJSON streams, manifests) alongside /metrics,
// /metrics.json, /progress and /trace. After the campaign the server
// keeps answering scrapes until SIGINT/SIGTERM — context cancellation
// is the one shutdown path — unless -exit asked for an immediate clean
// exit.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9137", "listen address (port 0 picks a free port)")
	quick := fs.Bool("quick", false, "reduced-duration runs")
	seed := fs.Int64("seed", 42, "experiment seed")
	workers := fs.Int("workers", 1, "campaign worker pool: 0 = all cores, 1 = serial")
	run := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	exit := fs.Bool("exit", false, "exit when the campaign finishes instead of serving until interrupted")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	svc := serve.New(serve.Options{
		PoolWorkers: *workers, Registry: reg, Tracer: tracer, Pprof: *pprofOn,
	})
	srv, err := svc.Start(ctx, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgobs:", err)
		os.Exit(1)
	}
	fmt.Printf("fgobs: serving telemetry on http://%s (/metrics /metrics.json /progress /trace /campaigns)\n", srv.Addr)

	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	st, err := svc.Submit(serve.Spec{
		Schema: serve.SpecSchemaV1, Name: "fgobs serve",
		Experiments: ids, Seeds: []int64{*seed}, Quick: *quick,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgobs: %v; try fgbench -list\n", err)
		stop()
		srv.Wait()
		os.Exit(1)
	}

	streamErr := svc.Stream(ctx, st.ID, func(ev serve.Event) error {
		if ev.Kind != "progress" || ev.Progress == nil {
			return nil
		}
		p := ev.Progress
		switch p.Kind {
		case obs.ProgressExperimentStart:
			fmt.Printf("fgobs: [%d/%d] %s started\n", p.Completed, p.Total, p.Experiment)
		case obs.ProgressExperimentFinish:
			status := "done"
			if p.Failed {
				status = "FAILED"
			}
			fmt.Printf("fgobs: [%d/%d] %s %s (elapsed %s, eta %s)\n", p.Completed, p.Total,
				p.Experiment, status, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
		}
		return nil
	})
	final, _ := svc.Status(st.ID)
	switch {
	case errors.Is(streamErr, context.Canceled) || final.State == serve.StateCanceled:
		fmt.Println("fgobs: campaign interrupted; shutting down")
	default:
		fmt.Printf("fgobs: campaign complete: %d experiments, %d failed; metrics stay live\n",
			final.Completed, final.Failed)
		if !*exit {
			fmt.Println("fgobs: serving until interrupted (ctrl-c to exit)")
		}
	}
	if *exit {
		stop()
	}
	if err := srv.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "fgobs:", err)
		os.Exit(1)
	}
}
