package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fivegsim"
	"fivegsim/internal/obs"
)

// cmdServe runs a campaign behind a live telemetry endpoint: /metrics
// (Prometheus text format), /metrics.json, /progress and /trace fill in
// as experiments complete (the engine merges each experiment's
// sub-registry at the paper-order frontier). After the campaign the
// server keeps answering scrapes until SIGINT/SIGTERM — context
// cancellation is the one shutdown path — unless -exit asked for an
// immediate clean exit.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9137", "listen address (port 0 picks a free port)")
	quick := fs.Bool("quick", false, "reduced-duration runs")
	seed := fs.Int64("seed", 42, "experiment seed")
	workers := fs.Int("workers", 1, "campaign-engine goroutines: 0 = all cores, 1 = serial")
	run := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	exit := fs.Bool("exit", false, "exit when the campaign finishes instead of serving until interrupted")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	tracker := obs.NewProgressTracker()
	tracer := obs.NewTracer(0)
	srv, err := obs.Serve(ctx, *addr, obs.ServeOptions{
		Registry: reg, Progress: tracker, Tracer: tracer, Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgobs:", err)
		os.Exit(1)
	}
	fmt.Printf("fgobs: serving telemetry on http://%s (/metrics /metrics.json /progress /trace)\n", srv.Addr)

	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	cfg := fivegsim.Config{Seed: *seed, Quick: *quick, Workers: *workers, Obs: reg, Trace: tracer}
	cfg.OnProgress = func(ev obs.ProgressEvent) {
		tracker.Observe(ev)
		switch ev.Kind {
		case obs.ProgressExperimentStart:
			fmt.Printf("fgobs: [%d/%d] %s started\n", ev.Completed, ev.Total, ev.Experiment)
		case obs.ProgressExperimentFinish:
			status := "done"
			if ev.Failed {
				status = "FAILED"
			}
			fmt.Printf("fgobs: [%d/%d] %s %s (elapsed %s, eta %s)\n", ev.Completed, ev.Total,
				ev.Experiment, status, ev.Elapsed.Round(time.Second), ev.ETA.Round(time.Second))
		}
	}
	results, err := fivegsim.RunExperimentsContext(ctx, cfg, ids...)
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Println("fgobs: campaign interrupted; shutting down")
	case err != nil:
		fmt.Fprintf(os.Stderr, "fgobs: %v; try fgbench -list\n", err)
		stop()
		srv.Wait()
		os.Exit(1)
	default:
		failed := 0
		for _, r := range results {
			if r.Err != nil {
				failed++
			}
		}
		fmt.Printf("fgobs: campaign complete: %d experiments, %d failed; metrics stay live\n",
			len(results), failed)
		if !*exit {
			fmt.Println("fgobs: serving until interrupted (ctrl-c to exit)")
		}
	}
	if *exit {
		stop()
	}
	if err := srv.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "fgobs:", err)
		os.Exit(1)
	}
}
