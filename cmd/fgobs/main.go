// Command fgobs inspects and serves the simulator's telemetry: it
// renders a run manifest's metrics snapshot as text, diffs two
// manifests metric-by-metric (e.g. before/after a performance change),
// runs a campaign behind a live Prometheus /metrics + /progress
// endpoint, or tails such an endpoint from the terminal.
//
// Usage:
//
//	fgobs show run.json            # render every manifest in the file
//	fgobs show -id F7 run.json     # just one experiment
//	fgobs diff old.json new.json   # compare runs (matched by ID)
//	fgobs diff -id F7 old.json new.json
//	fgobs serve -quick -run X12,F10
//	                               # run a campaign with live telemetry
//	fgobs tail -url http://127.0.0.1:9137
//	                               # stream progress + counter deltas
//
// Manifest files come from `fgbench -manifest out.json` and hold either
// a single manifest or a JSON array of them.
package main

import (
	"flag"
	"fmt"
	"os"

	"fivegsim/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "show":
		cmdShow(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "tail":
		cmdTail(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fgobs show [-id EXP] manifest.json
  fgobs diff [-id EXP] old.json new.json
  fgobs serve [-addr HOST:PORT] [-quick] [-run IDS] [-workers N] [-pprof] [-exit]
  fgobs tail [-url URL] [-interval DUR] [-follow]`)
	os.Exit(2)
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	id := fs.String("id", "", "only the manifest with this experiment ID")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	manifests := load(fs.Arg(0), *id)
	for _, m := range manifests {
		fmt.Print(m.String())
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	id := fs.String("id", "", "only diff the manifest with this experiment ID")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	old := load(fs.Arg(0), *id)
	now := load(fs.Arg(1), *id)
	byID := map[string]obs.RunManifest{}
	for _, m := range now {
		byID[m.ExperimentID] = m
	}
	matched := 0
	for _, a := range old {
		b, ok := byID[a.ExperimentID]
		if !ok {
			fmt.Printf("only in %s: %s\n", fs.Arg(0), a.ExperimentID)
			continue
		}
		fmt.Print(obs.DiffManifests(a, b))
		delete(byID, a.ExperimentID)
		matched++
	}
	for id := range byID {
		fmt.Printf("only in %s: %s\n", fs.Arg(1), id)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "fgobs: no matching experiment IDs between the two files")
		os.Exit(1)
	}
}

func load(path, id string) []obs.RunManifest {
	manifests, err := obs.ReadManifests(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgobs:", err)
		os.Exit(1)
	}
	if id == "" {
		return manifests
	}
	var out []obs.RunManifest
	for _, m := range manifests {
		if m.ExperimentID == id {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "fgobs: no manifest with ID %s in %s\n", id, path)
		os.Exit(1)
	}
	return out
}
