package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"fivegsim/internal/obs"
)

// cmdTail streams periodic snapshot deltas from a running `fgobs serve`
// (or any obs.Serve endpoint) to the terminal: one progress line per
// interval plus the counters that moved, with per-second rates. By
// default it exits when /progress reports the campaign done (or when
// the endpoint disappears); -follow keeps tailing until interrupted.
func cmdTail(args []string) {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:9137", "base URL of a running fgobs serve")
	interval := fs.Duration("interval", time.Second, "polling interval")
	follow := fs.Bool("follow", false, "keep tailing after the campaign reports done")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	base := strings.TrimSuffix(*url, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	prev := map[string]float64{}
	prevAt := time.Now()
	first := true
	for misses := 0; ; {
		var snap obs.ProgressSnapshot
		haveProgress := getJSON(client, base+"/progress", &snap) == nil
		var metrics []obs.Metric
		if err := getJSON(client, base+"/metrics.json", &metrics); err != nil {
			misses++
			if misses >= 3 {
				fmt.Fprintf(os.Stderr, "fgobs: %s unreachable: %v\n", base, err)
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		misses = 0
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		if haveProgress {
			line := fmt.Sprintf("progress %d/%d done", snap.Completed, snap.Total)
			if snap.Failed > 0 {
				line += fmt.Sprintf(", %d failed", snap.Failed)
			}
			if len(snap.Running) > 0 {
				line += " | running " + strings.Join(snap.Running, ",")
			}
			for _, id := range sortedTickIDs(snap.Ticks) {
				st := snap.Ticks[id]
				line += fmt.Sprintf(" | %s tick %d/%d", id, st.Tick, st.Ticks)
			}
			if snap.ETA > 0 {
				line += fmt.Sprintf(" | eta %s", snap.ETA.Round(time.Second))
			}
			fmt.Println(line)
		}
		// The first poll only records the baseline — deltas against an
		// empty map would just replay the counters' lifetime totals.
		moved := 0
		for _, m := range metrics {
			if m.Kind != "counter" {
				continue
			}
			delta := m.Value - prev[m.Name]
			prev[m.Name] = m.Value
			if first || delta <= 0 || dt <= 0 {
				continue
			}
			fmt.Printf("  %-44s +%-12.0f %12.0f/s\n", m.Name, delta, delta/dt)
			moved++
		}
		if moved == 0 && !first {
			fmt.Println("  (no counter movement)")
		}
		first = false
		prevAt = now
		if haveProgress && snap.Done && !*follow {
			fmt.Println("fgobs: campaign done")
			return
		}
		time.Sleep(*interval)
	}
}

func sortedTickIDs(ticks map[string]obs.TickState) []string {
	ids := make([]string, 0, len(ticks))
	for id := range ticks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func getJSON(client *http.Client, url string, out interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
