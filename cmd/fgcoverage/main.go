// Command fgcoverage runs the blanket walking survey over the simulated
// campus and prints the Table 1/2 coverage statistics; with -csv it also
// exports the XCAL-style KPI log of the survey.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fivegsim/internal/coverage"
	"fivegsim/internal/dataset"
	"fivegsim/internal/deploy"
	"fivegsim/internal/radio"
	"fivegsim/internal/xcal"
)

func main() {
	samples := flag.Int("samples", 4630, "survey sample count")
	seed := flag.Int64("seed", 42, "seed")
	csvPath := flag.String("csv", "", "write the KPI log to this CSV file")
	flag.Parse()

	campus := deploy.New(*seed)
	survey := coverage.Run(campus, *samples, *seed)

	fmt.Printf("campus: %.2f km², %d gNBs (%d NR cells), %d eNBs (%d LTE cells), %.3f km of roads\n",
		campus.AreaKm2(), len(campus.NRSites), len(campus.NRCells),
		len(campus.LTESites), len(campus.LTECells), campus.RoadLengthM()/1000)
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		s := survey.RSRPSummary(tech)
		fmt.Printf("%v: RSRP %s dBm, coverage holes %.2f%%\n",
			tech, s, 100*survey.HoleFraction(tech, false))
		for _, b := range survey.RSRPDistribution(tech, false) {
			fmt.Printf("    [%4.0f,%4.0f) dBm: %5.2f%%\n", b.Lo, b.Hi, 100*b.Frac(len(survey.Samples)))
		}
	}
	fmt.Printf("5G usable radius (cell 72): %.0f m; 4G: %.0f m\n",
		coverage.UsableRadius(campus, campus.CellByPCI(72)),
		coverage.UsableRadius(campus, campus.CellByPCI(100)))

	if *csvPath != "" {
		logger := xcal.New()
		for i, sm := range survey.Samples {
			at := time.Duration(i) * 100 * time.Millisecond // walking cadence
			logger.LogKPI(at, sm.Pos, sm.NR, radio.BandNR().PRBs)
			logger.LogKPI(at, sm.Pos, sm.LTE, radio.BandLTE().PRBs)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatalf("fgcoverage: %v", err)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, xcal.KPIHeader(), logger.KPIRows()); err != nil {
			log.Fatalf("fgcoverage: %v", err)
		}
		fmt.Printf("wrote %d KPI rows to %s\n", 2*len(survey.Samples), *csvPath)
	}
}
