// Command fgtrace is the traceroute-equivalent prober: it measures RTTs
// to the paper's Table 6 SPEEDTEST servers over both radios and prints
// the per-hop breakdown of the example path.
package main

import (
	"flag"
	"fmt"
	"time"

	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
	"fivegsim/internal/wire"
)

func main() {
	probes := flag.Int("n", 30, "probes per server")
	seed := flag.Int64("seed", 42, "seed")
	hops := flag.Bool("hops", false, "print the per-hop breakdown instead")
	flag.Parse()

	if *hops {
		nr := wire.HopBreakdown(radio.NR, *seed)
		lte := wire.HopBreakdown(radio.LTE, *seed)
		fmt.Println("hop   4G RTT      5G RTT")
		for i := range nr {
			fmt.Printf("%3d   %8v   %8v\n", nr[i].Hop,
				lte[i].RTT.Round(10*time.Microsecond), nr[i].RTT.Round(10*time.Microsecond))
		}
		return
	}

	fmt.Printf("%-38s %9s %12s %12s\n", "server", "km", "4G RTT", "5G RTT")
	var gaps []float64
	for _, s := range wire.Servers {
		p4 := wire.MeasureServer(radio.LTE, s, *probes, *seed)
		p5 := wire.MeasureServer(radio.NR, s, *probes, *seed+1)
		m4 := meanMs(p4)
		m5 := meanMs(p5)
		gaps = append(gaps, m4-m5)
		fmt.Printf("%-38s %9.1f %9.1f ms %9.1f ms\n", s.Name, s.DistanceKm, m4, m5)
	}
	fmt.Printf("mean 4G−5G RTT gap: %s ms (paper: 22.3 ± 3.57 ms)\n", stats.Summarize(gaps))
}

func meanMs(ps []wire.Probe) float64 {
	var sum float64
	for _, p := range ps {
		sum += float64(p.RTT) / float64(time.Millisecond)
	}
	return sum / float64(len(ps))
}
