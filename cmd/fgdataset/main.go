// Command fgdataset exports the simulated measurement campaign in the
// spirit of the paper's public data release [68]: the survey KPI log, the
// hand-off event and signaling tables, a UDP loss trace, a pwrStrip
// battery trace, the Table 6 server catalog, and a manifest.
//
//	fgdataset -out dataset/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fivegsim/internal/coverage"
	"fivegsim/internal/dataset"
	"fivegsim/internal/deploy"
	"fivegsim/internal/energy"
	"fivegsim/internal/handoff"
	"fivegsim/internal/netsim"
	"fivegsim/internal/pwrstrip"
	"fivegsim/internal/radio"
	"fivegsim/internal/traffic"
	"fivegsim/internal/wire"
	"fivegsim/internal/xcal"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	seed := flag.Int64("seed", 42, "seed")
	samples := flag.Int("samples", 2000, "survey samples")
	hoMinutes := flag.Int("ho-minutes", 20, "hand-off campaign duration")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("fgdataset: %v", err)
	}
	manifest := map[string]interface{}{
		"paper": "Understanding Operational 5G (SIGCOMM 2020), simulated reproduction",
		"seed":  *seed,
		"files": []string{},
	}
	files := []string{}
	write := func(name string, header []string, rows [][]string) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("fgdataset: %v", err)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, header, rows); err != nil {
			log.Fatalf("fgdataset: %s: %v", name, err)
		}
		files = append(files, name)
		fmt.Printf("wrote %-28s %6d rows\n", name, len(rows))
	}

	campus := deploy.New(*seed)

	// 1. Blanket-survey KPI log (XCAL format).
	survey := coverage.Run(campus, *samples, *seed)
	kpi := xcal.New()
	for i, sm := range survey.Samples {
		at := time.Duration(i) * 100 * time.Millisecond
		kpi.LogKPI(at, sm.Pos, sm.NR, radio.BandNR().PRBs)
		kpi.LogKPI(at, sm.Pos, sm.LTE, radio.BandLTE().PRBs)
	}
	write("survey_kpi.csv", xcal.KPIHeader(), kpi.KPIRows())

	// 2. Hand-off campaign: events plus the signaling ladders.
	hcfg := handoff.DefaultConfig()
	hcfg.Duration = time.Duration(*hoMinutes) * time.Minute
	camp := handoff.RunCampaign(campus, hcfg, *seed)
	var hoRows [][]string
	sig := xcal.New()
	for _, e := range camp.Events {
		hoRows = append(hoRows, []string{
			fmt.Sprintf("%d", e.At.Milliseconds()),
			e.Kind.String(),
			fmt.Sprintf("%d", e.FromPCI),
			fmt.Sprintf("%d", e.ToPCI),
			fmt.Sprintf("%.3f", float64(e.Latency)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", e.RSRQBefore),
			fmt.Sprintf("%.2f", e.RSRQAfter),
		})
		sig.LogHandoff(e)
	}
	write("handoff_events.csv",
		[]string{"t_ms", "kind", "from_pci", "to_pci", "latency_ms", "rsrq_before_db", "rsrq_after_db"},
		hoRows)
	write("handoff_signaling.csv", xcal.SignalingHeader(), sig.SignalingRows())

	// 3. A 5G UDP loss trace near capacity (the Fig. 11 raw data).
	pcfg := netsim.DefaultPath(radio.NR, true)
	pcfg.Seed = *seed
	udp := netsim.RunUDP(pcfg, pcfg.RANRateBps*0.9, 10*time.Second, true)
	var lossRows [][]string
	prev := int64(-1)
	for _, seq := range udp.ReceivedSeq {
		if prev >= 0 && seq > prev+1 {
			lossRows = append(lossRows, [][]string{{
				fmt.Sprintf("%d", prev+1), fmt.Sprintf("%d", seq-1), fmt.Sprintf("%d", seq-prev-1),
			}}...)
		}
		prev = seq
	}
	write("udp_loss_runs.csv", []string{"first_lost_seq", "last_lost_seq", "run_len"}, lossRows)

	// 4. pwrStrip battery trace of the NSA web replay.
	replay := energy.Replay(energy.ModelNSA, traffic.Web(*seed))
	recs := pwrstrip.Capture(replay.Series, energy.SystemPowerW)
	write("pwrstrip_web_nsa.csv", pwrstrip.Header(), pwrstrip.Rows(recs))

	// 5. The Table 6 server catalog.
	var srvRows [][]string
	for _, s := range wire.Servers {
		srvRows = append(srvRows, []string{
			fmt.Sprintf("%d", s.ID), s.Name, s.IP, s.City,
			fmt.Sprintf("%.4f", s.Lat), fmt.Sprintf("%.4f", s.Lon),
			fmt.Sprintf("%.2f", s.DistanceKm),
		})
	}
	write("servers.csv", []string{"id", "name", "ip", "city", "lat", "lon", "distance_km"}, srvRows)

	manifest["files"] = files
	mf, err := os.Create(filepath.Join(*out, "manifest.json"))
	if err != nil {
		log.Fatalf("fgdataset: %v", err)
	}
	defer mf.Close()
	if err := dataset.WriteJSON(mf, manifest); err != nil {
		log.Fatalf("fgdataset: %v", err)
	}
	fmt.Printf("dataset bundle written to %s\n", *out)
}
