// Command fgho runs the walking hand-off campaign of §3.4 and prints the
// Fig. 5/6 statistics; with -ladder it also dumps the full Fig. 24
// signaling exchange of the first 5G→5G hand-off as XCAL-Mobile would.
package main

import (
	"flag"
	"fmt"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/handoff"
	"fivegsim/internal/stats"
	"fivegsim/internal/xcal"
)

func main() {
	minutes := flag.Int("minutes", 20, "campaign duration in minutes")
	seed := flag.Int64("seed", 42, "seed")
	ladder := flag.Bool("ladder", false, "dump the signaling ladder of the first 5G-5G hand-off")
	flag.Parse()

	campus := deploy.New(*seed)
	cfg := handoff.DefaultConfig()
	cfg.Duration = time.Duration(*minutes) * time.Minute
	camp := handoff.RunCampaign(campus, cfg, *seed)

	fmt.Printf("campaign: %v at 3–10 km/h, %d hand-off events\n", cfg.Duration, len(camp.Events))
	for _, k := range []handoff.Kind{handoff.FourToFour, handoff.FiveToFive, handoff.FiveToFour, handoff.FourToFive} {
		lat := camp.Latencies(k)
		if len(lat) == 0 {
			continue
		}
		gains := camp.Gains(k)
		above := 0
		for _, g := range gains {
			if g > 3 {
				above++
			}
		}
		fmt.Printf("  %-5s: n=%3d  latency %s ms  RSRQ gain >3 dB in %.0f%%\n",
			k, len(lat), stats.Summarize(lat), 100*float64(above)/float64(len(gains)))
	}
	total := 0
	for _, v := range camp.MeasEvents {
		total += v
	}
	fmt.Print("measurement-event mix: ")
	for _, e := range []handoff.EventType{handoff.A1, handoff.A2, handoff.A3, handoff.A5, handoff.B1} {
		if c := camp.MeasEvents[e]; c > 0 {
			fmt.Printf("%v %.1f%%  ", e, 100*float64(c)/float64(total))
		}
	}
	fmt.Println()

	if *ladder {
		for _, e := range camp.Events {
			if e.Kind != handoff.FiveToFive {
				continue
			}
			logger := xcal.New()
			logger.LogHandoff(e)
			fmt.Printf("\nFig. 24 ladder of the %v hand-off at %v (PCI %d → %d, %v total):\n",
				e.Kind, e.At.Round(time.Second), e.FromPCI, e.ToPCI, e.Latency.Round(time.Millisecond))
			for _, row := range logger.SignalingRows() {
				fmt.Printf("  t=%7s ms  %-45s %s\n", row[0], row[1], row[2])
			}
			break
		}
	}
}
