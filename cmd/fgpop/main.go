// Command fgpop runs a population-scale campus study: a PPP-placed UE
// population over the deployed campus, contending for per-cell PRB
// budgets under a web/video/bulk traffic mix, and prints the cell-load
// and fairness reports.
//
//	fgpop -n 20000 -ticks 100
//	fgpop -lambda 8000 -mix 0.6,0.3,0.1 -workers 8
//	fgpop -n 1000 -speed 0 -ticks 50        # static PPP snapshot
//	fgpop -n 5000 -metrics                  # print the pop.* snapshot
//	fgpop -n 5000 -trace t.json -manifest m.json
//	                                        # telemetry artifacts (fgbench parity)
//	fgpop -n 5000 -churn 16 -a3 3 -loadfb   # population dynamics: birth–death
//	                                        # churn, stateful A3 hand-off, load
//	                                        # coupling (DESIGN.md §13)
//
// Reports are bit-identical for every -workers value (the internal/par
// determinism contract; internal/pop's determinism suite enforces it),
// with or without telemetry attached.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/obs"
	"fivegsim/internal/pop"
	"fivegsim/internal/radio"
	"fivegsim/internal/traffic"
)

func main() {
	n := flag.Int("n", 0, "population size (0 = draw from the PPP at -lambda)")
	lambda := flag.Float64("lambda", 5000, "PPP intensity in UEs/km² (used when -n is 0)")
	ticks := flag.Int("ticks", 50, "number of 100 ms scheduling ticks")
	tickDur := flag.Duration("tick", 100*time.Millisecond, "scheduling tick duration")
	seed := flag.Int64("seed", 42, "seed (fixes placement, traffic and mobility)")
	workers := flag.Int("workers", 1, "worker goroutines (0 = GOMAXPROCS); results identical for every value")
	mix := flag.String("mix", "", "traffic mix as web,video,bulk weights, e.g. 0.7,0.2,0.1")
	speed := flag.Float64("speed", 5, "max walking speed in km/h (0 = static population)")
	perCell := flag.Bool("cells", false, "print the per-cell load table")
	metrics := flag.Bool("metrics", false, "collect and print the pop.* metrics snapshot")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON of the run to this file")
	manifestPath := flag.String("manifest", "", "write the run manifest (JSON, fgobs-show compatible) to this file")
	churn := flag.Float64("churn", 0, "UE churn: Poisson arrivals per tick (0 = fixed population)")
	life := flag.Float64("life", 300, "mean UE lifetime in ticks under -churn")
	a3 := flag.Float64("a3", 0, "stateful A3 hand-off with this hysteresis in dB (0 = memoryless best-server)")
	a3ttt := flag.Int("a3ttt", 3, "A3 time-to-trigger in ticks under -a3")
	loadFb := flag.Bool("loadfb", false, "couple cell interference Load to measured PRB utilization (EWMA)")
	flag.Parse()

	m := pop.DefaultModel()
	m.N = *n
	m.LambdaPerKm2 = *lambda
	m.Ticks = *ticks
	m.TickDur = *tickDur
	m.MaxSpeedKmh = *speed
	if *mix != "" {
		w, err := parseMix(*mix)
		if err != nil {
			log.Fatalf("fgpop: %v", err)
		}
		m.Mix = w
	}
	if *churn > 0 {
		m.Churn = pop.ChurnModel{Enabled: true, ArrivalPerTick: *churn, MeanLifetimeTicks: *life}
	}
	if *a3 > 0 {
		m.A3 = pop.A3Model{Enabled: true, HysteresisDB: *a3, TTTTicks: *a3ttt}
	}
	if *loadFb {
		m.LoadCoupling = pop.LoadCouplingModel{Enabled: true, Alpha: 0.3}
	}

	var tel pop.Telemetry
	if *metrics || *manifestPath != "" {
		tel.Obs = obs.NewRegistry()
	}
	if *tracePath != "" {
		tel.Trace = obs.NewTracer(0)
	}

	campus := deploy.New(*seed)
	start := time.Now()
	p := pop.RunWith(campus, m, *seed, *workers, tel)
	elapsed := time.Since(start)

	fmt.Printf("population: %d UEs over %.2f km² (%d NR + %d LTE cells), %d ticks × %s in %v\n",
		p.Alive(), campus.AreaKm2(), len(campus.NRCells), len(campus.LTECells),
		p.Ticks(), m.TickDur, elapsed.Round(time.Millisecond))
	for _, t := range []radio.Tech{radio.NR, radio.LTE} {
		u := p.UtilSamples(t, nil)
		fmt.Printf("%-3s PRB utilization: mean %5.1f%%  p50 %5.1f%%  p90 %5.1f%%  p99 %5.1f%%\n",
			t, 100*p.MeanUtil(t), 100*pop.Quantile(u, 0.50),
			100*pop.Quantile(u, 0.90), 100*pop.Quantile(u, 0.99))
	}
	if *perCell {
		for _, l := range p.CellLoadLines() {
			fmt.Println(l)
		}
	}
	for _, l := range p.FairnessLines() {
		fmt.Println(l)
	}
	if *churn > 0 || *a3 > 0 || *loadFb {
		for _, l := range p.DynamicsLines() {
			fmt.Println(l)
		}
	}

	if *metrics {
		fmt.Printf("-- metrics (population run, %d ticks) --\n", p.Ticks())
		fmt.Print(tel.Obs.Text())
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, tel.Trace.WriteChromeTrace); err != nil {
			log.Fatalf("fgpop: %v", err)
		}
		fmt.Printf("wrote %d trace events to %s (%d overwritten by ring wrap)\n",
			len(tel.Trace.Events()), *tracePath, tel.Trace.Dropped())
	}
	if *manifestPath != "" {
		man := obs.NewManifest("POP", "population-scale campus run", *seed, false, start, elapsed, tel.Obs)
		if err := writeFile(*manifestPath, man.WriteJSON); err != nil {
			log.Fatalf("fgpop: %v", err)
		}
		fmt.Printf("wrote run manifest to %s\n", *manifestPath)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseMix parses "web,video,bulk" float weights.
func parseMix(s string) (traffic.MixWeights, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return traffic.MixWeights{}, fmt.Errorf("mix %q: want three comma-separated weights", s)
	}
	var w [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return traffic.MixWeights{}, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
		w[i] = v
	}
	return traffic.MixWeights{Web: w[0], Video: w[1], Bulk: w[2]}, nil
}
