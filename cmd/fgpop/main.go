// Command fgpop runs a population-scale campus study: a PPP-placed UE
// population over the deployed campus, contending for per-cell PRB
// budgets under a web/video/bulk traffic mix, and prints the cell-load
// and fairness reports.
//
//	fgpop -n 20000 -ticks 100
//	fgpop -lambda 8000 -mix 0.6,0.3,0.1 -workers 8
//	fgpop -n 1000 -speed 0 -ticks 50        # static PPP snapshot
//
// Reports are bit-identical for every -workers value (the internal/par
// determinism contract; internal/pop's determinism suite enforces it).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/pop"
	"fivegsim/internal/radio"
	"fivegsim/internal/traffic"
)

func main() {
	n := flag.Int("n", 0, "population size (0 = draw from the PPP at -lambda)")
	lambda := flag.Float64("lambda", 5000, "PPP intensity in UEs/km² (used when -n is 0)")
	ticks := flag.Int("ticks", 50, "number of 100 ms scheduling ticks")
	tickDur := flag.Duration("tick", 100*time.Millisecond, "scheduling tick duration")
	seed := flag.Int64("seed", 42, "seed (fixes placement, traffic and mobility)")
	workers := flag.Int("workers", 1, "worker goroutines (0 = GOMAXPROCS); results identical for every value")
	mix := flag.String("mix", "", "traffic mix as web,video,bulk weights, e.g. 0.7,0.2,0.1")
	speed := flag.Float64("speed", 5, "max walking speed in km/h (0 = static population)")
	perCell := flag.Bool("cells", false, "print the per-cell load table")
	flag.Parse()

	m := pop.DefaultModel()
	m.N = *n
	m.LambdaPerKm2 = *lambda
	m.Ticks = *ticks
	m.TickDur = *tickDur
	m.MaxSpeedKmh = *speed
	if *mix != "" {
		w, err := parseMix(*mix)
		if err != nil {
			log.Fatalf("fgpop: %v", err)
		}
		m.Mix = w
	}

	campus := deploy.New(*seed)
	start := time.Now()
	p := pop.Run(campus, m, *seed, *workers)
	elapsed := time.Since(start)

	fmt.Printf("population: %d UEs over %.2f km² (%d NR + %d LTE cells), %d ticks × %s in %v\n",
		p.Len(), campus.AreaKm2(), len(campus.NRCells), len(campus.LTECells),
		p.Ticks(), m.TickDur, elapsed.Round(time.Millisecond))
	for _, t := range []radio.Tech{radio.NR, radio.LTE} {
		u := p.UtilSamples(t, nil)
		fmt.Printf("%-3s PRB utilization: mean %5.1f%%  p50 %5.1f%%  p90 %5.1f%%  p99 %5.1f%%\n",
			t, 100*p.MeanUtil(t), 100*pop.Quantile(u, 0.50),
			100*pop.Quantile(u, 0.90), 100*pop.Quantile(u, 0.99))
	}
	if *perCell {
		for _, l := range p.CellLoadLines() {
			fmt.Println(l)
		}
	}
	for _, l := range p.FairnessLines() {
		fmt.Println(l)
	}
}

// parseMix parses "web,video,bulk" float weights.
func parseMix(s string) (traffic.MixWeights, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return traffic.MixWeights{}, fmt.Errorf("mix %q: want three comma-separated weights", s)
	}
	var w [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return traffic.MixWeights{}, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
		w[i] = v
	}
	return traffic.MixWeights{Web: w[0], Video: w[1], Bulk: w[2]}, nil
}
