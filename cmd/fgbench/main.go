// Command fgbench regenerates every table and figure of the paper's
// evaluation from the simulated campaign.
//
// Usage:
//
//	fgbench                 # run everything at full fidelity
//	fgbench -quick          # reduced durations (CI-friendly)
//	fgbench -run F7,T4      # a subset
//	fgbench -list           # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fivegsim"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-duration runs")
	seed := flag.Int64("seed", 42, "experiment seed")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range fivegsim.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := fivegsim.Config{Seed: *seed, Quick: *quick}
	ids := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range fivegsim.Experiments() {
		if len(ids) > 0 && !ids[e.ID] {
			continue
		}
		t0 := time.Now()
		res := e.Run(cfg)
		fmt.Print(res.Report())
		fmt.Printf("  (%.1fs)\n\n", time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "fgbench: no experiments matched -run; try -list")
		os.Exit(1)
	}
	fmt.Printf("regenerated %d experiments in %.1fs (seed %d, quick=%v)\n",
		ran, time.Since(start).Seconds(), *seed, *quick)
}
