// Command fgbench regenerates every table and figure of the paper's
// evaluation from the simulated campaign.
//
// Usage:
//
//	fgbench                 # run everything at full fidelity
//	fgbench -quick          # reduced durations (CI-friendly)
//	fgbench -run F7,T4      # a subset
//	fgbench -list           # enumerate experiments
//	fgbench -metrics        # print the telemetry snapshot per run
//	fgbench -trace out.json # export a Chrome trace (Perfetto-loadable)
//	fgbench -manifest m.json# write the run manifests as JSON (see fgobs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fivegsim"
	"fivegsim/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-duration runs")
	seed := flag.Int64("seed", 42, "experiment seed")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	metrics := flag.Bool("metrics", false, "collect and print the metrics snapshot after each experiment")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON of the campaign to this file")
	manifestPath := flag.String("manifest", "", "write the run manifests (JSON array) to this file")
	profile := flag.Bool("profile", false, "measure per-event callback wall time (adds overhead)")
	flag.Parse()

	if *list {
		for _, e := range fivegsim.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	collect := *metrics || *manifestPath != ""
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(0)
	}

	ids := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	ran := 0
	var manifests []obs.RunManifest
	for _, e := range fivegsim.Experiments() {
		if len(ids) > 0 && !ids[e.ID] {
			continue
		}
		cfg := fivegsim.Config{Seed: *seed, Quick: *quick, Trace: tracer, Profile: *profile}
		if collect {
			// A fresh registry per experiment keeps each manifest's
			// snapshot attributable to that run alone.
			cfg.Obs = obs.NewRegistry()
		}
		t0 := time.Now()
		res := e.Run(cfg)
		fmt.Print(res.Report())
		fmt.Printf("  (%.1fs)\n\n", time.Since(t0).Seconds())
		if *metrics {
			fmt.Printf("-- metrics %s (events=%d, sim=%s, wall=%s) --\n%s\n",
				e.ID, res.Manifest.EventsExecuted, res.Manifest.SimTime,
				res.Manifest.WallTime.Round(time.Millisecond), cfg.Obs.Text())
		}
		manifests = append(manifests, res.Manifest)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "fgbench: no experiments matched -run; try -list")
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "fgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s (%d overwritten by ring wrap)\n",
			len(tracer.Events()), *tracePath, tracer.Dropped())
	}
	if *manifestPath != "" {
		if err := writeManifests(*manifestPath, manifests); err != nil {
			fmt.Fprintln(os.Stderr, "fgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d manifests to %s\n", len(manifests), *manifestPath)
	}
	fmt.Printf("regenerated %d experiments in %.1fs (seed %d, quick=%v)\n",
		ran, time.Since(start).Seconds(), *seed, *quick)
}

func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tracer.WriteChromeTrace(f)
}

func writeManifests(path string, manifests []obs.RunManifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("[\n"); err != nil {
		return err
	}
	for i, m := range manifests {
		if i > 0 {
			if _, err := f.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := m.WriteJSON(f); err != nil {
			return err
		}
	}
	_, err = f.WriteString("]\n")
	return err
}
