// Command fgbench regenerates every table and figure of the paper's
// evaluation from the simulated campaign.
//
// Usage:
//
//	fgbench                 # run everything at full fidelity
//	fgbench -quick          # reduced durations (CI-friendly)
//	fgbench -workers 0      # parallel campaign engine (0 = all cores)
//	fgbench -run F7,T4      # a subset
//	fgbench -list           # enumerate experiments
//	fgbench -metrics        # print the telemetry snapshot per run
//	fgbench -trace out.json # export a Chrome trace (Perfetto-loadable)
//	fgbench -manifest m.json# write the run manifests as JSON (see fgobs)
//	fgbench -faults list    # enumerate fault-scenario presets
//	fgbench -faults cell-failover -run X9
//	                        # arm a fault scenario on the selected runs
//
// Reports are bit-identical for every -workers value: the engine shards
// work deterministically and merges in paper order (see DESIGN.md).
// Results stream as they complete (in paper order); a crashed experiment
// prints as FAILED and the campaign carries on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fivegsim"
	"fivegsim/internal/fault"
	"fivegsim/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-duration runs")
	seed := flag.Int64("seed", 42, "experiment seed")
	workers := flag.Int("workers", 1, "campaign-engine goroutines: 0 = all cores, 1 = serial")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	metrics := flag.Bool("metrics", false, "collect and print the metrics snapshot after each experiment")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON of the campaign to this file")
	manifestPath := flag.String("manifest", "", "write the run manifests (JSON array) to this file")
	resultsPath := flag.String("results", "", "stream results to this file as NDJSON (one fivegsim.result/v1 object per line — the same encoding fgserve serves)")
	profile := flag.Bool("profile", false, "measure per-event callback wall time (adds overhead)")
	faults := flag.String("faults", "", "arm a fault-scenario preset on every run ('list' to enumerate)")
	population := flag.Int("population", 0, "override the population-experiment UE count (X12–X14; 0 = built-in sizing)")
	progress := flag.Bool("progress", false, "stream live start/finish/ETA progress lines to stderr")
	flag.Parse()

	if *list {
		for _, e := range fivegsim.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *faults == "list" {
		for _, s := range fault.Scenarios() {
			p := s.Plan()
			fmt.Printf("%-18s %d fault(s) over %.1fs\n", s, len(p.Faults), p.Duration().Seconds())
		}
		return
	}

	collect := *metrics || *manifestPath != ""
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(0)
	}

	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	cfg := fivegsim.Config{Seed: *seed, Quick: *quick, Workers: *workers, Trace: tracer, Profile: *profile,
		Population: *population}
	if *faults != "" {
		s, err := fault.ScenarioByName(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fgbench: %v; try -faults list\n", err)
			os.Exit(1)
		}
		cfg.Faults = s.Plan()
		if len(ids) == 0 {
			// A scenario with no explicit -run means the fault suite.
			ids = []string{"X9", "X10", "X11"}
		}
	}
	if collect {
		// RunExperimentsContext gives every experiment its own
		// sub-registry, so each manifest's snapshot is attributable to
		// that run alone; cfg.Obs accumulates the campaign-wide merge.
		cfg.Obs = obs.NewRegistry()
	}
	var resultsEnc *json.Encoder
	var resultsFile *os.File
	if *resultsPath != "" {
		f, err := os.Create(*resultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgbench:", err)
			os.Exit(1)
		}
		resultsFile = f
		resultsEnc = json.NewEncoder(f)
	}
	// Results stream through OnResult in paper order as workers finish.
	manifests := make([]obs.RunManifest, 0, 32)
	failed := 0
	cfg.OnResult = func(res fivegsim.Result) {
		if resultsEnc != nil {
			if err := resultsEnc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "fgbench:", err)
				os.Exit(1)
			}
		}
		fmt.Print(res.Report())
		fmt.Printf("  (%.1fs)\n\n", res.Manifest.WallTime.Seconds())
		if res.Err != nil {
			failed++
		}
		if *metrics {
			fmt.Printf("-- metrics %s (events=%d, sim=%s, wall=%s) --\n",
				res.ID, res.Manifest.EventsExecuted, res.Manifest.SimTime,
				res.Manifest.WallTime.Round(time.Millisecond))
			for _, m := range res.Manifest.Metrics {
				fmt.Println(m.String())
			}
			fmt.Println()
		}
		manifests = append(manifests, res.Manifest)
	}
	if *progress {
		// Progress events arrive in completion order (OnResult keeps
		// paper order); stderr keeps them apart from the reports.
		cfg.OnProgress = func(ev obs.ProgressEvent) {
			switch ev.Kind {
			case obs.ProgressExperimentStart:
				fmt.Fprintf(os.Stderr, "[%d/%d] %s started\n", ev.Completed, ev.Total, ev.Experiment)
			case obs.ProgressExperimentFinish:
				status := "done"
				if ev.Failed {
					status = "FAILED"
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %s %s (elapsed %s, eta %s)\n", ev.Completed, ev.Total,
					ev.Experiment, status, ev.Elapsed.Round(time.Second), ev.ETA.Round(time.Second))
			}
		}
	}
	start := time.Now()
	results, err := fivegsim.RunExperimentsContext(context.Background(), cfg, ids...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgbench: %v; try -list\n", err)
		os.Exit(1)
	}
	if resultsFile != nil {
		if err := resultsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d results to %s\n", len(results), *resultsPath)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "fgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s (%d overwritten by ring wrap)\n",
			len(tracer.Events()), *tracePath, tracer.Dropped())
	}
	if *manifestPath != "" {
		if err := writeManifests(*manifestPath, manifests); err != nil {
			fmt.Fprintln(os.Stderr, "fgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d manifests to %s\n", len(manifests), *manifestPath)
	}
	fmt.Printf("regenerated %d experiments in %.1fs (seed %d, quick=%v, workers=%d)\n",
		len(results), time.Since(start).Seconds(), *seed, *quick, *workers)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fgbench: %d experiment(s) FAILED\n", failed)
		os.Exit(1)
	}
}

func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tracer.WriteChromeTrace(f)
}

func writeManifests(path string, manifests []obs.RunManifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("[\n"); err != nil {
		return err
	}
	for i, m := range manifests {
		if i > 0 {
			if _, err := f.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := m.WriteJSON(f); err != nil {
			return err
		}
	}
	_, err = f.WriteString("]\n")
	return err
}
