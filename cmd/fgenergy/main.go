// Command fgenergy is the pwrStrip-equivalent profiler: it replays a
// workload trace under the four §6.3 power-management models, prints the
// Table 4 comparison, and optionally exports the 100 ms battery trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fivegsim/internal/dataset"
	"fivegsim/internal/energy"
	"fivegsim/internal/pwrstrip"
	"fivegsim/internal/traffic"
)

func main() {
	workload := flag.String("workload", "web", "web, video, or file")
	seed := flag.Int64("seed", 42, "seed")
	csvPath := flag.String("csv", "", "write the NSA pwrStrip trace to this CSV file")
	flag.Parse()

	var tr energy.Trace
	switch *workload {
	case "web":
		tr = traffic.Web(*seed)
	case "video":
		tr = traffic.Video(*seed)
	case "file":
		tr = traffic.File(*seed)
	default:
		log.Fatalf("fgenergy: unknown workload %q (web, video, file)", *workload)
	}
	fmt.Printf("workload %q: %d MB over %v\n", *workload, tr.TotalBytes()>>20, tr.Duration())

	var nsa energy.ReplayResult
	for _, m := range energy.Models() {
		r := energy.Replay(m, tr)
		fmt.Printf("  %-12s %8.1f J over %8v", m, r.EnergyJ, r.Duration.Round(100*time.Millisecond))
		if m == energy.ModelNSA {
			nsa = r
		}
		fmt.Printf("  (active %v, C-DRX %v, idle %v)\n",
			r.InState[energy.Active].Round(100*time.Millisecond),
			r.InState[energy.CDRX].Round(100*time.Millisecond),
			r.InState[energy.Idle].Round(100*time.Millisecond))
	}

	if *csvPath != "" {
		recs := pwrstrip.Capture(nsa.Series, energy.SystemPowerW)
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatalf("fgenergy: %v", err)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, pwrstrip.Header(), pwrstrip.Rows(recs)); err != nil {
			log.Fatalf("fgenergy: %v", err)
		}
		fmt.Printf("wrote %d pwrStrip samples to %s (%.1f J integrated)\n",
			len(recs), *csvPath, pwrstrip.EnergyJ(recs))
	}
}
