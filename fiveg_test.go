package fivegsim

import (
	"strings"
	"testing"

	"fivegsim/internal/obs"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"T1", "T2", "T3", "T4",
		"F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12",
		"F13", "F14", "F15", "F16", "F17", "F18", "F19", "F20", "F21", "F22", "F23",
		"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11",
		"X12", "X13", "X14", "X15",
	}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" {
			t.Errorf("%s: empty title", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from the registry", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(got), len(want))
	}
}

func TestExperimentsOrdered(t *testing.T) {
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if orderKey(exps[i].ID) < orderKey(exps[i-1].ID) {
			t.Fatalf("experiments out of order: %s before %s", exps[i-1].ID, exps[i].ID)
		}
	}
	if exps[0].ID != "T1" {
		t.Fatalf("first experiment = %s", exps[0].ID)
	}
}

func TestOrderKeyMalformedIDs(t *testing.T) {
	// Regression: orderKey used to index id[1:] unguarded, so empty and
	// single-character IDs panicked. They must sort after every
	// well-formed ID instead.
	for _, id := range []string{"", "T", "F", "X", "q"} {
		got := orderKey(id) // must not panic
		if got <= orderKey("X99") {
			t.Errorf("orderKey(%q) = %d, want after all well-formed IDs", id, got)
		}
	}
	if !(orderKey("T1") < orderKey("F2") && orderKey("F23") < orderKey("X1")) {
		t.Error("well-formed ordering broken")
	}
}

func TestResultCarriesManifest(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := QuickConfig()
	cfg.Obs = reg
	res, err := Run("T1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest
	if m.ExperimentID != "T1" || m.Seed != 42 || !m.Quick {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	if m.Version == "" || m.WallTime <= 0 {
		t.Fatalf("manifest provenance missing: version=%q wall=%v", m.Version, m.WallTime)
	}
	// T1 is pure computation (no DES), so its snapshot may be empty; the
	// packet-level experiments' snapshots are covered in
	// TestObsMetricsFlowThroughExperiment.
	// Without a registry the manifest still records the headline fields.
	res2, err := Run("T1", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Manifest.ExperimentID != "T1" || len(res2.Manifest.Metrics) != 0 {
		t.Fatalf("obs-off manifest wrong: %+v", res2.Manifest)
	}
}

func TestObsMetricsFlowThroughExperiment(t *testing.T) {
	// The F10 HARQ experiment builds paths on fresh schedulers; with a
	// registry attached the des and netsim substrates must both report.
	reg := obs.NewRegistry()
	cfg := QuickConfig()
	cfg.Obs = reg
	res, err := Run("F10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Counter("des.events_fired").Value() == 0 {
		t.Error("des.events_fired not collected")
	}
	if res.Manifest.EventsExecuted == 0 || res.Manifest.SimTime == 0 || len(res.Manifest.Metrics) == 0 {
		t.Errorf("manifest snapshot incomplete: events=%d sim=%v metrics=%d",
			res.Manifest.EventsExecuted, res.Manifest.SimTime, len(res.Manifest.Metrics))
	}
	if reg.Counter("netsim.pkt_delivered{hop=5G-RAN}").Value() == 0 {
		t.Error("netsim.pkt_delivered{hop=5G-RAN} not collected")
	}
	if reg.Histogram("netsim.occupancy_bytes{hop=5G-RAN}", nil).Count() == 0 {
		t.Error("occupancy histogram not collected")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("F99", QuickConfig()); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestQuickCheapExperiments(t *testing.T) {
	// The fast experiments run end-to-end through the facade and report
	// plausible headline values.
	cfg := QuickConfig()
	t1, err := Run("T1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Values["cells5G"] != 13 || t1.Values["cells4G"] != 34 {
		t.Fatalf("T1 cell counts wrong: %+v", t1.Values)
	}
	if t1.Values["rsrp5G"] > -75 || t1.Values["rsrp5G"] < -95 {
		t.Fatalf("T1 5G RSRP = %.1f", t1.Values["rsrp5G"])
	}
	f2, _ := Run("F2", cfg)
	if f2.Values["radius5G"] >= f2.Values["radius4G"] {
		t.Fatal("F2: 5G radius must be below 4G radius")
	}
	f22, _ := Run("F22", cfg)
	if f22.Values["ratioAt50s"] < 2.2 {
		t.Fatalf("F22 ratio = %.1f", f22.Values["ratioAt50s"])
	}
	f23, _ := Run("F23", cfg)
	if f23.Values["ratio"] < 1.2 || f23.Values["nrTailS"] < 1.6*f23.Values["lteTailS"] {
		t.Fatalf("F23 values implausible: %+v", f23.Values)
	}
	t4, _ := Run("T4", cfg)
	if t4.Values["File/LTE"] <= t4.Values["File/NR NSA"] {
		t.Fatal("T4: file transfer must favor 5G")
	}
	if t4.Values["Web/LTE"] >= t4.Values["Web/NR NSA"] {
		t.Fatal("T4: web must favor 4G")
	}
}

func TestReportFormatting(t *testing.T) {
	r := Result{ID: "T1", Title: "x", Lines: []string{"a", "b"}}
	rep := r.Report()
	if !strings.Contains(rep, "== T1: x ==") || !strings.Contains(rep, "  a\n  b\n") {
		t.Fatalf("report = %q", rep)
	}
}
