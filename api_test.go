package fivegsim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// tempExperiment registers an experiment for the duration of one test
// and removes it on cleanup. IDs use the Z prefix so the temporaries
// sort after every real experiment and never collide with one.
func tempExperiment(t *testing.T, id string, run func(cfg Config) Result) {
	t.Helper()
	register(id, "test experiment "+id, run)
	t.Cleanup(func() { registry = registry[:len(registry)-1] })
}

func TestOrderKey(t *testing.T) {
	cases := []struct {
		id  string
		key int
	}{
		{"T1", 1},
		{"T4", 4},
		{"F2", 102},
		{"F23", 123},
		{"X1", 201},
		{"X11", 211},
		{"Z9", 209},
		{"", 1 << 30},
		{"T", 1 << 30},
	}
	for _, tc := range cases {
		if got := orderKey(tc.id); got != tc.key {
			t.Errorf("orderKey(%q) = %d, want %d", tc.id, got, tc.key)
		}
	}
}

func TestUnknownExperimentTyped(t *testing.T) {
	for _, call := range []func() error{
		func() error { _, err := Run("NOPE", QuickConfig()); return err },
		func() error { _, err := RunExperiments(QuickConfig(), "T1", "NOPE"); return err },
	} {
		err := call()
		if !errors.Is(err, ErrUnknownExperiment) {
			t.Fatalf("error %v does not match ErrUnknownExperiment", err)
		}
		var ue *UnknownExperimentError
		if !errors.As(err, &ue) || ue.ID != "NOPE" {
			t.Fatalf("error %v does not carry the offending id", err)
		}
	}
}

// TestPanicRecovery: a crashing experiment becomes an error result — the
// campaign survives, the crash is typed and carries the panic value.
func TestPanicRecovery(t *testing.T) {
	tempExperiment(t, "Z98", func(cfg Config) Result {
		panic("synthetic crash")
	})
	tempExperiment(t, "Z99", func(cfg Config) Result {
		return Result{ID: "Z99", Title: "ok", Lines: []string{"fine"}}
	})
	results, err := RunExperiments(QuickConfig(), "Z98", "Z99")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("campaign returned %d results, want 2", len(results))
	}
	crashed := results[0]
	if crashed.ID != "Z98" || crashed.Err == nil {
		t.Fatalf("crashed result = %+v", crashed)
	}
	if !errors.Is(crashed.Err, ErrExperimentPanic) {
		t.Fatalf("crash error %v does not match ErrExperimentPanic", crashed.Err)
	}
	var pe *ExperimentPanicError
	if !errors.As(crashed.Err, &pe) || pe.ID != "Z98" || pe.Value != "synthetic crash" || len(pe.Stack) == 0 {
		t.Fatalf("panic error payload incomplete: %+v", pe)
	}
	if results[1].Err != nil || len(results[1].Lines) != 1 {
		t.Fatalf("experiment after the crash was damaged: %+v", results[1])
	}
	if crashed.Manifest.ExperimentID != "Z98" {
		t.Fatalf("crashed result lost its manifest: %+v", crashed.Manifest)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, "T1", QuickConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext under a canceled context returned %v", err)
	}
	if _, err := RunExperimentsContext(ctx, QuickConfig(), "T1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunExperimentsContext under a canceled context returned %v", err)
	}
}

// TestCancellationBetweenExperiments: canceling mid-campaign stops the
// engine within one experiment boundary — the experiment in flight
// finishes, nothing later starts, and the typed context error surfaces.
func TestCancellationBetweenExperiments(t *testing.T) {
	var ran int32
	for _, id := range []string{"Z90", "Z91", "Z92", "Z93"} {
		id := id
		tempExperiment(t, id, func(cfg Config) Result {
			atomic.AddInt32(&ran, 1)
			return Result{ID: id, Title: id}
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := QuickConfig()
	cfg.Workers = 1
	var streamed []string
	cfg.OnResult = func(r Result) {
		streamed = append(streamed, r.ID)
		cancel() // cancel as soon as the first result lands
	}
	_, err := RunExperimentsContext(ctx, cfg, "Z90", "Z91", "Z92", "Z93")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled campaign returned %v", err)
	}
	if n := atomic.LoadInt32(&ran); n != 1 {
		t.Fatalf("%d experiments ran after cancellation at the first boundary", n)
	}
	if len(streamed) != 1 || streamed[0] != "Z90" {
		t.Fatalf("streamed results %v, want [Z90]", streamed)
	}
}

// TestOnResultPaperOrder: results stream in paper order even when later
// experiments finish first on other workers.
func TestOnResultPaperOrder(t *testing.T) {
	// Z93 is slowest but sorts first; Z95 is fastest but sorts last.
	delays := map[string]time.Duration{"Z93": 60 * time.Millisecond, "Z94": 30 * time.Millisecond, "Z95": 0}
	for id, d := range delays {
		id, d := id, d
		tempExperiment(t, id, func(cfg Config) Result {
			time.Sleep(d)
			return Result{ID: id, Title: id}
		})
	}
	cfg := QuickConfig()
	cfg.Workers = 3
	var streamed []string
	cfg.OnResult = func(r Result) { streamed = append(streamed, r.ID) }
	results, err := RunExperiments(cfg, "Z95", "Z93", "Z94")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Z93", "Z94", "Z95"}
	for i, id := range want {
		if results[i].ID != id {
			t.Fatalf("results out of paper order: %v", results)
		}
		if streamed[i] != id {
			t.Fatalf("OnResult out of paper order: %v", streamed)
		}
	}
}
