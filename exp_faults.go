package fivegsim

import (
	"sort"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/energy"
	"fivegsim/internal/fault"
	"fivegsim/internal/handoff"
	"fivegsim/internal/netsim"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
	"fivegsim/internal/transport"
	"fivegsim/internal/wire"
)

// The X9–X11 experiments exercise the fault-injection subsystem
// (internal/fault): what the paper's failure modes — NSA hand-off
// interruptions (§3.4), coverage holes (§3.2) and wired-segment
// degradation (§4.2) — cost in stall time, throughput, energy and
// hand-off churn.
func init() {
	register("X9", "Outage-vs-stall curves (fault-injected bulk TCP)", runX9Outage)
	register("X10", "Fault-scenario resilience suite (incl. 4G-fallback energy)", runX10Scenarios)
	register("X11", "Coverage-hole hand-off storm (fault-injected campaign)", runX11Holes)
}

// faultPath returns the calibrated 5G daytime path with the given plan
// armed on top of the run's telemetry options. A nil plan is the clean
// path even when cfg.Faults is set — the fault experiments pick their
// own plans per data point.
func faultPath(cfg Config, plan *fault.Plan) netsim.PathConfig {
	c := cfg
	c.Faults = plan
	return c.obsPath(radio.NR, true)
}

// stallTime totals the receiver's dead air: 100 ms RxRate windows that
// delivered nothing after the flow first moved — the app-layer outage a
// user perceives, as opposed to the injected radio outage itself.
func stallTime(rs []transport.RateSample) time.Duration {
	started := false
	var stalled time.Duration
	for _, s := range rs {
		if s.Bps > 0 {
			started = true
		} else if started {
			stalled += 100 * time.Millisecond
		}
	}
	return stalled
}

// radioEnergyJ integrates the Fig. 21 active-use radio envelope over the
// receiver rate series, switching to the 4G envelope inside the plan's
// CellFailure fallback windows (a nil plan never falls back).
func radioEnergyJ(rs []transport.RateSample, plan *fault.Plan) float64 {
	const window = 0.1 // RxRates are 100 ms bins
	var joules float64
	for _, s := range rs {
		prof := energy.ActiveUseFor(radio.NR)
		if plan.FallbackAt(s.At) {
			prof = energy.ActiveUseFor(radio.LTE)
		}
		joules += prof.RadioPowerW(s.Bps) * window
	}
	return joules
}

// runX9Outage sweeps radio-outage length against TCP stall time: a
// single LinkOutage at t=3 s, from half a hand-off to a multi-second
// signaling storm, against both loss-based and model-based congestion
// control. The paper's Fig. 12 observation — the app-layer stall is a
// multiple of the signaling interruption — falls out of the ratio
// column. With cfg.Faults set, the custom plan is appended as an extra
// data point.
func runX9Outage(cfg Config) Result {
	d := bulkDur(cfg)
	nsaHO := handoff.ExpectedLatency(handoff.FiveToFive)
	ladder := []time.Duration{50 * time.Millisecond, nsaHO, 300 * time.Millisecond, time.Second, 3 * time.Second}
	ctrls := []string{"cubic", "bbr"}
	cols := 1 + len(ladder) // column 0 is the clean baseline
	// Each (controller, outage) cell is an independent DES world; the
	// grid fans out across cfg.Workers and merges in index order.
	runs := par.Map(cfg.Workers, len(ctrls)*cols, func(k int) transport.BulkResult {
		ci, oi := k/cols, k%cols
		var plan *fault.Plan
		if oi > 0 {
			plan = fault.Outage("x9-outage", 3*time.Second, ladder[oi-1])
		}
		return transport.RunBulk(faultPath(cfg, plan), ctrls[ci], d)
	})
	res := Result{ID: "X9", Title: "Outage vs stall", Values: map[string]float64{}}
	for ci, name := range ctrls {
		base := runs[ci*cols]
		res.Lines = append(res.Lines, line("%-6s clean: %6.1f Mb/s", name, base.ThroughputBps/1e6))
		res.Values[name+"CleanMbps"] = base.ThroughputBps / 1e6
		for oi, out := range ladder {
			r := runs[ci*cols+1+oi]
			stall := stallTime(r.RxRates)
			res.Lines = append(res.Lines, line("%-6s outage %6.0f ms: %6.1f Mb/s (%3.0f%% kept), stall %6.0f ms (%.1f× the outage)",
				name, float64(out)/1e6, r.ThroughputBps/1e6, 100*r.ThroughputBps/base.ThroughputBps,
				float64(stall)/1e6, float64(stall)/float64(out)))
			res.Values[line("%sStallMs@%.0f", name, float64(out)/1e6)] = float64(stall) / 1e6
		}
	}
	if cfg.Faults != nil {
		r := transport.RunBulk(faultPath(cfg, cfg.Faults), "bbr", d)
		res.Lines = append(res.Lines, line("custom plan %q (bbr): %6.1f Mb/s, stall %6.0f ms, injected outage %6.0f ms",
			cfg.Faults.Name, r.ThroughputBps/1e6, float64(stallTime(r.RxRates))/1e6,
			float64(cfg.Faults.OutageTotal())/1e6))
	}
	res.Lines = append(res.Lines,
		"§3.4: the data plane stalls for longer than the signaling interruption — RTO backoff and",
		line("cwnd collapse amplify the %0.0f ms NSA roll-back into app-layer outages", float64(nsaHO)/1e6))
	return res
}

// runX10Scenarios runs one bulk BBR flow through every fault.Scenario
// preset and compares it against the clean path: throughput retention,
// perceived stall, and — for the cell-failover preset — the radio-energy
// cost of dwelling on the 4G fallback envelope. The backhaul-brownout
// preset is additionally projected onto the wired probe model
// (wire.Degradation) to show what a traceroute would see.
func runX10Scenarios(cfg Config) Result {
	d := bulkDur(cfg)
	scens := fault.Scenarios()
	// Index 0 is the clean baseline; each scenario is its own DES world.
	runs := par.Map(cfg.Workers, 1+len(scens), func(k int) transport.BulkResult {
		var plan *fault.Plan
		if k > 0 {
			plan = scens[k-1].Plan()
		}
		return transport.RunBulk(faultPath(cfg, plan), "bbr", d)
	})
	base := runs[0]
	res := Result{ID: "X10", Title: "Scenario resilience (bbr)", Values: map[string]float64{}}
	res.Lines = append(res.Lines, line("%-18s %8.1f Mb/s", "clean", base.ThroughputBps/1e6))
	res.Values["cleanMbps"] = base.ThroughputBps / 1e6
	for i, s := range scens {
		r := runs[1+i]
		plan := s.Plan()
		res.Lines = append(res.Lines, line("%-18s %8.1f Mb/s (%3.0f%% kept), stall %6.0f ms, %d fault(s) over %.1f s",
			s, r.ThroughputBps/1e6, 100*r.ThroughputBps/base.ThroughputBps,
			float64(stallTime(r.RxRates))/1e6, len(plan.Faults), plan.Duration().Seconds()))
		res.Values[string(s)+"Kept"] = r.ThroughputBps / base.ThroughputBps
	}
	// Energy cost of failure-induced 4G fallback: same delivered-rate
	// series, 4G envelope inside the fallback window. Normalize per
	// delivered megabyte so the lower fallback rate doesn't hide the
	// costlier-per-bit 4G radio.
	cfPlan := fault.CellFailover.Plan()
	var cfRun transport.BulkResult
	for i, s := range scens {
		if s == fault.CellFailover {
			cfRun = runs[1+i]
		}
	}
	cleanJ := radioEnergyJ(base.RxRates, nil)
	cfJ := radioEnergyJ(cfRun.RxRates, cfPlan)
	cleanMB := base.ThroughputBps * d.Seconds() / 8e6
	cfMB := cfRun.ThroughputBps * d.Seconds() / 8e6
	res.Lines = append(res.Lines, line("cell-failover radio energy: %.1f J for %.0f MB (%.3f J/MB) vs clean %.1f J for %.0f MB (%.3f J/MB)",
		cfJ, cfMB, cfJ/cfMB, cleanJ, cleanMB, cleanJ/cleanMB))
	res.Values["failoverJPerMB"] = cfJ / cfMB
	res.Values["cleanJPerMB"] = cleanJ / cleanMB
	// What the brownout looks like to the wired probe model (Fig. 13).
	extra, scale := fault.BackhaulBrownout.Plan().WiredBrownout()
	srv := wire.Servers[0]
	clean := probeMeanRTT(wire.MeasureServer(radio.NR, srv, 30, cfg.Seed))
	brown := probeMeanRTT(wire.MeasureServerDegraded(radio.NR, srv, 30, cfg.Seed,
		wire.Degradation{ExtraRTT: extra, JitterScale: scale}))
	res.Lines = append(res.Lines, line("brownout on the probe path (%s): mean RTT %.1f ms → %.1f ms (+%.0f ms inflation, %.1f× jitter)",
		srv.Name, float64(clean)/1e6, float64(brown)/1e6, float64(brown-clean)/1e6, scale))
	res.Lines = append(res.Lines,
		"§4.2: the wired segment degrades rather than fails — loss-based TCP collapses first;",
		"§3.2+§6: losing the NR leg trades throughput for a costlier-per-bit 4G radio envelope")
	return res
}

func probeMeanRTT(ps []wire.Probe) time.Duration {
	var sum time.Duration
	for _, p := range ps {
		sum += p.RTT
	}
	return sum / time.Duration(len(ps))
}

// runX11Holes carves failed cells out of the coverage map and walks the
// hand-off campaign through the hole: the storm the paper's §3.2
// coverage holes imply — extra hand-offs, vertical drops to 4G, and
// 4G-only dwell time. The default hole fails the two NR cells the
// intact baseline walk leaned on hardest (a worst-case, seed-keyed
// hole); a cfg.Faults plan with CellFailure faults overrides it.
func runX11Holes(cfg Config) Result {
	hcfg := handoff.DefaultConfig()
	const walks = 2
	hcfg.Duration = 20 * time.Minute
	if cfg.Quick {
		hcfg.Duration = 6 * time.Minute
	}
	campus := deploy.New(cfg.Seed)
	baseCamp := handoff.RunCampaigns(campus, hcfg, cfg.Seed, walks, cfg.Workers)
	plan := cfg.Faults
	if len(plan.DownPCIs()) == 0 {
		plan = fault.CoverageHole("busiest-nr-cells", hcfg.Duration, busiestNRCells(baseCamp, 2)...)
	}
	holed := hcfg
	holed.CellDown = plan.CellDown
	holedCamp := handoff.RunCampaigns(campus, holed, cfg.Seed, walks, cfg.Workers)

	minutes := float64(walks) * hcfg.Duration.Minutes()
	walked := time.Duration(walks) * hcfg.Duration
	hoPerMin := func(c *handoff.Campaign) float64 { return float64(len(c.Events)) / minutes }
	verticals := func(c *handoff.Campaign) int {
		return len(c.ByKind(handoff.FiveToFour)) + len(c.ByKind(handoff.FourToFive))
	}
	res := Result{ID: "X11", Title: "Coverage-hole hand-off storm", Values: map[string]float64{}}
	res.Lines = append(res.Lines, line("hole plan %q: cells %v down, %d walks × %.0f min",
		plan.Name, plan.DownPCIs(), walks, hcfg.Duration.Minutes()))
	res.Lines = append(res.Lines, line("intact campus: %5.2f HOs/min, %3d vertical, 4G-only dwell %5.1f%%",
		hoPerMin(baseCamp), verticals(baseCamp), 100*float64(baseCamp.On4G)/float64(walked)))
	res.Lines = append(res.Lines, line("holed campus:  %5.2f HOs/min, %3d vertical, 4G-only dwell %5.1f%%",
		hoPerMin(holedCamp), verticals(holedCamp), 100*float64(holedCamp.On4G)/float64(walked)))
	res.Lines = append(res.Lines,
		"§3.2: 5G coverage holes don't just dent RSRP — they trigger hand-off churn and park the",
		"NSA phone on its 4G master, compounding into the §3.4 latency and §6 energy penalties")
	res.Values["hoPerMinBase"] = hoPerMin(baseCamp)
	res.Values["hoPerMinHoled"] = hoPerMin(holedCamp)
	res.Values["on4GFracHoled"] = float64(holedCamp.On4G) / float64(walked)
	res.Values["verticalHoled"] = float64(verticals(holedCamp))
	return res
}

// busiestNRCells ranks the NR cells by how often the campaign's
// hand-offs touched them and returns the top n — the cells whose failure
// hurts this walk the most. The ranking is a pure function of the
// campaign (ties break toward the lower PCI), so the derived hole keeps
// the determinism contract.
func busiestNRCells(c *handoff.Campaign, n int) []int {
	counts := map[int]int{}
	for _, e := range c.Events {
		switch e.Kind {
		case handoff.FiveToFive:
			counts[e.FromPCI]++
			counts[e.ToPCI]++
		case handoff.FiveToFour:
			counts[e.FromPCI]++
		case handoff.FourToFive:
			counts[e.ToPCI]++
		}
	}
	pcis := make([]int, 0, len(counts))
	for pci := range counts {
		pcis = append(pcis, pci)
	}
	sort.Slice(pcis, func(i, j int) bool {
		if counts[pcis[i]] != counts[pcis[j]] {
			return counts[pcis[i]] > counts[pcis[j]]
		}
		return pcis[i] < pcis[j]
	})
	if len(pcis) > n {
		pcis = pcis[:n]
	}
	sort.Ints(pcis)
	return pcis
}
