package fivegsim

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"fivegsim/internal/obs"
)

// sameResults asserts byte-identical reports: every Line and Value of
// every experiment must match between the two runs.
func sameResults(t *testing.T, want, got []Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: result %d is %s, want %s (paper order lost)", label, i, got[i].ID, want[i].ID)
		}
		if !reflect.DeepEqual(want[i].Lines, got[i].Lines) {
			t.Fatalf("%s: %s Lines differ between worker counts:\nserial: %q\nparallel: %q",
				label, want[i].ID, want[i].Lines, got[i].Lines)
		}
		if !reflect.DeepEqual(want[i].Values, got[i].Values) {
			t.Fatalf("%s: %s Values differ between worker counts:\nserial: %v\nparallel: %v",
				label, want[i].ID, want[i].Values, got[i].Values)
		}
	}
}

// TestExperimentParallelEquivalence is the determinism-equivalence
// contract at the facade: the same experiments, seeds and Quick mode
// must render identical Lines and Values for Workers=1 and Workers=8.
// The subset spans every parallelized code path that fits a test budget:
// coverage survey shards (T1, T2), hand-off campaign walks (F5), wire
// probe sweeps (F13, F15), the buffer-estimation pair (T3) and the
// population tick shards (X12).
func TestExperimentParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence sweep is not short-mode work")
	}
	ids := []string{"T1", "T2", "F5", "F13", "F15", "T3", "X12"}
	for _, seed := range []int64{1, 42, 7} {
		cfg := Config{Seed: seed, Quick: true, Workers: 1}
		serial, err := RunExperiments(cfg, ids...)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		parallel, err := RunExperiments(cfg, ids...)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, serial, parallel, fmt.Sprintf("seed %d", seed))
	}
}

// TestRunAllEquivalenceExhaustive is the acceptance check in full: every
// experiment, seeds {1, 42, 7}, Workers 1 vs 8, byte-identical reports.
// At ~2 minutes per quick RunAll it only runs when explicitly requested:
//
//	FIVEGSIM_EXHAUSTIVE=1 go test -run RunAllEquivalence -timeout 30m
func TestRunAllEquivalenceExhaustive(t *testing.T) {
	if os.Getenv("FIVEGSIM_EXHAUSTIVE") == "" {
		t.Skip("set FIVEGSIM_EXHAUSTIVE=1 to run the full RunAll equivalence sweep")
	}
	for _, seed := range []int64{1, 42, 7} {
		serial := RunAll(Config{Seed: seed, Quick: true, Workers: 1})
		parallel := RunAll(Config{Seed: seed, Quick: true, Workers: 8})
		sameResults(t, serial, parallel, "RunAll")
	}
}

// TestExperimentSeedSensitivity guards against a sharding bug that
// would silently decouple results from the seed (e.g. keying substreams
// by shard index alone).
func TestExperimentSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short-mode work")
	}
	a, err := RunExperiments(Config{Seed: 1, Quick: true, Workers: 4}, "T1", "F5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiments(Config{Seed: 2, Quick: true, Workers: 4}, "T1", "F5")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if reflect.DeepEqual(a[i].Values, b[i].Values) {
			t.Fatalf("%s: seeds 1 and 2 produced identical values %v", a[i].ID, a[i].Values)
		}
	}
}

// TestRunAllParallelRace exercises the shared-state paths — per-run
// sub-registries merged into one cfg.Obs, a shared Tracer, concurrent
// experiment dispatch — under the race detector's eye. It stays cheap
// (near-instant experiments only) and deliberately does NOT skip in
// short mode: `go test -race -short ./...` must cover it.
func TestRunAllParallelRace(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true, Workers: 8,
		Obs: obs.NewRegistry(), Trace: obs.NewTracer(1 << 12)}
	ids := []string{"F2", "F3", "F4", "F13", "F14", "F15", "F22", "F23"}
	results, err := RunExperiments(cfg, ids...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, res := range results {
		if res.ID != ids[i] {
			t.Fatalf("result %d is %s, want %s", i, res.ID, ids[i])
		}
	}
}

// TestRunExperimentsMergesObsInPaperOrder verifies the telemetry
// plumbing: each result's manifest snapshot covers its own run, and the
// campaign registry ends up with the merged totals.
func TestRunExperimentsMergesObsInPaperOrder(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true, Workers: 4, Obs: obs.NewRegistry()}
	results, err := RunExperiments(cfg, "F10", "F13")
	if err != nil {
		t.Fatal(err)
	}
	var perRun int64
	for _, res := range results {
		for _, m := range res.Manifest.Metrics {
			if m.Kind == "counter" {
				perRun += int64(m.Value)
			}
		}
	}
	var merged int64
	for _, m := range cfg.Obs.Snapshot() {
		if m.Kind == "counter" {
			merged += int64(m.Value)
		}
	}
	if merged == 0 {
		t.Fatal("campaign registry collected nothing")
	}
	if merged != perRun {
		t.Fatalf("merged counter total %d != sum of per-run totals %d", merged, perRun)
	}
}

// TestRunExperimentsUnknownID checks the subset API's error path.
func TestRunExperimentsUnknownID(t *testing.T) {
	if _, err := RunExperiments(QuickConfig(), "F13", "Z9"); err == nil {
		t.Fatal("unknown experiment id must be an error")
	}
}
