package fivegsim

import (
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/handoff"
	"fivegsim/internal/obs"
	"fivegsim/internal/pop"
	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
)

// The X12–X14 experiments lift the paper's single-probe methodology to
// population scale (internal/pop): a PPP-placed UE population contends
// for per-cell PRB budgets under the §6 traffic mix, and cell load,
// fairness and outage exposure become emergent properties instead of
// single-walk observations. X14 closes the loop: with the population
// degenerated to the paper's single probe, the pipeline reproduces the
// seed coverage and hand-off experiments bit-for-bit.
func init() {
	register("X12", "Population-scale cell-load distributions (PPP campus)", runX12CellLoad)
	register("X13", "Throughput fairness vs population size (Jain sweep)", runX13Fairness)
	register("X14", "Paper probe as the N=1 population special case", runX14Probe)
	register("X15", "Population dynamics: churn, A3 hand-off storms, load coupling", runX15Dynamics)
}

// popModel returns the campaign population model for a given size.
func popModel(n, ticks int) pop.Model {
	m := pop.DefaultModel()
	m.N = n
	m.Ticks = ticks
	return m
}

// popTelemetry wires the run's observability into a population run:
// pop.* instruments into cfg.Obs, tick spans into cfg.Trace, and — when
// the campaign streams progress — per-tick obs.ProgressTick events
// attributed to the experiment.
func popTelemetry(cfg Config, id string) pop.Telemetry {
	t := pop.Telemetry{Obs: cfg.Obs, Trace: cfg.Trace}
	if cfg.OnProgress != nil {
		t.OnTick = func(tick, total int) {
			cfg.OnProgress(obs.ProgressEvent{Kind: obs.ProgressTick,
				Experiment: id, Tick: tick, Ticks: total})
		}
	}
	return t
}

// x12Size returns X12's population size: Config.Population when set,
// otherwise the built-in Quick/full sizing.
func x12Size(cfg Config) int {
	if cfg.Population > 0 {
		return cfg.Population
	}
	if cfg.Quick {
		return 2000
	}
	return 20000
}

func runX12CellLoad(cfg Config) Result {
	n := x12Size(cfg)
	ticks := 100
	if cfg.Quick {
		ticks = 25
	}
	campus := deploy.New(cfg.Seed)
	p := pop.RunWith(campus, popModel(n, ticks), cfg.Seed, cfg.Workers, popTelemetry(cfg, "X12"))

	res := Result{ID: "X12", Title: "Population-scale cell-load distributions",
		Values: map[string]float64{}}
	res.Lines = append(res.Lines, line("population: %d UEs over %.2f km², %d ticks × %s",
		n, campus.AreaKm2(), ticks, p.Model.TickDur))
	for _, t := range []radio.Tech{radio.NR, radio.LTE} {
		u := p.UtilSamples(t, nil)
		res.Lines = append(res.Lines, line(
			"%-3s PRB utilization: mean %5.1f%%  p50 %5.1f%%  p90 %5.1f%%  p99 %5.1f%% (%d cell-tick samples)",
			t, 100*p.MeanUtil(t), 100*pop.Quantile(u, 0.50), 100*pop.Quantile(u, 0.90),
			100*pop.Quantile(u, 0.99), len(u)))
		res.Values["util"+t.String()] = p.MeanUtil(t)
	}
	thr := p.PerUEThroughputBps()
	var outage int
	for i := 0; i < p.Len(); i++ {
		if p.ServingPCI(i) == -1 {
			outage++
		}
	}
	res.Lines = append(res.Lines, line(
		"per-UE throughput: p10 %6.2f  p50 %6.2f  p90 %6.2f Mb/s   jain %.3f   outage %.2f%%",
		pop.Quantile(thr, 0.10)/1e6, pop.Quantile(thr, 0.50)/1e6, pop.Quantile(thr, 0.90)/1e6,
		pop.JainIndex(thr), 100*float64(outage)/float64(p.Len())))
	res.Values["jain"] = pop.JainIndex(thr)
	res.Values["outageFrac"] = float64(outage) / float64(p.Len())
	return res
}

// x13Sweep returns X13's population sizes, smallest first. The largest
// point is Config.Population when set.
func x13Sweep(cfg Config) []int {
	top := 50000
	ratios := []int{500, 50, 10, 1} // top/ratio, ascending
	if cfg.Quick {
		top = 5000
		ratios = []int{100, 10, 1}
	}
	if cfg.Population > 0 {
		top = cfg.Population
	}
	out := make([]int, 0, len(ratios))
	for _, r := range ratios {
		n := top / r
		if n < 1 {
			n = 1
		}
		if len(out) > 0 && n <= out[len(out)-1] {
			continue // degenerate override collapsed two points
		}
		out = append(out, n)
	}
	return out
}

func runX13Fairness(cfg Config) Result {
	ticks := 30
	if cfg.Quick {
		ticks = 15
	}
	campus := deploy.New(cfg.Seed)
	res := Result{ID: "X13", Title: "Throughput fairness vs population size",
		Values: map[string]float64{}}
	for _, n := range x13Sweep(cfg) {
		p := pop.RunWith(campus, popModel(n, ticks), cfg.Seed, cfg.Workers, popTelemetry(cfg, "X13"))
		thr := p.PerUEThroughputBps()
		j := pop.JainIndex(thr)
		res.Lines = append(res.Lines, line(
			"N=%6d: jain %.3f  p10 %7.2f  p50 %7.2f  p90 %7.2f Mb/s  NR util %5.1f%%",
			n, j, pop.Quantile(thr, 0.10)/1e6, pop.Quantile(thr, 0.50)/1e6,
			pop.Quantile(thr, 0.90)/1e6, 100*p.MeanUtil(radio.NR)))
		res.Values[line("jainN%d", n)] = j
	}
	res.Lines = append(res.Lines, line(
		"small N: fairness is mix-limited (saturating bulk UEs dwarf mostly-idle web UEs);"))
	res.Lines = append(res.Lines, line(
		"large N: the max-min split clamps bulk toward the common share, so Jain rises toward"))
	res.Lines = append(res.Lines, line(
		"the mix plateau while absolute per-UE throughput falls with contention"))
	return res
}

// x15Model builds the X15 dynamics model: churn in steady-state balance
// with the initial population (arrivals = N / mean lifetime), the ISP's
// 3 dB / 324 ms A3 configuration, and damped load coupling — the full
// pop.DefaultDynamics operating point at campaign scale.
func x15Model(n, ticks int) pop.Model {
	m := popModel(n, ticks)
	m.Churn = pop.ChurnModel{Enabled: true, ArrivalPerTick: float64(n) / 300, MeanLifetimeTicks: 300}
	m.A3 = pop.A3Model{Enabled: true, HysteresisDB: 3, TTTTicks: 3, PingPongWindowTicks: 10}
	m.LoadCoupling = pop.LoadCouplingModel{Enabled: true, Alpha: 0.3}
	return m
}

func runX15Dynamics(cfg Config) Result {
	n, ticks := 8000, 120
	if cfg.Quick {
		n, ticks = 1200, 30
	}
	if cfg.Population > 0 {
		n = cfg.Population
	}
	campus := deploy.New(cfg.Seed)
	m := x15Model(n, ticks)
	p := pop.RunWith(campus, m, cfg.Seed, cfg.Workers, popTelemetry(cfg, "X15"))

	res := Result{ID: "X15", Title: "Population dynamics: churn, A3 hand-off storms, load coupling",
		Values: map[string]float64{}}
	res.Lines = append(res.Lines, line(
		"population: %d UEs (arena %d), churn %.1f arrivals/tick × %g-tick mean lifetime, %d ticks",
		n, p.Capacity(), m.Churn.ArrivalPerTick, m.Churn.MeanLifetimeTicks, ticks))
	res.Lines = append(res.Lines, line(
		"A3: %.0f dB hysteresis, TTT %d ticks (paper: 3 dB / 324 ms); load EWMA α=%.1f",
		m.A3.HysteresisDB, m.A3.TTTTicks, m.LoadCoupling.Alpha))
	for _, l := range p.DynamicsLines() {
		res.Lines = append(res.Lines, "  "+l)
	}
	ho, pp := p.Handoffs()
	ueTicks := float64(p.Alive()) * float64(ticks) // live-set approximation of exposure
	if ueTicks > 0 {
		perUEMin := float64(ho) / (ueTicks * p.Model.TickDur.Minutes())
		res.Lines = append(res.Lines, line(
			"hand-off rate ≈ %.3f /UE·min; storm peak %d HOs in one tick (%.2f%% of live set)",
			perUEMin, p.PeakHandoffsPerTick(), 100*float64(p.PeakHandoffsPerTick())/float64(p.Alive())))
	}
	ppFrac := 0.0
	if ho > 0 {
		ppFrac = float64(pp) / float64(ho)
	}
	res.Lines = append(res.Lines, line(
		"ping-pong fraction %.1f%% (A→B→A within %d ticks — the paper's cell-edge oscillation)",
		100*ppFrac, m.A3.PingPongWindowTicks))
	res.Lines = append(res.Lines, line(
		"NR util %.1f%% / LTE util %.1f%% with load-coupled interference",
		100*p.MeanUtil(radio.NR), 100*p.MeanUtil(radio.LTE)))
	res.Values["alive"] = float64(p.Alive())
	res.Values["births"] = float64(p.Births())
	res.Values["deaths"] = float64(p.Deaths())
	res.Values["handoffs"] = float64(ho)
	res.Values["pingpongFrac"] = ppFrac
	res.Values["stormPeak"] = float64(p.PeakHandoffsPerTick())
	res.Values["utilNR"] = p.MeanUtil(radio.NR)
	return res
}

func runX14Probe(cfg Config) Result {
	campus := deploy.New(cfg.Seed)
	res := Result{ID: "X14", Title: "Paper probe as the N=1 population special case",
		Values: map[string]float64{}}

	// Coverage side: the population layer's probe survey is the seed
	// T1/T2 pipeline by construction — same samples, any Workers value.
	s := pop.ProbeSurvey(campus, surveySamples(cfg), cfg.Seed, cfg.Workers)
	nr := s.RSRPSummary(radio.NR)
	lte := s.RSRPSummary(radio.LTE)
	res.Lines = append(res.Lines, line("probe survey (N=1): 5G RSRP %s (paper −84.03 ± 11.72)", nr))
	res.Lines = append(res.Lines, line("                    4G RSRP %s (paper −84.84 ± 8.72)", lte))
	res.Values["rsrp5G"] = nr.Mean
	res.Values["rsrp4G"] = lte.Mean

	// Hand-off side: the probe campaign is the seed F5/F6 pipeline with
	// the same config and walk-seed ladder.
	hcfg := handoff.DefaultConfig()
	walks := 4
	hcfg.Duration = 40 * time.Minute
	if cfg.Quick {
		hcfg.Duration = 10 * time.Minute
		walks = 2
	}
	camp := pop.ProbeCampaign(campus, hcfg, cfg.Seed, walks, cfg.Workers)
	lat := camp.Latencies(handoff.FiveToFive)
	if len(lat) > 0 {
		sm := stats.Summarize(lat)
		res.Lines = append(res.Lines, line("probe campaign (N=1): 5G→5G hand-off latency %s ms (paper 108.40 ms)", sm))
		res.Values["latency5G5G"] = sm.Mean
	} else {
		res.Lines = append(res.Lines, line("probe campaign (N=1): no 5G→5G hand-offs in this run"))
	}
	res.Lines = append(res.Lines, line(
		"identical to the seed coverage/hand-off pipelines bit-for-bit (TestSingleUEMatchesProbePipeline"))
	res.Lines = append(res.Lines, line(
		"holds the population engine itself to radio.DLBitRate at surveyed positions)"))
	return res
}
