// Package transport implements the TCP engine that drives the congestion
// controllers of internal/cc over netsim paths: ACK clocking, SACK-based
// loss recovery, retransmission timeouts, optional pacing (BBR), and the
// receive-side bookkeeping of an iperf3-style sink with the paper's 25 MB
// receive buffer.
package transport

import (
	"time"

	"fivegsim/internal/cc"
	"fivegsim/internal/des"
	"fivegsim/internal/netsim"
)

// RcvBufBytes mirrors the paper's methodology: "We set the receiver's
// buffer size to 25 MB, which is enough to avoid the small initial
// receiving window problem".
const RcvBufBytes = 25 << 20

// CwndSample is one point of the Fig. 8 congestion-window trace.
type CwndSample struct {
	At   time.Duration
	Cwnd int
	// Retransmits is the cumulative retransmission count at this sample.
	Retransmits int64
}

// RateSample is a windowed receiver throughput measurement.
type RateSample struct {
	At  time.Duration
	Bps float64
}

type byteRange struct{ lo, hi int64 }

// Conn is a one-directional (server → UE) TCP connection over a netsim
// path.
type Conn struct {
	sch  *des.Scheduler
	path *netsim.Path
	ctrl cc.Controller

	// Sender state (bytes).
	una     int64 // lowest unacknowledged
	sp      int64 // next new byte to transmit
	maxSent int64 // highest byte ever sent
	limit   int64 // application bytes available (Bulk = unbounded)

	dupAcks      int
	inRecovery   bool
	recoverPoint int64
	retxNext     int64
	sacked       intervalSet // SACK scoreboard above una

	srtt, rttvar, rto time.Duration
	rtoTimer          des.Timer
	walkRestartAt     time.Duration
	repairProgressAt  time.Duration

	pacing     bool
	pacingBusy bool

	// Receiver state.
	rcvNext  int64
	ooo      intervalSet
	ackEvery int
	unacked  int

	// Stats.
	DeliveredBytes int64
	Retransmits    int64
	RTOs           int64
	LossEvents     int64
	CwndTrace      []CwndSample
	rxWindowBytes  int64
	rxWindows      []RateSample

	// Done fires once when limit bytes have been acknowledged.
	Done   func(at time.Duration)
	doneAt time.Duration
	fired  bool
}

// minRTO guards the retransmission timer (Linux: 200 ms).
const minRTO = 200 * time.Millisecond

// Bulk marks an unbounded transfer.
const Bulk = int64(1) << 62

// NewConn creates a connection on the path using the named congestion
// controller. limit is the transfer size in bytes (use Bulk for an
// unbounded iperf-style flow).
func NewConn(sch *des.Scheduler, path *netsim.Path, ctrlName string, limit int64) *Conn {
	c := &Conn{
		sch: sch, path: path, ctrl: cc.New(ctrlName), limit: limit,
		rto: time.Second, ackEvery: 2,
	}
	if c.ctrl == nil {
		panic("transport: unknown congestion controller " + ctrlName)
	}
	c.ctrl = cc.Instrument(c.ctrl, path.Cfg.Obs)
	c.pacing = c.ctrl.PacingRate() > 0
	path.ToUE = netsim.ReceiverFunc(c.onData)
	path.ToServer = netsim.ReceiverFunc(c.onAck)
	return c
}

// Start begins transmission and installs periodic bookkeeping (cwnd trace
// sampling every 50 ms, receiver-throughput windows every 100 ms).
func (c *Conn) Start() {
	var sampleCwnd func()
	sampleCwnd = func() {
		c.CwndTrace = append(c.CwndTrace, CwndSample{At: c.sch.Now(), Cwnd: c.ctrl.Cwnd(), Retransmits: c.Retransmits})
		c.sch.After(50*time.Millisecond, sampleCwnd)
	}
	sampleCwnd()
	var sampleRate func()
	sampleRate = func() {
		c.rxWindows = append(c.rxWindows, RateSample{At: c.sch.Now(), Bps: float64(c.rxWindowBytes*8) / 0.1})
		c.rxWindowBytes = 0
		c.sch.After(100*time.Millisecond, sampleRate)
	}
	c.sch.After(100*time.Millisecond, sampleRate)

	if c.pacing {
		c.paceLoop()
	} else {
		c.trySend()
	}
	c.armRTO()
}

// RxRates returns the 100 ms receiver throughput series.
func (c *Conn) RxRates() []RateSample { return c.rxWindows }

// FinishedAt returns when the transfer completed (zero if still running).
func (c *Conn) FinishedAt() time.Duration { return c.doneAt }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// pipe estimates bytes actually in flight (sent, not acked, not SACKed).
func (c *Conn) pipe() int64 { return c.sp - c.una - c.sacked.Total() }

// window returns the effective window in bytes.
func (c *Conn) window() int64 {
	wnd := int64(c.ctrl.Cwnd())
	if wnd > RcvBufBytes {
		wnd = RcvBufBytes
	}
	return wnd
}

// sendSegment transmits one segment starting at seq.
func (c *Conn) sendSegment(seq int64, retx bool) {
	size := int64(netsim.MSS)
	if seq+size > c.limit {
		size = c.limit - seq
	}
	if size <= 0 {
		return
	}
	c.path.ServerIngress.Receive(&netsim.Packet{
		FlowID: 1, Seq: seq, Len: int(size), Wire: int(size) + netsim.HeaderBytes,
		SentAt: c.sch.Now(), Retransmit: retx,
	})
	if retx {
		c.Retransmits++
	}
}

// retransmitHoles resends up to budget unSACKed segments below the
// recovery point (the SACK scoreboard walk). If the walk has reached the
// recovery point but holes remain (a retransmission was lost again during
// an ongoing overflow episode), the walk restarts after an RTT without
// cumulative-ACK progress — the role DSACK/RACK play in production stacks.
// It returns the number of segments actually retransmitted.
func (c *Conn) retransmitHoles(budget int) int {
	if c.retxNext < c.una {
		c.retxNext = c.una
	}
	if c.retxNext >= c.recoverPoint && c.una < c.recoverPoint {
		rtt := c.srtt
		if rtt < 10*time.Millisecond {
			rtt = 10 * time.Millisecond
		}
		now := c.sch.Now()
		if now-c.walkRestartAt > rtt && now-c.repairProgressAt > rtt {
			c.retxNext = c.una
			c.walkRestartAt = now
		}
	}
	sent := 0
	for sent < budget && c.retxNext < c.recoverPoint {
		end := c.retxNext + int64(netsim.MSS)
		if end > c.recoverPoint {
			end = c.recoverPoint
		}
		if !c.sacked.Covers(c.retxNext, end) {
			c.sendSegment(c.retxNext, true)
			sent++
		} else if r, ok := c.sacked.NextAbove(c.retxNext); ok && r.lo <= c.retxNext && r.hi > end {
			// Skip the whole SACKed run instead of stepping MSS by MSS.
			end = r.hi - (r.hi-c.retxNext)%int64(netsim.MSS)
			if end <= c.retxNext {
				end = c.retxNext + int64(netsim.MSS)
			}
		}
		c.retxNext = end
	}
	return sent
}

// trySend transmits new data as window and application data allow.
func (c *Conn) trySend() {
	for c.pipe() < c.window() && c.sp < c.limit {
		c.sendSegment(c.sp, false)
		c.sp += int64(netsim.MSS)
		if c.sp > c.limit {
			c.sp = c.limit
		}
		if c.sp > c.maxSent {
			c.maxSent = c.sp
		}
	}
}

// paceLoop emits one segment per pacing interval while the window allows.
func (c *Conn) paceLoop() {
	if c.pacingBusy {
		return
	}
	c.pacingBusy = true
	var tick func()
	tick = func() {
		rate := c.ctrl.PacingRate()
		if rate <= 0 {
			rate = 1e6
		}
		sent := false
		// Hole repairs take priority over new data and share the pacing
		// budget, so recovery does not burst into full queues.
		if c.inRecovery && c.retransmitHoles(1) > 0 {
			sent = true
		} else if c.pipe() < c.window() && c.sp < c.limit {
			c.sendSegment(c.sp, false)
			c.sp += int64(netsim.MSS)
			if c.sp > c.limit {
				c.sp = c.limit
			}
			if c.sp > c.maxSent {
				c.maxSent = c.sp
			}
			sent = true
		}
		interval := time.Duration(float64((netsim.MSS+netsim.HeaderBytes)*8) / rate * float64(time.Second))
		if !sent {
			// Window-blocked: poll at a fine grain so the ACK clock
			// restarts us promptly.
			interval = 500 * time.Microsecond
		}
		c.sch.After(interval, tick)
	}
	tick()
}

// onData runs at the UE for every arriving data packet.
func (c *Conn) onData(p *netsim.Packet) {
	if p.Ack {
		return
	}
	end := p.Seq + int64(p.Len)
	inOrder := false
	if p.Seq <= c.rcvNext {
		if end > c.rcvNext {
			c.rcvNext = end
			inOrder = true
			c.rxWindowBytes += int64(p.Len)
		}
		// Pull any out-of-order ranges now contiguous.
		if r, ok := c.ooo.NextAbove(c.rcvNext); ok && r.lo <= c.rcvNext {
			c.rcvNext = r.hi
		}
		c.ooo.TrimBelow(c.rcvNext)
	} else {
		c.ooo.Add(p.Seq, end)
		c.rxWindowBytes += int64(p.Len)
	}

	// ACK policy: every ackEvery in-order segments, immediately on
	// out-of-order arrivals (to report SACK blocks fast).
	c.unacked++
	if !inOrder || c.ooo.Len() > 0 || c.unacked >= c.ackEvery {
		c.unacked = 0
		echo := p.SentAt
		if p.Retransmit {
			echo = 0 // Karn's rule: no RTT samples from retransmits
		}
		ack := &netsim.Packet{
			FlowID: 1, Ack: true, AckSeq: c.rcvNext,
			Wire: netsim.HeaderBytes, SentAt: c.sch.Now(), EchoTS: echo,
		}
		// Report the full out-of-order map. Real TCP fits only 3-4 SACK
		// blocks per ACK but accumulates complete coverage across the ACK
		// stream; carrying the full (coalesced, drop-tail losses are
		// contiguous runs) map per ACK models that endpoint behaviour
		// without simulating option-space packing.
		for _, r := range c.ooo.ranges {
			ack.Sack = append(ack.Sack, [2]int64{r.lo, r.hi})
		}
		c.path.UEIngress.Receive(ack)
	}
}

// onAck runs at the server for every returning ACK.
func (c *Conn) onAck(p *netsim.Packet) {
	if !p.Ack {
		return
	}
	now := c.sch.Now()
	if p.EchoTS > 0 {
		c.updateRTT(now - p.EchoTS)
	}
	if p.Sack != nil {
		// The ACK carries the receiver's complete out-of-order map, so the
		// scoreboard is replaced, not merged.
		c.sacked.Replace(p.Sack, c.una)
	}
	advanced := p.AckSeq > c.una
	if advanced {
		acked := int(p.AckSeq - c.una)
		c.una = p.AckSeq
		if c.sp < c.una {
			c.sp = c.una
		}
		c.DeliveredBytes = c.una
		c.dupAcks = 0
		c.repairProgressAt = now
		c.sacked.TrimBelow(c.una)
		rtt := c.srtt
		if rtt == 0 {
			rtt = 40 * time.Millisecond
		}
		if c.inRecovery && c.una >= c.recoverPoint {
			c.inRecovery = false
		}
		c.ctrl.OnAck(now, acked, rtt, int(c.pipe()))
		c.armRTO()
		if !c.fired && c.una >= c.limit {
			c.fired = true
			c.doneAt = now
			c.rtoTimer.Cancel()
			if c.Done != nil {
				c.Done(now)
			}
		}
	} else if p.AckSeq == c.una && c.una < c.maxSent {
		c.dupAcks++
	}

	// Loss detection: SACK reporting ≥3 segments above a hole
	// (RFC 6675-style). Raw duplicate ACKs are not used — duplicate
	// arrivals of spuriously retransmitted data would trigger false
	// recoveries.
	if !c.inRecovery && c.una < c.maxSent &&
		c.sacked.Total() > 3*netsim.MSS {
		c.inRecovery = true
		c.LossEvents++
		c.recoverPoint = c.maxSent
		c.retxNext = c.una
		c.ctrl.OnLoss(now, int(c.pipe()))
		if !c.pacing {
			c.retransmitHoles(2)
		}
	} else if c.inRecovery && !c.pacing {
		c.retransmitHoles(2)
	}

	if !c.pacing {
		c.trySend()
	}
}

// updateRTT applies the Jacobson/Karels estimator.
func (c *Conn) updateRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := c.srtt - sample
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
}

func (c *Conn) armRTO() {
	c.rtoTimer.Cancel()
	if c.una >= c.limit {
		return
	}
	c.rtoTimer = c.sch.After(c.rto, c.onRTO)
}

func (c *Conn) onRTO() {
	if c.una >= c.maxSent || c.una >= c.limit {
		c.armRTO()
		return
	}
	c.RTOs++
	c.ctrl.OnRTO(c.sch.Now())
	c.inRecovery = false
	c.dupAcks = 0
	c.sacked.Clear() // conservative: forget SACK state
	c.sp = c.una     // go-back-N
	c.sendSegment(c.una, true)
	c.rto *= 2
	if c.rto > 60*time.Second {
		c.rto = 60 * time.Second
	}
	if !c.pacing {
		c.trySend()
	}
	c.armRTO()
}
