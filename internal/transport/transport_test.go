package transport

import (
	"testing"
	"testing/quick"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
)

func TestIntervalSetAddAndCoalesce(t *testing.T) {
	var s intervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	s.Add(20, 30) // bridges the gap
	if s.Len() != 1 || s.Total() != 30 {
		t.Fatalf("coalesce failed: len=%d total=%d", s.Len(), s.Total())
	}
	if !s.Covers(10, 40) || s.Covers(9, 11) {
		t.Fatal("Covers wrong")
	}
	s.TrimBelow(25)
	if s.Total() != 15 {
		t.Fatalf("TrimBelow total = %d, want 15", s.Total())
	}
	r, ok := s.NextAbove(0)
	if !ok || r.lo != 25 || r.hi != 40 {
		t.Fatalf("NextAbove = %+v", r)
	}
}

func TestIntervalSetProperties(t *testing.T) {
	f := func(pairs []uint16) bool {
		var s intervalSet
		type iv struct{ lo, hi int64 }
		var added []iv
		for i := 0; i+1 < len(pairs); i += 2 {
			lo := int64(pairs[i])
			hi := lo + int64(pairs[i+1]%100) + 1
			s.Add(lo, hi)
			added = append(added, iv{lo, hi})
		}
		// Invariants: sorted, disjoint, total = covered bytes, everything
		// added is covered.
		var total int64
		prev := int64(-1)
		for _, r := range s.ranges {
			if r.lo <= prev || r.hi <= r.lo {
				return false
			}
			prev = r.hi
			total += r.hi - r.lo
		}
		if total != s.Total() {
			return false
		}
		for _, a := range added {
			if !s.Covers(a.lo, a.hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetReplace(t *testing.T) {
	var s intervalSet
	s.Add(0, 100)
	s.Replace([][2]int64{{10, 20}, {30, 40}}, 15)
	if s.Total() != 15 { // [15,20) + [30,40)
		t.Fatalf("Replace total = %d, want 15", s.Total())
	}
}

func TestTransferCompletesLossless(t *testing.T) {
	// A clean path (no cross traffic) must deliver exactly and complete.
	cfg := netsim.DefaultPath(radio.NR, true)
	cfg.Cross = netsim.CrossConfig{} // disabled
	size := int64(3 << 20)
	done, ok := RunTransfer(cfg, "cubic", size, 30*time.Second)
	if !ok {
		t.Fatal("transfer did not complete")
	}
	// 3 MB at ≥100 Mb/s plus slow start: well under 2 s.
	if done > 2*time.Second {
		t.Fatalf("3 MB took %v", done)
	}
	// And it cannot beat the bandwidth bound.
	if min := time.Duration(float64(size*8) / cfg.RANRateBps * float64(time.Second)); done < min {
		t.Fatalf("transfer faster than link rate: %v < %v", done, min)
	}
}

func TestTransferAllControllersComplete(t *testing.T) {
	cfg := netsim.DefaultPath(radio.LTE, true)
	cfg.Cross = netsim.CrossConfig{}
	for _, name := range []string{"reno", "cubic", "vegas", "veno", "bbr"} {
		if _, ok := RunTransfer(cfg, name, 1<<20, 30*time.Second); !ok {
			t.Fatalf("%s: 1 MB transfer did not complete", name)
		}
	}
}

func TestSACKRecoveryUnderForcedBurstLoss(t *testing.T) {
	// Drop a contiguous burst mid-flight via a tiny bottleneck buffer and
	// verify the transfer still completes exactly.
	cfg := netsim.DefaultPath(radio.NR, true)
	cfg.Cross = netsim.CrossConfig{}
	cfg.BottleneckBufferBytes = 40_000 // tiny: slow-start overshoot must burst-drop
	sch := des.New()
	path := netsim.NewPath(sch, cfg)
	conn := NewConn(sch, path, "cubic", 4<<20)
	var done time.Duration
	conn.Done = func(at time.Duration) { done = at }
	conn.Start()
	sch.RunUntil(30 * time.Second)
	if done == 0 {
		t.Fatalf("transfer stuck (delivered %d bytes, retx %d, rtos %d)",
			conn.DeliveredBytes, conn.Retransmits, conn.RTOs)
	}
	if conn.Retransmits == 0 {
		t.Fatal("expected burst losses and retransmissions")
	}
}

func baseline(tech radio.Tech) float64 {
	if tech == radio.NR {
		return 820e6
	}
	return 128e6
}

func TestFig7UtilizationShape5G(t *testing.T) {
	cfg := netsim.DefaultPath(radio.NR, true)
	dur := 12 * time.Second
	util := map[string]float64{}
	for _, name := range []string{"reno", "cubic", "vegas", "veno", "bbr"} {
		util[name] = RunBulk(cfg, name, dur).Utilization(baseline(radio.NR))
	}
	// The headline (§4.1): loss/delay-based TCP under 32 % utilization on
	// 5G while BBR stays high.
	for _, name := range []string{"reno", "cubic", "vegas", "veno"} {
		if util[name] >= 0.32 {
			t.Errorf("5G %s utilization = %.1f%%, paper reports <32%%", name, 100*util[name])
		}
		if util[name] < 0.03 {
			t.Errorf("5G %s utilization = %.1f%%, implausibly dead", name, 100*util[name])
		}
	}
	if util["bbr"] < 0.60 {
		t.Errorf("5G bbr utilization = %.1f%%, paper reports 82.5%%", 100*util["bbr"])
	}
	if util["bbr"] < 2.2*util["cubic"] {
		t.Errorf("bbr (%.2f) should dwarf cubic (%.2f) on 5G", util["bbr"], util["cubic"])
	}
	if util["cubic"] < util["vegas"] {
		t.Errorf("cubic (%.2f) should beat vegas (%.2f)", util["cubic"], util["vegas"])
	}
}

func TestFig7UtilizationShape4G(t *testing.T) {
	cfg := netsim.DefaultPath(radio.LTE, true)
	dur := 12 * time.Second
	util := map[string]float64{}
	for _, name := range []string{"reno", "cubic", "bbr"} {
		util[name] = RunBulk(cfg, name, dur).Utilization(baseline(radio.LTE))
	}
	// Paper: 52.9 % / 64.4 % / 79.1 % — loss-based TCP works acceptably on
	// 4G, unlike on 5G.
	if util["reno"] < 0.33 || util["reno"] > 0.75 {
		t.Errorf("4G reno utilization = %.1f%%, paper 52.9%%", 100*util["reno"])
	}
	if util["cubic"] < 0.45 || util["cubic"] > 0.92 {
		t.Errorf("4G cubic utilization = %.1f%%, paper 64.4%%", 100*util["cubic"])
	}
	if util["bbr"] < 0.55 {
		t.Errorf("4G bbr utilization = %.1f%%, paper 79.1%%", 100*util["bbr"])
	}
	if util["cubic"] < util["reno"] {
		t.Errorf("cubic (%.2f) should beat reno (%.2f) on 4G", util["cubic"], util["reno"])
	}
}

func TestLossBasedTCPDoesBetterOn4G(t *testing.T) {
	dur := 12 * time.Second
	nr := RunBulk(netsim.DefaultPath(radio.NR, true), "cubic", dur).Utilization(baseline(radio.NR))
	lte := RunBulk(netsim.DefaultPath(radio.LTE, true), "cubic", dur).Utilization(baseline(radio.LTE))
	if lte < 1.5*nr {
		t.Fatalf("cubic 4G util (%.2f) should far exceed its 5G util (%.2f)", lte, nr)
	}
}

func TestFig8CwndEvolution(t *testing.T) {
	cfg := netsim.DefaultPath(radio.NR, true)
	dur := 15 * time.Second
	bbr := RunBulk(cfg, "bbr", dur)
	cubic := RunBulk(cfg, "cubic", dur)
	// Fig. 8: BBR's cwnd sits high after startup; Cubic's never reaches a
	// reasonable level due to repeated multiplicative decreases.
	tail := func(tr []CwndSample, from time.Duration) float64 {
		var sum float64
		n := 0
		for _, s := range tr {
			if s.At >= from {
				sum += float64(s.Cwnd)
				n++
			}
		}
		return sum / float64(n)
	}
	bbrTail := tail(bbr.CwndTrace, 8*time.Second)
	cubicTail := tail(cubic.CwndTrace, 8*time.Second)
	if bbrTail < 3*cubicTail {
		t.Fatalf("BBR steady cwnd (%.0f KB) should dwarf Cubic's (%.0f KB)", bbrTail/1e3, cubicTail/1e3)
	}
	if cubic.LossEvents < 3 {
		t.Fatalf("Cubic loss events = %d; Fig. 8 shows frequent multiplicative decreases", cubic.LossEvents)
	}
	if cubic.Retransmits == 0 {
		t.Fatal("Cubic shows no retransmissions")
	}
}

func TestBufferSizingRemedy(t *testing.T) {
	// §4.2 remedy: "the buffer size in the wired network part should be
	// increased 2× to accommodate 5G". Doubling the bottleneck buffer must
	// substantially improve Cubic's 5G utilization.
	dur := 12 * time.Second
	small := netsim.DefaultPath(radio.NR, true)
	big := small
	big.BottleneckBufferBytes *= 2
	u1 := RunBulk(small, "cubic", dur).Utilization(baseline(radio.NR))
	u2 := RunBulk(big, "cubic", dur).Utilization(baseline(radio.NR))
	if u2 < 1.25*u1 {
		t.Fatalf("2× buffer: cubic util %.1f%% → %.1f%%, want ≥1.25× improvement", 100*u1, 100*u2)
	}
}

func TestRunTransferTimesOut(t *testing.T) {
	cfg := netsim.DefaultPath(radio.LTE, true)
	cfg.Cross = netsim.CrossConfig{}
	// 100 MB cannot finish in 100 ms.
	if _, ok := RunTransfer(cfg, "cubic", 100<<20, 100*time.Millisecond); ok {
		t.Fatal("impossible transfer reported complete")
	}
}
