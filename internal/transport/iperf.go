package transport

import (
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/netsim"
)

// BulkResult summarizes an iperf3-style bulk TCP run (Fig. 7/8).
type BulkResult struct {
	Controller    string
	ThroughputBps float64 // receiver goodput over the run
	Retransmits   int64
	RTOs          int64
	LossEvents    int64
	CwndTrace     []CwndSample
	RxRates       []RateSample
	MeanRTT       time.Duration
}

// Utilization returns throughput as a fraction of the given UDP baseline.
func (r BulkResult) Utilization(baselineBps float64) float64 {
	if baselineBps <= 0 {
		return 0
	}
	return r.ThroughputBps / baselineBps
}

// RunBulk runs one bulk flow with the named controller over a fresh path
// for the given duration.
func RunBulk(cfg netsim.PathConfig, ctrlName string, duration time.Duration) BulkResult {
	sch := des.New()
	path := netsim.NewPath(sch, cfg)
	conn := NewConn(sch, path, ctrlName, Bulk)
	conn.Start()
	sch.RunUntil(duration)
	res := BulkResult{
		Controller:    ctrlName,
		ThroughputBps: float64(conn.DeliveredBytes*8) / duration.Seconds(),
		Retransmits:   conn.Retransmits,
		RTOs:          conn.RTOs,
		LossEvents:    conn.LossEvents,
		CwndTrace:     conn.CwndTrace,
		RxRates:       conn.RxRates(),
		MeanRTT:       conn.SRTT(),
	}
	return res
}

// RunTransfer downloads exactly size bytes and returns the completion
// time (the building block of the web page-load model).
func RunTransfer(cfg netsim.PathConfig, ctrlName string, size int64, maxWait time.Duration) (time.Duration, bool) {
	sch := des.New()
	path := netsim.NewPath(sch, cfg)
	conn := NewConn(sch, path, ctrlName, size)
	done := time.Duration(0)
	conn.Done = func(at time.Duration) { done = at; sch.Stop() }
	conn.Start()
	sch.RunUntil(maxWait)
	if done == 0 {
		return maxWait, false
	}
	return done, true
}
