package transport

import "sort"

// intervalSet is a sorted list of disjoint, non-adjacent half-open byte
// ranges. It backs both the receiver's out-of-order map and the sender's
// SACK scoreboard.
type intervalSet struct {
	ranges []byteRange
	total  int64 // cached covered bytes
}

// Add inserts [lo, hi), coalescing with neighbours.
func (s *intervalSet) Add(lo, hi int64) {
	if hi <= lo {
		return
	}
	// Find insertion window: all ranges overlapping or adjacent to [lo,hi).
	i := sort.Search(len(s.ranges), func(k int) bool { return s.ranges[k].hi >= lo })
	j := i
	for j < len(s.ranges) && s.ranges[j].lo <= hi {
		if s.ranges[j].lo < lo {
			lo = s.ranges[j].lo
		}
		if s.ranges[j].hi > hi {
			hi = s.ranges[j].hi
		}
		s.total -= s.ranges[j].hi - s.ranges[j].lo
		j++
	}
	s.ranges = append(s.ranges[:i], append([]byteRange{{lo, hi}}, s.ranges[j:]...)...)
	s.total += hi - lo
}

// TrimBelow removes coverage below seq.
func (s *intervalSet) TrimBelow(seq int64) {
	out := s.ranges[:0]
	var total int64
	for _, r := range s.ranges {
		if r.hi <= seq {
			continue
		}
		if r.lo < seq {
			r.lo = seq
		}
		out = append(out, r)
		total += r.hi - r.lo
	}
	s.ranges = out
	s.total = total
}

// Covers reports whether [lo, hi) is entirely covered.
func (s *intervalSet) Covers(lo, hi int64) bool {
	i := sort.Search(len(s.ranges), func(k int) bool { return s.ranges[k].hi > lo })
	return i < len(s.ranges) && s.ranges[i].lo <= lo && hi <= s.ranges[i].hi
}

// NextAbove returns the first covered range ending after seq, or ok=false.
func (s *intervalSet) NextAbove(seq int64) (byteRange, bool) {
	i := sort.Search(len(s.ranges), func(k int) bool { return s.ranges[k].hi > seq })
	if i >= len(s.ranges) {
		return byteRange{}, false
	}
	return s.ranges[i], true
}

// Total returns the covered byte count.
func (s *intervalSet) Total() int64 { return s.total }

// Len returns the number of disjoint ranges.
func (s *intervalSet) Len() int { return len(s.ranges) }

// Clear empties the set.
func (s *intervalSet) Clear() {
	s.ranges = s.ranges[:0]
	s.total = 0
}

// Replace overwrites the set with the given disjoint sorted ranges clipped
// to lie above floor.
func (s *intervalSet) Replace(blocks [][2]int64, floor int64) {
	s.ranges = s.ranges[:0]
	s.total = 0
	for _, b := range blocks {
		lo, hi := b[0], b[1]
		if hi <= floor {
			continue
		}
		if lo < floor {
			lo = floor
		}
		s.ranges = append(s.ranges, byteRange{lo, hi})
		s.total += hi - lo
	}
}
