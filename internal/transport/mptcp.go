package transport

import (
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/netsim"
)

// MPTCP is the multipath extension the paper flags as future work twice:
// "dynamic 4G-5G switching may also be a use case for MPTCP [53], which
// is an interesting topic particularly considering the long-term 4G/5G
// coexistence" (§6.3). This implementation runs one subflow per radio on
// a shared simulated clock and aggregates their delivery — the
// capacity-pooling configuration of MPTCP with decoupled per-subflow
// congestion control (each subflow runs its own controller, as Linux's
// default scheduler does for disjoint bottlenecks; the 4G and 5G paths
// share no queue in the NSA data plane, so coupling would only slow the
// aggregate down).
type MPTCP struct {
	sch      *des.Scheduler
	subflows []*Conn
}

// MPTCPResult summarizes a dual-radio bulk run.
type MPTCPResult struct {
	TotalBps   float64
	PerPathBps []float64
	// AggregationEfficiency is TotalBps over the sum of what each path
	// achieves alone.
	AggregationEfficiency float64
}

// NewMPTCP builds subflows, one per path, all using the named controller.
// The paths must share the scheduler.
func NewMPTCP(sch *des.Scheduler, paths []*netsim.Path, ctrlName string) *MPTCP {
	m := &MPTCP{sch: sch}
	for _, p := range paths {
		m.subflows = append(m.subflows, NewConn(sch, p, ctrlName, Bulk))
	}
	return m
}

// Start launches every subflow.
func (m *MPTCP) Start() {
	for _, c := range m.subflows {
		c.Start()
	}
}

// DeliveredBytes returns the aggregate in-order bytes across subflows.
func (m *MPTCP) DeliveredBytes() int64 {
	var n int64
	for _, c := range m.subflows {
		n += c.DeliveredBytes
	}
	return n
}

// RunMPTCPBulk runs a dual-path bulk transfer (one subflow per config)
// and compares against the single-path throughputs.
func RunMPTCPBulk(cfgs []netsim.PathConfig, ctrlName string, duration time.Duration) MPTCPResult {
	sch := des.New()
	paths := make([]*netsim.Path, len(cfgs))
	for i, cfg := range cfgs {
		paths[i] = netsim.NewPath(sch, cfg)
	}
	m := NewMPTCP(sch, paths, ctrlName)
	m.Start()
	sch.RunUntil(duration)

	res := MPTCPResult{}
	var soloSum float64
	for i, c := range m.subflows {
		bps := float64(c.DeliveredBytes*8) / duration.Seconds()
		res.PerPathBps = append(res.PerPathBps, bps)
		res.TotalBps += bps
		solo := RunBulk(cfgs[i], ctrlName, duration)
		soloSum += solo.ThroughputBps
	}
	if soloSum > 0 {
		res.AggregationEfficiency = res.TotalBps / soloSum
	}
	return res
}
