package transport

import (
	"testing"
	"time"

	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
)

func TestMPTCPAggregatesCapacity(t *testing.T) {
	cfgs := []netsim.PathConfig{
		netsim.DefaultPath(radio.NR, true),
		netsim.DefaultPath(radio.LTE, true),
	}
	cfgs[1].Seed = 2 // independent cross-traffic processes
	res := RunMPTCPBulk(cfgs, "bbr", 10*time.Second)
	if len(res.PerPathBps) != 2 {
		t.Fatalf("subflows = %d", len(res.PerPathBps))
	}
	// The aggregate must beat the best single path: that is MPTCP's point.
	best := res.PerPathBps[0]
	if res.PerPathBps[1] > best {
		best = res.PerPathBps[1]
	}
	if res.TotalBps <= best {
		t.Fatalf("aggregate %.0f Mb/s does not exceed best path %.0f Mb/s", res.TotalBps/1e6, best/1e6)
	}
	// Subflows on disjoint paths should aggregate near-losslessly.
	if res.AggregationEfficiency < 0.85 || res.AggregationEfficiency > 1.15 {
		t.Fatalf("aggregation efficiency = %.2f", res.AggregationEfficiency)
	}
	// Both radios contribute.
	if res.PerPathBps[0] < 100e6 {
		t.Fatalf("5G subflow only %.0f Mb/s", res.PerPathBps[0]/1e6)
	}
	if res.PerPathBps[1] < 20e6 {
		t.Fatalf("4G subflow only %.0f Mb/s", res.PerPathBps[1]/1e6)
	}
}

func TestMPTCPSingleSubflowMatchesTCP(t *testing.T) {
	cfg := netsim.DefaultPath(radio.LTE, true)
	cfg.Cross = netsim.CrossConfig{}
	m := RunMPTCPBulk([]netsim.PathConfig{cfg}, "cubic", 6*time.Second)
	single := RunBulk(cfg, "cubic", 6*time.Second)
	ratio := m.TotalBps / single.ThroughputBps
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("one-subflow MPTCP deviates from plain TCP: %.2f", ratio)
	}
}
