package coverage

import (
	"testing"

	"fivegsim/internal/deploy"
)

func TestCellContourShape(t *testing.T) {
	c := deploy.New(42)
	cell := c.CellByPCI(72)
	rings := CellContour(c, cell, 40, 320, 7)
	if len(rings) != 8 {
		t.Fatalf("rings = %d", len(rings))
	}
	// Fig. 2b shape: bit-rate decreases outward; the cell becomes unusable
	// beyond its ≈230 m radius.
	if rings[0].MeanBps < rings[5].MeanBps {
		t.Fatalf("inner ring (%.0f Mb/s) should beat ring 5 (%.0f Mb/s)",
			rings[0].MeanBps/1e6, rings[5].MeanBps/1e6)
	}
	if rings[0].UsableFrac < 0.9 {
		t.Fatalf("inner ring usable fraction = %.2f", rings[0].UsableFrac)
	}
	last := rings[len(rings)-1]
	if last.UsableFrac > 0.4 {
		t.Fatalf("ring beyond the service radius still %.0f%% usable", 100*last.UsableFrac)
	}
	// Near-cell bit-rate approaches Gbps inside the sector's field of
	// view; the ring mean includes back-lobe samples, so the bar is lower
	// than the 1000–1200 Mb/s contour bands of Fig. 2b.
	if rings[0].MeanBps < 450e6 {
		t.Fatalf("inner-ring bit-rate = %.0f Mb/s", rings[0].MeanBps/1e6)
	}
}
