// Package coverage implements the paper's §3 coverage study: the blanket
// walking survey over the campus road graph (Tables 1–2, Fig. 2a), the
// single-cell bit-rate contour (Fig. 2b), and the indoor/outdoor bit-rate
// gap experiment (Fig. 3).
package coverage

import (
	"math"
	"math/rand"
	"sort"

	"fivegsim/internal/deploy"
	"fivegsim/internal/geom"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
	"fivegsim/internal/stats"
)

// Sample is one survey location with the best-server measurement of each
// technology, as the XCAL-equipped walk records both simultaneously.
type Sample struct {
	Pos geom.Point
	NR  radio.Measurement
	LTE radio.Measurement
}

// Survey is the outcome of a blanket road survey.
type Survey struct {
	Campus  *deploy.Campus
	Samples []Sample
}

// RSRPEdges are the paper's Table 2 buckets (dBm), from coverage hole to
// excellent signal.
var RSRPEdges = []float64{-140, -105, -90, -80, -70, -60, -40}

// surveyShardSize is the number of survey samples per RNG shard. The
// shard layout depends only on the sample count, so RunParallel returns
// identical surveys for every worker count (see internal/par).
const surveyShardSize = 256

// Run walks the campus road graph and collects n samples spread over the
// roads proportionally to segment length, with a small perpendicular
// jitter (pedestrians do not walk a perfect line). The paper samples 4630
// locations. Equivalent to RunParallel with one worker.
func Run(c *deploy.Campus, n int, seed int64) *Survey {
	return RunParallel(c, n, seed, 1)
}

// RunParallel collects the same survey with the sample range sharded
// across up to workers goroutines (0 = GOMAXPROCS). Each shard draws
// from its own substream keyed by the shard index and writes its own
// sample slots, so the survey is bit-identical for every worker count.
// Callers that re-survey repeatedly should hold a Surveyor instead —
// this one-shot form builds one and runs it once.
func RunParallel(c *deploy.Campus, n int, seed int64, workers int) *Survey {
	return NewSurveyor(c, n, seed).Run(workers)
}

// drawSample picks one outdoor survey location on r and measures both
// technologies there, the way the XCAL-equipped walk records a row.
func drawSample(c *deploy.Campus, r *rand.Rand) Sample {
	total := c.RoadLengthM()
	// Pick an outdoor road position uniformly over total length; the
	// walking surveyor goes around buildings, so indoor draws are
	// rejected and retried.
	var p geom.Point
	for attempt := 0; attempt < 32; attempt++ {
		p = roadPoint(c.Roads, rng.Uniform(r, 0, total))
		// Perpendicular jitter up to ±3 m, clamped to campus bounds.
		p.X += rng.Uniform(r, -3, 3)
		p.Y += rng.Uniform(r, -3, 3)
		p.X = math.Min(math.Max(p.X, 0), c.Bounds.Max.X)
		p.Y = math.Min(math.Max(p.Y, 0), c.Bounds.Max.Y)
		if !c.Indoor(p) {
			break
		}
	}
	sample := Sample{Pos: p}
	if m, ok := c.BestServer(radio.NR, p); ok {
		sample.NR = m
	}
	if m, ok := c.BestServer(radio.LTE, p); ok {
		sample.LTE = m
	}
	return sample
}

// roadPoint maps a distance along the concatenated road graph to a point.
// Summed segment lengths accumulate floating-point error, so a draw equal
// to the total length can land just past the final segment; such overruns
// clamp to the final road's endpoint instead of falling through to the
// zero point (the campus origin), which would silently skew the survey's
// corner statistics.
func roadPoint(roads []geom.Segment, at float64) geom.Point {
	for _, road := range roads {
		l := road.Length()
		if at <= l {
			return road.At(at / l)
		}
		at -= l
	}
	return roads[len(roads)-1].B
}

// rsrps extracts the per-sample best-server RSRP for a technology. If
// coSitedOnly is true, 4G service is restricted to the six eNBs that share
// poles with gNBs (the paper's "4G (6 eNBs)" column of Table 2).
func (s *Survey) rsrps(t radio.Tech, coSitedOnly bool) []float64 {
	if t == radio.NR || !coSitedOnly {
		out := make([]float64, len(s.Samples))
		for i, sm := range s.Samples {
			if t == radio.NR {
				out[i] = sm.NR.RSRPdBm
			} else {
				out[i] = sm.LTE.RSRPdBm
			}
		}
		return out
	}
	// Re-evaluate best server over co-sited eNBs only.
	var cells []*radio.Cell
	for _, site := range s.Campus.LTESites {
		if site.CoSitedWith >= 0 {
			cells = append(cells, site.Cells...)
		}
	}
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		best := math.Inf(-1)
		for _, cell := range cells {
			if v := s.Campus.RSRPAt(cell, sm.Pos); v > best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// RSRPSummary returns the Table 1 "RSRP mean ± std" row for a technology.
func (s *Survey) RSRPSummary(t radio.Tech) stats.Summary {
	return stats.Summarize(s.rsrps(t, false))
}

// RSRPDistribution returns the Table 2 histogram over RSRPEdges, ordered
// from strongest bucket to coverage hole like the paper's table
// ([-60,-40) first). coSitedOnly selects the "4G (6 eNBs)" column.
func (s *Survey) RSRPDistribution(t radio.Tech, coSitedOnly bool) []stats.Bin {
	bins := stats.Histogram(s.rsrps(t, coSitedOnly), RSRPEdges)
	// Reverse: strongest first.
	out := make([]stats.Bin, len(bins))
	for i := range bins {
		out[i] = bins[len(bins)-1-i]
	}
	return out
}

// HoleFraction returns the share of samples in the coverage-hole bucket
// (RSRP < −105 dBm). The paper: 8.07 % for 5G, 1.77 % for 4G, 3.84 % for
// the co-sited-only 4G subset.
func (s *Survey) HoleFraction(t radio.Tech, coSitedOnly bool) float64 {
	vals := s.rsrps(t, coSitedOnly)
	holes := 0
	for _, v := range vals {
		if v < radio.ServiceThresholdDBm {
			holes++
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return float64(holes) / float64(len(vals))
}

// GridCell is one map pixel of the Fig. 2 style RSRP/bit-rate maps.
type GridCell struct {
	Center     geom.Point
	RSRPdBm    float64
	BitRateBps float64
	ServingPCI int
	Indoor     bool
}

// GridMap rasterizes best-server coverage over the campus at the given
// resolution (meters per pixel), serially. Bit-rate assumes a full PRB
// grant, like the paper's locked single-UE measurements.
func GridMap(c *deploy.Campus, t radio.Tech, resolution float64) [][]GridCell {
	return GridMapWorkers(c, t, resolution, 1)
}

// gridShardRows is the number of raster rows per shard. Fixed row tiles
// keep the shard layout a pure function of the grid height, per the
// internal/par contract (though the raster draws no randomness, so any
// tiling would be worker-invariant anyway).
const gridShardRows = 4

// GridMapWorkers is GridMap with the raster rows tiled across up to
// workers goroutines (0 = GOMAXPROCS). Every pixel is a pure function
// of its coordinates and each shard writes only its own rows, so the
// map is identical for every worker count.
func GridMapWorkers(c *deploy.Campus, t radio.Tech, resolution float64, workers int) [][]GridCell {
	band := radio.BandNR()
	if t == radio.LTE {
		band = radio.BandLTE()
	}
	nx := int(c.Bounds.Width()/resolution) + 1
	ny := int(c.Bounds.Height()/resolution) + 1
	grid := make([][]GridCell, ny)
	par.Do(workers, par.ShardSize(ny, gridShardRows), func(sh par.Range) {
		for j := sh.Lo; j < sh.Hi; j++ {
			row := make([]GridCell, nx)
			for i := 0; i < nx; i++ {
				p := geom.Point{X: (float64(i) + 0.5) * resolution, Y: (float64(j) + 0.5) * resolution}
				gc := GridCell{Center: p, RSRPdBm: math.Inf(-1), Indoor: c.Indoor(p)}
				if m, ok := c.BestServer(t, p); ok {
					gc.RSRPdBm = m.RSRPdBm
					gc.ServingPCI = m.PCI
					if m.Usable() {
						gc.BitRateBps = radio.DLBitRate(m, band, band.PRBs)
					}
				}
				row[i] = gc
			}
			grid[j] = row
		}
	})
	return grid
}

// CellLockedMeasure measures a specific cell (frequency-locked, as the
// paper does for PCI 72 in Fig. 2b) at p, with interference from the other
// same-tech cells.
func CellLockedMeasure(c *deploy.Campus, cell *radio.Cell, p geom.Point) radio.Measurement {
	cells := c.Cells(cell.Tech)
	terms := make([]radio.InterferenceTerm, 0, len(cells))
	var servingRSRP float64
	for _, other := range cells {
		v := c.RSRPAt(other, p)
		if other.PCI == cell.PCI {
			servingRSRP = v
			continue
		}
		terms = append(terms, radio.InterferenceTerm{PCI: other.PCI, RSRPdBm: v, Load: other.Load})
	}
	return radio.MeasureCell(cell, p, servingRSRP, terms)
}

// UsableRadius walks a line-of-sight ray from the cell along its boresight
// and returns the distance at which the locked link first becomes
// unusable — the experiment the paper performs toward location A (§3.2),
// finding ≈230 m for 5G vs ≈520 m for 4G. The median over small azimuth
// perturbations inside the FoV smooths shadowing artifacts.
func UsableRadius(c *deploy.Campus, cell *radio.Cell) float64 {
	var radii []float64
	for _, off := range []float64{-20, -10, 0, 10, 20} {
		az := (cell.Antenna.BoresightDeg + off) * math.Pi / 180
		dir := geom.Point{X: math.Cos(az), Y: math.Sin(az)}
		d := 1.0
		for ; d < 2000; d += 2 {
			p := cell.Pos.Add(dir.Scale(d))
			rsrp := radio.RSRPAt(cell, p, radio.OpenField{}, 0)
			if rsrp < radio.ServiceThresholdDBm {
				break
			}
		}
		radii = append(radii, d)
	}
	sort.Float64s(radii)
	return radii[len(radii)/2]
}

// IndoorOutdoorGap runs the Fig. 3 experiment: paired samples immediately
// inside and outside building walls near the serving site, at roughly the
// paper's 100 m range. It returns the per-pair fractional bit-rate drop
// (0.5 = half the outdoor bit-rate lost when stepping indoors).
func IndoorOutdoorGap(c *deploy.Campus, t radio.Tech, seed int64) []float64 {
	r := rng.New(seed).Stream("coverage.indoor")
	band := radio.BandNR()
	if t == radio.LTE {
		band = radio.BandLTE()
	}
	var drops []float64
	for _, bld := range c.Buildings {
		// Four probe pairs per building, one per wall.
		walls := []struct{ out, in geom.Point }{
			{geom.Point{X: bld.Min.X - 2, Y: bld.Center().Y}, geom.Point{X: bld.Min.X + 4, Y: bld.Center().Y}},
			{geom.Point{X: bld.Max.X + 2, Y: bld.Center().Y}, geom.Point{X: bld.Max.X - 4, Y: bld.Center().Y}},
			{geom.Point{X: bld.Center().X, Y: bld.Min.Y - 2}, geom.Point{X: bld.Center().X, Y: bld.Min.Y + 4}},
			{geom.Point{X: bld.Center().X, Y: bld.Max.Y + 2}, geom.Point{X: bld.Center().X, Y: bld.Max.Y - 4}},
		}
		for _, w := range walls {
			jitter := geom.Point{X: rng.Uniform(r, -1, 1), Y: rng.Uniform(r, -1, 1)}
			out, in := w.out.Add(jitter), w.in.Add(jitter)
			if c.Indoor(out) || !c.Indoor(in) {
				continue
			}
			mOut, ok := c.BestServer(t, out)
			if !ok || !mOut.Usable() {
				continue
			}
			mIn := mOut
			// Indoors the UE stays on the same serving cell while the
			// signal degrades (re-measure that cell through the wall).
			if cell := c.CellByPCI(mOut.PCI); cell != nil {
				mIn = CellLockedMeasure(c, cell, in)
			}
			rateOut := radio.DLBitRate(mOut, band, band.PRBs)
			rateIn := 0.0
			if mIn.Usable() {
				rateIn = radio.DLBitRate(mIn, band, band.PRBs)
			}
			if rateOut <= 0 {
				continue
			}
			drop := 1 - rateIn/rateOut
			if drop < 0 {
				drop = 0
			}
			drops = append(drops, drop)
		}
	}
	return drops
}

// ContourRing is one distance band of the Fig. 2b bit-rate contour around
// a frequency-locked cell.
type ContourRing struct {
	LoM, HiM   float64
	MeanBps    float64
	UsableFrac float64
	N          int
}

// CellContour samples the locked cell on rings of the given width out to
// maxM, the Fig. 2b methodology (the paper grids the gNB's neighbourhood
// into 20 m² cells and samples 154 locations).
func CellContour(c *deploy.Campus, cell *radio.Cell, ringM, maxM float64, seed int64) []ContourRing {
	r := rng.New(seed).Stream("coverage.contour")
	band := radio.BandNR()
	if cell.Tech == radio.LTE {
		band = radio.BandLTE()
	}
	var rings []ContourRing
	for lo := 0.0; lo < maxM; lo += ringM {
		ring := ContourRing{LoM: lo, HiM: lo + ringM}
		var sum float64
		usable := 0
		for k := 0; k < 24; k++ {
			d := rng.Uniform(r, math.Max(lo, 1), lo+ringM)
			az := rng.Uniform(r, 0, 2*math.Pi)
			p := cell.Pos.Add(geom.Point{X: d * math.Cos(az), Y: d * math.Sin(az)})
			if !c.Bounds.Contains(p) {
				continue
			}
			m := CellLockedMeasure(c, cell, p)
			ring.N++
			if m.Usable() {
				usable++
				sum += radio.DLBitRate(m, band, band.PRBs)
			}
		}
		if ring.N > 0 {
			ring.MeanBps = sum / float64(ring.N)
			ring.UsableFrac = float64(usable) / float64(ring.N)
		}
		rings = append(rings, ring)
	}
	return rings
}
