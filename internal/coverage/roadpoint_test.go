package coverage

import (
	"testing"

	"fivegsim/internal/geom"
)

// A draw at (or, through float rounding in the summed total, just past)
// the end of the concatenated road graph must clamp to the final road's
// endpoint — not fall through to the zero point.
func TestRoadPointClampsPastEnd(t *testing.T) {
	roads := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 100, Y: 0}},
		{A: geom.Point{X: 100, Y: 0}, B: geom.Point{X: 100, Y: 50}},
	}
	var total float64
	for _, r := range roads {
		total += r.Length()
	}
	end := roads[len(roads)-1].B
	for _, at := range []float64{total, total + 1e-9, total * (1 + 1e-15)} {
		if p := roadPoint(roads, at); p != end {
			t.Fatalf("roadPoint(%.12f) = %+v, want clamp to %+v", at, p, end)
		}
	}
}

func TestRoadPointInterior(t *testing.T) {
	roads := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 100, Y: 0}},
		{A: geom.Point{X: 100, Y: 0}, B: geom.Point{X: 100, Y: 50}},
	}
	if p := roadPoint(roads, 0); p != (geom.Point{X: 0, Y: 0}) {
		t.Fatalf("start: got %+v", p)
	}
	if p := roadPoint(roads, 50); p != (geom.Point{X: 50, Y: 0}) {
		t.Fatalf("mid first segment: got %+v", p)
	}
	if p := roadPoint(roads, 125); p != (geom.Point{X: 100, Y: 25}) {
		t.Fatalf("mid second segment: got %+v", p)
	}
}
