package coverage

import (
	"math"
	"testing"

	"fivegsim/internal/geom"

	"fivegsim/internal/deploy"
	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
)

func testSurvey(t *testing.T) (*deploy.Campus, *Survey) {
	t.Helper()
	c := deploy.New(42)
	return c, Run(c, 4630, 42)
}

func TestTable1RSRPSummaries(t *testing.T) {
	_, s := testSurvey(t)
	nr := s.RSRPSummary(radio.NR)
	lte := s.RSRPSummary(radio.LTE)
	// Paper Table 1: 5G −84.03 ± 11.72, 4G −84.84 ± 8.72 dBm.
	if math.Abs(nr.Mean-(-84.03)) > 4 {
		t.Fatalf("5G mean RSRP = %.2f, paper −84.03", nr.Mean)
	}
	if math.Abs(lte.Mean-(-84.84)) > 4 {
		t.Fatalf("4G mean RSRP = %.2f, paper −84.84", lte.Mean)
	}
	if nr.Std <= lte.Std {
		t.Fatalf("5G RSRP spread (%.2f) must exceed 4G's (%.2f), as in Table 1", nr.Std, lte.Std)
	}
}

func TestTable2HoleFractions(t *testing.T) {
	_, s := testSurvey(t)
	nr := s.HoleFraction(radio.NR, false)
	lte := s.HoleFraction(radio.LTE, false)
	lte6 := s.HoleFraction(radio.LTE, true)
	// Paper Table 2: 8.07 % (5G), 1.77 % (4G), 3.84 % (4G, 6 eNBs).
	if nr < 0.05 || nr > 0.12 {
		t.Fatalf("5G hole fraction = %.2f%%, paper 8.07%%", 100*nr)
	}
	if lte > 0.03 {
		t.Fatalf("4G hole fraction = %.2f%%, paper 1.77%%", 100*lte)
	}
	// Orderings the paper emphasizes: equal-density 4G still beats 5G, and
	// full-density 4G beats the co-sited subset.
	if !(lte < lte6 && lte6 < nr) {
		t.Fatalf("hole ordering violated: 4G %.3f, 4G(6) %.3f, 5G %.3f", lte, lte6, nr)
	}
}

func TestTable2DistributionShape(t *testing.T) {
	_, s := testSurvey(t)
	bins := s.RSRPDistribution(radio.NR, false)
	if len(bins) != 6 {
		t.Fatalf("want 6 RSRP buckets, got %d", len(bins))
	}
	if bins[0].Lo != -60 || bins[0].Hi != -40 {
		t.Fatalf("first bucket should be [-60,-40), got [%v,%v)", bins[0].Lo, bins[0].Hi)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(s.Samples) {
		t.Fatalf("distribution loses samples: %d != %d", total, len(s.Samples))
	}
	// The modal bucket for both techs is [-90,-80), as in the paper.
	for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
		bs := s.RSRPDistribution(tech, false)
		maxIdx := 0
		for i, b := range bs {
			if b.Count > bs[maxIdx].Count {
				maxIdx = i
			}
		}
		if bs[maxIdx].Lo != -90 {
			t.Fatalf("%v modal bucket is [%v,%v), paper has [-90,-80)", tech, bs[maxIdx].Lo, bs[maxIdx].Hi)
		}
	}
}

func TestFig2CellRadii(t *testing.T) {
	c, _ := testSurvey(t)
	nr := UsableRadius(c, c.CellByPCI(72))
	lte := UsableRadius(c, c.CellByPCI(100))
	if nr < 180 || nr > 290 {
		t.Fatalf("5G usable radius = %.0f m, paper ≈230 m", nr)
	}
	if lte < 420 || lte > 640 {
		t.Fatalf("4G usable radius = %.0f m, paper ≈520 m", lte)
	}
	if lte < 1.8*nr {
		t.Fatalf("4G radius (%.0f) should be ≈2× the 5G radius (%.0f)", lte, nr)
	}
}

func TestFig3IndoorOutdoorGap(t *testing.T) {
	c, _ := testSurvey(t)
	nr := stats.Summarize(IndoorOutdoorGap(c, radio.NR, 7))
	lte := stats.Summarize(IndoorOutdoorGap(c, radio.LTE, 7))
	// Paper Fig. 3: mean drop 50.59 % (5G) vs 20.38 % (4G) — "more than 2×".
	if nr.Mean < 0.38 || nr.Mean > 0.62 {
		t.Fatalf("5G indoor drop = %.1f%%, paper 50.59%%", 100*nr.Mean)
	}
	if lte.Mean < 0.10 || lte.Mean > 0.32 {
		t.Fatalf("4G indoor drop = %.1f%%, paper 20.38%%", 100*lte.Mean)
	}
	if nr.Mean < 1.7*lte.Mean {
		t.Fatalf("5G indoor drop (%.2f) must be ≳2× 4G's (%.2f)", nr.Mean, lte.Mean)
	}
	if nr.N < 30 || lte.N < 30 {
		t.Fatalf("too few indoor/outdoor pairs: %d / %d", nr.N, lte.N)
	}
}

func TestGridMapCoverage(t *testing.T) {
	c := deploy.New(42)
	grid := GridMap(c, radio.NR, 50)
	if len(grid) == 0 || len(grid[0]) == 0 {
		t.Fatal("empty grid")
	}
	usable, holes := 0, 0
	for _, row := range grid {
		for _, gc := range row {
			if gc.RSRPdBm >= radio.ServiceThresholdDBm {
				usable++
				if gc.BitRateBps <= 0 {
					t.Fatalf("usable pixel at %v has zero bit-rate", gc.Center)
				}
			} else {
				holes++
				if gc.BitRateBps != 0 {
					t.Fatalf("hole pixel at %v has bit-rate", gc.Center)
				}
			}
		}
	}
	if usable == 0 || holes == 0 {
		t.Fatalf("grid should contain both coverage and holes (usable=%d holes=%d)", usable, holes)
	}
}

func TestCellLockedMeasureMatchesServingCell(t *testing.T) {
	c := deploy.New(42)
	cell := c.CellByPCI(72)
	p := cell.Pos.Add(geom.Point{X: 40, Y: 10})
	m := CellLockedMeasure(c, cell, p)
	if m.PCI != 72 {
		t.Fatalf("locked measurement reports PCI %d", m.PCI)
	}
	if !m.Usable() {
		t.Fatalf("40 m from the gNB should be usable, RSRP %.1f", m.RSRPdBm)
	}
}

func TestSurveySamplesOutdoor(t *testing.T) {
	c, s := testSurvey(t)
	indoor := 0
	for _, sm := range s.Samples {
		if c.Indoor(sm.Pos) {
			indoor++
		}
	}
	if frac := float64(indoor) / float64(len(s.Samples)); frac > 0.01 {
		t.Fatalf("%.1f%% of walking-survey samples are indoors", 100*frac)
	}
}

func TestSurveyDeterminism(t *testing.T) {
	c := deploy.New(42)
	a := Run(c, 100, 7)
	b := Run(c, 100, 7)
	for i := range a.Samples {
		if a.Samples[i].Pos != b.Samples[i].Pos || a.Samples[i].NR.RSRPdBm != b.Samples[i].NR.RSRPdBm {
			t.Fatal("survey must be deterministic for a fixed seed")
		}
	}
}

func TestBitRateContourDecreasesOutward(t *testing.T) {
	// Fig. 2b shape: bit-rate near the cell beats bit-rate at range.
	c := deploy.New(42)
	cell := c.CellByPCI(72)
	band := radio.BandNR()
	near := CellLockedMeasure(c, cell, cell.Pos.Add(geom.Point{X: 30, Y: 15}))
	rateNear := radio.DLBitRate(near, band, band.PRBs)
	var rateFarSum float64
	n := 0
	for _, d := range []float64{180, 200, 220} {
		az := cell.Antenna.BoresightDeg * math.Pi / 180
		p := cell.Pos.Add(geom.Point{X: d * math.Cos(az), Y: d * math.Sin(az)})
		m := CellLockedMeasure(c, cell, p)
		rateFarSum += radio.DLBitRate(m, band, band.PRBs)
		n++
	}
	if rateNear <= rateFarSum/float64(n) {
		t.Fatalf("bit-rate contour not decreasing: near %.0f ≤ far %.0f", rateNear, rateFarSum/float64(n))
	}
	// Near the site, the 5G link approaches Gbps (Fig. 2b's 1000-1200 bands).
	if rateNear < 800e6 {
		t.Fatalf("near-cell bit-rate = %.0f Mb/s, want ≈Gbps", rateNear/1e6)
	}
}
