package coverage

import (
	"math/rand"

	"fivegsim/internal/deploy"
	"fivegsim/internal/par"
	"fivegsim/internal/rng"
)

// Surveyor is the reusable engine behind RunParallel: the shard layout,
// the per-shard generators, and the sample buffer are built once, so a
// caller that re-surveys the same campus (benchmarks, convergence loops,
// live re-sampling) pays no per-run allocation. Each Run reseeds every
// shard generator with the exact seed rng.Source.Shard would plant, so
// a Surveyor's survey is byte-identical to RunParallel(c, n, seed, w) —
// for every worker count, and on every repeat Run.
//
// The determinism contract is internal/par's: the shard layout is a pure
// function of n, each shard draws only from its own substream and writes
// only its own sample slots, and results merge in slot order. Workers is
// a pure throughput knob; one big survey can saturate every core without
// perturbing a single byte of the report.
type Surveyor struct {
	campus *deploy.Campus
	shards []par.Range
	seeds  []int64
	rngs   []*rand.Rand
	survey *Survey
	body   func(par.Range)
}

// NewSurveyor prepares an n-sample survey of c keyed by seed. The
// returned Surveyor is not safe for concurrent Run calls (each Run
// overwrites the shared Survey in place), but one Run may fan out over
// many workers.
func NewSurveyor(c *deploy.Campus, n int, seed int64) *Surveyor {
	src := rng.New(seed)
	sv := &Surveyor{
		campus: c,
		shards: par.ShardSize(n, surveyShardSize),
		survey: &Survey{Campus: c, Samples: make([]Sample, n)},
	}
	sv.seeds = make([]int64, len(sv.shards))
	sv.rngs = make([]*rand.Rand, len(sv.shards))
	for i := range sv.shards {
		sv.seeds[i] = src.ShardSeed("coverage.survey", i)
		sv.rngs[i] = rand.New(rand.NewSource(sv.seeds[i]))
	}
	// The shard body is bound once: rebuilding the closure per Run would
	// put one allocation back on the steady-state path the alloc guard
	// pins at zero.
	sv.body = func(sh par.Range) {
		r := sv.rngs[sh.Index]
		r.Seed(sv.seeds[sh.Index])
		for i := sh.Lo; i < sh.Hi; i++ {
			sv.survey.Samples[i] = drawSample(sv.campus, r)
		}
	}
	return sv
}

// Run executes the survey across up to workers goroutines (0 =
// GOMAXPROCS) and returns the Surveyor's Survey, overwritten in place.
// Every call reproduces the same samples regardless of workers or how
// many runs came before; on a warmed campus a serial Run allocates
// nothing.
func (sv *Surveyor) Run(workers int) *Survey {
	par.Do(workers, sv.shards, sv.body)
	return sv.survey
}
