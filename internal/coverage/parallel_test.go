package coverage

import (
	"reflect"
	"testing"

	"fivegsim/internal/deploy"
)

// The drive-test survey must be bit-identical for every worker count:
// shard layout depends only on n, and each shard draws from its own
// seed-keyed RNG substream.
func TestRunParallelWorkerEquivalence(t *testing.T) {
	c := deploy.New(42)
	for _, seed := range []int64{1, 42, 7} {
		serial := RunParallel(c, 2000, seed, 1)
		for _, workers := range []int{2, 4, 8} {
			par := RunParallel(c, 2000, seed, workers)
			if !reflect.DeepEqual(serial.Samples, par.Samples) {
				t.Fatalf("seed %d: workers=%d survey differs from serial", seed, workers)
			}
		}
	}
}

func TestRunMatchesRunParallelSerial(t *testing.T) {
	c := deploy.New(42)
	a := Run(c, 1500, 7)
	b := RunParallel(c, 1500, 7, 1)
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("Run must be the workers=1 case of RunParallel")
	}
}

func TestRunParallelSeedSensitivity(t *testing.T) {
	c := deploy.New(42)
	a := RunParallel(c, 1000, 1, 4)
	b := RunParallel(c, 1000, 2, 4)
	if reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("different seeds produced an identical survey")
	}
}

func TestRunParallelDegenerateSizes(t *testing.T) {
	c := deploy.New(42)
	if s := RunParallel(c, 0, 3, 4); len(s.Samples) != 0 {
		t.Fatalf("n=0 survey has %d samples", len(s.Samples))
	}
	one := RunParallel(c, 1, 3, 8) // workers ≫ shards
	if len(one.Samples) != 1 {
		t.Fatalf("n=1 survey has %d samples", len(one.Samples))
	}
	if !reflect.DeepEqual(one.Samples, RunParallel(c, 1, 3, 1).Samples) {
		t.Fatal("n=1 survey differs between worker counts")
	}
}
