package coverage

import (
	"testing"

	"fivegsim/internal/deploy"
	"fivegsim/internal/radio"
)

func surveysEqual(a, b *Survey) bool {
	if len(a.Samples) != len(b.Samples) {
		return false
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			return false
		}
	}
	return true
}

// TestSurveyorMatchesRunParallel pins the Surveyor to the one-shot API:
// prebuilt shards and reseeded generators must reproduce RunParallel's
// survey byte for byte.
func TestSurveyorMatchesRunParallel(t *testing.T) {
	c := deploy.New(1)
	want := RunParallel(c, 700, 42, 1)
	got := NewSurveyor(c, 700, 42).Run(1)
	if !surveysEqual(got, want) {
		t.Fatal("Surveyor.Run(1) differs from RunParallel(…, 1)")
	}
}

// TestSurveyorWorkersByteIdentical is the acceptance property of the
// intra-experiment sharding: one Surveyor run at workers 1, 2 and 8
// yields byte-identical samples — Workers is a pure throughput knob.
func TestSurveyorWorkersByteIdentical(t *testing.T) {
	c := deploy.New(1)
	ref := RunParallel(c, 700, 7, 1)
	refCopy := make([]Sample, len(ref.Samples))
	copy(refCopy, ref.Samples)
	for _, workers := range []int{1, 2, 8} {
		got := NewSurveyor(c, 700, 7).Run(workers)
		for i := range refCopy {
			if got.Samples[i] != refCopy[i] {
				t.Fatalf("workers=%d: sample %d differs", workers, i)
			}
		}
	}
}

// TestSurveyorRepeatRunIdempotent: every Run of one Surveyor reseeds the
// shard generators, so back-to-back runs (even at different worker
// counts) rewrite the identical survey.
func TestSurveyorRepeatRunIdempotent(t *testing.T) {
	c := deploy.New(1)
	sv := NewSurveyor(c, 512, 3)
	first := make([]Sample, 512)
	copy(first, sv.Run(2).Samples)
	for run, workers := range []int{1, 4, 2} {
		got := sv.Run(workers)
		for i := range first {
			if got.Samples[i] != first[i] {
				t.Fatalf("run %d (workers=%d): sample %d drifted", run+2, workers, i)
			}
		}
	}
}

// TestSurveyorSerialRunAllocFree pins the steady-state contract the
// Survey benchmark measures: on a warmed campus, a serial re-run of a
// prebuilt Surveyor allocates nothing.
func TestSurveyorSerialRunAllocFree(t *testing.T) {
	c := deploy.New(1)
	c.WarmFieldMaps()
	sv := NewSurveyor(c, 256, 1)
	sv.Run(1) // warm any lazily built field-map buckets the samples touch
	avg := testing.AllocsPerRun(10, func() { sv.Run(1) })
	if avg != 0 {
		t.Fatalf("serial Surveyor.Run allocates on warmed campus: %.2f allocs/run", avg)
	}
}

// TestGridMapWorkersMatchesSerial: the rasterizer draws no randomness,
// but the sharded variant must still tile the identical grid.
func TestGridMapWorkersMatchesSerial(t *testing.T) {
	c := deploy.New(1)
	want := GridMap(c, radio.NR, 60)
	got := GridMapWorkers(c, radio.NR, 60, 4)
	if len(got) != len(want) {
		t.Fatalf("row count %d != %d", len(got), len(want))
	}
	for y := range want {
		for x := range want[y] {
			if got[y][x] != want[y][x] {
				t.Fatalf("grid cell (%d,%d) differs between workers=1 and workers=4", x, y)
			}
		}
	}
}
