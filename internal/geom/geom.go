// Package geom provides the 2-D geometry used by the campus model:
// points, segments, axis-aligned buildings, and line-of-sight tests.
//
// Coordinates are in meters. The campus origin (0,0) is the south-west
// corner; x grows east, y grows north.
package geom

import "math"

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// AzimuthTo returns the bearing from p to q in degrees, measured
// counter-clockwise from the +x axis, normalized to [0, 360).
func (p Point) AzimuthTo(q Point) float64 {
	deg := math.Atan2(q.Y-p.Y, q.X-p.X) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point a fraction t ∈ [0,1] along the segment.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Rect is an axis-aligned rectangle (used for buildings).
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corners in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the rectangle's center.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width and Height of the rectangle.
func (r Rect) Width() float64  { return r.Max.X - r.Min.X }
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// edges returns the four boundary segments of r.
func (r Rect) edges() [4]Segment {
	a := r.Min
	b := Point{r.Max.X, r.Min.Y}
	c := r.Max
	d := Point{r.Min.X, r.Max.Y}
	return [4]Segment{{a, b}, {b, c}, {c, d}, {d, a}}
}

// Intersects reports whether the segment s crosses or touches the
// rectangle boundary or interior.
func (r Rect) Intersects(s Segment) bool {
	if r.Contains(s.A) || r.Contains(s.B) {
		return true
	}
	for _, e := range r.edges() {
		if SegmentsIntersect(s, e) {
			return true
		}
	}
	return false
}

// CrossingCount returns the number of rectangle walls the segment crosses.
// A segment passing clean through a building crosses 2 walls; one ending
// inside crosses 1. Touching a corner counts once per edge touched, which
// is adequate for attenuation modelling.
//
// A bounding-box rejection runs first: any intersection point lies on the
// segment (so inside its bounding box) and on a rectangle edge (so inside
// the rectangle), hence a segment whose box misses the rectangle crosses
// nothing. The comparisons are inclusive, so touching contacts — which
// SegmentsIntersect counts — are never culled, and the count is exactly
// that of the edge-by-edge scan. This test sits under every RSRP
// evaluation (one per building per cell), where most buildings are
// nowhere near the site–receiver segment.
func (r Rect) CrossingCount(s Segment) int {
	if math.Max(s.A.X, s.B.X) < r.Min.X || math.Min(s.A.X, s.B.X) > r.Max.X ||
		math.Max(s.A.Y, s.B.Y) < r.Min.Y || math.Min(s.A.Y, s.B.Y) > r.Max.Y {
		return 0
	}
	n := 0
	for _, e := range r.edges() {
		if SegmentsIntersect(s, e) {
			n++
		}
	}
	return n
}

// cross returns the 2-D cross product (b−a) × (c−a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether c (assumed collinear with the segment a-b)
// lies within the segment's bounding box.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// SegmentsIntersect reports whether two segments intersect (including
// touching at endpoints or collinear overlap).
func SegmentsIntersect(s, t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// AngleDiff returns the absolute difference between two bearings in
// degrees, folded into [0, 180].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	if d < 0 {
		d += 360
	}
	if d > 180 {
		d = 360 - d
	}
	return d
}
