package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
}

func TestAzimuth(t *testing.T) {
	p := Point{0, 0}
	cases := []struct {
		q    Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, 90},
		{Point{-1, 0}, 180},
		{Point{0, -1}, 270},
		{Point{1, 1}, 45},
	}
	for _, c := range cases {
		if got := p.AzimuthTo(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AzimuthTo(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {10, 350, 20}, {350, 10, 20}, {0, 180, 180}, {90, 270, 180}, {45, 90, 45},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngleDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		d := AngleDiff(a, b)
		// Symmetric, bounded, and invariant to full turns.
		return d >= 0 && d <= 180 &&
			math.Abs(d-AngleDiff(b, a)) < 1e-6 &&
			math.Abs(d-AngleDiff(a+360, b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true},
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false},
		{Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, true}, // shared endpoint
		{Segment{Point{0, 0}, Point{0, 1}}, Segment{Point{1, 0}, Point{1, 1}}, false},
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.s, c.u); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{3, 2})
	if !r.Contains(Point{2, 1.5}) || !r.Contains(Point{1, 1}) {
		t.Fatal("Contains failed for inside/boundary point")
	}
	if r.Contains(Point{0, 0}) {
		t.Fatal("Contains true for outside point")
	}
}

func TestRectIntersects(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{2, 2})
	if !r.Intersects(Segment{Point{0, 1.5}, Point{3, 1.5}}) {
		t.Fatal("segment through rect should intersect")
	}
	if !r.Intersects(Segment{Point{1.5, 1.5}, Point{5, 5}}) {
		t.Fatal("segment starting inside should intersect")
	}
	if r.Intersects(Segment{Point{0, 0}, Point{0.5, 0.5}}) {
		t.Fatal("far segment should not intersect")
	}
}

func TestCrossingCount(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{2, 2})
	if n := r.CrossingCount(Segment{Point{0, 1.5}, Point{3, 1.5}}); n != 2 {
		t.Fatalf("pass-through crossings = %d, want 2", n)
	}
	if n := r.CrossingCount(Segment{Point{0, 1.5}, Point{1.5, 1.5}}); n != 1 {
		t.Fatalf("end-inside crossings = %d, want 1", n)
	}
	if n := r.CrossingCount(Segment{Point{0, 0}, Point{0.5, 0.2}}); n != 0 {
		t.Fatalf("miss crossings = %d, want 0", n)
	}
}

func TestLerpAndSegmentAt(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 20}}
	mid := s.At(0.5)
	if mid.X != 5 || mid.Y != 10 {
		t.Fatalf("midpoint = %v", mid)
	}
	if s.Length() != math.Hypot(10, 20) {
		t.Fatalf("Length = %v", s.Length())
	}
}

func TestRectDims(t *testing.T) {
	r := NewRect(Point{3, 5}, Point{1, 2})
	if r.Width() != 2 || r.Height() != 3 {
		t.Fatalf("dims = %v × %v", r.Width(), r.Height())
	}
	c := r.Center()
	if c.X != 2 || c.Y != 3.5 {
		t.Fatalf("center = %v", c)
	}
}
