package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// checkCover asserts that ranges tile [0, n) exactly: contiguous,
// ordered, densely indexed, never empty.
func checkCover(t *testing.T, ranges []Range, n int) {
	t.Helper()
	next := 0
	for i, r := range ranges {
		if r.Index != i {
			t.Fatalf("shard %d has Index %d", i, r.Index)
		}
		if r.Lo != next {
			t.Fatalf("shard %d starts at %d, want %d", i, r.Lo, next)
		}
		if r.Len() <= 0 {
			t.Fatalf("shard %d is empty: %+v", i, r)
		}
		next = r.Hi
	}
	if next != n {
		t.Fatalf("shards cover [0,%d), want [0,%d)", next, n)
	}
}

func TestShardProperty(t *testing.T) {
	// The determinism contract rests on Shard being a total, exact
	// partition for every (n, shards) — including the degenerate shapes
	// the campaign loops hit: n=0, n=1, shards>n, uneven splits.
	prop := func(n uint16, shards uint8) bool {
		ranges := Shard(int(n), int(shards))
		if n == 0 || shards == 0 {
			return ranges == nil
		}
		want := int(shards)
		if int(n) < want {
			want = int(n)
		}
		if len(ranges) != want {
			return false
		}
		// Sizes differ by at most one, larger shards first.
		for i := 1; i < len(ranges); i++ {
			d := ranges[i-1].Len() - ranges[i].Len()
			if d < 0 || d > 1 {
				return false
			}
		}
		checkCover(t, ranges, int(n))
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShardSizeProperty(t *testing.T) {
	prop := func(n uint16, size uint8) bool {
		ranges := ShardSize(int(n), int(size))
		if n == 0 {
			return ranges == nil
		}
		sz := int(size)
		if sz < 1 {
			sz = 1
		}
		for i, r := range ranges {
			if i < len(ranges)-1 && r.Len() != sz {
				return false
			}
			if r.Len() > sz {
				return false
			}
		}
		checkCover(t, ranges, int(n))
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShardExplicitCases(t *testing.T) {
	cases := []struct {
		n, shards int
		wantLens  []int
	}{
		{0, 4, nil},             // n = 0
		{1, 4, []int{1}},        // n = 1, shards > items
		{3, 8, []int{1, 1, 1}},  // shards > items collapse to n
		{10, 3, []int{4, 3, 3}}, // uneven remainder up front
		{10, 1, []int{10}},
		{5, 5, []int{1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		got := Shard(c.n, c.shards)
		if len(got) != len(c.wantLens) {
			t.Fatalf("Shard(%d,%d) = %d shards, want %d", c.n, c.shards, len(got), len(c.wantLens))
		}
		for i, w := range c.wantLens {
			if got[i].Len() != w {
				t.Fatalf("Shard(%d,%d)[%d].Len() = %d, want %d", c.n, c.shards, i, got[i].Len(), w)
			}
		}
	}
}

func TestWorkersKnob(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if Workers(1) != 1 || Workers(-3) != 1 {
		t.Fatal("Workers must clamp ≤0 (except 0) to the serial path")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers must pass explicit counts through")
	}
}

func TestDoRunsEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		const n = 997
		var hits [n]int32
		Do(workers, ShardSize(n, 10), func(r Range) {
			for i := r.Lo; i < r.Hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	want := Map(1, 100, func(i int) int { return i * i })
	for _, workers := range []int{0, 2, 3, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
	if Map(4, 0, func(i int) int { return i }) != nil {
		t.Fatal("Map with n=0 must return nil")
	}
}

func TestShardMapMergesInShardOrder(t *testing.T) {
	shards := Shard(1000, 7)
	want := ShardMap(1, shards, func(r Range) int { return r.Lo })
	for _, workers := range []int{2, 8} {
		got := ShardMap(workers, shards, func(r Range) int { return r.Lo })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDoCtxCancellation: a canceled context stops the fan-out within one
// shard boundary on both the serial and the parallel path, and the
// context error surfaces verbatim.
func TestDoCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := DoCtx(ctx, workers, ShardSize(100, 1), func(r Range) {
			if atomic.AddInt32(&ran, 1) == 3 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: DoCtx returned %v, want context.Canceled", workers, err)
		}
		// Workers already past the ctx check when cancel fired may each
		// finish one more shard; nothing beyond that starts.
		if n := atomic.LoadInt32(&ran); n >= 100 || n < 3 {
			t.Fatalf("workers=%d: %d shards ran after cancellation at shard 3", workers, n)
		}
	}
}

func TestDoCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := int32(0)
		err := DoCtx(ctx, workers, ShardSize(10, 1), func(Range) { atomic.AddInt32(&ran, 1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: pre-canceled DoCtx returned %v", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: %d shards ran under a pre-canceled context", workers, ran)
		}
	}
}

func TestMapCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 10, func(i int) int { return i + 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx returned %v, want context.Canceled", err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("slot %d = %d ran under a canceled context", i, v)
		}
	}
	if _, err := MapCtx(context.Background(), 4, 10, func(i int) int { return i }); err != nil {
		t.Fatalf("uncanceled MapCtx errored: %v", err)
	}
}

func TestSegmentsFromBounds(t *testing.T) {
	// Segments turns counting-sort cut points into ranges, keeping the
	// bounds index as the stable group id and preserving empty segments.
	segs := Segments([]int{0, 3, 3, 7}, nil)
	want := []Range{{Index: 0, Lo: 0, Hi: 3}, {Index: 1, Lo: 3, Hi: 3}, {Index: 2, Lo: 3, Hi: 7}}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d", len(segs), len(want))
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
	if segs[1].Len() != 0 {
		t.Fatal("empty segment must have zero length")
	}

	// Append-into-retained-slice reuse must not allocate or grow.
	buf := make([]Range, 0, 8)
	out := Segments([]int{0, 1, 2}, buf[:0])
	if &out[0] != &buf[:1][0] {
		t.Fatal("Segments did not reuse the caller's backing array")
	}
	if got := Segments([]int{5}, nil); len(got) != 0 {
		t.Fatalf("single bound must yield no segments, got %d", len(got))
	}
	if got := Segments(nil, nil); len(got) != 0 {
		t.Fatalf("nil bounds must yield no segments, got %d", len(got))
	}
}
