// Package par is the simulator's deterministic fan-out substrate. It
// shards an index range into contiguous pieces whose layout depends only
// on the problem size — never on the worker count — so that a caller who
// keys one rng.Source substream per shard produces bit-identical results
// whether the shards execute on one goroutine or on many.
//
// The contract every parallelized campaign loop in fivegsim follows:
//
//  1. Split the work with Shard/ShardSize (layout fixed by n alone).
//  2. Give each shard its own random substream keyed by a stable name
//     and the shard index (rng.Source.Shard).
//  3. Write each shard's output into its own pre-assigned slot and
//     merge in shard-index order (Map/ShardMap do this for you).
//
// Workers then only decides how many goroutines execute the shards;
// scheduling order can vary freely without changing any output.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Range is one contiguous shard of the index range [0, N).
type Range struct {
	// Index is the shard number, 0-based and dense; substream keys and
	// merge order derive from it.
	Index int
	// Lo and Hi bound the half-open item range [Lo, Hi).
	Lo, Hi int
}

// Len returns the number of items in the shard.
func (r Range) Len() int { return r.Hi - r.Lo }

// Workers normalizes a worker-count knob: 0 means GOMAXPROCS (use the
// machine), anything below 1 clamps to 1 (the serial path).
func Workers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// Shard splits [0, n) into min(n, shards) contiguous, near-equal ranges
// (sizes differ by at most one; earlier shards take the remainder).
// Empty shards are never returned, so n = 0 yields nil. The split is a
// pure function of n and shards — callers must not derive shards from
// the worker count, or they forfeit the determinism contract.
func Shard(n, shards int) []Range {
	if n <= 0 || shards < 1 {
		return nil
	}
	if shards > n {
		shards = n
	}
	out := make([]Range, shards)
	size, rem := n/shards, n%shards
	lo := 0
	for i := range out {
		hi := lo + size
		if i < rem {
			hi++
		}
		out[i] = Range{Index: i, Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// ShardSize splits [0, n) into ⌈n/size⌉ contiguous shards of the given
// size (the last may be short). Fixed-size shards keep the substream
// assigned to an item stable as worker counts change, and nearly stable
// as n grows.
func ShardSize(n, size int) []Range {
	if n <= 0 {
		return nil
	}
	if size < 1 {
		size = 1
	}
	out := make([]Range, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Range{Index: len(out), Lo: lo, Hi: hi})
	}
	return out
}

// Segments builds shards from explicit segment boundaries: bounds holds
// the cut points of len(bounds)-1 consecutive half-open ranges
// ([bounds[0], bounds[1]), [bounds[1], bounds[2]), …), which must be
// non-decreasing. Unlike Shard, the pieces are caller-shaped — e.g. the
// per-cell UE groups a counting sort produces — and may be empty (an
// empty segment keeps its Index so Range.Index can stay a stable group
// id). The result is appended to out, so a caller that re-shards every
// tick can pass out[:0] of a retained slice and stay allocation-free.
func Segments(bounds []int, out []Range) []Range {
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, Range{Index: i, Lo: bounds[i], Hi: bounds[i+1]})
	}
	return out
}

// Do executes fn once per shard, at most workers concurrently, and
// returns when every shard has finished. workers follows the Workers
// convention (0 = GOMAXPROCS). With one worker — or one shard — fn runs
// inline on the calling goroutine in shard order, which is exactly the
// pre-parallel serial path: no goroutines, no synchronization.
//
// Shards are claimed dynamically, so execution order across goroutines
// is unspecified; fn must confine its writes to shard-owned state.
func Do(workers int, shards []Range, fn func(Range)) {
	_ = DoCtx(context.Background(), workers, shards, fn)
}

// DoCtx is Do with cancellation: ctx.Err() is checked before each shard
// is claimed, so a canceled context stops the fan-out within one shard
// boundary — shards already running finish, unclaimed shards never
// start. Returns the context error (wrapped verbatim) when the run was
// cut short, nil when every shard executed.
func DoCtx(ctx context.Context, workers int, shards []Range, fn func(Range)) error {
	workers = Workers(workers)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, s := range shards {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(s)
		}
		return ctx.Err()
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(shards) {
					return
				}
				fn(shards[i])
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Map runs fn for every index in [0, n) across up to workers goroutines
// and returns the results in index order, independent of the worker
// count. Each call owns its slot, so fn may be expensive and internally
// stateful as long as distinct indices do not share mutable state.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out, _ := MapCtx(context.Background(), workers, n, fn)
	return out
}

// MapCtx is Map with cancellation (the DoCtx contract): on a canceled
// context the returned error is non-nil and unexecuted slots hold zero
// values — callers must discard the slice when err != nil.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := DoCtx(ctx, workers, ShardSize(n, 1), func(r Range) {
		out[r.Lo] = fn(r.Lo)
	})
	return out, err
}

// ShardMap runs fn once per shard and returns the per-shard results in
// shard-index order, independent of the worker count.
func ShardMap[T any](workers int, shards []Range, fn func(Range) T) []T {
	out := make([]T, len(shards))
	Do(workers, shards, func(r Range) {
		out[r.Index] = fn(r)
	})
	return out
}
