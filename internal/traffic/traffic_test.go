package traffic

import (
	"testing"
	"time"

	"fivegsim/internal/energy"
)

func TestWebTraceShape(t *testing.T) {
	tr := Web(42)
	if tr.Duration() < 250*time.Second || tr.Duration() > 330*time.Second {
		t.Fatalf("web trace duration = %v", tr.Duration())
	}
	// 10 sessions × 5 pages of 2–3.5 MB.
	total := tr.TotalBytes()
	if total < 80<<20 || total > 200<<20 {
		t.Fatalf("web trace bytes = %d MB", total>>20)
	}
	// Bursty: most bins are empty.
	empty := 0
	for _, b := range tr.Bytes {
		if b == 0 {
			empty++
		}
	}
	if frac := float64(empty) / float64(len(tr.Bytes)); frac < 0.7 {
		t.Fatalf("web trace not bursty: %.0f%% empty bins", 100*frac)
	}
}

func TestVideoTraceShape(t *testing.T) {
	tr := Video(42)
	rate := float64(tr.TotalBytes()*8) / tr.Duration().Seconds()
	if rate < 95e6 || rate > 130e6 {
		t.Fatalf("video trace mean rate = %.0f Mb/s, want ≈112", rate/1e6)
	}
	// Some bins above and some below the 100 Mb/s switching threshold.
	above, below := 0, 0
	for i := range tr.Bytes {
		if tr.BinRate(i) > 100e6 {
			above++
		} else {
			below++
		}
	}
	if above == 0 || below == 0 {
		t.Fatalf("video bins must straddle the switching threshold (above=%d below=%d)", above, below)
	}
}

func TestFileTraceShape(t *testing.T) {
	tr := File(42)
	if got := tr.TotalBytes(); got != int64(2850)<<20 {
		t.Fatalf("file bytes = %d", got)
	}
}

func TestSaturated(t *testing.T) {
	tr := Saturated(880e6, 10*time.Second)
	rate := float64(tr.TotalBytes()*8) / tr.Duration().Seconds()
	if rate < 870e6 || rate > 890e6 {
		t.Fatalf("saturated rate = %.0f", rate/1e6)
	}
}

func TestTracesDeterministic(t *testing.T) {
	a, b := Web(9), Web(9)
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] {
			t.Fatal("web trace not deterministic")
		}
	}
	if Web(9).TotalBytes() == Web(10).TotalBytes() {
		t.Fatal("different seeds should differ")
	}
	var _ energy.Trace = a
}
