package traffic

import (
	"math/rand"

	"fivegsim/internal/rng"
)

// Per-UE traffic classes for the population layer: each UE of a campus
// population carries one of the paper's three §6.3 workload shapes, and
// every population tick draws that UE's offered downlink rate from the
// class model. The per-class parameters are the same ones the replay
// traces above encode — a class draw is the per-tick marginal of the
// corresponding trace.

// Class is one per-UE application profile.
type Class uint8

const (
	// ClassWeb is short-burst page browsing: idle most of the time, a
	// 2–3.5 MB page over 300–500 ms when a load fires (the Web trace's
	// per-load shape).
	ClassWeb Class = iota
	// ClassVideo is UHD frame-by-frame telephony: ≈112 Mb/s with
	// GOP-scale variation (the Video trace's rate model).
	ClassVideo
	// ClassBulk is saturated file transfer: the UE takes every PRB the
	// cell will grant (the File trace's full-buffer regime).
	ClassBulk
	// NumClasses bounds the Class value space.
	NumClasses
)

// String returns the workload name.
func (c Class) String() string {
	switch c {
	case ClassWeb:
		return "web"
	case ClassVideo:
		return "video"
	case ClassBulk:
		return "bulk"
	default:
		return "unknown"
	}
}

// BulkDemandBps is the nominal offered rate of a saturating bulk UE —
// far above any single cell's capacity, so the PRB scheduler clamps the
// demand to the cell budget exactly as a full-buffer flow would behave.
const BulkDemandBps = 2e9

// webDuty is the fraction of ticks a browsing UE is mid-page-load: the
// Web trace fires 5 loads of 300–500 ms every 30 s ⇒ ≈5·0.4/30.
const webDuty = 0.067

// MixWeights is the population's application mix. Weights need not sum
// to one; Sample normalizes.
type MixWeights struct {
	Web, Video, Bulk float64
}

// DefaultMix returns the campus default: browsing-dominated with a
// video-telephony minority and a few saturating bulk transfers, the
// workload balance of the paper's §6 application study.
func DefaultMix() MixWeights { return MixWeights{Web: 0.7, Video: 0.2, Bulk: 0.1} }

// Sample draws a class from the normalized weights. Non-positive or
// all-zero weights degrade safely (all-zero draws ClassWeb).
func (w MixWeights) Sample(r *rand.Rand) Class {
	web, video, bulk := max0(w.Web), max0(w.Video), max0(w.Bulk)
	total := web + video + bulk
	if total <= 0 {
		return ClassWeb
	}
	u := r.Float64() * total
	switch {
	case u < web:
		return ClassWeb
	case u < web+video:
		return ClassVideo
	default:
		return ClassBulk
	}
}

func max0(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// OfferedBps draws one tick's offered downlink rate for a UE of the
// given class. The draws are the per-tick marginals of the replay
// traces: web is on/off with page loads of 2–3.5 MB over ≈0.4 s, video
// is the clamped-normal GOP rate of the Video trace, and bulk saturates.
func OfferedBps(c Class, r *rand.Rand) float64 {
	switch c {
	case ClassWeb:
		if r.Float64() >= webDuty {
			return 0
		}
		pageBytes := rng.Uniform(r, 2.0, 3.5) * (1 << 20)
		return pageBytes * 8 / 0.4
	case ClassVideo:
		return rng.ClampedNormal(r, 112e6, 18e6, 60e6, 165e6)
	case ClassBulk:
		return BulkDemandBps
	default:
		return 0
	}
}
