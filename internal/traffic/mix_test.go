package traffic

import (
	"math/rand"
	"testing"
)

func TestMixSampleProportions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := MixWeights{Web: 0.7, Video: 0.2, Bulk: 0.1}
	const n = 100000
	var counts [NumClasses]int
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	for c, want := range map[Class]float64{ClassWeb: 0.7, ClassVideo: 0.2, ClassBulk: 0.1} {
		got := float64(counts[c]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s: drawn fraction %.3f, want %.2f ± 0.02", c, got, want)
		}
	}
}

func TestMixSampleNormalizes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// Unnormalized weights must behave like their normalized form.
	w := MixWeights{Web: 7, Video: 2, Bulk: 1}
	var bulk int
	const n = 50000
	for i := 0; i < n; i++ {
		if w.Sample(r) == ClassBulk {
			bulk++
		}
	}
	if got := float64(bulk) / n; got < 0.08 || got > 0.12 {
		t.Errorf("bulk fraction %.3f under 7/2/1 weights, want ≈0.10", got)
	}
}

func TestMixSampleDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if c := (MixWeights{}).Sample(r); c != ClassWeb {
		t.Errorf("all-zero mix drew %s, want web", c)
	}
	if c := (MixWeights{Web: -1, Video: -2, Bulk: -3}).Sample(r); c != ClassWeb {
		t.Errorf("all-negative mix drew %s, want web", c)
	}
	for i := 0; i < 100; i++ {
		if c := (MixWeights{Bulk: 5}).Sample(r); c != ClassBulk {
			t.Fatalf("bulk-only mix drew %s", c)
		}
	}
}

func TestOfferedBpsRanges(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var webActive int
	const n = 20000
	for i := 0; i < n; i++ {
		if d := OfferedBps(ClassWeb, r); d > 0 {
			webActive++
			// 2–3.5 MB over 0.4 s ⇒ ≈42–73 Mb/s.
			if d < 41e6 || d > 74e6 {
				t.Fatalf("web burst %.1f Mb/s outside page-load range", d/1e6)
			}
		}
		if d := OfferedBps(ClassVideo, r); d < 60e6 || d > 165e6 {
			t.Fatalf("video draw %.1f Mb/s outside clamp", d/1e6)
		}
		if d := OfferedBps(ClassBulk, r); d != BulkDemandBps {
			t.Fatalf("bulk draw %.0f, want saturating constant", d)
		}
	}
	duty := float64(webActive) / n
	if duty < 0.05 || duty > 0.09 {
		t.Errorf("web duty cycle %.3f, want ≈0.067", duty)
	}
	if d := OfferedBps(NumClasses, r); d != 0 {
		t.Errorf("unknown class offered %.0f, want 0", d)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassWeb: "web", ClassVideo: "video", ClassBulk: "bulk", NumClasses: "unknown",
	} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
