// Package traffic generates the workload traces the energy study replays
// (§6.3: "short web page browsing, frame-by-frame UHD video telephony and
// saturated file transfer") and the saturated sessions of Fig. 22.
package traffic

import (
	"time"

	"fivegsim/internal/energy"
	"fivegsim/internal/rng"
)

// Bin is the capture granularity of the replayed Wireshark traces.
const Bin = 100 * time.Millisecond

// Web returns the short-burst browsing trace: ten browsing sessions, each
// a Fig. 23-style run of five page loads 3 s apart followed by reading
// silence long enough for the 4G radio (but not the 5G NSA radio, with
// its doubled tail) to reach RRC_IDLE.
func Web(seed int64) energy.Trace {
	r := rng.New(seed).Stream("traffic.web")
	const (
		sessions       = 10
		loadsPerSess   = 5
		loadSpacing    = 3 * time.Second
		sessionSpacing = 30 * time.Second
	)
	bins := int(time.Duration(sessions)*sessionSpacing/Bin) + 1
	t := energy.Trace{BinDur: Bin, Bytes: make([]int64, bins)}
	for s := 0; s < sessions; s++ {
		base := time.Duration(s) * sessionSpacing
		for l := 0; l < loadsPerSess; l++ {
			start := int((base + time.Duration(l)*loadSpacing) / Bin)
			pageBytes := int64(rng.Uniform(r, 2.0, 3.5) * (1 << 20))
			over := 3 + r.Intn(3) // the load spans 300–500 ms
			for k := 0; k < over && start+k < bins; k++ {
				t.Bytes[start+k] += pageBytes / int64(over)
			}
		}
	}
	return t
}

// Video returns the UHD frame-by-frame telephony trace: ≈112 Mb/s for two
// minutes with GOP-scale variation (the 5.7K-class stream of §5.2,
// recorded over 5G so its instantaneous rate regularly tops the 100 Mb/s
// dynamic-switching threshold).
func Video(seed int64) energy.Trace {
	r := rng.New(seed).Stream("traffic.video")
	bins := int((120 * time.Second) / Bin)
	t := energy.Trace{BinDur: Bin, Bytes: make([]int64, bins)}
	rate := 112e6
	for i := range t.Bytes {
		if i%10 == 0 {
			rate = rng.ClampedNormal(r, 112e6, 18e6, 60e6, 165e6)
		}
		t.Bytes[i] = int64(rate / 8 * Bin.Seconds())
	}
	return t
}

// File returns the saturated bulk-download trace: ≈2.85 GB offered as
// fast as the sender can push (the radio's drain rate shapes the replay).
func File(seed int64) energy.Trace {
	total := int64(2850) << 20
	perBin := int64(50) << 20
	bins := int(total/perBin) + 1
	t := energy.Trace{BinDur: Bin, Bytes: make([]int64, bins)}
	for i := range t.Bytes {
		if total >= perBin {
			t.Bytes[i] = perBin
			total -= perBin
		} else {
			t.Bytes[i] = total
			total = 0
		}
	}
	return t
}

// Saturated returns a full-rate trace of the given duration at the given
// rate (the Fig. 22 energy-per-bit sweep).
func Saturated(rateBps float64, duration time.Duration) energy.Trace {
	bins := int(duration / Bin)
	t := energy.Trace{BinDur: Bin, Bytes: make([]int64, bins)}
	for i := range t.Bytes {
		t.Bytes[i] = int64(rateBps / 8 * Bin.Seconds())
	}
	return t
}
