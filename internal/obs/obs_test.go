package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryHandsOutNoopHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DurationBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must be no-ops")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 3 max 7", g.Value(), g.Max())
	}
	g.Add(10)
	if g.Value() != 13 || g.Max() != 13 {
		t.Fatalf("gauge after Add = %d max %d, want 13 max 13", g.Value(), g.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i)) // uniform 1..100
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %g", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 100 {
		t.Fatalf("p50 = %g, want within the 10..100 bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 100 {
		t.Fatalf("p99 = %g, want in (p50, 100]", p99)
	}
	// Overflow bucket: beyond the last bound, quantiles clamp to max.
	h.Observe(5000)
	if q := h.Quantile(1); q != 5000 {
		t.Fatalf("q1 = %g, want observed max 5000", q)
	}
}

func TestSnapshotSortedAndRendered(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("c.third").Set(9)
	r.Histogram("d.hist", ByteBuckets).Observe(2048)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name)
	}
	want := []string{"a.first", "b.second", "c.third", "d.hist"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
	text := r.Text()
	if !strings.Contains(text, "a.first") || !strings.Contains(text, "p99=") {
		t.Fatalf("text exposition missing fields:\n%s", text)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", DurationBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist", nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestTracerRingBoundsAndOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Instant("e", "cat", time.Duration(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Sim != time.Duration(3+i) {
			t.Fatalf("ring order wrong: evs[%d].Sim = %v", i, e.Sim)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	tr.Span("tx", "netsim", 10*time.Microsecond, 5*time.Microsecond)
	tr.Instant("drop", "netsim", 20*time.Microsecond)
	tr.WallSpan("cb", "des", 30*time.Microsecond, 2*time.Microsecond)
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(out.TraceEvents))
	}
	if out.TraceEvents[0]["ph"] != "X" || out.TraceEvents[0]["ts"] != 10.0 || out.TraceEvents[0]["dur"] != 5.0 {
		t.Fatalf("span event wrong: %v", out.TraceEvents[0])
	}
	if out.TraceEvents[1]["ph"] != "i" || out.TraceEvents[1]["s"] != "g" {
		t.Fatalf("instant event wrong: %v", out.TraceEvents[1])
	}
}

func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	tr.Instant("x", "c", 0)
	tr.Span("y", "c", 0, 1)
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestManifestRoundTripAndDiff(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricEventsFired).Add(1234)
	reg.Gauge(MetricSimTime).Set(int64(8 * time.Second))
	reg.Counter("netsim.pkt_dropped{hop=b}").Add(7)
	m := NewManifest("F7", "test run", 42, true, time.Now(), 3*time.Second, reg)
	if m.EventsExecuted != 1234 {
		t.Fatalf("EventsExecuted = %d, want 1234", m.EventsExecuted)
	}
	if m.SimTime != 8*time.Second {
		t.Fatalf("SimTime = %v, want 8s", m.SimTime)
	}
	if m.Version == "" {
		t.Fatal("version must be non-empty")
	}

	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.ExperimentID != "F7" || back.EventsExecuted != 1234 || len(back.Metrics) != len(m.Metrics) {
		t.Fatalf("round trip lost data: %+v", back)
	}

	reg2 := NewRegistry()
	reg2.Counter(MetricEventsFired).Add(2468)
	reg2.Counter("netsim.pkt_dropped{hop=b}").Add(14)
	m2 := NewManifest("F7", "test run", 42, true, time.Now(), 3*time.Second, reg2)
	diff := DiffManifests(m, m2)
	if !strings.Contains(diff, "netsim.pkt_dropped{hop=b}") || !strings.Contains(diff, "+100.0%") {
		t.Fatalf("diff missing doubled drop counter:\n%s", diff)
	}
}
