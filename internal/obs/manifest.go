package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// RunManifest is the provenance record attached to every experiment
// result: everything needed to reproduce the run and to compare two
// runs metric-by-metric.
type RunManifest struct {
	ExperimentID string    `json:"experiment_id"`
	Title        string    `json:"title,omitempty"`
	Seed         int64     `json:"seed"`
	Quick        bool      `json:"quick"`
	Version      string    `json:"version"`
	StartedAt    time.Time `json:"started_at"`
	// WallTime is the real time the run took; SimTime the longest
	// simulated clock any scheduler in the run reached.
	WallTime time.Duration `json:"wall_ns"`
	SimTime  time.Duration `json:"sim_ns"`
	// EventsExecuted is the total DES events fired across the run
	// (0 when the run had no registry attached).
	EventsExecuted int64 `json:"events_executed"`
	// Metrics is the registry snapshot at the end of the run.
	Metrics []Metric `json:"metrics,omitempty"`
}

// Metric names the manifest reads back out of the registry snapshot.
const (
	MetricEventsFired = "des.events_fired"
	MetricSimTime     = "des.sim_time_ns"
)

// NewManifest assembles the manifest for one finished run. reg may be
// nil (headline-only manifest).
func NewManifest(id, title string, seed int64, quick bool, started time.Time, wall time.Duration, reg *Registry) RunManifest {
	m := RunManifest{
		ExperimentID: id,
		Title:        title,
		Seed:         seed,
		Quick:        quick,
		Version:      Version(),
		StartedAt:    started,
		WallTime:     wall,
		Metrics:      reg.Snapshot(),
	}
	for _, met := range m.Metrics {
		switch met.Name {
		case MetricEventsFired:
			m.EventsExecuted = int64(met.Value)
		case MetricSimTime:
			m.SimTime = time.Duration(met.Max)
		}
	}
	return m
}

var versionOnce struct {
	done bool
	v    string
}

// Version returns a git-describe-style identifier for the running
// binary, derived from Go's embedded build info: module version when
// tagged, otherwise "devel+<revision12>[-dirty]".
func Version() string {
	if versionOnce.done {
		return versionOnce.v
	}
	versionOnce.done = true
	versionOnce.v = "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			versionOnce.v = bi.Main.Version
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			versionOnce.v += "+" + rev + dirty
		}
	}
	return versionOnce.v
}

// String renders the manifest header and metric snapshot as text.
func (m RunManifest) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s (%s)\n", m.ExperimentID, m.Title)
	fmt.Fprintf(&b, "  seed=%d quick=%v version=%s\n", m.Seed, m.Quick, m.Version)
	fmt.Fprintf(&b, "  started=%s wall=%s sim=%s events=%d\n",
		m.StartedAt.Format(time.RFC3339), m.WallTime.Round(time.Millisecond), m.SimTime, m.EventsExecuted)
	for _, met := range m.Metrics {
		fmt.Fprintf(&b, "  %s\n", met.String())
	}
	return b.String()
}

// WriteJSON writes the manifest as indented JSON.
func (m RunManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifests loads one manifest or a JSON array of manifests from a
// file (both shapes are accepted, so single-run and campaign outputs
// interchange).
func ReadManifests(path string) ([]RunManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var many []RunManifest
	if err := json.Unmarshal(data, &many); err == nil {
		return many, nil
	}
	var one RunManifest
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("obs: %s is neither a manifest nor a manifest array: %w", path, err)
	}
	return []RunManifest{one}, nil
}

// DiffManifests renders a metric-by-metric comparison of two runs:
// every metric present in either manifest, with absolute and relative
// deltas, plus the headline wall/sim/events comparison.
func DiffManifests(a, b RunManifest) string {
	var out strings.Builder
	fmt.Fprintf(&out, "diff %s (seed %d, %s) vs %s (seed %d, %s)\n",
		a.ExperimentID, a.Seed, a.Version, b.ExperimentID, b.Seed, b.Version)
	fmt.Fprintf(&out, "  wall   %12s -> %-12s (%s)\n", a.WallTime.Round(time.Millisecond), b.WallTime.Round(time.Millisecond), ratio(float64(a.WallTime), float64(b.WallTime)))
	fmt.Fprintf(&out, "  sim    %12s -> %-12s\n", a.SimTime, b.SimTime)
	fmt.Fprintf(&out, "  events %12d -> %-12d (%s)\n", a.EventsExecuted, b.EventsExecuted, ratio(float64(a.EventsExecuted), float64(b.EventsExecuted)))

	am := map[string]Metric{}
	for _, m := range a.Metrics {
		am[m.Name] = m
	}
	bm := map[string]Metric{}
	for _, m := range b.Metrics {
		bm[m.Name] = m
	}
	names := make([]string, 0, len(am)+len(bm))
	seen := map[string]bool{}
	for n := range am {
		names = append(names, n)
		seen[n] = true
	}
	for n := range bm {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		ma, inA := am[n]
		mb, inB := bm[n]
		switch {
		case !inA:
			fmt.Fprintf(&out, "  + %-42s %.6g\n", n, metricHeadline(mb))
		case !inB:
			fmt.Fprintf(&out, "  - %-42s %.6g\n", n, metricHeadline(ma))
		default:
			va, vb := metricHeadline(ma), metricHeadline(mb)
			if va == vb {
				continue
			}
			fmt.Fprintf(&out, "    %-42s %12.6g -> %-12.6g (%s)\n", n, va, vb, ratio(va, vb))
		}
	}
	return out.String()
}

// metricHeadline is the single comparable number per metric: the value
// for counters/gauges, the mean for histograms.
func metricHeadline(m Metric) float64 { return m.Value }

func ratio(a, b float64) string {
	if a == 0 || math.IsNaN(a) || math.IsNaN(b) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b/a-1))
}
