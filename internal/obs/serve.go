package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live telemetry over HTTP: Serve exposes a running registry as a
// Prometheus scrape target plus JSON mirrors, so a campaign can be
// watched while it executes instead of only through its end-of-run
// manifests. Handlers snapshot under the registry lock per request —
// the instruments themselves stay on their atomic fast paths.

// ServeOptions selects what a telemetry server exposes.
type ServeOptions struct {
	// Registry backs /metrics (Prometheus text format) and
	// /metrics.json (the Snapshot JSON array). May be nil (both
	// endpoints then serve empty documents).
	Registry *Registry
	// Progress, when non-nil, backs /progress (a ProgressSnapshot as
	// JSON).
	Progress *ProgressTracker
	// Tracer, when non-nil, backs /trace (the current ring as a
	// Chrome-trace JSON, loadable in Perfetto).
	Tracer *Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Handler builds the telemetry mux for the given options.
func Handler(opts ServeOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, opts.Registry)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(opts.Registry.Snapshot())
	})
	if opts.Progress != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(opts.Progress.Snapshot())
		})
	}
	if opts.Tracer != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			opts.Tracer.WriteChromeTrace(w)
		})
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "fivegsim live telemetry")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		fmt.Fprintln(w, "  /metrics.json  registry snapshot (JSON)")
		if opts.Progress != nil {
			fmt.Fprintln(w, "  /progress      campaign progress (JSON)")
		}
		if opts.Tracer != nil {
			fmt.Fprintln(w, "  /trace         Chrome trace of the run so far")
		}
		if opts.Pprof {
			fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
		}
	})
	return mux
}

// Server is a running telemetry endpoint. It shuts down when the
// context passed to Serve is canceled; Wait blocks until shutdown has
// completed and reports the terminal serve error, if any.
type Server struct {
	// Addr is the bound listen address ("127.0.0.1:43211"), resolved
	// even when Serve was asked for port 0.
	Addr string
	done chan struct{}
	err  error
}

// shutdownGrace bounds how long an exiting server waits for in-flight
// scrapes before closing their connections.
const shutdownGrace = 2 * time.Second

// Serve binds addr (":0" picks a free port) and serves the telemetry
// endpoints until ctx is canceled. It returns as soon as the listener
// is bound; the resolved address is Server.Addr.
func Serve(ctx context.Context, addr string, opts ServeOptions) (*Server, error) {
	return ServeHandler(ctx, addr, Handler(opts))
}

// ServeHandler is Serve with a caller-built handler: the same bind /
// context-cancellation / bounded-drain lifecycle, but serving h instead
// of the stock telemetry mux. internal/serve mounts its campaign API on
// top of Handler's endpoints through this.
func ServeHandler(ctx context.Context, addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: h}
	s := &Server{Addr: ln.Addr().String(), done: make(chan struct{})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	go func() {
		defer close(s.done)
		select {
		case err := <-serveErr:
			// The listener died on its own (not a shutdown).
			s.err = err
			return
		case <-ctx.Done():
		}
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			s.err = err
		}
		<-serveErr // always http.ErrServerClosed after Shutdown
	}()
	return s, nil
}

// Wait blocks until the server has shut down (its Serve context was
// canceled, or the listener failed) and returns the terminal error, nil
// on a clean shutdown.
func (s *Server) Wait() error {
	<-s.done
	return s.err
}
