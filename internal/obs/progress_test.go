package obs

import (
	"testing"
	"time"
)

func TestEstimateETA(t *testing.T) {
	cases := []struct {
		elapsed          time.Duration
		completed, total int
		want             time.Duration
	}{
		{10 * time.Second, 2, 4, 10 * time.Second},
		{10 * time.Second, 1, 4, 30 * time.Second},
		{10 * time.Second, 0, 4, 0},  // nothing completed: no basis
		{10 * time.Second, 4, 4, 0},  // done: nothing remains
		{10 * time.Second, 5, 4, 0},  // over-complete: clamp to done
		{-5 * time.Second, 1, 4, 0},  // negative elapsed (clock skew): clamp to 0
		{-1, 1, 1 << 30, 0},          // tiny negative elapsed, huge remaining: still 0
		{0, 1, 4, 0},                 // zero elapsed: no basis yet
		{1 << 62, 1, 1 << 40, 1<<63 - 1}, // extrapolation overflows: saturate, never wrap negative
	}
	for _, tc := range cases {
		if got := EstimateETA(tc.elapsed, tc.completed, tc.total); got != tc.want {
			t.Errorf("EstimateETA(%v, %d, %d) = %v, want %v", tc.elapsed, tc.completed, tc.total, got, tc.want)
		}
	}
}

func TestProgressTrackerNilSafe(t *testing.T) {
	var tr *ProgressTracker
	tr.Observe(ProgressEvent{Kind: ProgressExperimentStart, Experiment: "X"})
	if s := tr.Snapshot(); s.Total != 0 || s.Done {
		t.Fatalf("nil tracker snapshot = %+v, want zero value", s)
	}
}

func TestProgressTrackerLifecycle(t *testing.T) {
	tr := NewProgressTracker()
	tr.Observe(ProgressEvent{Kind: ProgressExperimentStart, Experiment: "X13", Total: 2})
	tr.Observe(ProgressEvent{Kind: ProgressExperimentStart, Experiment: "X12", Total: 2})
	tr.Observe(ProgressEvent{Kind: ProgressTick, Experiment: "X13", Tick: 5, Ticks: 15, Total: 2})

	s := tr.Snapshot()
	if s.Total != 2 || s.Completed != 0 || s.Done {
		t.Fatalf("mid-run snapshot = %+v", s)
	}
	if len(s.Running) != 2 || s.Running[0] != "X12" || s.Running[1] != "X13" {
		t.Fatalf("running set %v, want sorted [X12 X13]", s.Running)
	}
	if st := s.Ticks["X13"]; st.Tick != 5 || st.Ticks != 15 {
		t.Fatalf("tick state %+v, want 5/15", st)
	}

	tr.Observe(ProgressEvent{Kind: ProgressExperimentFinish, Experiment: "X13",
		Completed: 1, Total: 2, ETA: 3 * time.Second})
	s = tr.Snapshot()
	if s.Completed != 1 || s.Failed != 0 || s.Done {
		t.Fatalf("after first finish: %+v", s)
	}
	if len(s.Running) != 1 || s.Running[0] != "X12" {
		t.Fatalf("running set %v after X13 finished", s.Running)
	}
	if _, ok := s.Ticks["X13"]; ok {
		t.Fatal("finished experiment still reports tick state")
	}
	if s.ETA <= 0 {
		t.Fatalf("mid-run snapshot lost the ETA: %+v", s)
	}

	tr.Observe(ProgressEvent{Kind: ProgressExperimentFinish, Experiment: "X12",
		Completed: 2, Total: 2, Failed: true})
	s = tr.Snapshot()
	if !s.Done || s.Completed != 2 || s.Failed != 1 {
		t.Fatalf("final snapshot = %+v, want done with 1 failure", s)
	}
	if s.ETA != 0 {
		t.Fatalf("done snapshot still reports ETA %v", s.ETA)
	}
	if len(s.Running) != 0 {
		t.Fatalf("done snapshot still reports running %v", s.Running)
	}
}

// TestProgressTrackerCountsFinishesWithoutCompleted: finish events that
// carry no cumulative Completed field (e.g. a hand-rolled producer)
// still advance the completed count one per finish.
func TestProgressTrackerCountsFinishesWithoutCompleted(t *testing.T) {
	tr := NewProgressTracker()
	for i := 0; i < 3; i++ {
		tr.Observe(ProgressEvent{Kind: ProgressExperimentFinish, Experiment: "Z", Total: 3})
	}
	s := tr.Snapshot()
	if s.Completed != 3 || !s.Done {
		t.Fatalf("snapshot = %+v, want 3/3 done", s)
	}
}
