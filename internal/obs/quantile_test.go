package obs

import (
	"math"
	"strings"
	"testing"
)

// Pin the histogram quantile estimator against hand-computed values:
// linear interpolation inside the landing bucket, a lower edge that
// starts at the observed min, overflow-bucket targets resolving to the
// observed max, and clamping to [min, max]. These are the numbers the
// manifest Metrics and `fgobs show` report as p50/p95/p99.

func pinnedHistogram() *Histogram {
	h := newHistogram([]float64{10, 20, 30})
	// Bucket occupancy: (≤10): {5}, (≤20): {12, 14}, (≤30): {25, 28},
	// overflow: {35}. count=6, min=5, max=35.
	for _, v := range []float64{5, 12, 14, 25, 28, 35} {
		h.Observe(v)
	}
	return h
}

func TestQuantileInterpolationPinned(t *testing.T) {
	h := pinnedHistogram()
	cases := []struct {
		q, want float64
	}{
		// target 0.6 lands in the first bucket: lo = min = 5, frac 0.6
		// of the way to bound 10 → 8.
		{0.10, 8},
		// target 3 exactly exhausts bucket two: lo = 10, frac 1 → 20.
		{0.50, 20},
		// target 4.5: cum 3 before bucket three, frac (4.5-3)/2 = 0.75
		// between 20 and 30 → 27.5.
		{0.75, 27.5},
		// targets 5.7 and 5.94 pass every finite bucket (cum 5) → the
		// overflow bucket reports the observed max.
		{0.95, 35},
		{0.99, 35},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%.2f) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileClampsToObservedMax: interpolation toward a bucket bound
// beyond the largest observation must clamp to that observation.
func TestQuantileClampsToObservedMax(t *testing.T) {
	h := newHistogram([]float64{10})
	h.Observe(7)
	// Raw interpolation would give 7 + 0.5·(10-7) = 8.5; the only
	// observation is 7, so every quantile is 7.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%.2f) = %g, want the clamped max 7", q, got)
		}
	}
}

// TestSnapshotQuantiles: the snapshot carries the same pinned
// p50/p95/p99 and the text exposition prints them.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pin.us", []float64{10, 20, 30})
	for _, v := range []float64{5, 12, 14, 25, 28, 35} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	m := snap[0]
	if m.P50 != 20 || m.P95 != 35 || m.P99 != 35 {
		t.Fatalf("snapshot quantiles p50=%g p95=%g p99=%g, want 20/35/35", m.P50, m.P95, m.P99)
	}
	line := m.String()
	for _, want := range []string{"p50=20", "p90=", "p95=35", "p99=35"} {
		if !strings.Contains(line, want) {
			t.Errorf("metric line %q missing %q", line, want)
		}
	}
}
