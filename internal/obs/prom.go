package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Prometheus text-format exposition (version 0.0.4) of a registry.
//
// The simulator's `pkg.metric{label=value}` names translate mechanically:
// dots become underscores in the metric family name, the label block is
// re-rendered with quoted, escaped values, and histograms expand into the
// conventional `_bucket`/`_sum`/`_count` series with a cumulative
// `le="+Inf"` terminator. Output ordering is fully deterministic —
// families sort by name, series within a family by label string — so the
// wire format is golden-file testable (prom_test.go pins it).

// promSeries is one exposition line before rendering: a family, its
// rendered label block (`{a="b"}` or empty) and the sample lines.
type promSeries struct {
	labels string
	lines  []string
}

type promFamily struct {
	name   string
	kind   string // counter | gauge | histogram
	series []promSeries
}

// WriteProm writes the registry in Prometheus text exposition format.
// A nil registry writes nothing. The snapshot is taken under the
// registry lock, so it is safe against concurrent instrument writers;
// handed-out instrument handles keep updating atomically while the
// exposition renders from the copied state.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	fams := map[string]*promFamily{}
	add := func(rawName, kind string, lines func(fam, labels string) []string) {
		fam, labels := promName(rawName)
		switch kind {
		case "gauge-max":
			fam += "_max"
			kind = "gauge"
		}
		f, ok := fams[fam+" "+kind]
		if !ok {
			f = &promFamily{name: fam, kind: kind}
			fams[fam+" "+kind] = f
		}
		f.series = append(f.series, promSeries{labels: labels, lines: lines(fam, labels)})
	}

	r.mu.Lock()
	for name, c := range r.counters {
		v := c.Value()
		add(name, "counter", func(fam, labels string) []string {
			return []string{fam + labels + " " + strconv.FormatInt(v, 10)}
		})
	}
	for name, g := range r.gauges {
		v, mx := g.Value(), g.Max()
		add(name, "gauge", func(fam, labels string) []string {
			return []string{fam + labels + " " + strconv.FormatInt(v, 10)}
		})
		add(name, "gauge-max", func(fam, labels string) []string {
			return []string{fam + labels + " " + strconv.FormatInt(mx, 10)}
		})
	}
	for name, h := range r.hists {
		bounds := h.bounds
		counts := make([]int64, len(h.counts))
		for i := range h.counts {
			counts[i] = atomic.LoadInt64(&h.counts[i])
		}
		count := h.Count()
		sum := h.Sum()
		add(name, "histogram", func(fam, labels string) []string {
			out := make([]string, 0, len(bounds)+3)
			var cum int64
			for i, b := range bounds {
				cum += counts[i]
				out = append(out, fam+"_bucket"+mergeLE(labels, formatPromFloat(b))+" "+strconv.FormatInt(cum, 10))
			}
			out = append(out,
				fam+"_bucket"+mergeLE(labels, "+Inf")+" "+strconv.FormatInt(count, 10),
				fam+"_sum"+labels+" "+formatPromFloat(sum),
				fam+"_count"+labels+" "+strconv.FormatInt(count, 10))
			return out
		})
	}
	r.mu.Unlock()

	keys := make([]string, 0, len(fams))
	for k := range fams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := fams[k]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			for _, l := range s.lines {
				if _, err := io.WriteString(w, l+"\n"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// promName splits a `pkg.metric{label=value,…}` instrument name into a
// sanitized Prometheus family name and a rendered, escaped label block
// (empty when the instrument has no labels).
func promName(raw string) (fam, labels string) {
	name := raw
	if i := strings.IndexByte(raw, '{'); i >= 0 {
		name = raw[:i]
		labels = promLabels(strings.TrimSuffix(raw[i+1:], "}"))
	}
	return sanitizeProm(name), labels
}

// promLabels renders `k=v,k2=v2` as `{k="v",k2="v2"}` with Prometheus
// label-value escaping (backslash, double quote, newline). Label order is
// preserved from the instrument name, which registration keeps stable.
func promLabels(body string) string {
	if body == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range strings.Split(body, ",") {
		if i > 0 {
			b.WriteByte(',')
		}
		k, v, _ := strings.Cut(kv, "=")
		b.WriteString(sanitizeProm(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLE injects the `le` bucket label into an existing label block.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// escapeLabelValue applies the text-format escaping rules for values
// inside double quotes: \ → \\, " → \", newline → \n.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeProm maps an instrument name fragment onto the Prometheus
// metric/label charset [a-zA-Z0-9_:]; everything else becomes '_'
// (dots included, so `des.events_fired` → `des_events_fired`).
func sanitizeProm(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatPromFloat renders a float sample the way Prometheus expects:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatPromFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
