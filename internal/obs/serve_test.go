package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func serveTestOptions() ServeOptions {
	reg := NewRegistry()
	reg.Counter("pop.ticks").Add(3)
	reg.Counter("des.events_fired").Add(11)
	reg.Histogram("pop.tick_wall_us", DurationBuckets).Observe(250)
	tracker := NewProgressTracker()
	tracker.Observe(ProgressEvent{Kind: ProgressExperimentStart, Experiment: "X12", Total: 1})
	tracer := NewTracer(16)
	tracer.Span("pop.tick", "pop", 0, 100*time.Millisecond)
	return ServeOptions{Registry: reg, Progress: tracker, Tracer: tracer}
}

func get(t *testing.T, client *http.Client, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServeEndpointsAndShutdown drives a live server end to end: bind on
// port 0, scrape every endpoint, then cancel the context — the one
// shutdown path — and verify Wait returns clean and the port closes.
func TestServeEndpointsAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := Serve(ctx, "127.0.0.1:0", serveTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(srv.Addr, ":") || strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("Serve did not resolve the bound port: %q", srv.Addr)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + srv.Addr

	code, body, hdr := get(t, client, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	for _, want := range []string{"# TYPE pop_ticks counter", "pop_ticks 3",
		"des_events_fired 11", `pop_tick_wall_us_bucket{le="+Inf"} 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get(t, client, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var metrics []Metric
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("/metrics.json is not a Metric array: %v", err)
	}
	if len(metrics) != 3 {
		t.Fatalf("/metrics.json has %d metrics, want 3", len(metrics))
	}

	code, body, _ = get(t, client, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not a ProgressSnapshot: %v", err)
	}
	if snap.Total != 1 || len(snap.Running) != 1 || snap.Running[0] != "X12" {
		t.Fatalf("/progress snapshot = %+v", snap)
	}

	code, body, _ = get(t, client, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace is not a Chrome-trace document: %v", err)
	}
	if len(trace.TraceEvents) != 1 {
		t.Fatalf("/trace has %d events, want 1", len(trace.TraceEvents))
	}

	if code, _, _ = get(t, client, base+"/"); code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	if code, _, _ = get(t, client, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}

	cancel()
	if err := srv.Wait(); err != nil {
		t.Fatalf("shutdown reported %v", err)
	}
	if _, err := client.Get(base + "/metrics"); err == nil {
		t.Fatal("server still answering after context cancellation")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve(context.Background(), "127.0.0.1:-1", ServeOptions{}); err == nil {
		t.Fatal("Serve on an invalid address must fail")
	}
}

// TestHandlerOptionalEndpoints: progress/trace/pprof mount only when
// configured; the bare handler still serves both metrics forms (empty
// documents on a nil registry).
func TestHandlerOptionalEndpoints(t *testing.T) {
	bare := httptest.NewServer(Handler(ServeOptions{}))
	defer bare.Close()
	client := bare.Client()
	if code, body, _ := get(t, client, bare.URL+"/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("nil-registry /metrics = %d %q", code, body)
	}
	for _, path := range []string{"/progress", "/trace", "/debug/pprof/"} {
		if code, _, _ := get(t, client, bare.URL+path); code != http.StatusNotFound {
			t.Errorf("unconfigured %s returned %d, want 404", path, code)
		}
	}

	full := httptest.NewServer(Handler(ServeOptions{
		Registry: NewRegistry(), Progress: NewProgressTracker(), Tracer: NewTracer(8), Pprof: true,
	}))
	defer full.Close()
	for _, path := range []string{"/progress", "/trace", "/debug/pprof/"} {
		if code, _, _ := get(t, full.Client(), full.URL+path); code != http.StatusOK {
			t.Errorf("configured %s returned %d, want 200", path, code)
		}
	}
}
