package obs

import (
	"math"
	"testing"
)

func TestMergeCountersSum(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("des.events_fired").Add(10)
	b.Counter("des.events_fired").Add(32)
	b.Counter("netsim.pkt_dropped").Add(5)

	a.Merge(b)
	if got := a.Counter("des.events_fired").Value(); got != 42 {
		t.Fatalf("merged counter = %d, want 42", got)
	}
	if got := a.Counter("netsim.pkt_dropped").Value(); got != 5 {
		t.Fatalf("counter absent from dst must be created with src value, got %d", got)
	}
	// Merge must not mutate the source.
	if got := b.Counter("des.events_fired").Value(); got != 32 {
		t.Fatalf("src counter changed to %d", got)
	}
}

func TestMergeGaugesLastWriteAndHighWater(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("netsim.queue_depth").Set(90) // dst high-water 90
	a.Gauge("netsim.queue_depth").Set(3)
	b.Gauge("netsim.queue_depth").Set(40)
	b.Gauge("netsim.queue_depth").Set(7) // src current 7, high-water 40

	a.Merge(b)
	g := a.Gauge("netsim.queue_depth")
	if g.Value() != 7 {
		t.Fatalf("gauge value = %d, want src's last write 7", g.Value())
	}
	if g.Max() != 90 {
		t.Fatalf("gauge max = %d, want max-of-maxes 90", g.Max())
	}
}

func TestMergeHistogramBucketsAdd(t *testing.T) {
	bounds := []float64{1, 10, 100}
	a, b := NewRegistry(), NewRegistry()
	for _, v := range []float64{0.5, 5, 5, 50} {
		a.Histogram("rtt", bounds).Observe(v)
	}
	for _, v := range []float64{5, 500, 0.25} {
		b.Histogram("rtt", bounds).Observe(v)
	}

	a.Merge(b)
	h := a.Histogram("rtt", bounds)
	if h.Count() != 7 {
		t.Fatalf("merged count = %d, want 7", h.Count())
	}
	wantCounts := []int64{2, 3, 1, 1} // (≤1, ≤10, ≤100, overflow)
	for i, w := range wantCounts {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
	if got, want := h.Sum(), 0.5+5+5+50+5+500+0.25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged sum = %g, want %g", got, want)
	}
	if mn := math.Float64frombits(h.min); mn != 0.25 {
		t.Fatalf("merged min = %g, want 0.25", mn)
	}
	if mx := math.Float64frombits(h.max); mx != 500 {
		t.Fatalf("merged max = %g, want 500", mx)
	}
}

func TestMergeHistogramBoundsMismatchRebuckets(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("lat", []float64{10, 100}).Observe(3)
	src := b.Histogram("lat", []float64{1, 2, 4})
	src.Observe(1.5) // bucket ≤2 → re-bucketed at bound 2 → dst ≤10
	src.Observe(9)   // overflow → re-bucketed at observed max 9 → dst ≤10

	a.Merge(b)
	h := a.Histogram("lat", []float64{10, 100})
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.counts[0] != 3 || h.counts[1] != 0 || h.counts[2] != 0 {
		t.Fatalf("counts = %v, want all three samples in the ≤10 bucket", h.counts)
	}
}

func TestMergeNilAndSelfNoOps(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)

	var nilReg *Registry
	nilReg.Merge(r) // must not panic
	r.Merge(nil)
	r.Merge(r)
	if got := r.Counter("c").Value(); got != 1 {
		t.Fatalf("self/nil merges changed counter to %d", got)
	}
}

func TestMergeOrderInvariantTotals(t *testing.T) {
	// Shard registries merged in any order must agree on counter totals
	// and histogram bucket counts — the property the parallel campaign
	// engine's determinism rests on.
	mk := func() []*Registry {
		shards := make([]*Registry, 3)
		for i := range shards {
			shards[i] = NewRegistry()
			shards[i].Counter("n").Add(int64(i + 1))
			for j := 0; j <= i; j++ {
				shards[i].Histogram("h", []float64{1, 2}).Observe(float64(j))
			}
		}
		return shards
	}
	fwd, rev := NewRegistry(), NewRegistry()
	for _, s := range mk() {
		fwd.Merge(s)
	}
	shards := mk()
	for i := len(shards) - 1; i >= 0; i-- {
		rev.Merge(shards[i])
	}
	if fwd.Counter("n").Value() != rev.Counter("n").Value() {
		t.Fatal("counter totals depend on merge order")
	}
	hf, hr := fwd.Histogram("h", []float64{1, 2}), rev.Histogram("h", []float64{1, 2})
	if hf.Count() != hr.Count() {
		t.Fatal("histogram counts depend on merge order")
	}
	for i := range hf.counts {
		if hf.counts[i] != hr.counts[i] {
			t.Fatalf("bucket %d depends on merge order: %d vs %d", i, hf.counts[i], hr.counts[i])
		}
	}
}
