package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promTestRegistry builds the fixture registry behind the golden file:
// it exercises every translation rule — dot-to-underscore family names,
// multi-series families and their label-sorted order, label-value
// escaping (backslash, double quote, newline), the gauge high-water
// `_max` companion family, and the histogram `_bucket`/`_sum`/`_count`
// expansion with the cumulative `+Inf` terminator.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("des.events_fired").Add(42)
	r.Counter("netsim.pkt_dropped{hop=access}").Add(3)
	r.Counter("netsim.pkt_dropped{hop=bottleneck}").Add(7)
	r.Counter(`esc.metric{path=a"b\c}`).Add(1)
	r.Counter("cell.note{msg=line1\nline2}").Add(5)
	g := r.Gauge("des.queue_depth")
	g.Set(9)
	g.Set(3)
	h := r.Histogram("lat.us", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	return r
}

// TestWritePromGolden pins the exposition byte-for-byte. Regenerate the
// golden after an intentional format change with:
//
//	FIVEGSIM_UPDATE_GOLDEN=1 go test ./internal/obs -run WritePromGolden
func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, promTestRegistry()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "prom.golden")
	if os.Getenv("FIVEGSIM_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestWritePromDeterministic: two expositions of the same registry are
// identical (map iteration must not leak into the output order).
func TestWritePromDeterministic(t *testing.T) {
	r := promTestRegistry()
	var a, b strings.Builder
	WriteProm(&a, r)
	WriteProm(&b, r)
	if a.String() != b.String() {
		t.Fatal("two expositions of the same registry differ")
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := []struct {
		raw, fam, labels string
	}{
		{"des.events_fired", "des_events_fired", ""},
		{"netsim.pkt_dropped{hop=bottleneck}", "netsim_pkt_dropped", `{hop="bottleneck"}`},
		{"a.b{x=1,y=2}", "a_b", `{x="1",y="2"}`},
		{"9lives", "_9lives", ""},
		{"odd-name{k-1=v 1}", "odd_name", `{k_1="v 1"}`},
	}
	for _, tc := range cases {
		fam, labels := promName(tc.raw)
		if fam != tc.fam || labels != tc.labels {
			t.Errorf("promName(%q) = %q, %q; want %q, %q", tc.raw, fam, labels, tc.fam, tc.labels)
		}
	}
}

func TestFormatPromFloat(t *testing.T) {
	h := newHistogram([]float64{0.5})
	h.Observe(0.25)
	var b strings.Builder
	r := NewRegistry()
	r.hists["f.v"] = h
	if err := WriteProm(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`f_v_bucket{le="0.5"} 1`, `f_v_bucket{le="+Inf"} 1`, "f_v_sum 0.25", "f_v_count 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
