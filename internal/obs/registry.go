// Package obs is the simulator-wide telemetry substrate: a registry of
// named counters, gauges and fixed-bucket histograms, a bounded tracer
// with Chrome-trace export, and the run manifest attached to every
// experiment result.
//
// The package is zero-dependency and allocation-light by design. All
// instrument handles are nil-safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Histogram handles whose methods are no-ops, so
// instrumented code pays only a nil check when telemetry is off. Handles
// are safe for concurrent use (atomics throughout); handle creation
// takes a registry lock and is meant for setup paths, not hot loops.
//
// Metric names follow the `pkg.metric{label=value}` convention, e.g.
// `des.events_fired` or `netsim.pkt_dropped{hop=bottleneck}`. Snapshots
// render in sorted name order.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v int64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an instantaneous int64 level that also remembers its
// high-water mark (the max ever Set), which is what queue-depth and
// buffer-occupancy metrics report.
type Gauge struct {
	v   int64
	max int64
}

// Set stores the current level and updates the high-water mark. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
	for {
		m := atomic.LoadInt64(&g.max)
		if v <= m || atomic.CompareAndSwapInt64(&g.max, m, v) {
			return
		}
	}
}

// Add shifts the current level by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := atomic.AddInt64(&g.v, delta)
	for {
		m := atomic.LoadInt64(&g.max)
		if v <= m || atomic.CompareAndSwapInt64(&g.max, m, v) {
			return
		}
	}
}

// Value returns the current level. Nil-safe (0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Max returns the high-water mark. Nil-safe (0).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.max)
}

// Histogram is a fixed-bucket histogram over float64 observations.
// Buckets are cumulative-style upper bounds plus an implicit +Inf
// overflow bucket; sum/count/min/max are tracked exactly, quantiles are
// estimated by linear interpolation inside the landing bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds; len(counts) == len(bounds)+1
	counts []int64
	count  int64
	sum    uint64 // float64 bits, CAS-updated
	min    uint64 // float64 bits
	max    uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Float64bits(math.Inf(1)),
		max:    math.Float64bits(math.Inf(-1)),
	}
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	addFloat(&h.sum, v)
	casFloat(&h.min, v, func(cur float64) bool { return v < cur })
	casFloat(&h.max, v, func(cur float64) bool { return v > cur })
}

func addFloat(bits *uint64, v float64) {
	for {
		old := atomic.LoadUint64(bits)
		if atomic.CompareAndSwapUint64(bits, old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func casFloat(bits *uint64, v float64, better func(cur float64) bool) {
	for {
		old := atomic.LoadUint64(bits)
		if !better(math.Float64frombits(old)) {
			return
		}
		if atomic.CompareAndSwapUint64(bits, old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations. Nil-safe (0).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum returns the sum of observations. Nil-safe (0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sum))
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the landing bucket, clamped to the observed min/max. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	target := q * float64(h.Count())
	var cum float64
	lo := math.Float64frombits(atomic.LoadUint64(&h.min))
	for i, bound := range h.bounds {
		c := float64(atomic.LoadInt64(&h.counts[i]))
		if cum+c >= target && c > 0 {
			frac := (target - cum) / c
			v := lo + frac*(bound-lo)
			return clampQ(h, v)
		}
		cum += c
		if bound > lo {
			lo = bound
		}
	}
	return math.Float64frombits(atomic.LoadUint64(&h.max))
}

func clampQ(h *Histogram, v float64) float64 {
	if mn := math.Float64frombits(atomic.LoadUint64(&h.min)); v < mn {
		v = mn
	}
	if mx := math.Float64frombits(atomic.LoadUint64(&h.max)); v > mx {
		v = mx
	}
	return v
}

// Default bucket ladders for the simulator's common units.
var (
	// DurationBuckets covers event-callback and RTT-style latencies in
	// microseconds: 1 µs … ~16 s, ×2 per bucket.
	DurationBuckets = expBuckets(1, 2, 24)
	// ByteBuckets covers queue/buffer occupancies: 1 KiB … 64 MiB.
	ByteBuckets = expBuckets(1024, 2, 17)
)

// expBuckets returns n upper bounds start, start·f, start·f², …
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a concurrent-safe collection of named instruments.
// The zero value is not usable; use NewRegistry. A nil *Registry is the
// telemetry-off state: it hands out nil handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the first bounds).
// Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Merge folds src's instruments into r: counters sum, gauges take src's
// current value (last write wins) while high-water marks take the max,
// and histogram buckets add. Instruments missing from r are created.
// Merging from or into a nil registry — or a registry into itself — is
// a safe no-op.
//
// The parallel campaign engine gives each shard its own registry and
// merges them in shard order, so merged counter totals and histogram
// bucket counts are identical for every worker count. (Histogram float
// sums are accumulated in merge order and may differ from a serial run
// in the last ulp.) Merge snapshots src first, so it is safe against
// concurrent writers on either side, but the combined result is only
// meaningful once src's shard has finished writing.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	type histCopy struct {
		bounds []float64
		counts []int64
		sum    float64
		min    float64
		max    float64
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	type gaugeCopy struct{ v, max int64 }
	gauges := make(map[string]gaugeCopy, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = gaugeCopy{v: g.Value(), max: g.Max()}
	}
	hists := make(map[string]histCopy, len(src.hists))
	for name, h := range src.hists {
		hc := histCopy{
			bounds: append([]float64(nil), h.bounds...),
			counts: make([]int64, len(h.counts)),
			sum:    h.Sum(),
			min:    math.Float64frombits(atomic.LoadUint64(&h.min)),
			max:    math.Float64frombits(atomic.LoadUint64(&h.max)),
		}
		for i := range h.counts {
			hc.counts[i] = atomic.LoadInt64(&h.counts[i])
		}
		hists[name] = hc
	}
	src.mu.Unlock()

	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, g := range gauges {
		dst := r.Gauge(name)
		atomic.StoreInt64(&dst.v, g.v)
		for {
			m := atomic.LoadInt64(&dst.max)
			if g.max <= m || atomic.CompareAndSwapInt64(&dst.max, m, g.max) {
				break
			}
		}
	}
	for name, hc := range hists {
		dst := r.Histogram(name, hc.bounds)
		var count int64
		if equalBounds(dst.bounds, hc.bounds) {
			for i, c := range hc.counts {
				atomic.AddInt64(&dst.counts[i], c)
				count += c
			}
		} else {
			// Bounds disagree (the name was first registered with a
			// different ladder): re-bucket each source bucket at its
			// upper bound; the overflow bucket lands at the observed max.
			for i, c := range hc.counts {
				if c == 0 {
					continue
				}
				v := hc.max
				if i < len(hc.bounds) {
					v = hc.bounds[i]
				}
				j := sort.SearchFloat64s(dst.bounds, v)
				atomic.AddInt64(&dst.counts[j], c)
				count += c
			}
		}
		if count == 0 {
			continue
		}
		atomic.AddInt64(&dst.count, count)
		addFloat(&dst.sum, hc.sum)
		casFloat(&dst.min, hc.min, func(cur float64) bool { return hc.min < cur })
		casFloat(&dst.max, hc.max, func(cur float64) bool { return hc.max > cur })
	}
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Metric is one snapshotted instrument.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // counter | gauge | histogram
	Value float64 `json:"value"`
	// Gauge extras.
	Max float64 `json:"max,omitempty"`
	// Histogram extras (Value carries the mean).
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot captures every instrument, sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: float64(g.Value()), Max: float64(g.Max())})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
		if m.Count > 0 {
			m.Value = m.Sum / float64(m.Count)
			m.Min = math.Float64frombits(atomic.LoadUint64(&h.min))
			m.Max = math.Float64frombits(atomic.LoadUint64(&h.max))
			m.P50 = h.Quantile(0.50)
			m.P90 = h.Quantile(0.90)
			m.P95 = h.Quantile(0.95)
			m.P99 = h.Quantile(0.99)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders one metric as an exposition line.
func (m Metric) String() string {
	switch m.Kind {
	case "gauge":
		return fmt.Sprintf("%-44s %12.0f  max=%.0f", m.Name, m.Value, m.Max)
	case "histogram":
		return fmt.Sprintf("%-44s count=%d sum=%.6g mean=%.6g min=%.6g max=%.6g p50=%.6g p90=%.6g p95=%.6g p99=%.6g",
			m.Name, m.Count, m.Sum, m.Value, m.Min, m.Max, m.P50, m.P90, m.P95, m.P99)
	default:
		return fmt.Sprintf("%-44s %12.0f", m.Name, m.Value)
	}
}

// WriteText writes the sorted text exposition of the registry.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if _, err := fmt.Fprintln(w, m.String()); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the sorted text exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// WriteJSON writes the snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
