package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// The structured progress stream: the campaign engine (and the
// instrumented population layer underneath it) emits ProgressEvents as
// work starts, ticks and finishes, and a ProgressTracker folds the
// stream into a JSON-serializable snapshot the live /progress endpoint
// serves. Events are facts about completed work — consumers derive ETAs
// from them (EstimateETA), so a dropped or re-ordered consumer can
// always re-derive the campaign state from the latest events alone.

// ProgressKind classifies a progress event.
type ProgressKind string

const (
	// ProgressExperimentStart fires when an experiment is claimed by a
	// campaign worker, before its first simulated event.
	ProgressExperimentStart ProgressKind = "experiment_start"
	// ProgressExperimentFinish fires when an experiment returns (crashed
	// experiments finish too, with Failed set).
	ProgressExperimentFinish ProgressKind = "experiment_finish"
	// ProgressTick fires from inside long-running experiments that
	// expose sub-experiment granularity (the population layer's
	// per-tick hook); Tick/Ticks carry the inner counters.
	ProgressTick ProgressKind = "tick"
)

// ProgressEvent is one record of the campaign progress stream.
// Completed/Total count experiments; Tick/Ticks count the inner work
// units of the named experiment (population scheduling ticks, campaign
// reps) when Kind is ProgressTick.
type ProgressEvent struct {
	Kind       ProgressKind `json:"kind"`
	Experiment string       `json:"experiment,omitempty"`
	Completed  int          `json:"completed"`
	Total      int          `json:"total"`
	Tick       int          `json:"tick,omitempty"`
	Ticks      int          `json:"ticks,omitempty"`
	// Failed marks a finish event whose Result carried an error.
	Failed bool `json:"failed,omitempty"`
	// Elapsed is wall time since the campaign started; ETA the
	// completed-work extrapolation (0 until the first finish).
	Elapsed time.Duration `json:"elapsed_ns"`
	ETA     time.Duration `json:"eta_ns,omitempty"`
}

// EstimateETA extrapolates the remaining wall time from completed work:
// elapsed/completed × remaining. Returns 0 while nothing has completed
// (no basis) and 0 when everything has. The result is clamped to
// [0, math.MaxInt64]: a negative elapsed (clock skew, an event stamped
// before the tracker's start) or a float→Duration overflow must never
// surface as a negative countdown on the /progress endpoint.
func EstimateETA(elapsed time.Duration, completed, total int) time.Duration {
	if elapsed <= 0 || completed <= 0 || total <= completed {
		return 0
	}
	eta := float64(elapsed) / float64(completed) * float64(total-completed)
	if eta >= math.MaxInt64 {
		return math.MaxInt64
	}
	if eta < 0 {
		return 0
	}
	return time.Duration(eta)
}

// TickState is the inner progress of one running experiment.
type TickState struct {
	Tick  int `json:"tick"`
	Ticks int `json:"ticks"`
}

// ProgressSnapshot is the aggregate campaign state the /progress
// endpoint serves.
type ProgressSnapshot struct {
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
	Failed    int      `json:"failed"`
	Running   []string `json:"running,omitempty"`
	// Ticks holds the inner tick counters of running experiments that
	// report them, keyed by experiment ID.
	Ticks   map[string]TickState `json:"ticks,omitempty"`
	Elapsed time.Duration        `json:"elapsed_ns"`
	ETA     time.Duration        `json:"eta_ns,omitempty"`
	Done    bool                 `json:"done"`
}

// ProgressTracker folds a progress-event stream into a snapshot. It is
// safe for concurrent use; a nil *ProgressTracker is a no-op observer.
type ProgressTracker struct {
	mu        sync.Mutex
	start     time.Time
	total     int
	completed int
	failed    int
	running   map[string]bool
	ticks     map[string]TickState
	eta       time.Duration
}

// NewProgressTracker returns a tracker whose Elapsed clock starts now.
func NewProgressTracker() *ProgressTracker {
	return &ProgressTracker{
		start:   time.Now(),
		running: map[string]bool{},
		ticks:   map[string]TickState{},
	}
}

// Observe folds one event into the tracker. Nil-safe.
func (t *ProgressTracker) Observe(ev ProgressEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Total > 0 {
		t.total = ev.Total
	}
	switch ev.Kind {
	case ProgressExperimentStart:
		t.running[ev.Experiment] = true
	case ProgressExperimentFinish:
		delete(t.running, ev.Experiment)
		delete(t.ticks, ev.Experiment)
		if ev.Completed > t.completed {
			t.completed = ev.Completed
		} else {
			t.completed++
		}
		if ev.Failed {
			t.failed++
		}
		t.eta = ev.ETA
	case ProgressTick:
		t.ticks[ev.Experiment] = TickState{Tick: ev.Tick, Ticks: ev.Ticks}
	}
}

// Snapshot returns the current aggregate state. Nil-safe (zero value).
func (t *ProgressTracker) Snapshot() ProgressSnapshot {
	if t == nil {
		return ProgressSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := ProgressSnapshot{
		Total:     t.total,
		Completed: t.completed,
		Failed:    t.failed,
		Elapsed:   time.Since(t.start),
		Done:      t.total > 0 && t.completed >= t.total,
	}
	for id := range t.running {
		s.Running = append(s.Running, id)
	}
	sort.Strings(s.Running)
	if len(t.ticks) > 0 {
		s.Ticks = make(map[string]TickState, len(t.ticks))
		for id, st := range t.ticks {
			s.Ticks[id] = st
		}
	}
	if !s.Done {
		// Prefer a live extrapolation over the last event's ETA so the
		// endpoint keeps counting down between finishes.
		if eta := EstimateETA(s.Elapsed, s.Completed, s.Total); eta > 0 {
			s.ETA = eta
		} else {
			s.ETA = t.eta
		}
	}
	return s
}
