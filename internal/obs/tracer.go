package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one timestamped record. Sim holds the simulated
// timestamp; Wall the wall-clock offset since the tracer was created.
// Complete events ("X") additionally carry a duration: SimDur for spans
// measured in simulated time, WallDur for spans measured in wall time
// (e.g. DES callback profiling, where the callback consumes zero sim
// time but real CPU).
type TraceEvent struct {
	Name    string
	Cat     string
	Phase   byte // 'X' complete span, 'i' instant
	Sim     time.Duration
	SimDur  time.Duration
	Wall    time.Duration
	WallDur time.Duration
}

// Tracer records events into a bounded ring buffer. It is safe for
// concurrent use; a nil *Tracer is a no-op. When the ring wraps, the
// oldest events are overwritten and Dropped counts them.
type Tracer struct {
	mu      sync.Mutex
	buf     []TraceEvent
	next    int
	total   uint64
	wall0   time.Time
	started bool
}

// DefaultTraceCapacity bounds the ring when NewTracer is given cap ≤ 0.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]TraceEvent, 0, capacity), wall0: time.Now(), started: true}
}

// Emit records one event. Nil-safe.
func (t *Tracer) Emit(e TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Wall = time.Since(t.wall0)
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Span records a complete span in simulated time. Nil-safe.
func (t *Tracer) Span(name, cat string, simStart, simDur time.Duration) {
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: 'X', Sim: simStart, SimDur: simDur})
}

// WallSpan records a span anchored at simulated time simStart whose
// duration is wall-clock CPU time (DES callback profiling). Nil-safe.
func (t *Tracer) WallSpan(name, cat string, simStart, wallDur time.Duration) {
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: 'X', Sim: simStart, WallDur: wallDur})
}

// Instant records a point event at simulated time sim. Nil-safe.
func (t *Tracer) Instant(name, cat string, sim time.Duration) {
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: 'i', Sim: sim})
}

// Events returns the buffered events oldest-first. Nil-safe.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(cap(t.buf)) {
		return 0
	}
	return t.total - uint64(cap(t.buf))
}

// chromeEvent is the Trace Event Format record that chrome://tracing and
// Perfetto load. Timestamps and durations are microseconds; we map the
// simulated clock onto ts, so the viewer's timeline is simulation time.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the buffered events in Chrome Trace Event
// Format (load via chrome://tracing or https://ui.perfetto.dev). The
// timeline axis is simulated time; wall-clock offsets ride along in
// args. Categories map to tids so each substrate gets its own track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	tids := map[string]int{}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		tid, ok := tids[e.Cat]
		if !ok {
			tid = len(tids) + 1
			tids[e.Cat] = tid
		}
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   e.Cat,
			Phase: string(e.Phase),
			TS:    float64(e.Sim) / float64(time.Microsecond),
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"wall_us": float64(e.Wall) / float64(time.Microsecond)},
		}
		switch {
		case e.SimDur != 0:
			ce.Dur = float64(e.SimDur) / float64(time.Microsecond)
		case e.WallDur != 0:
			ce.Dur = float64(e.WallDur) / float64(time.Microsecond)
			ce.Args["wall_dur_us"] = ce.Dur
		}
		if e.Phase == 'i' {
			ce.Scope = "g"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
