package handoff

import (
	"testing"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/radio"
)

// A3 edge-case and ping-pong detector coverage: the TTT accumulator's
// reset-on-dip behaviour, the simultaneous-candidate tie-break, and the
// detector over both hand-crafted event sequences and RSRP traces
// replayed through the real A3 state machine.

const tick = 100 * time.Millisecond

// TestA3TrackerTTTResetOnDip pins that a single sample where the
// neighbor advantage dips below the gap restarts the time-to-trigger
// from zero — the condition must hold *continuously*, per Eq. (1).
func TestA3TrackerTTTResetOnDip(t *testing.T) {
	tr := NewA3Tracker(A3Config{GapDB: 3, TimeToTrigger: 300 * time.Millisecond})
	// Two qualifying samples (200 ms of the 300 ms TTT)…
	for i := 0; i < 2; i++ {
		if tr.Observe(-12, -8, tick) {
			t.Fatalf("fired after %d00 ms, before TTT", i+1)
		}
	}
	// …then a dip: advantage 2 dB < 3 dB gap. Must reset, not pause.
	if tr.Observe(-12, -10, tick) {
		t.Fatal("fired on the dip sample")
	}
	// Two more qualifying samples: only 200 ms since the reset, so the
	// pre-dip 200 ms must not count.
	for i := 0; i < 2; i++ {
		if tr.Observe(-12, -8, tick) {
			t.Fatalf("fired %d00 ms after the dip — TTT did not reset", i+1)
		}
	}
	// The third consecutive sample completes 300 ms and fires.
	if !tr.Observe(-12, -8, tick) {
		t.Fatal("did not fire after TTT of continuous advantage")
	}
}

// TestA3TrackerExactBoundary pins that exactly-at-gap samples do NOT
// qualify (the inequality is strict) and that the tracker fires on the
// sample at which the accumulated hold reaches TTT, not one later.
func TestA3TrackerExactBoundary(t *testing.T) {
	tr := NewA3Tracker(A3Config{GapDB: 3, TimeToTrigger: 300 * time.Millisecond})
	if tr.Observe(-12, -9, tick) {
		t.Fatal("advantage == gap must not qualify")
	}
	if tr.heldFor != 0 {
		t.Fatalf("advantage == gap left heldFor at %v, want 0", tr.heldFor)
	}
	fired := -1
	for i := 0; i < 5; i++ {
		if tr.Observe(-12, -8.5, tick) {
			fired = i
			break
		}
	}
	if fired != 2 {
		t.Fatalf("fired on qualifying sample %d, want 2 (3×100 ms ≥ 300 ms)", fired)
	}
}

// TestBestCandidateTieBreakPCI pins the simultaneous-candidate rule:
// exact RSRP ties resolve to the lower PCI, independent of input order —
// the same strict total order MeasureAll's sort imposes.
func TestBestCandidateTieBreakPCI(t *testing.T) {
	a := radio.Measurement{PCI: 44, RSRPdBm: -90}
	b := radio.Measurement{PCI: 226, RSRPdBm: -90}
	c := radio.Measurement{PCI: 441, RSRPdBm: -95}
	for _, ms := range [][]radio.Measurement{{a, b, c}, {b, a, c}, {c, b, a}} {
		got, ok := BestCandidate(ms)
		if !ok || got.PCI != 44 {
			t.Fatalf("BestCandidate(%v) = PCI %d ok=%v, want PCI 44 (tie → lower PCI)", ms, got.PCI, ok)
		}
	}
	// A genuinely stronger high-PCI cell still wins: the tie-break only
	// applies on exact equality.
	d := radio.Measurement{PCI: 500, RSRPdBm: -89.5}
	if got, _ := BestCandidate([]radio.Measurement{a, b, d}); got.PCI != 500 {
		t.Fatalf("strongest cell lost to the tie-break: got PCI %d, want 500", got.PCI)
	}
	if _, ok := BestCandidate(nil); ok {
		t.Fatal("empty candidate set reported ok")
	}
}

func ev(from, to int, at time.Duration) Event {
	return Event{Kind: FiveToFive, FromPCI: from, ToPCI: to, At: at}
}

// TestDetectPingPongsEvents is the table-driven detector suite over
// hand-crafted event sequences.
func TestDetectPingPongsEvents(t *testing.T) {
	w := time.Second
	cases := []struct {
		name   string
		events []Event
		want   int
	}{
		{"empty", nil, 0},
		{"single hand-off", []Event{ev(1, 2, 0)}, 0},
		{"return inside window", []Event{ev(1, 2, 0), ev(2, 1, 500 * time.Millisecond)}, 1},
		{"return at window edge", []Event{ev(1, 2, 0), ev(2, 1, time.Second)}, 1},
		{"return after window", []Event{ev(1, 2, 0), ev(2, 1, 1100 * time.Millisecond)}, 0},
		{"triangle is not a ping-pong", []Event{ev(1, 2, 0), ev(2, 3, 200 * time.Millisecond), ev(3, 1, 400 * time.Millisecond)}, 0},
		{"double oscillation", []Event{
			ev(1, 2, 0), ev(2, 1, 300 * time.Millisecond),
			ev(1, 2, 600 * time.Millisecond), ev(2, 1, 900 * time.Millisecond),
		}, 3}, // 2→1, 1→2 (back onto 2 within window) and 2→1 again all return to a just-left cell
		{"interleaved chains detect independently", []Event{
			ev(1, 2, 0),                       // NR leg: 1→2
			ev(10, 20, 100 * time.Millisecond), // LTE leg: 10→20
			ev(2, 1, 400 * time.Millisecond),  // NR returns: ping-pong
			ev(20, 30, 500 * time.Millisecond), // LTE moves on: no ping-pong
		}, 1},
		{"stale arrival does not re-match", []Event{
			ev(1, 2, 0),
			ev(2, 3, 200 * time.Millisecond),
			ev(3, 2, 400 * time.Millisecond), // 2→3→2: ping-pong on (2,3)
			ev(2, 1, 600 * time.Millisecond), // 1→2 was left at t=200; must not count as return
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DetectPingPongs(tc.events, w)
			if len(got) != tc.want {
				t.Fatalf("DetectPingPongs = %d ping-pongs (%v), want %d", len(got), got, tc.want)
			}
		})
	}
}

// replayA3 pushes a hand-crafted trace of (serving RSRQ, best-neighbor
// RSRQ, neighbor PCI) samples through the real A3 state machine and
// returns the resulting hand-off sequence, starting from serving PCI 1.
func replayA3(cfg A3Config, trace []struct {
	serv, neigh float64
	neighPCI    int
}) []Event {
	tr := NewA3Tracker(cfg)
	serving := 1
	var events []Event
	for i, s := range trace {
		if s.neighPCI == serving {
			tr.Reset()
			continue
		}
		if tr.Observe(s.serv, s.neigh, tick) {
			events = append(events, ev(serving, s.neighPCI, time.Duration(i)*tick))
			serving = s.neighPCI
			tr.Reset()
		}
	}
	return events
}

// TestPingPongFromRSRPTraces drives hand-crafted RSRP/RSRQ traces
// through the A3 replay and checks what the detector sees: a cell-edge
// oscillation produces ping-pongs, a clean crossing produces exactly one
// hand-off and none, and a sub-TTT blip produces no hand-off at all.
func TestPingPongFromRSRPTraces(t *testing.T) {
	cfg := A3Config{GapDB: 3, TimeToTrigger: 300 * time.Millisecond}
	type sample = struct {
		serv, neigh float64
		neighPCI    int
	}
	adv := func(pci, n int) []sample { // n ticks of +4 dB advantage for pci
		out := make([]sample, n)
		for i := range out {
			out[i] = sample{serv: -14, neigh: -10, neighPCI: pci}
		}
		return out
	}
	flat := func(pci, n int) []sample { // n ticks with no advantage
		out := make([]sample, n)
		for i := range out {
			out[i] = sample{serv: -12, neigh: -12, neighPCI: pci}
		}
		return out
	}
	concat := func(parts ...[]sample) (all []sample) {
		for _, p := range parts {
			all = append(all, p...)
		}
		return
	}

	t.Run("cell edge oscillation", func(t *testing.T) {
		// Serving 1, neighbor 2 holds the edge both ways: 1→2, then the
		// roles flip and the UE bounces straight back within the window.
		trace := concat(adv(2, 3), adv(1, 3), adv(2, 3), adv(1, 3))
		events := replayA3(cfg, trace)
		if len(events) != 4 {
			t.Fatalf("replay produced %d hand-offs, want 4", len(events))
		}
		pps := DetectPingPongs(events, DefaultPingPongWindow)
		if len(pps) != 3 {
			t.Fatalf("oscillating edge: %d ping-pongs (%v), want 3", len(pps), pps)
		}
		if pps[0].A != 1 || pps[0].B != 2 {
			t.Fatalf("first ping-pong pair = (%d,%d), want (1,2)", pps[0].A, pps[0].B)
		}
	})

	t.Run("clean crossing", func(t *testing.T) {
		// One sustained advantage, then the new serving cell stays best:
		// a legitimate hand-off, no return.
		trace := concat(adv(2, 3), flat(1, 20))
		events := replayA3(cfg, trace)
		if len(events) != 1 {
			t.Fatalf("clean crossing: %d hand-offs, want 1", len(events))
		}
		if got := DetectPingPongs(events, DefaultPingPongWindow); len(got) != 0 {
			t.Fatalf("clean crossing flagged %d ping-pongs", len(got))
		}
		if r := PingPongRate(events, DefaultPingPongWindow); r != 0 {
			t.Fatalf("ping-pong rate %f, want 0", r)
		}
	})

	t.Run("sub-TTT blip", func(t *testing.T) {
		// Two ticks of advantage (200 ms < 324 ms-style TTT) then gone:
		// the TTT filter eats it, no hand-off, nothing to detect.
		trace := concat(adv(2, 2), flat(2, 10))
		if events := replayA3(cfg, trace); len(events) != 0 {
			t.Fatalf("sub-TTT blip produced %d hand-offs, want 0", len(events))
		}
	})
}

// TestCampaignPingPongDetector smoke-checks the detector over a real
// walking campaign: the rate is a sane fraction and every detected
// ping-pong's gap respects the window.
func TestCampaignPingPongDetector(t *testing.T) {
	campus := deploy.New(42)
	cfg := DefaultConfig()
	cfg.Duration = 10 * time.Minute
	if testing.Short() {
		cfg.Duration = 3 * time.Minute
	}
	c := RunCampaign(campus, cfg, 42)
	pps := DetectPingPongs(c.Events, DefaultPingPongWindow)
	if r := PingPongRate(c.Events, DefaultPingPongWindow); r < 0 || r > 1 {
		t.Fatalf("ping-pong rate %f outside [0,1]", r)
	}
	for _, pp := range pps {
		if pp.Gap <= 0 || pp.Gap > DefaultPingPongWindow {
			t.Fatalf("ping-pong gap %v outside (0, %v]", pp.Gap, DefaultPingPongWindow)
		}
		if pp.A == pp.B {
			t.Fatalf("degenerate ping-pong pair (%d,%d)", pp.A, pp.B)
		}
	}
}
