package handoff

import (
	"time"

	"fivegsim/internal/radio"
)

// Ping-pong analysis (§3.4): the paper attributes a large share of the
// campaign's 407 hand-offs to cell-edge oscillation — the UE hands off
// A→B only to return B→A moments later, paying two interruptions for no
// lasting RSRQ gain. A ping-pong here is a hand-off that returns the UE
// to the cell it just left within a bounded window, detected over the
// recorded event sequence (so the same detector runs over campaign
// results and the population layer's per-UE event streams alike).

// DefaultPingPongWindow bounds the A→B→A oscillation: a return within
// one second (10 of the paper's 100 ms measurement bins) counts as a
// ping-pong rather than a legitimate reversal.
const DefaultPingPongWindow = time.Second

// PingPong is one detected oscillation: the UE left A for B at At−Gap
// and returned at At.
type PingPong struct {
	A, B int           // the oscillating pair, serving-cell perspective
	At   time.Duration // when the returning (B→A) hand-off fired
	Gap  time.Duration // dwell time on B before bouncing back
}

// DetectPingPongs scans a hand-off sequence (ascending At) for A→B→A
// oscillations within the window (≤0 uses DefaultPingPongWindow).
// Chains are tracked per serving cell, so independently interleaved
// sequences — the NSA phone's LTE master and NR secondary legs — do not
// mask each other's oscillations.
func DetectPingPongs(events []Event, window time.Duration) []PingPong {
	if window <= 0 {
		window = DefaultPingPongWindow
	}
	var out []PingPong
	arrived := map[int]Event{} // serving PCI → the hand-off that arrived there
	for _, e := range events {
		if prev, ok := arrived[e.FromPCI]; ok && prev.FromPCI == e.ToPCI && e.At-prev.At <= window {
			out = append(out, PingPong{A: e.ToPCI, B: e.FromPCI, At: e.At, Gap: e.At - prev.At})
		}
		delete(arrived, e.FromPCI) // the UE has left; the stale arrival must not re-match
		arrived[e.ToPCI] = e
	}
	return out
}

// PingPongRate returns the fraction of hand-offs that are ping-pong
// returns, 0 for an empty campaign.
func PingPongRate(events []Event, window time.Duration) float64 {
	if len(events) == 0 {
		return 0
	}
	return float64(len(DetectPingPongs(events, window))) / float64(len(events))
}

// BestCandidate resolves simultaneous A3 candidates over an unsorted
// measurement set: strongest RSRP wins and exact ties break on the lower
// PCI — the same strict total order MeasureAll's sort and the field-map
// fast path impose, so every layer agrees on the winner when two
// co-sited sectors measure identically.
func BestCandidate(ms []radio.Measurement) (radio.Measurement, bool) {
	if len(ms) == 0 {
		return radio.Measurement{}, false
	}
	best := ms[0]
	for _, m := range ms[1:] {
		if m.RSRPdBm > best.RSRPdBm || (m.RSRPdBm == best.RSRPdBm && m.PCI < best.PCI) {
			best = m
		}
	}
	return best, true
}
