// Package handoff implements the paper's §3.4 mobility study: the 3GPP
// measurement-report events (Table 5), the A3 trigger rule of Eq. (1) with
// the ISP's 3 dB / 324 ms configuration, the NSA signaling procedures
// reverse-engineered in Appendix A (Fig. 24), and the walking measurement
// campaign that yields the RSRQ-gap (Fig. 5) and latency (Fig. 6) CDFs.
package handoff

import "time"

// EventType is a 3GPP measurement-report event (Table 5 of the paper).
type EventType int

const (
	// A1: serving cell quality above a threshold (stop measuring).
	A1 EventType = iota
	// A2: serving cell quality below a threshold (start measuring).
	A2
	// A3: neighbor persistently better than serving — the main HO trigger.
	A3
	// A4: neighbor above an absolute threshold.
	A4
	// A5: serving below threshold1 while neighbor above threshold2.
	A5
	// B1: inter-RAT neighbor above a threshold.
	B1
	// B2: serving below threshold1 while inter-RAT neighbor above threshold2.
	B2
)

var eventNames = [...]string{"A1", "A2", "A3", "A4", "A5", "B1", "B2"}

// String returns the 3GPP event name.
func (e EventType) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "?"
}

// Description returns the Table 5 description of the event.
func (e EventType) Description() string {
	switch e {
	case A1:
		return "serving cell quality higher than a threshold; UE may stop neighbor measurement to save energy"
	case A2:
		return "serving cell quality lower than a threshold; UE starts measuring neighbors"
	case A3:
		return "neighbor persistently better than serving cell by an offset; the main hand-off event"
	case A4:
		return "one neighbor's quality higher than a fixed threshold"
	case A5:
		return "serving below threshold1 while a neighbor is above threshold2"
	case B1:
		return "inter-RAT neighbor better than a fixed threshold"
	case B2:
		return "serving below threshold1 while an inter-RAT neighbor is above threshold2"
	}
	return ""
}

// A3Config is the ISP's A3 configuration as extracted with XCAL-Mobile:
// Eq. (1) Mn + Ofn + Ocn − Hys > Ms + Ofs + Ocs + Off, with the effective
// RSRQ gap threshold at 3 dB, sustained for TimeToTrigger = 324 ms.
type A3Config struct {
	GapDB         float64       // required RSRQ advantage of the neighbor
	TimeToTrigger time.Duration // hysteresis in time
}

// DefaultA3 returns the measured ISP configuration.
func DefaultA3() A3Config {
	return A3Config{GapDB: 3, TimeToTrigger: 324 * time.Millisecond}
}

// A1ThresholdDB / A2ThresholdDB are the serving-quality RSRQ thresholds
// used for the A1/A2 bookkeeping events, and A5/B1 thresholds complete the
// Table 5 set. Only A3 triggers hand-offs in the measured network ("the
// gNB only responds to the A3 event due to the ISP's configuration").
const (
	A1ThresholdDB = -10.4
	A2ThresholdDB = -23.5
	A5Threshold1  = -12.8
	A5Threshold2  = -13.2
	B1ThresholdDB = -13
)

// A3Tracker applies Eq. (1) with time-to-trigger over a sampled RSRQ
// series: Observe is called once per measurement interval with the serving
// and best-neighbor RSRQ; it returns true when the A3 condition has held
// continuously for TimeToTrigger.
type A3Tracker struct {
	cfg     A3Config
	heldFor time.Duration
}

// NewA3Tracker returns a tracker with the given configuration.
func NewA3Tracker(cfg A3Config) *A3Tracker { return &A3Tracker{cfg: cfg} }

// Observe advances the tracker by dt with the given measurements and
// reports whether the hand-off fires at this sample.
func (t *A3Tracker) Observe(servingRSRQ, neighborRSRQ float64, dt time.Duration) bool {
	if neighborRSRQ-servingRSRQ > t.cfg.GapDB {
		t.heldFor += dt
		if t.heldFor >= t.cfg.TimeToTrigger {
			t.heldFor = 0
			return true
		}
		return false
	}
	t.heldFor = 0
	return false
}

// Reset clears the time-to-trigger accumulator (after a hand-off or a
// serving-cell change).
func (t *A3Tracker) Reset() { t.heldFor = 0 }
