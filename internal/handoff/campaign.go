package handoff

import (
	"math"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/geom"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

// Event is one recorded hand-off.
type Event struct {
	Kind       Kind
	At         time.Duration
	FromPCI    int
	ToPCI      int
	RSRQBefore float64 // serving-link RSRQ at trigger time
	RSRQAfter  float64 // new serving-link RSRQ once the hand-off completes
	Latency    time.Duration
	Trace      []TraceStep
}

// Gain is the RSRQ improvement delivered by the hand-off.
func (e Event) Gain() float64 { return e.RSRQAfter - e.RSRQBefore }

// Campaign is the result of a walking measurement run, the analogue of the
// paper's 80-minute, 407-event dataset.
type Campaign struct {
	Duration   time.Duration
	Events     []Event
	MeasEvents map[EventType]int
	// On4G is the total time the UE spent without an NR secondary
	// (4G-only dwell) — the degraded-path exposure a coverage hole
	// inflicts.
	On4G time.Duration
}

// ByKind returns the events of one kind.
func (c *Campaign) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range c.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Gains returns the RSRQ gains of all events of a kind (Fig. 5 series).
func (c *Campaign) Gains(k Kind) []float64 {
	events := c.ByKind(k)
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = e.Gain()
	}
	return out
}

// Latencies returns the hand-off latencies in milliseconds for a kind
// (Fig. 6 series).
func (c *Campaign) Latencies(k Kind) []float64 {
	events := c.ByKind(k)
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = float64(e.Latency) / float64(time.Millisecond)
	}
	return out
}

// Config parametrizes a campaign.
type Config struct {
	Duration       time.Duration
	SampleInterval time.Duration
	MinSpeedKmh    float64
	MaxSpeedKmh    float64
	A3             A3Config
	// NoiseStdDB is the fast-fading measurement noise on each RSRQ sample.
	NoiseStdDB float64
	// NRDropRSRP / NRAddRSRP are the hysteresis thresholds for releasing
	// and re-adding the NR leg (vertical hand-offs).
	NRDropRSRP float64
	NRAddRSRP  float64
	// CellDown, when non-nil, reports cells failed at a campaign time —
	// the fault layer's coverage-hole predicate (fault.Plan.CellDown).
	// Downed cells vanish from the measurement set (no service, no
	// interference), so the walker hands off around the hole. Nil keeps
	// the exact pre-fault behaviour.
	CellDown func(pci int, at time.Duration) bool
}

// DefaultConfig mirrors the paper's methodology: 80 minutes at walking or
// cycling speed (3–10 km/h), 100 ms sampling, the ISP's A3 configuration.
func DefaultConfig() Config {
	return Config{
		Duration:       80 * time.Minute,
		SampleInterval: 100 * time.Millisecond,
		MinSpeedKmh:    3,
		MaxSpeedKmh:    10,
		A3:             DefaultA3(),
		NoiseStdDB:     0.8,
		NRDropRSRP:     radio.ServiceThresholdDBm,
		NRAddRSRP:      radio.ServiceThresholdDBm + 20,
	}
}

// ueState is the walker's dual-connectivity state.
type ueState struct {
	ltePCI int // master eNB cell (always attached)
	nrPCI  int // NR secondary cell, or -1 when on 4G only
}

// RunCampaign walks the campus and records every hand-off. The UE is an
// NSA phone: it always holds an LTE master cell and attaches an NR
// secondary whenever 5G coverage permits, exactly the setup whose mobility
// behaviour §3.4 dissects.
func RunCampaign(campus *deploy.Campus, cfg Config, seed int64) *Campaign {
	src := rng.New(seed)
	walkRng := src.Stream("handoff.walk")
	noiseRng := src.Stream("handoff.noise")
	sigRng := src.Stream("handoff.signaling")

	out := &Campaign{Duration: cfg.Duration, MeasEvents: map[EventType]int{}}

	// Waypoint walker state.
	pos := geom.Point{X: 250, Y: 100}
	target := roadPoint(campus, walkRng)
	speed := rng.Uniform(walkRng, cfg.MinSpeedKmh, cfg.MaxSpeedKmh) / 3.6

	st := ueState{ltePCI: -1, nrPCI: -1}
	nrTracker := NewA3Tracker(cfg.A3)
	lteTracker := NewA3Tracker(cfg.A3)
	var nrBelowFor, nrAboveFor time.Duration
	// Previous-tick condition flags for edge-triggered event counting.
	prevCond := map[EventType]bool{}

	noise := func() float64 { return noiseRng.NormFloat64() * cfg.NoiseStdDB }

	// Walker-owned measurement buffers: the per-tick measurements and the
	// rarer post-hand-off re-measurements append into these instead of
	// allocating fresh slices ~20 times per simulated second.
	nrBuf := make([]radio.Measurement, 0, 40)
	lteBuf := make([]radio.Measurement, 0, 40)
	hoBuf := make([]radio.Measurement, 0, 40)

	for now := time.Duration(0); now < cfg.Duration; now += cfg.SampleInterval {
		// Move.
		step := speed * cfg.SampleInterval.Seconds()
		if pos.Dist(target) <= step {
			pos = target
			target = roadPoint(campus, walkRng)
			speed = rng.Uniform(walkRng, cfg.MinSpeedKmh, cfg.MaxSpeedKmh) / 3.6
		} else {
			dir := target.Sub(pos)
			norm := math.Hypot(dir.X, dir.Y)
			pos = pos.Add(dir.Scale(step / norm))
		}

		nr := measureLive(campus, radio.NR, pos, cfg.CellDown, now, nrBuf[:0])
		lte := measureLive(campus, radio.LTE, pos, cfg.CellDown, now, lteBuf[:0])
		nrBuf, lteBuf = nr[:0], lte[:0]
		if st.ltePCI < 0 {
			// Initial attach (first tick only): camp on the strongest
			// cells without recording hand-off events.
			st.ltePCI = lte[0].PCI
			if nr[0].Usable() {
				st.nrPCI = nr[0].PCI
			}
		}
		lteServing, lteBest := pick(lte, st.ltePCI)
		nrServing, nrBest := pick(nr, st.nrPCI)

		lteServRSRQ := lteServing.RSRQdB + noise()
		lteBestRSRQ := lteBest.RSRQdB + noise()
		nrServRSRQ := nrServing.RSRQdB + noise()
		nrBestRSRQ := nrBest.RSRQdB + noise()

		// Table 5 measurement-event bookkeeping (edge triggered).
		servRSRQ := lteServRSRQ
		if st.nrPCI >= 0 {
			servRSRQ = nrServRSRQ
		}
		const hyst = 1.5 // reporting hysteresis, dB
		markEvent(out, prevCond, A1, servRSRQ > A1ThresholdDB+hyst, servRSRQ < A1ThresholdDB-hyst)
		markEvent(out, prevCond, A2, servRSRQ < A2ThresholdDB-hyst, servRSRQ > A2ThresholdDB+hyst)
		markEvent(out, prevCond, A5,
			servRSRQ < A5Threshold1-hyst && nrBestRSRQ > A5Threshold2+hyst,
			servRSRQ > A5Threshold1+hyst || nrBestRSRQ < A5Threshold2-hyst)
		markEvent(out, prevCond, B1,
			st.nrPCI < 0 && nr[0].RSRPdBm > cfg.NRAddRSRP+1,
			st.nrPCI >= 0 || nr[0].RSRPdBm < cfg.NRAddRSRP-4)
		gap := lteBestRSRQ - lteServRSRQ
		if st.nrPCI >= 0 {
			gap = nrBestRSRQ - nrServRSRQ
		}
		markEvent(out, prevCond, A3, gap > cfg.A3.GapDB, gap < cfg.A3.GapDB-hyst)

		executeHO := func(kind Kind, from, to int, before float64, after func() float64) {
			trace, latency := Execute(kind, sigRng)
			// The UE keeps moving during the interruption.
			pos = pos.Add(target.Sub(pos).Scale(math.Min(1, speed*latency.Seconds()/math.Max(pos.Dist(target), 1e-9))))
			out.Events = append(out.Events, Event{
				Kind: kind, At: now, FromPCI: from, ToPCI: to,
				RSRQBefore: before, RSRQAfter: after(),
				Latency: latency, Trace: trace,
			})
		}

		if st.nrPCI >= 0 {
			// Horizontal NR hand-off via A3.
			if nrBest.PCI != st.nrPCI &&
				nrTracker.Observe(nrServRSRQ, nrBestRSRQ, cfg.SampleInterval) {
				from, to := st.nrPCI, nrBest.PCI
				executeHO(FiveToFive, from, to, nrServRSRQ, func() float64 {
					m := campus.MeasureAllInto(radio.NR, pos, hoBuf[:0])
					serv, _ := pick(m, to)
					return serv.RSRQdB + noise()
				})
				st.nrPCI = to
				nrTracker.Reset()
			}
			// Vertical release when NR coverage collapses.
			if nrServing.RSRPdBm < cfg.NRDropRSRP {
				nrBelowFor += cfg.SampleInterval
			} else {
				nrBelowFor = 0
			}
			if nrBelowFor >= 500*time.Millisecond {
				from := st.nrPCI
				executeHO(FiveToFour, from, st.ltePCI, nrServRSRQ, func() float64 {
					m := campus.MeasureAllInto(radio.LTE, pos, hoBuf[:0])
					serv, _ := pick(m, st.ltePCI)
					return serv.RSRQdB + noise()
				})
				st.nrPCI = -1
				nrBelowFor = 0
				nrTracker.Reset()
			}
		} else {
			// Vertical addition when NR coverage returns (B1-like rule).
			// The UE attaches to the strongest NR cell.
			if nr[0].RSRPdBm > cfg.NRAddRSRP {
				nrAboveFor += cfg.SampleInterval
			} else {
				nrAboveFor = 0
			}
			if nrAboveFor >= 500*time.Millisecond {
				to := nr[0].PCI
				executeHO(FourToFive, st.ltePCI, to, lteServRSRQ, func() float64 {
					m := campus.MeasureAllInto(radio.NR, pos, hoBuf[:0])
					serv, _ := pick(m, to)
					return serv.RSRQdB + noise()
				})
				st.nrPCI = to
				nrAboveFor = 0
			}
		}

		// Master-eNB hand-off via A3 (counts as 4G-4G).
		if lteBest.PCI != st.ltePCI &&
			lteTracker.Observe(lteServRSRQ, lteBestRSRQ, cfg.SampleInterval) {
			from, to := st.ltePCI, lteBest.PCI
			executeHO(FourToFour, from, to, lteServRSRQ, func() float64 {
				m := campus.MeasureAllInto(radio.LTE, pos, hoBuf[:0])
				serv, _ := pick(m, to)
				return serv.RSRQdB + noise()
			})
			st.ltePCI = to
			lteTracker.Reset()
		}

		if st.nrPCI < 0 {
			out.On4G += cfg.SampleInterval
		}
	}
	return out
}

// measureLive measures every live cell at pos: with no CellDown
// predicate it is exactly MeasureAll; otherwise downed cells are
// filtered out via the campus's MeasureAvailable view. Should every
// cell of a technology be down, a single dead sentinel (unusable, far
// below every trigger threshold) keeps the serving-cell bookkeeping
// well-defined.
func measureLive(campus *deploy.Campus, t radio.Tech, pos geom.Point, down func(int, time.Duration) bool, at time.Duration, buf []radio.Measurement) []radio.Measurement {
	if down == nil {
		return campus.MeasureAllInto(t, pos, buf)
	}
	ms := campus.MeasureAvailableInto(t, pos, func(pci int) bool { return down(pci, at) }, buf)
	if len(ms) == 0 {
		ms = append(ms, radio.Measurement{PCI: -1, Tech: t, RSRPdBm: -200, RSRQdB: -40, SINRdB: -30})
	}
	return ms
}

// RunCampaigns runs n independent walks — walk i is RunCampaign with
// seed+1+i, the same seed ladder the paper-facade campaign always used —
// across up to workers goroutines, and merges them in walk order. Each
// walk derives every substream from its own seed, so the merged campaign
// is identical for every worker count.
func RunCampaigns(campus *deploy.Campus, cfg Config, seed int64, n, workers int) *Campaign {
	camps := par.Map(workers, n, func(i int) *Campaign {
		return RunCampaign(campus, cfg, seed+1+int64(i))
	})
	all := &Campaign{Duration: time.Duration(n) * cfg.Duration, MeasEvents: map[EventType]int{}}
	for _, c := range camps {
		all.Events = append(all.Events, c.Events...)
		all.On4G += c.On4G
		for k, v := range c.MeasEvents {
			all.MeasEvents[k] += v
		}
	}
	return all
}

// markEvent counts a measurement-report event with hysteresis: the event
// fires when enter becomes true while disarmed, and re-arms only once exit
// becomes true (UEs report event-triggered measurements exactly this way,
// which is why the paper can tabulate an event mix at all).
func markEvent(c *Campaign, armed map[EventType]bool, e EventType, enter, exit bool) {
	if armed[e] {
		if exit {
			armed[e] = false
		}
		return
	}
	if enter {
		c.MeasEvents[e]++
		armed[e] = true
	}
}

// pick returns the measurement of the serving PCI and the strongest other
// cell ("best neighbor"). If the serving PCI is absent the strongest cell
// stands in for it.
func pick(ms []radio.Measurement, servingPCI int) (serving, bestNeighbor radio.Measurement) {
	serving = ms[0]
	found := false
	for _, m := range ms {
		if m.PCI == servingPCI {
			serving = m
			found = true
			break
		}
	}
	for _, m := range ms {
		if found && m.PCI == servingPCI {
			continue
		}
		if !found && m.PCI == serving.PCI {
			continue
		}
		bestNeighbor = m
		break
	}
	return serving, bestNeighbor
}

// roadPoint draws a random waypoint on the road graph.
func roadPoint(c *deploy.Campus, r interface{ Float64() float64 }) geom.Point {
	total := c.RoadLengthM()
	at := r.Float64() * total
	for _, road := range c.Roads {
		l := road.Length()
		if at <= l {
			return road.At(at / l)
		}
		at -= l
	}
	return c.Roads[len(c.Roads)-1].B
}

// CaseStudySample is one tick of the Fig. 4 RSRQ-evolution trace.
type CaseStudySample struct {
	At         time.Duration
	ServingPCI int
	RSRQ       map[int]float64 // tracked PCIs → RSRQ
}

// CaseStudy reproduces Fig. 4: a walk past the gNB site carrying cells 226
// and 44, recording the serving cell and the RSRQ of the tracked PCIs. The
// returned hand-off index marks the sample at which serving switches.
func CaseStudy(campus *deploy.Campus, seed int64) (series []CaseStudySample, hoIndex int) {
	site := campus.CellByPCI(226).Pos
	// Walk a straight line through the site's sector boundary.
	from := site.Add(geom.Point{X: -90, Y: -60})
	to := site.Add(geom.Point{X: 95, Y: 70})
	noiseRng := rng.New(seed).Stream("handoff.case")
	tracked := []int{226, 44, 441}
	cfg := DefaultA3()
	tracker := NewA3Tracker(cfg)
	serving := 226
	hoIndex = -1
	const ticks = 150
	nrBuf := make([]radio.Measurement, 0, 40)
	for i := 0; i <= ticks; i++ {
		p := from.Lerp(to, float64(i)/ticks)
		sample := CaseStudySample{
			At:         time.Duration(i) * 100 * time.Millisecond,
			ServingPCI: serving,
			RSRQ:       map[int]float64{},
		}
		var servRSRQ, bestRSRQ float64
		bestPCI := serving
		nr := campus.MeasureAllInto(radio.NR, p, nrBuf[:0])
		for _, m := range nr {
			for _, pci := range tracked {
				if m.PCI == pci {
					sample.RSRQ[pci] = m.RSRQdB + noiseRng.NormFloat64()*0.5
				}
			}
			if m.PCI == serving {
				servRSRQ = m.RSRQdB
			}
		}
		for _, m := range nr {
			if m.PCI != serving {
				bestRSRQ = m.RSRQdB
				bestPCI = m.PCI
				break
			}
		}
		if hoIndex < 0 && tracker.Observe(servRSRQ, bestRSRQ, 100*time.Millisecond) {
			serving = bestPCI
			hoIndex = i
		}
		sample.ServingPCI = serving
		series = append(series, sample)
	}
	return series, hoIndex
}
