package handoff

import (
	"math"
	"sync"
	"testing"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/rng"
	"fivegsim/internal/stats"
)

func TestExpectedLatenciesMatchPaper(t *testing.T) {
	// Fig. 6: 4G-4G 30.10 ms, 4G-5G 80.23 ms, 5G-5G 108.40 ms.
	cases := []struct {
		kind Kind
		want float64
	}{
		{FourToFour, 30.1},
		{FourToFive, 80.2},
		{FiveToFive, 108.4},
	}
	for _, c := range cases {
		got := float64(ExpectedLatency(c.kind)) / float64(time.Millisecond)
		if math.Abs(got-c.want) > 1.0 {
			t.Errorf("%v expected latency = %.1f ms, want %.1f", c.kind, got, c.want)
		}
	}
	// The NSA penalty: 5G-5G ≈ 3.6× 4G-4G.
	ratio := float64(ExpectedLatency(FiveToFive)) / float64(ExpectedLatency(FourToFour))
	if ratio < 3.2 || ratio > 4.0 {
		t.Fatalf("5G-5G/4G-4G latency ratio = %.2f, paper reports 3.6×", ratio)
	}
}

func TestProcedureLadder(t *testing.T) {
	// The NSA 5G→5G procedure must contain the release → LTE HO → NR
	// re-addition phases of Fig. 24.
	steps := Procedure(FiveToFive)
	names := map[string]bool{}
	for _, s := range steps {
		names[s.Name] = true
	}
	for _, want := range []string{
		"RRC Connection Reconfiguration (release NR)",
		"Roll-back to master eNB",
		"Random Access Procedure",
		"Addition Request (T-gNB)",
		"NR Random Access Procedure",
	} {
		if !names[want] {
			t.Errorf("5G-5G procedure missing step %q", want)
		}
	}
	if len(steps) <= len(Procedure(FourToFour)) {
		t.Fatal("NSA 5G-5G ladder must be longer than a plain LTE hand-off")
	}
}

func TestExecuteDrawsPositiveLatencies(t *testing.T) {
	r := rng.New(1).Stream("sig")
	for _, k := range []Kind{FourToFour, FiveToFive, FiveToFour, FourToFive} {
		trace, total := Execute(k, r)
		if len(trace) != len(Procedure(k)) {
			t.Fatalf("%v: trace has %d steps, want %d", k, len(trace), len(Procedure(k)))
		}
		var sum time.Duration
		for _, s := range trace {
			if s.Latency <= 0 {
				t.Fatalf("%v: step %q has non-positive latency", k, s.Name)
			}
			sum += s.Latency
		}
		if sum != total {
			t.Fatalf("%v: trace sum %v != total %v", k, sum, total)
		}
	}
}

func TestExecuteLatencyDistribution(t *testing.T) {
	r := rng.New(2).Stream("sig")
	var lat []float64
	for i := 0; i < 2000; i++ {
		_, total := Execute(FiveToFive, r)
		lat = append(lat, float64(total)/float64(time.Millisecond))
	}
	s := stats.Summarize(lat)
	if math.Abs(s.Mean-108.4) > 2.5 {
		t.Fatalf("5G-5G mean latency = %.1f ms, want ≈108.4", s.Mean)
	}
	if s.Std < 2 || s.Std > 20 {
		t.Fatalf("5G-5G latency std = %.1f ms, implausible", s.Std)
	}
}

func TestSAModeFasterThanNSA(t *testing.T) {
	// Ablation: the paper predicts SA removes the roll-back penalty.
	r := rng.New(3).Stream("sa")
	var sa, nsa float64
	for i := 0; i < 1000; i++ {
		sa += ExecuteSA(r).Seconds()
		_, total := Execute(FiveToFive, r)
		nsa += total.Seconds()
	}
	if sa*2.5 > nsa {
		t.Fatalf("SA hand-off (%.1f ms) should be ≳3× faster than NSA (%.1f ms)", sa, nsa)
	}
}

func TestA3Tracker(t *testing.T) {
	tr := NewA3Tracker(DefaultA3())
	dt := 100 * time.Millisecond
	// Gap below threshold: never fires.
	for i := 0; i < 10; i++ {
		if tr.Observe(-10, -8, dt) {
			t.Fatal("fired below the 3 dB gap")
		}
	}
	// Gap above threshold must persist 324 ms (4 samples at 100 ms).
	if tr.Observe(-10, -6, dt) || tr.Observe(-10, -6, dt) || tr.Observe(-10, -6, dt) {
		t.Fatal("fired before time-to-trigger")
	}
	if !tr.Observe(-10, -6, dt) {
		t.Fatal("did not fire after TTT elapsed")
	}
	// Interruption resets the accumulator.
	tr.Observe(-10, -6, dt)
	tr.Observe(-10, -9, dt) // gap collapses
	if tr.Observe(-10, -6, dt) || tr.Observe(-10, -6, dt) || tr.Observe(-10, -6, dt) {
		t.Fatal("TTT did not reset after the condition broke")
	}
}

func TestEventDescriptions(t *testing.T) {
	for e := A1; e <= B2; e++ {
		if e.String() == "?" || e.Description() == "" {
			t.Fatalf("event %d lacks name/description", e)
		}
	}
}

var (
	campaignOnce   sync.Once
	campaignCached *Campaign
)

// campaignForTest runs the (expensive) 4×40-minute walking campaign once
// and shares it across the statistical tests. The campaign is skipped in
// short mode so the CI race pass (`go test -race -short`) stays cheap;
// the parallel-equivalence tests cover the campaign path there instead.
func campaignForTest(t *testing.T) *Campaign {
	t.Helper()
	if testing.Short() {
		t.Skip("40-minute campaign statistics are not short-mode work")
	}
	campaignOnce.Do(func() {
		campus := deploy.New(42)
		cfg := DefaultConfig()
		cfg.Duration = 40 * time.Minute
		all := &Campaign{MeasEvents: map[EventType]int{}}
		for seed := int64(1); seed <= 4; seed++ {
			c := RunCampaign(campus, cfg, seed)
			all.Events = append(all.Events, c.Events...)
			for k, v := range c.MeasEvents {
				all.MeasEvents[k] += v
			}
		}
		campaignCached = all
	})
	return campaignCached
}

func TestCampaignLatencyCDFs(t *testing.T) {
	c := campaignForTest(t)
	ff := stats.Summarize(c.Latencies(FourToFour))
	fv := stats.Summarize(c.Latencies(FiveToFive))
	if ff.N < 30 || fv.N < 20 {
		t.Fatalf("too few hand-offs: 4G-4G %d, 5G-5G %d", ff.N, fv.N)
	}
	if math.Abs(ff.Mean-30.1) > 4 {
		t.Fatalf("measured 4G-4G latency = %.1f ms, paper 30.1", ff.Mean)
	}
	if math.Abs(fv.Mean-108.4) > 8 {
		t.Fatalf("measured 5G-5G latency = %.1f ms, paper 108.4", fv.Mean)
	}
}

func TestCampaignHorizontalDominance(t *testing.T) {
	// Paper: 387 of 407 events are horizontal (5G-5G among the 5G ones);
	// in our dual-connectivity accounting, same-tech hand-offs dominate
	// and verticals are the minority.
	c := campaignForTest(t)
	horizontal := len(c.ByKind(FourToFour)) + len(c.ByKind(FiveToFive))
	vertical := len(c.ByKind(FiveToFour)) + len(c.ByKind(FourToFive))
	if vertical == 0 {
		t.Fatal("no vertical hand-offs observed")
	}
	if frac := float64(horizontal) / float64(horizontal+vertical); frac < 0.7 {
		t.Fatalf("horizontal fraction = %.2f, should dominate", frac)
	}
}

func TestCampaignRSRQGains(t *testing.T) {
	c := campaignForTest(t)
	above3 := func(k Kind) float64 {
		gains := c.Gains(k)
		if len(gains) == 0 {
			return -1
		}
		n := 0
		for _, g := range gains {
			if g > 3 {
				n++
			}
		}
		return float64(n) / float64(len(gains))
	}
	// Paper Fig. 5: ≈75 % of hand-offs overall gain >3 dB; 4G-5G is the
	// weakest kind (61 %), i.e. a non-negligible share of hand-offs does
	// not improve the link.
	var tot, above int
	for _, e := range c.Events {
		tot++
		if e.Gain() > 3 {
			above++
		}
	}
	overall := float64(above) / float64(tot)
	if overall < 0.65 || overall > 0.95 {
		t.Fatalf("overall >3dB gain fraction = %.2f, paper ≈0.75", overall)
	}
	kinds := []Kind{FourToFour, FiveToFive, FiveToFour}
	worst := above3(FourToFive)
	if worst < 0 {
		t.Fatal("no 4G-5G events")
	}
	for _, k := range kinds {
		if f := above3(k); f >= 0 && f < worst {
			t.Fatalf("%v gain fraction %.2f below 4G-5G's %.2f; 4G-5G should be the weakest", k, f, worst)
		}
	}
}

func TestCampaignEventMix(t *testing.T) {
	c := campaignForTest(t)
	total := 0
	for _, v := range c.MeasEvents {
		total += v
	}
	if total == 0 {
		t.Fatal("no measurement events recorded")
	}
	frac := func(e EventType) float64 { return float64(c.MeasEvents[e]) / float64(total) }
	// Paper: 21.98 % A1, 0.18 % A2, 67.25 % A3, 9.19 % A5, 1.40 % B1 —
	// A3 dominates, A1 second, the rest minor.
	if frac(A3) < 0.5 {
		t.Fatalf("A3 fraction = %.2f, paper 0.67 (dominant)", frac(A3))
	}
	if frac(A1) < 0.08 || frac(A1) > 0.35 {
		t.Fatalf("A1 fraction = %.2f, paper 0.22", frac(A1))
	}
	if frac(A3) < frac(A1) {
		t.Fatal("A3 must outnumber A1")
	}
}

func TestCaseStudyFig4(t *testing.T) {
	campus := deploy.New(42)
	series, hoIdx := CaseStudy(campus, 1)
	if hoIdx <= 0 || hoIdx >= len(series)-1 {
		t.Fatalf("case study produced no mid-series hand-off (idx %d of %d)", hoIdx, len(series))
	}
	if series[hoIdx-1].ServingPCI != 226 || series[hoIdx].ServingPCI != 44 {
		t.Fatalf("case study should switch 226 → 44, got %d → %d",
			series[hoIdx-1].ServingPCI, series[hoIdx].ServingPCI)
	}
	// Fig. 4 shape: the new cell is better than the old one after the HO.
	after := series[min(hoIdx+10, len(series)-1)]
	if after.RSRQ[44] <= after.RSRQ[226] {
		t.Fatalf("after hand-off, cell 44 RSRQ (%.1f) should exceed cell 226's (%.1f)",
			after.RSRQ[44], after.RSRQ[226])
	}
	for _, s := range series {
		for pci, v := range s.RSRQ {
			if v > 0 || v < -30 {
				t.Fatalf("RSRQ of PCI %d out of range: %v", pci, v)
			}
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	campus := deploy.New(42)
	cfg := DefaultConfig()
	cfg.Duration = 5 * time.Minute
	a := RunCampaign(campus, cfg, 9)
	b := RunCampaign(campus, cfg, 9)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Latency != b.Events[i].Latency || a.Events[i].ToPCI != b.Events[i].ToPCI {
			t.Fatal("campaign not deterministic")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
