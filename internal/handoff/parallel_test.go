package handoff

import (
	"reflect"
	"testing"
	"time"

	"fivegsim/internal/deploy"
)

func shortCfg() Config {
	cfg := DefaultConfig()
	cfg.Duration = 4 * time.Minute
	return cfg
}

// RunCampaigns must reproduce the historical serial seed ladder
// (seed+1 … seed+n) exactly, for every worker count.
func TestRunCampaignsWorkerEquivalence(t *testing.T) {
	campus := deploy.New(42)
	cfg := shortCfg()
	seeds := []int64{0, 41, 6}
	workerCounts := []int{2, 3, 8}
	if testing.Short() {
		// Keep one seed × one worker count under `-race -short` CI; the
		// full sweep runs in the default suite.
		seeds, workerCounts = seeds[:1], workerCounts[1:2]
	}
	for _, seed := range seeds {
		serial := RunCampaigns(campus, cfg, seed, 3, 1)
		for _, workers := range workerCounts {
			par := RunCampaigns(campus, cfg, seed, 3, workers)
			if !reflect.DeepEqual(serial.Events, par.Events) {
				t.Fatalf("seed %d: workers=%d events differ from serial", seed, workers)
			}
			if !reflect.DeepEqual(serial.MeasEvents, par.MeasEvents) {
				t.Fatalf("seed %d: workers=%d measurement-event counts differ", seed, workers)
			}
		}
	}
}

func TestRunCampaignsMatchesSerialLadder(t *testing.T) {
	campus := deploy.New(42)
	cfg := shortCfg()
	want := &Campaign{MeasEvents: map[EventType]int{}}
	for seed := int64(1); seed <= 3; seed++ {
		c := RunCampaign(campus, cfg, seed)
		want.Events = append(want.Events, c.Events...)
		for k, v := range c.MeasEvents {
			want.MeasEvents[k] += v
		}
	}
	got := RunCampaigns(campus, cfg, 0, 3, 4)
	if !reflect.DeepEqual(want.Events, got.Events) {
		t.Fatal("RunCampaigns deviates from the serial RunCampaign ladder")
	}
	if !reflect.DeepEqual(want.MeasEvents, got.MeasEvents) {
		t.Fatal("RunCampaigns measurement-event totals deviate from the serial ladder")
	}
	if got.Duration != 3*cfg.Duration {
		t.Fatalf("aggregate duration = %v, want %v", got.Duration, 3*cfg.Duration)
	}
}

func TestRunCampaignsSeedSensitivity(t *testing.T) {
	campus := deploy.New(42)
	cfg := shortCfg()
	a := RunCampaigns(campus, cfg, 0, 2, 2)
	b := RunCampaigns(campus, cfg, 100, 2, 2)
	if reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("different seed ladders produced identical campaigns")
	}
}
