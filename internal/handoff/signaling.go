package handoff

import (
	"math/rand"
	"time"

	"fivegsim/internal/rng"
)

// Kind classifies a hand-off by source and target technology.
type Kind int

const (
	// FourToFour is an intra-LTE hand-off (the master-eNB change).
	FourToFour Kind = iota
	// FiveToFive is a horizontal NR hand-off, which under NSA requires
	// releasing NR, hand-off between master eNBs, and re-adding NR.
	FiveToFive
	// FiveToFour drops the NR leg and continues on LTE.
	FiveToFour
	// FourToFive adds an NR secondary leg (SgNB addition).
	FourToFive
)

var kindNames = [...]string{"4G-4G", "5G-5G", "5G-4G", "4G-5G"}

// String returns the paper's notation for the hand-off kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Step is one signaling message (or procedure phase) with its latency
// distribution. The sequences follow the Appendix A ladder (Fig. 24).
type Step struct {
	Name   string
	MeanMs float64
	StdMs  float64
}

// lteHOSteps is the classic intra-LTE X2 hand-off; the means sum to
// ≈30.1 ms, the paper's measured 4G-4G latency.
var lteHOSteps = []Step{
	{"Measurement Report", 2.1, 0.5},
	{"HO Decision", 3.0, 0.8},
	{"Hand-off Request", 4.0, 1.0},
	{"Admission Control", 3.0, 0.8},
	{"Request ACK", 4.0, 1.0},
	{"RRC Connection Reconfiguration", 6.0, 1.5},
	{"Random Access Procedure", 8.0, 2.0},
}

// nrAdditionSteps is the SgNB-addition procedure that attaches the NR leg
// to a master eNB (the 4G→5G vertical hand-off); means sum to ≈80.2 ms.
var nrAdditionSteps = []Step{
	{"Measurement Report (B1)", 2.1, 0.5},
	{"SgNB Addition Decision", 3.0, 0.8},
	{"Addition Request", 9.0, 2.0},
	{"Addition Request ACK", 9.0, 2.0},
	{"RRC Connection Reconfiguration (LTE)", 12.0, 2.5},
	{"SN Status Transfer", 7.0, 1.5},
	{"NR Random Access Procedure", 14.0, 3.0},
	{"RRC Reconfiguration Complete", 10.0, 2.0},
	{"Path Update", 14.1, 3.0},
}

// nrReleaseSteps tears the NR leg down and rolls the UE back to its master
// eNB (the start of every NSA 5G→5G hand-off, and the whole of 5G→4G).
var nrReleaseSteps = []Step{
	{"NR Measurement Report", 2.1, 0.5},
	{"SgNB Release Request", 5.0, 1.2},
	{"RRC Connection Reconfiguration (release NR)", 9.0, 2.0},
	{"Roll-back to master eNB", 8.1, 1.5},
}

// nsa55AdditionSteps re-requests NR resources on the target master after
// the LTE hand-off inside a 5G→5G NSA hand-off. Slightly shorter than a
// cold SgNB addition because measurement context is carried over.
var nsa55AdditionSteps = []Step{
	{"Addition Request (T-gNB)", 9.0, 2.0},
	{"Addition Request ACK", 9.0, 2.0},
	{"RRC Connection Reconfiguration (add NR)", 11.0, 2.5},
	{"SN Status Transfer", 6.0, 1.5},
	{"NR Random Access Procedure", 13.2, 3.0},
	{"T-gNB RRC Reconfiguration Complete", 8.0, 2.0},
}

// Procedure returns the signaling ladder for a hand-off kind. A 5G→5G NSA
// hand-off is release + LTE hand-off (without a second measurement
// report) + NR re-addition: the UE "cannot directly switch to any 5G
// neighboring cells, but has to release its current 5G NR resource and
// roll back to the current 4G eNB" (§3.4).
func Procedure(k Kind) []Step {
	switch k {
	case FourToFour:
		return lteHOSteps
	case FourToFive:
		return nrAdditionSteps
	case FiveToFour:
		return nrReleaseSteps
	case FiveToFive:
		steps := append([]Step(nil), nrReleaseSteps...)
		steps = append(steps, lteHOSteps[1:]...) // decision onward
		steps = append(steps, nsa55AdditionSteps...)
		return steps
	}
	return nil
}

// ExpectedLatency returns the sum of mean step latencies for a kind.
func ExpectedLatency(k Kind) time.Duration {
	var ms float64
	for _, s := range Procedure(k) {
		ms += s.MeanMs
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// TraceStep is one executed signaling step with its drawn latency.
type TraceStep struct {
	Name    string
	Latency time.Duration
}

// Execute draws a latency for every step of the procedure and returns the
// per-step trace and the total interruption.
func Execute(k Kind, r *rand.Rand) ([]TraceStep, time.Duration) {
	steps := Procedure(k)
	trace := make([]TraceStep, 0, len(steps))
	var total time.Duration
	for _, s := range steps {
		ms := rng.ClampedNormal(r, s.MeanMs, s.StdMs, s.MeanMs/4, s.MeanMs*3)
		d := time.Duration(ms * float64(time.Millisecond))
		trace = append(trace, TraceStep{Name: s.Name, Latency: d})
		total += d
	}
	return trace, total
}

// SAProcedure returns the hypothetical standalone-mode 5G→5G hand-off (a
// direct Xn hand-off between gNBs, no LTE roll-back) used by the SA-vs-NSA
// ablation. The paper predicts "this long HO latency problem can be
// resolved in the future 5G SA architecture".
func SAProcedure() []Step {
	return []Step{
		{"Measurement Report", 2.1, 0.5},
		{"HO Decision", 3.0, 0.8},
		{"Xn Hand-off Request", 4.0, 1.0},
		{"Admission Control", 3.0, 0.8},
		{"Request ACK", 4.0, 1.0},
		{"RRC Reconfiguration (NR)", 6.0, 1.5},
		{"NR Random Access Procedure", 10.0, 2.5},
	}
}

// ExecuteSA draws the SA-mode hand-off latency.
func ExecuteSA(r *rand.Rand) time.Duration {
	var total time.Duration
	for _, s := range SAProcedure() {
		ms := rng.ClampedNormal(r, s.MeanMs, s.StdMs, s.MeanMs/4, s.MeanMs*3)
		total += time.Duration(ms * float64(time.Millisecond))
	}
	return total
}
