// Package perf is the benchmark-regression harness behind `fgperf bench`:
// a fixed set of named hot-path benchmarks run through testing.Benchmark,
// serialized to JSON with enough host metadata to decide whether two
// reports are comparable, and a comparator that gates CI on allocation
// and wall-clock regressions (see compare.go).
package perf

import (
	"testing"
	"time"

	"fivegsim"
	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
	"fivegsim/internal/des"
	"fivegsim/internal/geom"
	"fivegsim/internal/netsim"
	"fivegsim/internal/obs"
	"fivegsim/internal/pop"
	"fivegsim/internal/radio"
)

// Spec is one named benchmark. Quick marks the cheap benchmarks included
// in `fgperf bench -quick` (the CI smoke set); the full set adds the
// campaign-scale runs, which take minutes.
type Spec struct {
	Name  string
	Quick bool
	Fn    func(b *testing.B)
}

// Specs returns the benchmark set, in report order.
func Specs() []Spec {
	return []Spec{
		{Name: "DESStep", Quick: true, Fn: benchDESStep},
		{Name: "PathSaturate", Quick: true, Fn: benchPathSaturate},
		{Name: "Survey", Quick: true, Fn: benchSurvey},
		{Name: "SurveyBatch", Quick: true, Fn: benchSurveyBatch},
		{Name: "SurveyWorkers8", Fn: benchSurveyWorkers8},
		{Name: "PopTick100k", Quick: true, Fn: benchPopTick100k},
		{Name: "PopTick100kChurn", Quick: true, Fn: benchPopTick100kChurn},
		{Name: "PopTick100kTel", Fn: benchPopTick100kTel},
		{Name: "RunAllWorkers1", Fn: func(b *testing.B) { benchRunAll(b, 1) }},
		{Name: "RunAllWorkers8", Fn: func(b *testing.B) { benchRunAll(b, 8) }},
	}
}

// benchDESStep measures one scheduler step of a self-perpetuating event
// chain with a standing population of pending timers: every fired event
// reschedules itself and one in four cancels a previously armed timer.
// This is the same load shape as the root package's scheduler bench.
func benchDESStep(b *testing.B) {
	b.ReportAllocs()
	s := des.New()
	const fanout = 32
	fired := 0
	var timers [fanout]des.Timer
	var tick func()
	tick = func() {
		fired++
		if fired >= b.N {
			return
		}
		i := fired % fanout
		if fired%4 == 0 {
			timers[i].Cancel()
		}
		timers[i] = s.After(time.Duration(fanout+i)*time.Microsecond, func() {})
		s.After(time.Microsecond, tick)
	}
	s.After(0, tick)
	b.ResetTimer()
	s.Run()
}

// benchPathSaturate measures the packet hot path end to end — pool
// checkout, four wired hops, cross traffic, HARQ, delivery, release — in
// steady state: one long-lived Saturator, warmed until the pipe is full,
// advanced one 100 ms slice of simulated time per op at 1.08× the radio
// goodput. The per-op path construction the old RunUDP-based bench paid
// is gone, so this must hold 0 allocs/op (the -compare gate hard-fails
// any allocation).
func benchPathSaturate(b *testing.B) {
	b.ReportAllocs()
	cfg := netsim.DefaultPath(radio.NR, true)
	s := netsim.NewSaturator(cfg, cfg.RANRateBps*1.08)
	s.RunSlice(2 * time.Second) // pipe fill: every further slice is steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.RunSlice(100 * time.Millisecond)
		if res.Received == 0 {
			b.Fatal("no packets delivered")
		}
	}
}

// benchSurvey measures the coverage walk in steady state: one op is a
// 512-sample road survey re-run through a prebuilt Surveyor on a warmed
// campus — the batched-kernel sampling path alone, with the one-time
// campus construction and field-map warm outside the timer. Must hold
// 0 allocs/op.
func benchSurvey(b *testing.B) {
	b.ReportAllocs()
	c := deploy.New(1)
	c.WarmFieldMaps()
	sv := coverage.NewSurveyor(c, 512, 1)
	sv.Run(1) // settle any remaining lazy state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sv.Run(1)
		if len(s.Samples) != 512 {
			b.Fatal("short survey")
		}
	}
}

// benchSurveyBatch prices the batched measurement kernel itself: one op
// is a full MeasureAllInto of both technologies at 64 fixed points — the
// RSRP → interference → KPI chain over every cell, with no sampling
// randomness around it.
func benchSurveyBatch(b *testing.B) {
	b.ReportAllocs()
	c := deploy.New(1)
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = geom.Point{
			X: c.Bounds.Width() * (0.5 + float64(i%8)) / 8,
			Y: c.Bounds.Height() * (0.5 + float64(i/8)) / 8,
		}
	}
	buf := make([]radio.Measurement, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pts {
			buf = c.MeasureAllInto(radio.NR, p, buf[:0])
			buf = c.MeasureAllInto(radio.LTE, p, buf[:0])
		}
	}
}

// benchSurveyWorkers8 measures the sharded survey at the paper's full
// 4630-sample size across 8 workers — the intra-experiment sharding win
// on multi-core hosts. Goroutine scheduling makes its allocation count
// nondeterministic, so it lives in the full set, outside the quick CI
// gate.
func benchSurveyWorkers8(b *testing.B) {
	b.ReportAllocs()
	c := deploy.New(1)
	c.WarmFieldMapsParallel(8)
	sv := coverage.NewSurveyor(c, 4630, 1)
	sv.Run(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := sv.Run(8); len(s.Samples) != 4630 {
			b.Fatal("short survey")
		}
	}
}

// benchPopTick100k measures one population tick at 100k UEs on the
// serial path: move, traffic draw, attach through the warmed field maps,
// counting sort, per-cell PRB scheduling and throughput accumulation.
// The arena is built (and the first tick run) before the timer starts,
// so the measured loop is the steady state — which must stay at
// 0 allocs/op; the -compare gate hard-fails any allocation regression.
func benchPopTick100k(b *testing.B) {
	b.ReportAllocs()
	m := pop.DefaultModel()
	m.N = 100_000
	c := deploy.New(1)
	p := pop.New(c, m, 1)
	p.Tick(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tick(1)
	}
}

// benchPopTick100kChurn is benchPopTick100k with the population dynamics
// enabled — birth–death churn in steady-state balance, the stateful A3
// hand-off machine and load-coupled interference — pricing the dynamics
// against the static-population tick. The steady-state invariant is the
// same: 0 allocs/op (births reuse free-listed arena slots), and the
// -compare gate hard-fails any allocation regression.
func benchPopTick100kChurn(b *testing.B) {
	b.ReportAllocs()
	m := pop.DefaultModel()
	m.N = 100_000
	m.Churn = pop.ChurnModel{Enabled: true, ArrivalPerTick: 333, MeanLifetimeTicks: 300}
	m.A3 = pop.A3Model{Enabled: true, HysteresisDB: 3, TTTTicks: 3}
	m.LoadCoupling = pop.LoadCouplingModel{Enabled: true, Alpha: 0.3}
	c := deploy.New(1)
	p := pop.New(c, m, 1)
	defer p.RestoreLoads()
	p.Tick(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tick(1)
	}
}

// benchPopTick100kTel is benchPopTick100k with live telemetry attached
// (registry + tracer): it prices the sharded-counter accumulate/merge
// and the per-tick span against the uninstrumented tick. Full-set only;
// the telemetry-off bench is the CI-gated one.
func benchPopTick100kTel(b *testing.B) {
	b.ReportAllocs()
	m := pop.DefaultModel()
	m.N = 100_000
	c := deploy.New(1)
	p := pop.New(c, m, 1)
	p.Instrument(pop.Telemetry{Obs: obs.NewRegistry(), Trace: obs.NewTracer(0)})
	p.Tick(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tick(1)
	}
}

// benchRunAll measures the full quick campaign — every experiment of the
// paper — on the given worker count. One op takes minutes; the harness
// runs it once.
func benchRunAll(b *testing.B, workers int) {
	b.ReportAllocs()
	cfg := fivegsim.QuickConfig()
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		if res := fivegsim.RunAll(cfg); len(res) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// Run executes the selected benchmarks (all, or the Quick subset, then
// narrowed by filter — nil selects everything) and returns their results
// in Specs order.
func Run(quick bool, filter func(name string) bool, progress func(name string)) []Result {
	var out []Result
	for _, sp := range Specs() {
		if quick && !sp.Quick {
			continue
		}
		if filter != nil && !filter(sp.Name) {
			continue
		}
		if progress != nil {
			progress(sp.Name)
		}
		r := testing.Benchmark(sp.Fn)
		out = append(out, Result{
			Name:        sp.Name,
			N:           r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}
