package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// Host identifies the machine a report was produced on. Wall-clock
// numbers are only comparable between matching hosts; allocation counts
// are comparable everywhere.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// Report is the on-disk format of a bench run (BENCH_8.json).
type Report struct {
	Schema     int      `json:"schema"`
	Host       Host     `json:"host"`
	Benchmarks []Result `json:"benchmarks"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpuModel(),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// cpuModel best-effort reads the CPU model name (Linux); elsewhere the
// GOARCH already in Host is all we have.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// Comparable reports whether wall-clock numbers from the two hosts can be
// held against each other.
func (h Host) Comparable(other Host) bool {
	return h.GOOS == other.GOOS && h.GOARCH == other.GOARCH &&
		h.CPU == other.CPU && h.NumCPU == other.NumCPU
}

// WriteFile serializes the report, stable and human-diffable.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
