package perf

import "fmt"

// Comparison is the verdict of holding a current report against a
// baseline: hard Failures (CI exits nonzero) and advisory Warnings.
type Comparison struct {
	Failures []string
	Warnings []string
}

// nsTolerance overrides the CLI threshold per benchmark, downward only:
// the effective ns/op gate is min(threshold, override). The steady-state
// engine benches — a prebuilt Surveyor re-run and a warm Saturator slice
// — have far less variance than the construction-heavy benches they
// replaced, so they carry a tighter ratchet than the CI-wide default.
var nsTolerance = map[string]float64{
	"Survey":       0.10,
	"SurveyBatch":  0.10,
	"PathSaturate": 0.10,
}

// Compare gates current against baseline.
//
// Two kinds of regression are distinguished:
//
//   - allocs/op is a property of the code, not the machine, so any
//     increase over the baseline is a hard failure on every host.
//   - ns/op is machine-dependent, so the threshold gate (fractional
//     increase over baseline, e.g. 0.15 = +15 %) applies only when the
//     two hosts are comparable; across different hosts a slowdown is
//     reported as a warning instead. Benchmarks in nsTolerance tighten
//     the gate further.
//
// A measured benchmark missing from the baseline is a hard failure: a
// renamed or newly added benchmark must not silently run ungated — the
// baseline has to be regenerated to cover it. The converse (a baseline
// entry that was not measured) stays a warning, since partial runs
// (-quick, -filter) are routine.
func Compare(baseline, current Report, threshold float64) Comparison {
	var c Comparison
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	hostMatch := baseline.Host.Comparable(current.Host)
	if !hostMatch {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"hosts differ (baseline %s/%s %q, current %s/%s %q): ns/op gate is advisory",
			baseline.Host.GOOS, baseline.Host.GOARCH, baseline.Host.CPU,
			current.Host.GOOS, current.Host.GOARCH, current.Host.CPU))
	}
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, cur := range current.Benchmarks {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			c.Failures = append(c.Failures, fmt.Sprintf(
				"%s: not in baseline — regenerate the baseline to gate it", cur.Name))
			continue
		}
		if cur.AllocsPerOp > b.AllocsPerOp {
			c.Failures = append(c.Failures, fmt.Sprintf(
				"%s: allocs/op regressed %d -> %d", cur.Name, b.AllocsPerOp, cur.AllocsPerOp))
		}
		if b.NsPerOp > 0 {
			eff := threshold
			if t, ok := nsTolerance[cur.Name]; ok && t < eff {
				eff = t
			}
			ratio := float64(cur.NsPerOp)/float64(b.NsPerOp) - 1
			if ratio > eff {
				msg := fmt.Sprintf("%s: ns/op regressed %d -> %d (%+.1f%%, threshold %.0f%%)",
					cur.Name, b.NsPerOp, cur.NsPerOp, 100*ratio, 100*eff)
				if hostMatch {
					c.Failures = append(c.Failures, msg)
				} else {
					c.Warnings = append(c.Warnings, msg)
				}
			}
		}
	}
	for _, b := range baseline.Benchmarks {
		if !seen[b.Name] {
			c.Warnings = append(c.Warnings, fmt.Sprintf("%s: in baseline but not measured", b.Name))
		}
	}
	return c
}
