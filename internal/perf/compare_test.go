package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(host Host, ns, allocs int64) Report {
	return Report{
		Schema: 1,
		Host:   host,
		Benchmarks: []Result{
			{Name: "DESStep", N: 1000, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: 0},
		},
	}
}

func TestCompareAllocRegressionFailsEverywhere(t *testing.T) {
	a := Host{GOOS: "linux", GOARCH: "amd64", CPU: "x"}
	b := Host{GOOS: "darwin", GOARCH: "arm64", CPU: "y"}
	c := Compare(report(a, 100, 0), report(b, 100, 3), 0.15)
	if len(c.Failures) != 1 || !strings.Contains(c.Failures[0], "allocs/op") {
		t.Fatalf("want one allocs failure across hosts, got %+v", c)
	}
}

func TestCompareNsGateOnlyOnMatchingHost(t *testing.T) {
	h := Host{GOOS: "linux", GOARCH: "amd64", CPU: "x", NumCPU: 8}
	if c := Compare(report(h, 100, 0), report(h, 130, 0), 0.15); len(c.Failures) != 1 {
		t.Fatalf("same host +30%% should fail, got %+v", c)
	}
	if c := Compare(report(h, 100, 0), report(h, 110, 0), 0.15); len(c.Failures) != 0 {
		t.Fatalf("same host +10%% under 15%% threshold should pass, got %+v", c)
	}
	other := Host{GOOS: "linux", GOARCH: "arm64", CPU: "z", NumCPU: 4}
	c := Compare(report(h, 100, 0), report(other, 200, 0), 0.15)
	if len(c.Failures) != 0 {
		t.Fatalf("cross-host ns regression must be advisory, got failures %+v", c.Failures)
	}
	if len(c.Warnings) < 2 { // host note + the advisory slowdown
		t.Fatalf("want advisory warnings, got %+v", c.Warnings)
	}
}

// A measured benchmark absent from the baseline is a hard failure (an
// ungated bench must force a baseline regeneration); a baseline entry
// that was not measured stays advisory, since -quick and -filter runs
// are routine.
func TestCompareMissingBenchmarks(t *testing.T) {
	h := Host{GOOS: "linux", GOARCH: "amd64"}
	baseline := report(h, 100, 0)
	current := Report{Schema: 1, Host: h, Benchmarks: []Result{
		{Name: "Survey", NsPerOp: 50},
	}}
	c := Compare(baseline, current, 0.15)
	if len(c.Failures) != 1 || !strings.Contains(c.Failures[0], "not in baseline") {
		t.Fatalf("current-not-in-baseline must hard-fail, got %+v", c)
	}
	if len(c.Warnings) != 1 || !strings.Contains(c.Warnings[0], "not measured") {
		t.Fatalf("baseline-not-measured must stay a warning, got %+v", c)
	}
}

// The per-benchmark tolerance map tightens the gate below the CLI
// threshold for the steady-state benches, and never loosens it.
func TestCompareTighterTolerance(t *testing.T) {
	h := Host{GOOS: "linux", GOARCH: "amd64", CPU: "x", NumCPU: 8}
	mk := func(ns int64) Report {
		return Report{Schema: 1, Host: h, Benchmarks: []Result{
			{Name: "Survey", N: 100, NsPerOp: ns},
		}}
	}
	// +12% trips Survey's 10% override even though the CLI threshold is 15%.
	if c := Compare(mk(100), mk(112), 0.15); len(c.Failures) != 1 {
		t.Fatalf("+12%% must trip the 10%% Survey ratchet, got %+v", c)
	}
	// +8% passes both.
	if c := Compare(mk(100), mk(108), 0.15); len(c.Failures) != 0 {
		t.Fatalf("+8%% must pass, got %+v", c)
	}
	// A CLI threshold below the override wins: 5% gate fails +8%.
	if c := Compare(mk(100), mk(108), 0.05); len(c.Failures) != 1 {
		t.Fatalf("override must not loosen a tighter CLI threshold, got %+v", c)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	orig := Report{Schema: 1, Host: CurrentHost(), Benchmarks: []Result{
		{Name: "DESStep", N: 5, NsPerOp: 42, AllocsPerOp: 1, BytesPerOp: 64},
	}}
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != orig.Schema || got.Host != orig.Host || len(got.Benchmarks) != 1 || got.Benchmarks[0] != orig.Benchmarks[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, orig)
	}
}

// The quick benchmark set must at least be well-formed: every spec named,
// distinct, and the quick subset non-empty (the CI smoke step depends on
// it).
func TestSpecsWellFormed(t *testing.T) {
	names := map[string]bool{}
	quick := 0
	for _, sp := range Specs() {
		if sp.Name == "" || sp.Fn == nil {
			t.Fatalf("malformed spec %+v", sp)
		}
		if names[sp.Name] {
			t.Fatalf("duplicate spec %q", sp.Name)
		}
		names[sp.Name] = true
		if sp.Quick {
			quick++
		}
	}
	if quick == 0 {
		t.Fatal("no quick benchmarks: CI smoke would be empty")
	}
}
