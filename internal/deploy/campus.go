// Package deploy builds the measured campus: a 0.5 km × 0.92 km urban
// university campus with 6 co-sited 5G gNBs (13 NR cells), 13 4G eNBs (34
// LTE cells), brick-and-concrete buildings, and the road network along
// which the paper's blanket survey walks (6.019 km of road in total).
//
// Sites, sector azimuths, and buildings are deterministic; shadow fading
// is a spatially correlated value-noise field keyed by (cell, position) so
// that repeated surveys of the same spot agree, as they would in the
// field.
package deploy

import (
	"math"
	"sort"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

// Campus dimensions (meters): x spans 500 m east-west, y 920 m
// north-south, matching the paper's 0.5 km × 0.92 km region.
const (
	WidthM  = 500
	HeightM = 920
)

// Site is one base-station location carrying one technology's sectors.
type Site struct {
	ID    int
	Tech  radio.Tech
	Pos   geom.Point
	Cells []*radio.Cell
	// CoSitedWith is the ID of the companion site of the other technology
	// at the same pole (−1 if none). Every gNB is co-sited with an eNB
	// under NSA, but not every eNB has a 5G companion (§3.1).
	CoSitedWith int
}

// Campus is the full deployment. It implements radio.Obstruction.
type Campus struct {
	Bounds    geom.Rect
	Buildings []geom.Rect
	Roads     []geom.Segment

	NRSites  []Site
	LTESites []Site
	NRCells  []*radio.Cell
	LTECells []*radio.Cell

	seed int64

	// Cached best-server field maps, one per technology (see fieldmap.go).
	// Buckets fill lazily as BestServer queries touch them.
	nrField  *fieldMap
	lteField *fieldMap

	// Batched structure-of-arrays evaluation kernels over the cell lists
	// (see batch.go), plus the identity shortlists the all-cells paths
	// index them with.
	nrBatch  *radio.CellBatch
	lteBatch *radio.CellBatch
	nrAll    []int32
	lteAll   []int32
}

// siteSpec describes one deterministic site position and its sector plan.
type siteSpec struct {
	pos      geom.Point
	azimuths []float64
	pcis     []int
}

// The six gNB locations, spread over the campus like the paper's Fig. 2a
// (2-or-3-sector sites, 13 NR cells in total). PCI 72 is the cell used for
// the single-cell coverage study (Fig. 2b); PCIs 226 and 44 appear in the
// Fig. 4 handoff case study.
var nrSiteSpecs = []siteSpec{
	{pos: geom.Point{X: 120, Y: 130}, azimuths: []float64{0, 120, 240}, pcis: []int{60, 61, 62}},
	{pos: geom.Point{X: 390, Y: 255}, azimuths: []float64{45, 225}, pcis: []int{63, 64}},
	{pos: geom.Point{X: 120, Y: 420}, azimuths: []float64{90, 270}, pcis: []int{68, 69}},
	{pos: geom.Point{X: 340, Y: 500}, azimuths: []float64{30, 210}, pcis: []int{72, 73}},
	{pos: geom.Point{X: 120, Y: 720}, azimuths: []float64{135, 315}, pcis: []int{226, 44}},
	{pos: geom.Point{X: 390, Y: 830}, azimuths: []float64{60, 300}, pcis: []int{79, 80}},
}

// The 13 eNB locations: the first six are co-sited with the gNBs above;
// seven more fill the campus, giving 4G its denser grid (34 LTE cells).
var lteSiteSpecs = []siteSpec{
	{pos: geom.Point{X: 120, Y: 130}, azimuths: []float64{0, 120, 240}, pcis: []int{100, 101, 102}},
	{pos: geom.Point{X: 390, Y: 255}, azimuths: []float64{45, 165, 285}, pcis: []int{103, 104, 105}},
	{pos: geom.Point{X: 120, Y: 420}, azimuths: []float64{90, 210, 330}, pcis: []int{106, 107, 108}},
	{pos: geom.Point{X: 340, Y: 500}, azimuths: []float64{30, 150, 270}, pcis: []int{109, 110, 111}},
	{pos: geom.Point{X: 120, Y: 720}, azimuths: []float64{135, 255}, pcis: []int{441, 442}},
	{pos: geom.Point{X: 390, Y: 830}, azimuths: []float64{60, 180, 300}, pcis: []int{114, 115, 116}},
	{pos: geom.Point{X: 250, Y: 60}, azimuths: []float64{60, 300}, pcis: []int{117, 118}},
	{pos: geom.Point{X: 60, Y: 330}, azimuths: []float64{90, 270}, pcis: []int{120, 121}},
	{pos: geom.Point{X: 330, Y: 280}, azimuths: []float64{45, 165, 285}, pcis: []int{122, 123, 124}},
	{pos: geom.Point{X: 250, Y: 590}, azimuths: []float64{0, 120, 240}, pcis: []int{125, 126, 127}},
	{pos: geom.Point{X: 450, Y: 560}, azimuths: []float64{180, 300}, pcis: []int{128, 129}},
	{pos: geom.Point{X: 60, Y: 640}, azimuths: []float64{30, 270}, pcis: []int{130, 131}},
	{pos: geom.Point{X: 300, Y: 860}, azimuths: []float64{90, 210, 330}, pcis: []int{133, 134, 135}},
}

// buildings is the deterministic brick/concrete blocks layout ("surrounded
// by tall buildings", §2). Coordinates in meters.
var buildingSpecs = []geom.Rect{
	geom.NewRect(geom.Point{X: 30, Y: 40}, geom.Point{X: 180, Y: 110}),
	geom.NewRect(geom.Point{X: 300, Y: 30}, geom.Point{X: 360, Y: 95}),
	geom.NewRect(geom.Point{X: 420, Y: 40}, geom.Point{X: 480, Y: 100}),
	geom.NewRect(geom.Point{X: 200, Y: 140}, geom.Point{X: 290, Y: 230}),
	geom.NewRect(geom.Point{X: 330, Y: 170}, geom.Point{X: 440, Y: 240}),
	geom.NewRect(geom.Point{X: 40, Y: 230}, geom.Point{X: 120, Y: 300}),
	geom.NewRect(geom.Point{X: 150, Y: 320}, geom.Point{X: 260, Y: 400}),
	geom.NewRect(geom.Point{X: 300, Y: 330}, geom.Point{X: 390, Y: 410}),
	geom.NewRect(geom.Point{X: 40, Y: 400}, geom.Point{X: 110, Y: 460}),
	geom.NewRect(geom.Point{X: 200, Y: 440}, geom.Point{X: 300, Y: 520}),
	geom.NewRect(geom.Point{X: 360, Y: 470}, geom.Point{X: 430, Y: 540}),
	geom.NewRect(geom.Point{X: 60, Y: 530}, geom.Point{X: 170, Y: 580}),
	geom.NewRect(geom.Point{X: 300, Y: 560}, geom.Point{X: 400, Y: 640}),
	geom.NewRect(geom.Point{X: 100, Y: 620}, geom.Point{X: 200, Y: 700}),
	geom.NewRect(geom.Point{X: 230, Y: 650}, geom.Point{X: 310, Y: 720}),
	geom.NewRect(geom.Point{X: 400, Y: 740}, geom.Point{X: 470, Y: 820}),
	geom.NewRect(geom.Point{X: 180, Y: 760}, geom.Point{X: 280, Y: 830}),
	geom.NewRect(geom.Point{X: 40, Y: 850}, geom.Point{X: 150, Y: 900}),
	geom.NewRect(geom.Point{X: 330, Y: 550}, geom.Point{X: 380, Y: 555}),
	geom.NewRect(geom.Point{X: 430, Y: 200}, geom.Point{X: 490, Y: 290}),
}

// roadSpecs is the survey road graph: three north-south avenues, five
// east-west streets and a connecting diagonal, totalling ≈6.0 km (the
// paper traverses 6.019 km of road segments).
var roadSpecs = []geom.Segment{
	{A: geom.Point{X: 20, Y: 0}, B: geom.Point{X: 20, Y: 920}},
	{A: geom.Point{X: 250, Y: 0}, B: geom.Point{X: 250, Y: 920}},
	{A: geom.Point{X: 480, Y: 0}, B: geom.Point{X: 480, Y: 920}},
	{A: geom.Point{X: 0, Y: 120}, B: geom.Point{X: 500, Y: 120}},
	{A: geom.Point{X: 0, Y: 310}, B: geom.Point{X: 500, Y: 310}},
	{A: geom.Point{X: 0, Y: 500}, B: geom.Point{X: 500, Y: 500}},
	{A: geom.Point{X: 0, Y: 730}, B: geom.Point{X: 500, Y: 730}},
	{A: geom.Point{X: 0, Y: 910}, B: geom.Point{X: 500, Y: 910}},
	{A: geom.Point{X: 20, Y: 120}, B: geom.Point{X: 480, Y: 730}},
}

// New builds the campus. The seed keys the shadow-fading field; all
// geometry is deterministic.
func New(seed int64) *Campus {
	c := &Campus{
		Bounds:    geom.NewRect(geom.Point{}, geom.Point{X: WidthM, Y: HeightM}),
		Buildings: append([]geom.Rect(nil), buildingSpecs...),
		Roads:     append([]geom.Segment(nil), roadSpecs...),
		seed:      seed,
	}
	build := func(specs []siteSpec, tech radio.Tech, band radio.Band, load float64) ([]Site, []*radio.Cell) {
		sites := make([]Site, 0, len(specs))
		var cells []*radio.Cell
		for i, sp := range specs {
			s := Site{ID: i, Tech: tech, Pos: sp.pos, CoSitedWith: -1}
			for j, az := range sp.azimuths {
				cell := &radio.Cell{
					PCI:          sp.pcis[j],
					Tech:         tech,
					Band:         band,
					Pos:          sp.pos,
					Antenna:      radio.DefaultSector(az),
					EIRPPerREdBm: radio.DefaultEIRPPerRE(tech),
					Load:         load,
				}
				s.Cells = append(s.Cells, cell)
				cells = append(cells, cell)
			}
			sites = append(sites, s)
		}
		return sites, cells
	}
	// Daytime defaults: 4G cells carry real user load; 5G cells are almost
	// empty ("the limited number of 5G users", §4.1).
	c.NRSites, c.NRCells = build(nrSiteSpecs, radio.NR, radio.BandNR(), 0.15)
	c.LTESites, c.LTECells = build(lteSiteSpecs, radio.LTE, radio.BandLTE(), 0.85)
	for i := range c.NRSites {
		c.NRSites[i].CoSitedWith = i // first six eNBs share the gNB poles
		c.LTESites[i].CoSitedWith = i
	}
	c.nrBatch = radio.NewCellBatch(c.NRCells)
	c.lteBatch = radio.NewCellBatch(c.LTECells)
	c.nrAll = identityIdx(len(c.NRCells))
	c.lteAll = identityIdx(len(c.LTECells))
	c.nrField = newFieldMap(c, radio.NR)
	c.lteField = newFieldMap(c, radio.LTE)
	return c
}

// RoadLengthM returns the total length of the survey road graph.
func (c *Campus) RoadLengthM() float64 {
	var total float64
	for _, r := range c.Roads {
		total += r.Length()
	}
	return total
}

// AreaKm2 returns the campus area in km².
func (c *Campus) AreaKm2() float64 {
	return c.Bounds.Width() * c.Bounds.Height() / 1e6
}

// GNBDensityPerKm2 returns 5G sites per km² (the paper reports
// 12.99/km²).
func (c *Campus) GNBDensityPerKm2() float64 {
	return float64(len(c.NRSites)) / c.AreaKm2()
}

// ENBDensityPerKm2 returns 4G sites per km² (the paper reports
// 28.14/km²).
func (c *Campus) ENBDensityPerKm2() float64 {
	return float64(len(c.LTESites)) / c.AreaKm2()
}

// WallCrossings implements radio.Obstruction.
func (c *Campus) WallCrossings(a, b geom.Point) int {
	seg := geom.Segment{A: a, B: b}
	n := 0
	for _, bld := range c.Buildings {
		n += bld.CrossingCount(seg)
	}
	return n
}

// Indoor implements radio.Obstruction.
func (c *Campus) Indoor(p geom.Point) bool {
	for _, bld := range c.Buildings {
		if bld.Contains(p) {
			return true
		}
	}
	return false
}

// Cells returns the cell list for a technology.
func (c *Campus) Cells(t radio.Tech) []*radio.Cell {
	if t == radio.NR {
		return c.NRCells
	}
	return c.LTECells
}

// Sites returns the site list for a technology.
func (c *Campus) Sites(t radio.Tech) []Site {
	if t == radio.NR {
		return c.NRSites
	}
	return c.LTESites
}

// CellByPCI looks up a cell by PCI across both technologies.
func (c *Campus) CellByPCI(pci int) *radio.Cell {
	for _, cell := range c.NRCells {
		if cell.PCI == pci {
			return cell
		}
	}
	for _, cell := range c.LTECells {
		if cell.PCI == pci {
			return cell
		}
	}
	return nil
}

// ShadowDB returns the spatially correlated shadow fading (dB) for a cell
// at a point: a bilinear value-noise field with ≈25 m correlation length,
// deterministic in (seed, PCI, position).
func (c *Campus) ShadowDB(cell *radio.Cell, p geom.Point) float64 {
	std := radio.PropagationFor(cell.Tech).ShadowStdDB
	return valueNoise(c.seed, cell.PCI, p) * std
}

// RSRPAt returns the shadowed RSRP of a cell at p.
func (c *Campus) RSRPAt(cell *radio.Cell, p geom.Point) float64 {
	return radio.RSRPAt(cell, p, c, c.ShadowDB(cell, p))
}

// MeasureAll returns the KPI samples for every cell of a technology at p,
// strongest first, with inter-cell interference applied. Hot callers use
// MeasureAllInto (batch.go) with a retained buffer; this convenience
// wrapper allocates the result slice.
func (c *Campus) MeasureAll(t radio.Tech, p geom.Point) []radio.Measurement {
	return c.MeasureAllInto(t, p, make([]radio.Measurement, 0, len(c.Cells(t))))
}

// MeasureAvailable is MeasureAll restricted to cells for which down
// returns false — the fault layer's coverage-hole view. A failed cell
// radiates nothing, so it is excluded both as a candidate server and as
// an interferer. A nil predicate is MeasureAll.
func (c *Campus) MeasureAvailable(t radio.Tech, p geom.Point, down func(pci int) bool) []radio.Measurement {
	if down == nil {
		return c.MeasureAll(t, p)
	}
	all := c.Cells(t)
	if len(all) <= batchMax {
		return c.MeasureAvailableInto(t, p, down, make([]radio.Measurement, 0, len(all)))
	}
	live := make([]*radio.Cell, 0, len(all))
	for _, cell := range all {
		if !down(cell.PCI) {
			live = append(live, cell)
		}
	}
	return c.measureScalar(live, p)
}

// measureScalar is the per-call reference implementation the batched
// kernels are held to (and the fallback for cell sets larger than the
// fixed batch scratch): one Campus.RSRPAt per cell, one MeasureCell per
// serving candidate, sorted strongest-first.
func (c *Campus) measureScalar(cells []*radio.Cell, p geom.Point) []radio.Measurement {
	rsrps := make([]float64, len(cells))
	terms := make([]radio.InterferenceTerm, len(cells))
	for i, cell := range cells {
		rsrps[i] = c.RSRPAt(cell, p)
		terms[i] = radio.InterferenceTerm{PCI: cell.PCI, RSRPdBm: rsrps[i], Load: cell.Load}
	}
	ms := make([]radio.Measurement, len(cells))
	for i, cell := range cells {
		ms[i] = radio.MeasureCell(cell, p, rsrps[i], terms)
	}
	// Strict total order: exact RSRP ties (possible at lattice nodes where
	// two co-sited sectors see identical gain and shadow) break on PCI, so
	// every best-server resolution — including the field-map fast path —
	// agrees on the winner.
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].RSRPdBm != ms[j].RSRPdBm {
			return ms[i].RSRPdBm > ms[j].RSRPdBm
		}
		return ms[i].PCI < ms[j].PCI
	})
	return ms
}

// valueNoise returns a smooth pseudo-random field in units of standard
// deviations: Gaussian-ish values on a 25 m lattice, bilinearly
// interpolated and renormalized so the pointwise variance stays ≈1.
func valueNoise(seed int64, pci int, p geom.Point) float64 {
	const lattice = 25.0
	gx := math.Floor(p.X / lattice)
	gy := math.Floor(p.Y / lattice)
	fx := p.X/lattice - gx
	fy := p.Y/lattice - gy
	v00 := latticeGauss(seed, pci, int64(gx), int64(gy))
	v10 := latticeGauss(seed, pci, int64(gx)+1, int64(gy))
	v01 := latticeGauss(seed, pci, int64(gx), int64(gy)+1)
	v11 := latticeGauss(seed, pci, int64(gx)+1, int64(gy)+1)
	w00 := (1 - fx) * (1 - fy)
	w10 := fx * (1 - fy)
	w01 := (1 - fx) * fy
	w11 := fx * fy
	v := v00*w00 + v10*w10 + v01*w01 + v11*w11
	norm := math.Sqrt(w00*w00 + w10*w10 + w01*w01 + w11*w11)
	if norm == 0 {
		return v
	}
	return v / norm
}

// latticeGauss returns a deterministic ≈N(0,1) value at a lattice node via
// hashing and the sum-of-uniforms approximation. The FNV-1a hash is
// inlined byte by byte — bit-identical to hash/fnv over the same 32-byte
// key, but with no hasher allocation, since this sits under every RSRP
// evaluation.
func latticeGauss(seed int64, pci int, i, j int64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	for _, v := range [4]uint64{uint64(seed), uint64(pci), uint64(i), uint64(j)} {
		for k := 0; k < 8; k++ {
			x = (x ^ uint64(byte(v>>(8*k)))) * prime64
		}
	}
	// Twelve 5-bit uniforms summed: mean 6·(31/2), var ≈ 12·(32²−1)/12.
	var sum float64
	for k := 0; k < 12; k++ {
		sum += float64((x >> (5 * uint(k))) & 31)
	}
	mean := 12.0 * 31 / 2
	std := math.Sqrt(12 * (32*32 - 1) / 12.0)
	return (sum - mean) / std
}
