package deploy

import (
	"math"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

// This file is the deployment side of the batched evaluation kernel: the
// campus owns one radio.CellBatch per technology plus the environment
// kernels (wall crossings, shadow fading) that feed it. The batch path
// amortizes everything that is per-point rather than per-cell — the
// indoor test, the shadow-lattice interpolation weights, the wall scan
// for co-sited sectors — where the scalar chain (Campus.RSRPAt per cell)
// recomputes each of them for every cell it touches. The outputs are bit
// identical to the scalar chain; internal/deploy's equivalence tests
// hold every public entry point to a scalar reference across seeds.

// batchMax bounds the fixed stack scratch of the batched paths. The
// campus tops out at 34 LTE cells; anything larger (only possible for
// hand-built cell sets) falls back to the scalar path.
const batchMax = 40

func (c *Campus) batchFor(t radio.Tech) *radio.CellBatch {
	if t == radio.NR {
		return c.nrBatch
	}
	return c.lteBatch
}

// allIdx returns the identity shortlist over a technology's batch.
func (c *Campus) allIdx(t radio.Tech) []int32 {
	if t == radio.NR {
		return c.nrAll
	}
	return c.lteAll
}

// identityIdx builds [0, 1, …, n).
func identityIdx(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// rsrpBatch fills rsrp[k] with the shadowed RSRP of candidate idx[k] at
// p: the indoor test runs once for the point, the shadow kernel shares
// one set of lattice weights, and the wall kernel reuses the scan for
// co-sited sectors. Bit-identical to calling Campus.RSRPAt per cell.
func (c *Campus) rsrpBatch(b *radio.CellBatch, idx []int32, p geom.Point, walls []int32, shadow, rsrp []float64) {
	indoor := c.Indoor(p)
	c.wallsInto(walls, b, idx, p)
	c.shadowInto(shadow, b, idx, p)
	b.RSRPInto(rsrp, idx, p, walls, indoor, shadow)
}

// wallsInto fills dst[k] with the exterior-wall crossing count from cell
// idx[k]'s site to p. Sectors of one site share a mast, so consecutive
// candidates at the same position reuse the previous scan — the count is
// a pure function of (site, p).
func (c *Campus) wallsInto(dst []int32, b *radio.CellBatch, idx []int32, p geom.Point) {
	var lastPos geom.Point
	var lastN int32
	for k, ci := range idx {
		pos := b.Cell(int(ci)).Pos
		if k > 0 && pos == lastPos {
			dst[k] = lastN
			continue
		}
		n := int32(c.WallCrossings(pos, p))
		dst[k], lastPos, lastN = n, pos, n
	}
}

// shadowInto fills dst[k] with the correlated shadow fading (dB) of cell
// idx[k] at p — valueNoise with the bilinear weights and normalization
// hoisted out of the per-cell loop (they depend only on p; the four
// lattice hashes depend on the PCI and stay per-cell).
func (c *Campus) shadowInto(dst []float64, b *radio.CellBatch, idx []int32, p geom.Point) {
	const lattice = 25.0
	gx := math.Floor(p.X / lattice)
	gy := math.Floor(p.Y / lattice)
	fx := p.X/lattice - gx
	fy := p.Y/lattice - gy
	w00 := (1 - fx) * (1 - fy)
	w10 := fx * (1 - fy)
	w01 := (1 - fx) * fy
	w11 := fx * fy
	norm := math.Sqrt(w00*w00 + w10*w10 + w01*w01 + w11*w11)
	i0, j0 := int64(gx), int64(gy)
	for k, ci := range idx {
		i := int(ci)
		pci := b.PCI(i)
		v00 := latticeGauss(c.seed, pci, i0, j0)
		v10 := latticeGauss(c.seed, pci, i0+1, j0)
		v01 := latticeGauss(c.seed, pci, i0, j0+1)
		v11 := latticeGauss(c.seed, pci, i0+1, j0+1)
		v := v00*w00 + v10*w10 + v01*w01 + v11*w11
		if norm != 0 {
			v = v / norm
		}
		dst[k] = v * b.ShadowStd(i)
	}
}

// MeasureAllInto is MeasureAll appending into dst (usually a retained
// buffer passed as buf[:0]): the KPI samples of every cell of a
// technology at p, strongest first. The whole evaluation — environment,
// RSRP, interference terms, KPI chain, ordering — runs on fixed stack
// scratch, so a caller that reuses dst measures allocation-free; the
// guard test alongside TestBestServerAllocFree pins that.
func (c *Campus) MeasureAllInto(t radio.Tech, p geom.Point, dst []radio.Measurement) []radio.Measurement {
	return c.measureIdxInto(c.batchFor(t), c.allIdx(t), p, dst)
}

// MeasureAvailableInto is MeasureAvailable appending into dst: cells for
// which down returns true are excluded both as candidates and as
// interferers. A nil predicate is MeasureAllInto.
func (c *Campus) MeasureAvailableInto(t radio.Tech, p geom.Point, down func(pci int) bool, dst []radio.Measurement) []radio.Measurement {
	if down == nil {
		return c.MeasureAllInto(t, p, dst)
	}
	b := c.batchFor(t)
	n := b.Len()
	if n > batchMax {
		return append(dst, c.MeasureAvailable(t, p, down)...)
	}
	var idxArr [batchMax]int32
	idx := idxArr[:0]
	for i := 0; i < n; i++ {
		if !down(b.PCI(i)) {
			idx = append(idx, int32(i))
		}
	}
	return c.measureIdxInto(b, idx, p, dst)
}

// measureIdxInto measures every shortlist entry at p and appends the
// samples to dst ordered by (RSRP desc, PCI asc) — the same strict total
// order the scalar reference sorts by, realized as an insertion sort so
// the ordering pass allocates nothing. PCIs are unique within a
// technology, so the order has no ties and any comparison sort yields
// the identical sequence.
func (c *Campus) measureIdxInto(b *radio.CellBatch, idx []int32, p geom.Point, dst []radio.Measurement) []radio.Measurement {
	n := len(idx)
	if n == 0 {
		return dst
	}
	if n > batchMax {
		cells := make([]*radio.Cell, n)
		for k, ci := range idx {
			cells[k] = b.Cell(int(ci))
		}
		return append(dst, c.measureScalar(cells, p)...)
	}
	var wallsArr [batchMax]int32
	var shadowArr, rsrpArr, termArr [batchMax]float64
	walls := wallsArr[:n]
	shadow := shadowArr[:n]
	rsrp := rsrpArr[:n]
	termMw := termArr[:n]
	c.rsrpBatch(b, idx, p, walls, shadow, rsrp)
	b.TermsMwInto(termMw, idx, rsrp)
	base := len(dst)
	for k := 0; k < n; k++ {
		dst = append(dst, b.MeasureOne(idx, rsrp, termMw, k, p))
	}
	ms := dst[base:]
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && (ms[j].RSRPdBm < m.RSRPdBm ||
			(ms[j].RSRPdBm == m.RSRPdBm && ms[j].PCI > m.PCI)) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
	return dst
}
