package deploy

import (
	"math"
	"sync/atomic"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

// fieldMap is the cached coarse coverage map of one technology: the campus
// partitioned into fmBucketM-sized squares, each holding the shortlist of
// cells that can plausibly win best-server anywhere inside it. BestServer
// then evaluates a handful of candidates instead of every cell.
//
// A bucket's shortlist is every cell that comes within fmMarginDB of the
// strongest cell at any of a 5×5 grid of probe points over the bucket.
// The margin is far wider than the shadow field can swing between probes
// (the fading is spatially correlated with a 25 m lattice — the same pitch
// as the buckets — so it varies by only a few dB within one), which is why
// the shortlist winner matches the exhaustive scan; the equivalence is
// locked in by TestBestServerMatchesExhaustive rather than assumed.
//
// Buckets are built lazily on first lookup, so campuses whose experiments
// never query a region pay nothing for it. Builds are deterministic pure
// functions of (seed, geometry), so concurrent builders racing on the same
// bucket store identical shortlists; the atomic pointer makes the publish
// safe under RunParallel's worker pool.
type fieldMap struct {
	campus *Campus
	tech   radio.Tech
	nx, ny int
	bucket []atomic.Pointer[[]*radio.Cell]
}

const (
	// fmBucketM matches the shadow-field lattice pitch (campus.go).
	fmBucketM = 25.0
	// fmMarginDB is the shortlist admission margin below the per-probe
	// maximum. Chosen empirically with slack: mismatches against the
	// exhaustive scan appear only below ≈8 dB.
	fmMarginDB = 14.0
)

func newFieldMap(c *Campus, tech radio.Tech) *fieldMap {
	f := &fieldMap{
		campus: c,
		tech:   tech,
		nx:     int(c.Bounds.Width()/fmBucketM) + 1,
		ny:     int(c.Bounds.Height()/fmBucketM) + 1,
	}
	f.bucket = make([]atomic.Pointer[[]*radio.Cell], f.nx*f.ny)
	return f
}

// candidates returns the shortlist covering p, or nil when p lies outside
// the bucketed area (callers fall back to the exhaustive scan).
func (f *fieldMap) candidates(p geom.Point) []*radio.Cell {
	bx := int(p.X / fmBucketM)
	by := int(p.Y / fmBucketM)
	if p.X < 0 || p.Y < 0 || bx >= f.nx || by >= f.ny {
		return nil
	}
	idx := by*f.nx + bx
	if sl := f.bucket[idx].Load(); sl != nil {
		return *sl
	}
	sl := f.build(bx, by)
	f.bucket[idx].Store(&sl)
	return sl
}

// build probes a 5×5 grid over bucket (bx, by) — edges and corners
// included, since queries land there too — and admits every cell within
// fmMarginDB of the strongest at any probe.
func (f *fieldMap) build(bx, by int) []*radio.Cell {
	cells := f.campus.Cells(f.tech)
	keep := make([]bool, len(cells))
	rsrp := make([]float64, len(cells))
	offsets := [5]float64{0, 0.25, 0.5, 0.75, 1}
	for _, oy := range offsets {
		for _, ox := range offsets {
			p := geom.Point{
				X: (float64(bx) + ox) * fmBucketM,
				Y: (float64(by) + oy) * fmBucketM,
			}
			best := math.Inf(-1)
			for i, cell := range cells {
				rsrp[i] = f.campus.RSRPAt(cell, p)
				if rsrp[i] > best {
					best = rsrp[i]
				}
			}
			for i := range cells {
				if rsrp[i] >= best-fmMarginDB {
					keep[i] = true
				}
			}
		}
	}
	out := make([]*radio.Cell, 0, 4)
	for i, k := range keep {
		if k {
			out = append(out, cells[i])
		}
	}
	return out
}

// WarmFieldMaps builds every field-map bucket of both technologies up
// front. Population ticks query BestServer for every UE, so pre-warming
// turns the lazy per-bucket builds into a one-time cost and leaves the
// steady-state tick allocation-free (the PopTick benches and the
// internal/pop alloc guards rely on this).
func (c *Campus) WarmFieldMaps() {
	for _, f := range []*fieldMap{c.nrField, c.lteField} {
		if f == nil {
			continue
		}
		for by := 0; by < f.ny; by++ {
			for bx := 0; bx < f.nx; bx++ {
				f.candidates(geom.Point{X: (float64(bx) + 0.5) * fmBucketM, Y: (float64(by) + 0.5) * fmBucketM})
			}
		}
	}
}

func (c *Campus) fieldFor(t radio.Tech) *fieldMap {
	if t == radio.NR {
		return c.nrField
	}
	return c.lteField
}

// BestServer returns the strongest cell's measurement at p, or ok=false if
// the technology has no cells. It resolves the winner over the cached
// field-map shortlist — exact RSRP, evaluated for 2–4 candidates instead
// of every cell — and computes the KPI sample against the shortlist's
// interference terms. Cells excluded from the shortlist sit ≥14 dB below
// the winner, so their interference contribution is negligible.
func (c *Campus) BestServer(t radio.Tech, p geom.Point) (radio.Measurement, bool) {
	f := c.fieldFor(t)
	if f == nil {
		return c.BestServerExhaustive(t, p)
	}
	cand := f.candidates(p)
	if cand == nil {
		return c.BestServerExhaustive(t, p)
	}
	if len(cand) == 0 {
		return radio.Measurement{}, false
	}
	// Fixed-capacity scratch keeps the per-query path allocation-free
	// (the LTE layer tops out at 34 cells).
	var rsrpArr [40]float64
	var termArr [40]radio.InterferenceTerm
	n := len(cand)
	if n > len(rsrpArr) {
		return c.BestServerExhaustive(t, p)
	}
	rsrps := rsrpArr[:n]
	terms := termArr[:n]
	bestI := 0
	for i, cell := range cand {
		rsrps[i] = c.RSRPAt(cell, p)
		// Same tie-break as MeasureAll's sort: equal RSRP goes to the
		// lower PCI (shortlists are PCI-ordered only within a site, so
		// compare explicitly).
		if rsrps[i] > rsrps[bestI] ||
			(rsrps[i] == rsrps[bestI] && cell.PCI < cand[bestI].PCI) {
			bestI = i
		}
		terms[i] = radio.InterferenceTerm{PCI: cell.PCI, RSRPdBm: rsrps[i], Load: cell.Load}
	}
	return radio.MeasureCell(cand[bestI], p, rsrps[bestI], terms), true
}

// MeasureServing measures one specific cell (by PCI) at p against the
// local interference field — the stateful A3 attach's view of a serving
// cell that may no longer be the strongest. It shares BestServer's
// shortlist fast path and fixed scratch, so it is allocation-free on the
// bucketed area. ok=false means the cell is not measurable here: unknown
// PCI, or the cell fell off the field-map shortlist (≥14 dB below the
// local best — radio-link failure territory for any serving relation).
func (c *Campus) MeasureServing(t radio.Tech, p geom.Point, pci int) (radio.Measurement, bool) {
	f := c.fieldFor(t)
	var cand []*radio.Cell
	if f != nil {
		cand = f.candidates(p)
	}
	if cand == nil {
		// Outside the bucketed area (or no field map): exhaustive scan.
		for _, m := range c.MeasureAll(t, p) {
			if m.PCI == pci {
				return m, true
			}
		}
		return radio.Measurement{}, false
	}
	var rsrpArr [40]float64
	var termArr [40]radio.InterferenceTerm
	n := len(cand)
	if n == 0 || n > len(rsrpArr) {
		for _, m := range c.MeasureAll(t, p) {
			if m.PCI == pci {
				return m, true
			}
		}
		return radio.Measurement{}, false
	}
	rsrps := rsrpArr[:n]
	terms := termArr[:n]
	at := -1
	for i, cell := range cand {
		rsrps[i] = c.RSRPAt(cell, p)
		terms[i] = radio.InterferenceTerm{PCI: cell.PCI, RSRPdBm: rsrps[i], Load: cell.Load}
		if cell.PCI == pci {
			at = i
		}
	}
	if at < 0 {
		return radio.Measurement{}, false
	}
	return radio.MeasureCell(cand[at], p, rsrps[at], terms), true
}

// BestServerExhaustive is the reference implementation of BestServer: a
// full measurement of every cell. TestBestServerMatchesExhaustive holds
// the fast path to this one.
func (c *Campus) BestServerExhaustive(t radio.Tech, p geom.Point) (radio.Measurement, bool) {
	ms := c.MeasureAll(t, p)
	if len(ms) == 0 {
		return radio.Measurement{}, false
	}
	return ms[0], true
}
