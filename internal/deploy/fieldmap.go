package deploy

import (
	"math"
	"sync/atomic"

	"fivegsim/internal/geom"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
)

// fieldMap is the cached coarse coverage map of one technology: the campus
// partitioned into fmBucketM-sized squares, each holding the shortlist of
// cells that can plausibly win best-server anywhere inside it. BestServer
// then evaluates a handful of candidates instead of every cell.
//
// Shortlists are stored as batch indices (int32 into the technology's
// radio.CellBatch), so a bucket feeds the batched kernels directly: one
// lookup yields the exact slice RSRPInto/TermsMwInto iterate.
//
// A bucket's shortlist is every cell that comes within fmMarginDB of the
// strongest cell at any of a 5×5 grid of probe points over the bucket.
// The margin is far wider than the shadow field can swing between probes
// (the fading is spatially correlated with a 25 m lattice — the same pitch
// as the buckets — so it varies by only a few dB within one), which is why
// the shortlist winner matches the exhaustive scan; the equivalence is
// locked in by TestBestServerMatchesExhaustive rather than assumed.
//
// Buckets are built lazily on first lookup, so campuses whose experiments
// never query a region pay nothing for it. Builds are deterministic pure
// functions of (seed, geometry), so concurrent builders racing on the same
// bucket store identical shortlists; the atomic pointer makes the publish
// safe under RunParallel's worker pool.
type fieldMap struct {
	campus *Campus
	tech   radio.Tech
	nx, ny int
	bucket []atomic.Pointer[[]int32]
}

const (
	// fmBucketM matches the shadow-field lattice pitch (campus.go).
	fmBucketM = 25.0
	// fmMarginDB is the shortlist admission margin below the per-probe
	// maximum. Chosen empirically with slack: mismatches against the
	// exhaustive scan appear only below ≈8 dB.
	fmMarginDB = 14.0
)

func newFieldMap(c *Campus, tech radio.Tech) *fieldMap {
	f := &fieldMap{
		campus: c,
		tech:   tech,
		nx:     int(c.Bounds.Width()/fmBucketM) + 1,
		ny:     int(c.Bounds.Height()/fmBucketM) + 1,
	}
	f.bucket = make([]atomic.Pointer[[]int32], f.nx*f.ny)
	return f
}

// candidates returns the shortlist covering p as batch indices, or nil
// when p lies outside the bucketed area (callers fall back to the
// exhaustive scan).
func (f *fieldMap) candidates(p geom.Point) []int32 {
	bx := int(p.X / fmBucketM)
	by := int(p.Y / fmBucketM)
	if p.X < 0 || p.Y < 0 || bx >= f.nx || by >= f.ny {
		return nil
	}
	idx := by*f.nx + bx
	if sl := f.bucket[idx].Load(); sl != nil {
		return *sl
	}
	sl := f.build(bx, by)
	f.bucket[idx].Store(&sl)
	return sl
}

// build probes a 5×5 grid over bucket (bx, by) — edges and corners
// included, since queries land there too — and admits every cell within
// fmMarginDB of the strongest at any probe. The per-probe RSRP column
// comes from the batched kernel (bit-identical to the scalar chain, so
// shortlists are unchanged by the batch rewrite).
func (f *fieldMap) build(bx, by int) []int32 {
	c := f.campus
	b := c.batchFor(f.tech)
	all := c.allIdx(f.tech)
	n := len(all)
	keep := make([]bool, n)
	rsrp := make([]float64, n)
	walls := make([]int32, n)
	shadow := make([]float64, n)
	offsets := [5]float64{0, 0.25, 0.5, 0.75, 1}
	for _, oy := range offsets {
		for _, ox := range offsets {
			p := geom.Point{
				X: (float64(bx) + ox) * fmBucketM,
				Y: (float64(by) + oy) * fmBucketM,
			}
			if n <= batchMax {
				c.rsrpBatch(b, all, p, walls, shadow, rsrp)
			} else {
				for i := 0; i < n; i++ {
					rsrp[i] = c.RSRPAt(b.Cell(i), p)
				}
			}
			best := math.Inf(-1)
			for i := 0; i < n; i++ {
				if rsrp[i] > best {
					best = rsrp[i]
				}
			}
			for i := 0; i < n; i++ {
				if rsrp[i] >= best-fmMarginDB {
					keep[i] = true
				}
			}
		}
	}
	out := make([]int32, 0, 4)
	for i, k := range keep {
		if k {
			out = append(out, int32(i))
		}
	}
	return out
}

// WarmFieldMaps builds every field-map bucket of both technologies up
// front, serially. Population ticks query BestServer for every UE, so
// pre-warming turns the lazy per-bucket builds into a one-time cost and
// leaves the steady-state tick allocation-free (the PopTick benches and
// the internal/pop alloc guards rely on this).
func (c *Campus) WarmFieldMaps() { c.WarmFieldMapsParallel(1) }

// WarmFieldMapsParallel is WarmFieldMaps sharded over bucket rows across
// up to workers goroutines (the par.Workers convention: 0 = GOMAXPROCS).
// Builds are pure functions of (seed, geometry) published through atomic
// pointers, so any interleaving yields the same shortlists; workers is a
// pure throughput knob.
func (c *Campus) WarmFieldMapsParallel(workers int) {
	for _, f := range []*fieldMap{c.nrField, c.lteField} {
		if f == nil {
			continue
		}
		f := f
		par.Do(workers, par.ShardSize(f.ny, 4), func(sh par.Range) {
			for by := sh.Lo; by < sh.Hi; by++ {
				y := (float64(by) + 0.5) * fmBucketM
				for bx := 0; bx < f.nx; bx++ {
					f.candidates(geom.Point{X: (float64(bx) + 0.5) * fmBucketM, Y: y})
				}
			}
		})
	}
}

func (c *Campus) fieldFor(t radio.Tech) *fieldMap {
	if t == radio.NR {
		return c.nrField
	}
	return c.lteField
}

// BestServer returns the strongest cell's measurement at p, or ok=false if
// the technology has no cells. It resolves the winner over the cached
// field-map shortlist — exact RSRP from the batched kernel, evaluated for
// 2–4 candidates instead of every cell — and computes the KPI sample
// against the shortlist's interference terms. Cells excluded from the
// shortlist sit ≥14 dB below the winner, so their interference
// contribution is negligible.
func (c *Campus) BestServer(t radio.Tech, p geom.Point) (radio.Measurement, bool) {
	f := c.fieldFor(t)
	if f == nil {
		return c.BestServerExhaustive(t, p)
	}
	cand := f.candidates(p)
	if cand == nil {
		return c.BestServerExhaustive(t, p)
	}
	if len(cand) == 0 {
		return radio.Measurement{}, false
	}
	// Fixed-capacity scratch keeps the per-query path allocation-free
	// (the LTE layer tops out at 34 cells).
	n := len(cand)
	if n > batchMax {
		return c.BestServerExhaustive(t, p)
	}
	b := c.batchFor(t)
	var wallsArr [batchMax]int32
	var shadowArr, rsrpArr, termArr [batchMax]float64
	walls := wallsArr[:n]
	shadow := shadowArr[:n]
	rsrp := rsrpArr[:n]
	termMw := termArr[:n]
	c.rsrpBatch(b, cand, p, walls, shadow, rsrp)
	bestK := 0
	for k := 1; k < n; k++ {
		// Same tie-break as MeasureAll's ordering: equal RSRP goes to the
		// lower PCI (shortlists are PCI-ordered only within a site, so
		// compare explicitly).
		if rsrp[k] > rsrp[bestK] ||
			(rsrp[k] == rsrp[bestK] && b.PCI(int(cand[k])) < b.PCI(int(cand[bestK]))) {
			bestK = k
		}
	}
	b.TermsMwInto(termMw, cand, rsrp)
	return b.MeasureOne(cand, rsrp, termMw, bestK, p), true
}

// MeasureServing measures one specific cell (by PCI) at p against the
// local interference field — the stateful A3 attach's view of a serving
// cell that may no longer be the strongest. It shares BestServer's
// shortlist fast path and fixed scratch, so it is allocation-free on the
// bucketed area. ok=false means the cell is not measurable here: unknown
// PCI, or the cell fell off the field-map shortlist (≥14 dB below the
// local best — radio-link failure territory for any serving relation).
func (c *Campus) MeasureServing(t radio.Tech, p geom.Point, pci int) (radio.Measurement, bool) {
	f := c.fieldFor(t)
	var cand []int32
	if f != nil {
		cand = f.candidates(p)
	}
	if cand == nil || len(cand) == 0 || len(cand) > batchMax {
		// Outside the bucketed area (or no field map): exhaustive scan.
		for _, m := range c.MeasureAll(t, p) {
			if m.PCI == pci {
				return m, true
			}
		}
		return radio.Measurement{}, false
	}
	n := len(cand)
	b := c.batchFor(t)
	at := -1
	for k := 0; k < n; k++ {
		if b.PCI(int(cand[k])) == pci {
			at = k
			break
		}
	}
	if at < 0 {
		return radio.Measurement{}, false
	}
	var wallsArr [batchMax]int32
	var shadowArr, rsrpArr, termArr [batchMax]float64
	walls := wallsArr[:n]
	shadow := shadowArr[:n]
	rsrp := rsrpArr[:n]
	termMw := termArr[:n]
	c.rsrpBatch(b, cand, p, walls, shadow, rsrp)
	b.TermsMwInto(termMw, cand, rsrp)
	return b.MeasureOne(cand, rsrp, termMw, at, p), true
}

// BestServerExhaustive is the reference implementation of BestServer: a
// full measurement of every cell. TestBestServerMatchesExhaustive holds
// the fast path to this one.
func (c *Campus) BestServerExhaustive(t radio.Tech, p geom.Point) (radio.Measurement, bool) {
	ms := c.MeasureAll(t, p)
	if len(ms) == 0 {
		return radio.Measurement{}, false
	}
	return ms[0], true
}
