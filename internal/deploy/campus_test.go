package deploy

import (
	"math"
	"testing"
	"testing/quick"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

func TestDeploymentCounts(t *testing.T) {
	c := New(1)
	if len(c.NRSites) != 6 {
		t.Fatalf("gNB sites = %d, want 6", len(c.NRSites))
	}
	if len(c.NRCells) != 13 {
		t.Fatalf("NR cells = %d, want 13 (paper Table 1)", len(c.NRCells))
	}
	if len(c.LTESites) != 13 {
		t.Fatalf("eNB sites = %d, want 13", len(c.LTESites))
	}
	if len(c.LTECells) != 34 {
		t.Fatalf("LTE cells = %d, want 34 (paper Table 1)", len(c.LTECells))
	}
}

func TestDensitiesMatchPaper(t *testing.T) {
	c := New(1)
	if d := c.GNBDensityPerKm2(); math.Abs(d-12.99) > 0.5 {
		t.Fatalf("gNB density = %.2f/km², paper reports 12.99", d)
	}
	if d := c.ENBDensityPerKm2(); math.Abs(d-28.14) > 0.5 {
		t.Fatalf("eNB density = %.2f/km², paper reports 28.14", d)
	}
}

func TestRoadLength(t *testing.T) {
	c := New(1)
	if l := c.RoadLengthM(); math.Abs(l-6019) > 60 {
		t.Fatalf("road length = %.0f m, paper surveys 6019 m", l)
	}
}

func TestCoSiting(t *testing.T) {
	c := New(1)
	for i, s := range c.NRSites {
		if s.CoSitedWith != i {
			t.Fatalf("gNB %d not co-sited", i)
		}
		if c.LTESites[i].Pos != s.Pos {
			t.Fatalf("gNB %d and eNB %d not at the same pole", i, i)
		}
	}
	// Not all eNBs have 5G companions.
	withCompanion := 0
	for _, s := range c.LTESites {
		if s.CoSitedWith >= 0 {
			withCompanion++
		}
	}
	if withCompanion != 6 {
		t.Fatalf("eNBs with 5G companion = %d, want 6", withCompanion)
	}
}

func TestUniquePCIs(t *testing.T) {
	c := New(1)
	seen := map[int]bool{}
	for _, cell := range append(append([]*radio.Cell{}, c.NRCells...), c.LTECells...) {
		if seen[cell.PCI] {
			t.Fatalf("duplicate PCI %d", cell.PCI)
		}
		seen[cell.PCI] = true
	}
	for _, pci := range []int{72, 226, 44} { // cells used in the paper's case studies
		if c.CellByPCI(pci) == nil {
			t.Fatalf("PCI %d missing", pci)
		}
	}
	if c.CellByPCI(72).Tech != radio.NR {
		t.Fatal("PCI 72 must be a 5G cell (Fig. 2b)")
	}
}

func TestSitesInsideBounds(t *testing.T) {
	c := New(1)
	for _, s := range append(append([]Site{}, c.NRSites...), c.LTESites...) {
		if !c.Bounds.Contains(s.Pos) {
			t.Fatalf("site %v outside campus", s.Pos)
		}
		if c.Indoor(s.Pos) {
			t.Fatalf("site at %v is inside a building", s.Pos)
		}
	}
}

func TestShadowDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	cell := a.NRCells[0]
	cellB := b.NRCells[0]
	p := geom.Point{X: 123.4, Y: 567.8}
	if a.ShadowDB(cell, p) != b.ShadowDB(cellB, p) {
		t.Fatal("shadow field must be deterministic in (seed, pci, pos)")
	}
	if a.ShadowDB(cell, p) == New(8).ShadowDB(cellB, p) {
		t.Fatal("different seeds should give a different shadow field")
	}
}

func TestShadowSpatialCorrelation(t *testing.T) {
	c := New(3)
	cell := c.NRCells[0]
	p := geom.Point{X: 200, Y: 200}
	near := c.ShadowDB(cell, p.Add(geom.Point{X: 1}))
	here := c.ShadowDB(cell, p)
	if math.Abs(near-here) > 3 {
		t.Fatalf("shadowing discontinuous over 1 m: %v vs %v", here, near)
	}
}

func TestShadowStatistics(t *testing.T) {
	c := New(5)
	cell := c.NRCells[0]
	want := radio.PropagationFor(radio.NR).ShadowStdDB
	var sum, ss float64
	n := 0
	for x := 5.0; x < 500; x += 7 {
		for y := 5.0; y < 920; y += 11 {
			v := c.ShadowDB(cell, geom.Point{X: x, Y: y})
			sum += v
			ss += v * v
			n++
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(ss/float64(n) - mean*mean)
	if math.Abs(mean) > 1 {
		t.Fatalf("shadow mean = %.2f, want ≈0", mean)
	}
	if math.Abs(std-want) > 1.5 {
		t.Fatalf("shadow std = %.2f, want ≈%.1f", std, want)
	}
}

func TestMeasureAllSorted(t *testing.T) {
	c := New(1)
	f := func(px, py uint16) bool {
		p := geom.Point{X: float64(px % WidthM), Y: float64(py % HeightM)}
		ms := c.MeasureAll(radio.NR, p)
		for i := 1; i < len(ms); i++ {
			if ms[i].RSRPdBm > ms[i-1].RSRPdBm {
				return false
			}
		}
		return len(ms) == 13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBestServerNearSite(t *testing.T) {
	c := New(1)
	// Right under the PCI-72 site, the best 5G server should be one of
	// that site's sectors, and service must be available.
	site := c.NRSites[3]
	m, ok := c.BestServer(radio.NR, site.Pos.Add(geom.Point{X: 20, Y: 5}))
	if !ok {
		t.Fatal("no best server")
	}
	if !m.Usable() {
		t.Fatalf("unusable next to a gNB: RSRP %.1f", m.RSRPdBm)
	}
	found := false
	for _, cell := range site.Cells {
		if cell.PCI == m.PCI {
			found = true
		}
	}
	if !found {
		t.Fatalf("best server PCI %d is not a sector of the adjacent site", m.PCI)
	}
}

func TestIndoorAndWalls(t *testing.T) {
	c := New(1)
	inside := c.Buildings[0].Center()
	if !c.Indoor(inside) {
		t.Fatal("building center should be indoor")
	}
	if c.Indoor(geom.Point{X: 250, Y: 120}) {
		t.Fatal("road junction should be outdoor")
	}
	// A path through a building crosses ≥2 walls.
	b := c.Buildings[0]
	a := geom.Point{X: b.Min.X - 5, Y: b.Center().Y}
	d := geom.Point{X: b.Max.X + 5, Y: b.Center().Y}
	if n := c.WallCrossings(a, d); n < 2 {
		t.Fatalf("pass-through wall crossings = %d, want ≥2", n)
	}
}

func TestCellsAccessor(t *testing.T) {
	c := New(1)
	if len(c.Cells(radio.NR)) != 13 || len(c.Cells(radio.LTE)) != 34 {
		t.Fatal("Cells accessor mismatch")
	}
	if len(c.Sites(radio.NR)) != 6 || len(c.Sites(radio.LTE)) != 13 {
		t.Fatal("Sites accessor mismatch")
	}
}
