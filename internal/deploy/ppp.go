package deploy

import (
	"math"
	"math/rand"

	"fivegsim/internal/geom"
	"fivegsim/internal/rng"
)

// PPP-placed UE populations (the hexgrid/PPP deployment pattern of the
// AIMM-style simulators): a homogeneous Poisson point process over the
// campus rectangle is a Poisson-distributed count with intensity λ·A,
// and, conditioned on the count, independently uniform positions. The
// population layer draws the count with PoissonCount and fills its
// preallocated structure-of-arrays slices with PlacePPP.

// PoissonCount draws a Poisson-distributed count with the given mean.
// Small means use Knuth's product method; large means (where the product
// would underflow) use the normal approximation N(mean, √mean), which is
// accurate to well under a percent at the 10⁴–10⁶ populations the
// simulator targets. Negative or zero means yield 0.
func PoissonCount(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(rng.Normal(r, mean, math.Sqrt(mean))))
	if n < 0 {
		n = 0
	}
	return n
}

// PlacePPP fills xs and ys (equal length) with uniform outdoor positions
// over the campus — the conditional-uniform representation of a PPP given
// its count. Indoor draws are rejected and retried like the walking
// survey's sampler; after 32 attempts the last draw stands (the building
// set covers well under half the campus, so this is vanishingly rare).
func (c *Campus) PlacePPP(r *rand.Rand, xs, ys []float64) {
	w, h := c.Bounds.Width(), c.Bounds.Height()
	for i := range xs {
		var p geom.Point
		for attempt := 0; attempt < 32; attempt++ {
			p = geom.Point{X: c.Bounds.Min.X + r.Float64()*w, Y: c.Bounds.Min.Y + r.Float64()*h}
			if !c.Indoor(p) {
				break
			}
		}
		xs[i], ys[i] = p.X, p.Y
	}
}
