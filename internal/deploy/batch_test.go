package deploy

import (
	"math/rand"
	"testing"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

// testPoints draws points across the campus, making sure the set covers
// both indoor and outdoor (the two PathLoss branches the batch kernel
// must reproduce); the campus has ~40% building cover so 60 draws always
// hit both in practice, but the test asserts it rather than hoping.
func testPoints(t *testing.T, c *Campus, r *rand.Rand, n int) []geom.Point {
	t.Helper()
	pts := make([]geom.Point, 0, n)
	indoor, outdoor := false, false
	for i := 0; i < n; i++ {
		p := geom.Point{
			X: c.Bounds.Min.X + r.Float64()*c.Bounds.Width(),
			Y: c.Bounds.Min.Y + r.Float64()*c.Bounds.Height(),
		}
		if c.Indoor(p) {
			indoor = true
		} else {
			outdoor = true
		}
		pts = append(pts, p)
	}
	if !indoor || !outdoor {
		t.Fatalf("point set does not cover both indoor and outdoor (indoor=%v outdoor=%v)", indoor, outdoor)
	}
	return pts
}

// TestMeasureAllIntoMatchesScalar holds the batched measurement path to
// the scalar reference bit for bit: same RSRP, same interference, same
// KPI chain, same (RSRP desc, PCI asc) order — for both technologies,
// across seeds, indoor and out.
func TestMeasureAllIntoMatchesScalar(t *testing.T) {
	for _, seed := range []int64{1, 42, 7} {
		c := New(seed)
		r := rand.New(rand.NewSource(seed * 1000))
		buf := make([]radio.Measurement, 0, batchMax)
		for _, p := range testPoints(t, c, r, 60) {
			for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
				got := c.MeasureAllInto(tech, p, buf[:0])
				want := c.measureScalar(c.Cells(tech), p)
				if len(got) != len(want) {
					t.Fatalf("seed %d %v at %+v: %d samples, want %d", seed, tech, p, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d %v at %+v sample %d:\n batch  %+v\n scalar %+v",
							seed, tech, p, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestMeasureAvailableIntoMatchesScalar holds the fault-filtered batch
// path to a scalar reference built the long way: filter the cell list,
// then run the scalar measurement over the survivors. Downed cells must
// vanish both as candidates and as interferers.
func TestMeasureAvailableIntoMatchesScalar(t *testing.T) {
	c := New(42)
	r := rand.New(rand.NewSource(9))
	buf := make([]radio.Measurement, 0, batchMax)
	for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
		cells := c.Cells(tech)
		for trial := 0; trial < 20; trial++ {
			downed := map[int]bool{}
			for _, cell := range cells {
				if r.Float64() < 0.3 {
					downed[cell.PCI] = true
				}
			}
			down := func(pci int) bool { return downed[pci] }
			p := geom.Point{X: r.Float64() * c.Bounds.Width(), Y: r.Float64() * c.Bounds.Height()}
			got := c.MeasureAvailableInto(tech, p, down, buf[:0])
			live := make([]*radio.Cell, 0, len(cells))
			for _, cell := range cells {
				if !downed[cell.PCI] {
					live = append(live, cell)
				}
			}
			want := c.measureScalar(live, p)
			if len(got) != len(want) {
				t.Fatalf("%v trial %d: %d samples, want %d", tech, trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d sample %d:\n batch  %+v\n scalar %+v", tech, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMeasureIntoAllocFree pins the zero-allocation contract of the Into
// variants: with a retained buffer, measuring every cell (or every live
// cell) allocates nothing. This is the guarantee the survey and walker
// hot loops are built on.
func TestMeasureIntoAllocFree(t *testing.T) {
	c := New(1)
	pts := []geom.Point{{X: 120, Y: 130}, {X: 250, Y: 500}, {X: 480, Y: 910}, {X: 20, Y: 300}}
	buf := make([]radio.Measurement, 0, batchMax)
	downPCI := c.Cells(radio.NR)[0].PCI
	down := func(pci int) bool { return pci == downPCI }
	avg := testing.AllocsPerRun(50, func() {
		for _, p := range pts {
			buf = c.MeasureAllInto(radio.NR, p, buf[:0])
			buf = c.MeasureAllInto(radio.LTE, p, buf[:0])
			buf = c.MeasureAvailableInto(radio.NR, p, down, buf[:0])
		}
	})
	if avg != 0 {
		t.Fatalf("Into measurement paths allocate: %.2f allocs/run", avg)
	}
}
