package deploy

import (
	"math/rand"
	"sync"
	"testing"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

// The field-map fast path must pick the same winner as the exhaustive
// scan at every point — the shortlist is an optimization, not a model
// change. Sweep a dense grid plus random jittered points across several
// shadow-field seeds and demand the identical cell and bit-exact RSRP.
func TestBestServerMatchesExhaustive(t *testing.T) {
	for _, seed := range []int64{1, 42, 7} {
		c := New(seed)
		r := rand.New(rand.NewSource(seed))
		var pts []geom.Point
		for x := 0.0; x <= WidthM; x += 10 {
			for y := 0.0; y <= HeightM; y += 10 {
				pts = append(pts, geom.Point{X: x, Y: y})
			}
		}
		for i := 0; i < 500; i++ {
			pts = append(pts, geom.Point{X: r.Float64() * WidthM, Y: r.Float64() * HeightM})
		}
		for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
			mismatches := 0
			for _, p := range pts {
				fast, okF := c.BestServer(tech, p)
				ref, okR := c.BestServerExhaustive(tech, p)
				if okF != okR {
					t.Fatalf("seed %d %v at %+v: ok mismatch fast=%v ref=%v", seed, tech, p, okF, okR)
				}
				if !okF {
					continue
				}
				if fast.PCI != ref.PCI || fast.RSRPdBm != ref.RSRPdBm {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("seed %d %v at (%.1f, %.1f): fast PCI %d (%.3f dBm) vs exhaustive PCI %d (%.3f dBm)",
							seed, tech, p.X, p.Y, fast.PCI, fast.RSRPdBm, ref.PCI, ref.RSRPdBm)
					}
				}
			}
			if mismatches > 0 {
				t.Fatalf("seed %d %v: %d/%d winners differ from exhaustive scan", seed, tech, mismatches, len(pts))
			}
		}
	}
}

// Outside the bucketed area the fast path must fall back to the
// exhaustive scan rather than index out of range.
func TestBestServerOutOfBounds(t *testing.T) {
	c := New(1)
	for _, p := range []geom.Point{
		{X: -50, Y: 100}, {X: 100, Y: -50}, {X: WidthM + 200, Y: 100}, {X: 100, Y: HeightM + 200},
	} {
		fast, okF := c.BestServer(radio.NR, p)
		ref, okR := c.BestServerExhaustive(radio.NR, p)
		if okF != okR || fast.PCI != ref.PCI || fast.RSRPdBm != ref.RSRPdBm {
			t.Fatalf("out-of-bounds %+v: fast (%d, %.3f, %v) vs exhaustive (%d, %.3f, %v)",
				p, fast.PCI, fast.RSRPdBm, okF, ref.PCI, ref.RSRPdBm, okR)
		}
	}
}

// Concurrent first-touch queries racing on unbuilt buckets must agree —
// the lazy build is idempotent and published atomically (RunParallel's
// survey workers share one campus).
func TestFieldMapConcurrentBuild(t *testing.T) {
	c := New(42)
	const workers = 8
	results := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for x := 0.0; x <= WidthM; x += 25 {
				for y := 0.0; y <= HeightM; y += 25 {
					m, ok := c.BestServer(radio.NR, geom.Point{X: x, Y: y})
					if !ok {
						t.Error("no server")
						return
					}
					results[w] = append(results[w], m.PCI)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d saw %d results, worker 0 saw %d", w, len(results[w]), len(results[0]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d result %d: PCI %d vs %d", w, i, results[w][i], results[0][i])
			}
		}
	}
}

// BestServer on warmed buckets must not allocate: the survey's inner loop
// runs it millions of times.
func TestBestServerAllocFree(t *testing.T) {
	c := New(1)
	pts := []geom.Point{{X: 120, Y: 130}, {X: 250, Y: 500}, {X: 480, Y: 910}, {X: 20, Y: 300}}
	for _, p := range pts { // warm the buckets
		c.BestServer(radio.NR, p)
		c.BestServer(radio.LTE, p)
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, p := range pts {
			c.BestServer(radio.NR, p)
			c.BestServer(radio.LTE, p)
		}
	})
	if avg != 0 {
		t.Fatalf("BestServer allocates on warm buckets: %.2f allocs/run", avg)
	}
}
