package cc

import (
	"time"

	"fivegsim/internal/obs"
)

// instrumented wraps a Controller and mirrors its control events into an
// obs.Registry under the `cc.*{algo=name}` namespace: a cwnd-sample
// histogram (every ACK), an RTT histogram in microseconds, and
// loss/RTO event counters.
type instrumented struct {
	Controller
	acks *obs.Counter
	loss *obs.Counter
	rto  *obs.Counter
	cwnd *obs.Histogram
	rtt  *obs.Histogram
}

// Instrument returns c with telemetry attached. A nil registry (or nil
// controller) returns c unchanged, so the uninstrumented path stays
// wrapper-free.
func Instrument(c Controller, reg *obs.Registry) Controller {
	if c == nil || reg == nil {
		return c
	}
	label := "{algo=" + c.Name() + "}"
	return &instrumented{
		Controller: c,
		acks:       reg.Counter("cc.acks" + label),
		loss:       reg.Counter("cc.loss_events" + label),
		rto:        reg.Counter("cc.rto_events" + label),
		cwnd:       reg.Histogram("cc.cwnd_bytes"+label, obs.ByteBuckets),
		rtt:        reg.Histogram("cc.rtt_us"+label, obs.DurationBuckets),
	}
}

func (i *instrumented) OnAck(now time.Duration, ackedBytes int, rtt time.Duration, inflight int) {
	i.Controller.OnAck(now, ackedBytes, rtt, inflight)
	i.acks.Inc()
	i.rtt.Observe(float64(rtt) / float64(time.Microsecond))
	i.cwnd.Observe(float64(i.Controller.Cwnd()))
}

func (i *instrumented) OnLoss(now time.Duration, inflight int) {
	i.Controller.OnLoss(now, inflight)
	i.loss.Inc()
}

func (i *instrumented) OnRTO(now time.Duration) {
	i.Controller.OnRTO(now)
	i.rto.Inc()
}
