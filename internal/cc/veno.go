package cc

import "time"

// Veno combines Reno's loss response with Vegas's queue estimate: when a
// loss occurs while the estimated backlog is small, the loss is deemed
// random and the window is cut by only 1/5; otherwise it halves. Its
// additive increase also slows once the backlog passes beta.
type Veno struct {
	cwnd     float64
	ssthresh float64
	baseRTT  time.Duration
	lastRTT  time.Duration
}

const venoBeta = 3 // packets of estimated backlog

// NewVeno returns a Veno controller.
func NewVeno() *Veno {
	return &Veno{cwnd: InitialWindow, ssthresh: 1 << 30}
}

// Name implements Controller.
func (v *Veno) Name() string { return "veno" }

// diff returns the Vegas-style backlog estimate in packets.
func (v *Veno) diff() float64 {
	if v.baseRTT == 0 || v.lastRTT == 0 {
		return 0
	}
	expected := v.cwnd / v.baseRTT.Seconds()
	actual := v.cwnd / v.lastRTT.Seconds()
	return (expected - actual) * v.baseRTT.Seconds() / SegBytes
}

// OnAck implements Controller.
func (v *Veno) OnAck(now time.Duration, acked int, rtt time.Duration, inflight int) {
	if v.baseRTT == 0 || rtt < v.baseRTT {
		v.baseRTT = rtt
	}
	v.lastRTT = rtt
	if v.cwnd < v.ssthresh {
		v.cwnd += float64(acked)
		return
	}
	if v.diff() < venoBeta {
		v.cwnd += float64(SegBytes) * float64(acked) / v.cwnd
	} else {
		// Available bandwidth fully used: increase every other RTT.
		v.cwnd += float64(SegBytes) * float64(acked) / (2 * v.cwnd)
	}
}

// OnLoss implements Controller.
func (v *Veno) OnLoss(now time.Duration, inflight int) {
	if v.diff() < venoBeta {
		v.ssthresh = v.cwnd * 4 / 5 // random loss: mild cut
	} else {
		v.ssthresh = v.cwnd / 2 // congestive loss: Reno cut
	}
	if v.ssthresh < MinWindow {
		v.ssthresh = MinWindow
	}
	v.cwnd = v.ssthresh
}

// OnRTO implements Controller.
func (v *Veno) OnRTO(now time.Duration) {
	v.ssthresh = v.cwnd / 2
	if v.ssthresh < MinWindow {
		v.ssthresh = MinWindow
	}
	v.cwnd = MinWindow
}

// Cwnd implements Controller.
func (v *Veno) Cwnd() int { return int(v.cwnd) }

// PacingRate implements Controller.
func (v *Veno) PacingRate() float64 { return 0 }
