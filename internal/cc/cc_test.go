package cc

import (
	"testing"
	"time"
)

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		c := New(name)
		if c == nil {
			t.Fatalf("New(%q) = nil", name)
		}
		if c.Name() != name {
			t.Fatalf("Name() = %q, want %q", c.Name(), name)
		}
		if c.Cwnd() != InitialWindow {
			t.Fatalf("%s: initial cwnd = %d, want %d", name, c.Cwnd(), InitialWindow)
		}
	}
	if New("nope") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestRenoSlowStartAndAIMD(t *testing.T) {
	r := NewReno()
	rtt := 40 * time.Millisecond
	// Slow start: cwnd grows by acked bytes.
	start := r.Cwnd()
	r.OnAck(0, SegBytes, rtt, 0)
	if r.Cwnd() != start+SegBytes {
		t.Fatalf("slow start growth = %d", r.Cwnd()-start)
	}
	// Loss halves.
	grown := r.Cwnd()
	r.OnLoss(0, grown)
	if r.Cwnd() != grown/2 {
		t.Fatalf("post-loss cwnd = %d, want %d", r.Cwnd(), grown/2)
	}
	// Congestion avoidance: ≈1 MSS per cwnd of acked bytes.
	base := float64(r.Cwnd())
	acks := int(base) / SegBytes
	for i := 0; i < acks; i++ {
		r.OnAck(0, SegBytes, rtt, 0)
	}
	if got := float64(r.Cwnd()) - base; got < 0.8*SegBytes || got > 1.3*SegBytes {
		t.Fatalf("CA growth per RTT = %.0f bytes, want ≈1 MSS", got)
	}
	// RTO floors the window.
	r.OnRTO(0)
	if r.Cwnd() != MinWindow {
		t.Fatalf("post-RTO cwnd = %d, want %d", r.Cwnd(), MinWindow)
	}
}

func TestCubicBetaAndRegrowth(t *testing.T) {
	c := NewCubic()
	rtt := 40 * time.Millisecond
	// Grow past slow start.
	for i := 0; i < 200; i++ {
		c.OnAck(time.Duration(i)*rtt, SegBytes, rtt, 0)
	}
	pre := float64(c.Cwnd())
	c.OnLoss(200*rtt, 0)
	if got := float64(c.Cwnd()); got < pre*cubicBeta*0.95 || got > pre*cubicBeta*1.05 {
		t.Fatalf("cubic loss response = %.2f×, want β=%.1f", got/pre, cubicBeta)
	}
	// Concave regrowth approaches the previous maximum over time.
	now := 200 * rtt
	for i := 0; i < 4000; i++ {
		now += rtt / 8
		c.OnAck(now, SegBytes, rtt, 0)
	}
	if float64(c.Cwnd()) < pre*0.9 {
		t.Fatalf("cubic did not regrow toward Wmax: %d vs %0.f", c.Cwnd(), pre)
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	v := NewVegas()
	base := 40 * time.Millisecond
	now := time.Duration(0)
	// Establish baseRTT and exit slow start with inflated RTT.
	for i := 0; i < 200; i++ {
		now += 10 * time.Millisecond
		v.OnAck(now, SegBytes, base, 0)
	}
	grown := v.Cwnd()
	// Now the path queues: RTT inflates 50 %; Vegas should shrink or hold,
	// never grow.
	for i := 0; i < 200; i++ {
		now += 10 * time.Millisecond
		v.OnAck(now, SegBytes, base*3/2, 0)
	}
	if v.Cwnd() > grown {
		t.Fatalf("vegas grew under queueing: %d → %d", grown, v.Cwnd())
	}
}

func TestVenoMildCutOnRandomLoss(t *testing.T) {
	v := NewVeno()
	rtt := 40 * time.Millisecond
	for i := 0; i < 100; i++ {
		v.OnAck(time.Duration(i)*rtt, SegBytes, rtt, 0)
	}
	pre := v.Cwnd()
	// RTT equals baseRTT ⇒ backlog ≈ 0 ⇒ loss deemed random ⇒ 4/5 cut.
	v.OnLoss(0, 0)
	got := float64(v.Cwnd()) / float64(pre)
	if got < 0.75 || got > 0.85 {
		t.Fatalf("veno random-loss cut = %.2f, want ≈0.8", got)
	}
}

func TestVenoRenoCutOnCongestiveLoss(t *testing.T) {
	v := NewVeno()
	base := 40 * time.Millisecond
	v.OnAck(0, SegBytes, base, 0) // records baseRTT
	for i := 0; i < 100; i++ {
		v.OnAck(time.Duration(i)*base, SegBytes, base*2, 0) // queueing
	}
	pre := v.Cwnd()
	v.OnLoss(0, 0)
	got := float64(v.Cwnd()) / float64(pre)
	if got < 0.45 || got > 0.55 {
		t.Fatalf("veno congestive cut = %.2f, want ≈0.5", got)
	}
}

func TestBBRStartupExitsOnPlateau(t *testing.T) {
	b := NewBBR()
	rtt := 20 * time.Millisecond
	now := time.Duration(0)
	if b.State() != "STARTUP" {
		t.Fatalf("initial state %s", b.State())
	}
	// Feed a constant delivery rate; startup should exit after the
	// bandwidth stops growing, and eventually reach PROBE_BW.
	for i := 0; i < 200; i++ {
		now += rtt
		b.OnAck(now, 250_000, rtt, 100_000)
	}
	if b.State() == "STARTUP" {
		t.Fatal("BBR never left STARTUP on a bandwidth plateau")
	}
	for i := 0; i < 50; i++ {
		now += rtt
		b.OnAck(now, 250_000, rtt, 100_000)
	}
	if b.State() != "PROBE_BW" && b.State() != "PROBE_RTT" {
		t.Fatalf("BBR stuck in %s", b.State())
	}
	// The model: cwnd ≈ 2×BDP, pacing ≈ BtlBw.
	bdp := 250_000.0 * 8 / rtt.Seconds() / 8 * rtt.Seconds() // = 250 KB per RTT
	if got := float64(b.Cwnd()); got < bdp || got > 3*bdp {
		t.Fatalf("cwnd = %.0f, want ≈2×BDP (%.0f)", got, 2*bdp)
	}
	if pr := b.PacingRate(); pr < 0.5*250_000*8/rtt.Seconds() || pr > 2*250_000*8/rtt.Seconds() {
		t.Fatalf("pacing rate = %.0f implausible", pr)
	}
}

func TestBBRIgnoresLoss(t *testing.T) {
	b := NewBBR()
	rtt := 20 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		now += rtt
		b.OnAck(now, 250_000, rtt, 100_000)
	}
	pre := b.Cwnd()
	for i := 0; i < 50; i++ {
		b.OnLoss(now, 100_000)
	}
	if b.Cwnd() != pre {
		t.Fatal("BBR model must not shrink on loss events")
	}
}

func TestControllersSurviveRTO(t *testing.T) {
	for _, name := range Names() {
		c := New(name)
		rtt := 30 * time.Millisecond
		for i := 0; i < 50; i++ {
			c.OnAck(time.Duration(i)*rtt, SegBytes, rtt, 0)
		}
		c.OnRTO(50 * rtt)
		if c.Cwnd() < MinWindow {
			t.Fatalf("%s: cwnd below floor after RTO", name)
		}
		// Must keep working after RTO.
		for i := 0; i < 50; i++ {
			c.OnAck(time.Duration(50+i)*rtt, SegBytes, rtt, 0)
		}
		if c.Cwnd() <= 0 {
			t.Fatalf("%s: dead after RTO", name)
		}
	}
}
