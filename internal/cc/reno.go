package cc

import "time"

// Reno is classic NewReno AIMD: slow start to ssthresh, then one segment
// per RTT of additive increase; multiplicative decrease by half on loss.
type Reno struct {
	cwnd     float64
	ssthresh float64
}

// NewReno returns a Reno controller.
func NewReno() *Reno {
	return &Reno{cwnd: InitialWindow, ssthresh: 1 << 30}
}

// Name implements Controller.
func (r *Reno) Name() string { return "reno" }

// OnAck implements Controller.
func (r *Reno) OnAck(now time.Duration, acked int, rtt time.Duration, inflight int) {
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(acked) // slow start: exponential growth
	} else {
		r.cwnd += float64(SegBytes) * float64(acked) / r.cwnd // ≈1 MSS per RTT
	}
}

// OnLoss implements Controller.
func (r *Reno) OnLoss(now time.Duration, inflight int) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < MinWindow {
		r.ssthresh = MinWindow
	}
	r.cwnd = r.ssthresh
}

// OnRTO implements Controller.
func (r *Reno) OnRTO(now time.Duration) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < MinWindow {
		r.ssthresh = MinWindow
	}
	r.cwnd = MinWindow
}

// Cwnd implements Controller.
func (r *Reno) Cwnd() int { return int(r.cwnd) }

// PacingRate implements Controller (Reno is ACK-clocked).
func (r *Reno) PacingRate() float64 { return 0 }
