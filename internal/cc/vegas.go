package cc

import "time"

// Vegas is the classic delay-based algorithm: it compares the expected
// throughput (cwnd/baseRTT) with the actual (cwnd/RTT) and keeps the
// difference — its own queue occupancy — between alpha and beta packets.
// Over 5G the paper measures Vegas at 12.1 % utilization: cross-traffic
// queueing at the legacy bottleneck inflates RTT, which Vegas reads as its
// own congestion (§4.1).
type Vegas struct {
	cwnd    float64
	baseRTT time.Duration
	// per-RTT accounting
	rttMin  time.Duration
	nextAdj time.Duration
	inSS    bool
}

// Vegas thresholds in packets (α=4, β=7, γ=2, the scaled variants Linux
// uses at large windows).
const (
	vegasAlpha = 4
	vegasBeta  = 7
	vegasGamma = 2
)

// NewVegas returns a Vegas controller.
func NewVegas() *Vegas {
	return &Vegas{cwnd: InitialWindow, inSS: true}
}

// Name implements Controller.
func (v *Vegas) Name() string { return "vegas" }

// OnAck implements Controller.
func (v *Vegas) OnAck(now time.Duration, acked int, rtt time.Duration, inflight int) {
	if v.baseRTT == 0 || rtt < v.baseRTT {
		v.baseRTT = rtt
	}
	if v.rttMin == 0 || rtt < v.rttMin {
		v.rttMin = rtt
	}
	if now < v.nextAdj {
		if v.inSS {
			v.cwnd += float64(acked) / 2 // Vegas slow start: every other RTT
		}
		return
	}
	// Once per RTT: evaluate the diff in packets.
	rttUse := v.rttMin
	if rttUse == 0 {
		rttUse = rtt
	}
	expected := v.cwnd / v.baseRTT.Seconds()
	actual := v.cwnd / rttUse.Seconds()
	diff := (expected - actual) * v.baseRTT.Seconds() / SegBytes
	if v.inSS {
		if diff > vegasGamma {
			v.inSS = false
			v.cwnd -= (expected - actual) * v.baseRTT.Seconds() / 8
		}
	} else {
		switch {
		case diff < vegasAlpha:
			v.cwnd += SegBytes
		case diff > vegasBeta:
			v.cwnd -= SegBytes
		}
	}
	if v.cwnd < MinWindow {
		v.cwnd = MinWindow
	}
	v.rttMin = 0
	v.nextAdj = now + rttUse
}

// OnLoss implements Controller.
func (v *Vegas) OnLoss(now time.Duration, inflight int) {
	v.cwnd *= 0.75 // Vegas reacts mildly to loss
	if v.cwnd < MinWindow {
		v.cwnd = MinWindow
	}
	v.inSS = false
}

// OnRTO implements Controller.
func (v *Vegas) OnRTO(now time.Duration) {
	v.cwnd = MinWindow
	v.inSS = false
}

// Cwnd implements Controller.
func (v *Vegas) Cwnd() int { return int(v.cwnd) }

// PacingRate implements Controller.
func (v *Vegas) PacingRate() float64 { return 0 }
