package cc

import (
	"math"
	"time"
)

// Cubic implements TCP CUBIC (RFC 8312): after a loss the window follows
// W(t) = C·(t−K)³ + Wmax, concave up to the previous maximum and convex
// beyond it, with a TCP-friendly lower bound.
type Cubic struct {
	cwnd      float64 // bytes
	ssthresh  float64
	wMax      float64
	epochAt   time.Duration
	k         float64 // seconds
	inEpoch   bool
	lastRTT   time.Duration
	friendlyW float64
}

// Cubic constants per RFC 8312 (β = 0.7, C = 0.4 in segments/s³).
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// NewCubic returns a CUBIC controller.
func NewCubic() *Cubic {
	return &Cubic{cwnd: InitialWindow, ssthresh: 1 << 30}
}

// Name implements Controller.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements Controller.
func (c *Cubic) OnAck(now time.Duration, acked int, rtt time.Duration, inflight int) {
	c.lastRTT = rtt
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(acked)
		return
	}
	if !c.inEpoch {
		c.inEpoch = true
		c.epochAt = now
		if c.wMax < c.cwnd {
			c.wMax = c.cwnd
		}
		c.k = math.Cbrt(c.wMax / float64(SegBytes) * (1 - cubicBeta) / cubicC)
		c.friendlyW = c.cwnd
	}
	t := (now - c.epochAt).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax/float64(SegBytes) // segments
	targetBytes := target * SegBytes
	// TCP-friendly region: grow at least like Reno with β=0.7.
	c.friendlyW += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(SegBytes) * float64(acked) / c.cwnd
	if targetBytes < c.friendlyW {
		targetBytes = c.friendlyW
	}
	if targetBytes > c.cwnd {
		// Approach the cubic target over one RTT.
		c.cwnd += (targetBytes - c.cwnd) * float64(acked) / c.cwnd
	} else {
		c.cwnd += float64(SegBytes) * float64(acked) / (100 * c.cwnd) // probe slowly
	}
}

// OnLoss implements Controller.
func (c *Cubic) OnLoss(now time.Duration, inflight int) {
	// Fast convergence: remember a reduced Wmax when losses come before
	// regaining the previous maximum.
	if c.cwnd < c.wMax {
		c.wMax = c.cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= cubicBeta
	if c.cwnd < MinWindow {
		c.cwnd = MinWindow
	}
	c.ssthresh = c.cwnd
	c.inEpoch = false
}

// OnRTO implements Controller.
func (c *Cubic) OnRTO(now time.Duration) {
	c.wMax = c.cwnd
	c.ssthresh = c.cwnd * cubicBeta
	if c.ssthresh < MinWindow {
		c.ssthresh = MinWindow
	}
	c.cwnd = MinWindow
	c.inEpoch = false
}

// Cwnd implements Controller.
func (c *Cubic) Cwnd() int { return int(c.cwnd) }

// PacingRate implements Controller.
func (c *Cubic) PacingRate() float64 { return 0 }
