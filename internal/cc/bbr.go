package cc

import "time"

// BBR is a compact model of BBR v1 (Cardwell et al., the paper's [24]):
// it estimates the bottleneck bandwidth (windowed-max of delivery-rate
// samples) and the propagation RTT (windowed-min), paces at gain×BtlBw,
// and caps inflight at 2×BDP. Packet loss does not enter the model, which
// is exactly why it keeps 82.5 % of the 5G capacity where loss-based
// algorithms collapse (§4.1).
type BBR struct {
	state bbrState

	// Bandwidth filter: windowed max over the last bwWindow samples.
	bwSamples []bwSample
	btlBw     float64 // bits/s

	// RTprop filter.
	rtProp      time.Duration
	rtPropStamp time.Duration

	// Delivery-rate sampling.
	accBytes   int
	accStart   time.Duration
	sampleRTT  time.Duration
	fullBwLast float64
	fullBwCnt  int

	// ProbeBW gain cycling.
	cycleIdx   int
	cycleStamp time.Duration

	// ProbeRTT bookkeeping.
	probeRTTDone time.Duration

	cwnd int
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

type bwSample struct {
	at time.Duration
	bw float64
}

const (
	bbrHighGain  = 2.885
	bbrBwWindow  = 10 // samples
	bbrRTTWindow = 10 * time.Second
)

var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a BBR controller.
func NewBBR() *BBR {
	return &BBR{state: bbrStartup, cwnd: InitialWindow}
}

// Name implements Controller.
func (b *BBR) Name() string { return "bbr" }

// State returns a human-readable phase name (diagnostics).
func (b *BBR) State() string {
	switch b.state {
	case bbrStartup:
		return "STARTUP"
	case bbrDrain:
		return "DRAIN"
	case bbrProbeBW:
		return "PROBE_BW"
	default:
		return "PROBE_RTT"
	}
}

// OnAck implements Controller.
func (b *BBR) OnAck(now time.Duration, acked int, rtt time.Duration, inflight int) {
	b.sampleRTT = rtt
	if b.rtProp == 0 || rtt <= b.rtProp || now-b.rtPropStamp > bbrRTTWindow {
		b.rtProp = rtt
		b.rtPropStamp = now
	}

	// Delivery-rate sample roughly once per RTT.
	if b.accStart == 0 {
		b.accStart = now
	}
	b.accBytes += acked
	if elapsed := now - b.accStart; elapsed >= rtt && elapsed > 0 {
		bw := float64(b.accBytes*8) / elapsed.Seconds()
		// Large cumulative ACKs after SACK recovery credit megabytes in a
		// single sample; clamp at the modem's PHY ceiling so queue-flush
		// artifacts cannot poison the max filter (real BBR bounds samples
		// by the send rate of the matching flight).
		const phyCeilingBps = 1.3e9
		if bw > phyCeilingBps {
			bw = phyCeilingBps
		}
		b.pushBw(now, bw)
		b.accBytes = 0
		b.accStart = now
		b.advance(now, inflight)
	}

	// cwnd target: 2×BDP (high gain during startup).
	gain := 2.0
	if b.state == bbrStartup {
		gain = bbrHighGain
	}
	bdp := b.btlBw / 8 * b.rtProp.Seconds()
	target := int(gain * bdp)
	if b.state == bbrProbeRTT {
		target = 4 * SegBytes
	}
	if target < InitialWindow {
		target = InitialWindow
	}
	b.cwnd = target
}

// pushBw records a delivery-rate sample and refreshes the max filter.
func (b *BBR) pushBw(now time.Duration, bw float64) {
	b.bwSamples = append(b.bwSamples, bwSample{at: now, bw: bw})
	if len(b.bwSamples) > bbrBwWindow {
		b.bwSamples = b.bwSamples[1:]
	}
	b.btlBw = 0
	for _, s := range b.bwSamples {
		if s.bw > b.btlBw {
			b.btlBw = s.bw
		}
	}
}

// advance runs the state machine once per delivery-rate sample.
func (b *BBR) advance(now time.Duration, inflight int) {
	switch b.state {
	case bbrStartup:
		// Full pipe: bandwidth grew <25 % for three consecutive samples.
		if b.btlBw > b.fullBwLast*1.25 {
			b.fullBwLast = b.btlBw
			b.fullBwCnt = 0
		} else {
			b.fullBwCnt++
			if b.fullBwCnt >= 3 {
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		if float64(inflight) <= b.btlBw/8*b.rtProp.Seconds() {
			b.state = bbrProbeBW
			b.cycleIdx = 0
			b.cycleStamp = now
		}
	case bbrProbeBW:
		if now-b.cycleStamp > b.rtProp {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
			b.cycleStamp = now
		}
		// Periodic PROBE_RTT when the RTprop estimate is stale.
		if now-b.rtPropStamp > bbrRTTWindow {
			b.state = bbrProbeRTT
			b.probeRTTDone = now + 200*time.Millisecond
		}
	case bbrProbeRTT:
		if now >= b.probeRTTDone {
			b.rtPropStamp = now
			b.state = bbrProbeBW
			b.cycleStamp = now
		}
	}
}

// OnLoss implements Controller. BBR v1 does not reduce its model on loss.
func (b *BBR) OnLoss(now time.Duration, inflight int) {}

// OnRTO implements Controller: conservative restart, keeping the model.
func (b *BBR) OnRTO(now time.Duration) {
	b.cwnd = InitialWindow
}

// Cwnd implements Controller.
func (b *BBR) Cwnd() int { return b.cwnd }

// PacingRate implements Controller.
func (b *BBR) PacingRate() float64 {
	if b.btlBw == 0 {
		// No estimate yet: pace aggressively from the initial window over
		// a nominal 10 ms RTT guess.
		return bbrHighGain * float64(InitialWindow*8) / 0.01
	}
	gain := 1.0
	switch b.state {
	case bbrStartup:
		gain = bbrHighGain
	case bbrDrain:
		gain = 1 / bbrHighGain
	case bbrProbeBW:
		gain = bbrCycleGains[b.cycleIdx]
	case bbrProbeRTT:
		gain = 1
	}
	return gain * b.btlBw
}
