// Package cc implements the five congestion-control algorithms the paper
// evaluates over 5G (§4.1): the loss-based Reno and Cubic, the delay-based
// Vegas and the loss/delay hybrid Veno, and the capacity-probing BBR. All
// are window/pacing algorithms driven by the transport engine in
// internal/transport.
package cc

import "time"

// Controller is the interface the TCP sender drives. All byte quantities
// are in bytes; rates in bits/s.
type Controller interface {
	// Name identifies the algorithm ("cubic", "bbr", …).
	Name() string
	// OnAck is called for every ACK that advances the window.
	OnAck(now time.Duration, ackedBytes int, rtt time.Duration, inflight int)
	// OnLoss is called once per loss event (fast retransmit), not per
	// lost packet.
	OnLoss(now time.Duration, inflight int)
	// OnRTO is called on a retransmission timeout.
	OnRTO(now time.Duration)
	// Cwnd returns the congestion window in bytes.
	Cwnd() int
	// PacingRate returns the sender pacing rate in bits/s, or 0 when the
	// algorithm is purely window/ACK-clocked.
	PacingRate() float64
}

// Constants shared by the algorithms.
const (
	// SegBytes is the segment size assumed for window arithmetic.
	SegBytes = 1400
	// InitialWindow is the standard 10-segment initial window.
	InitialWindow = 10 * SegBytes
	// MinWindow is the post-RTO floor.
	MinWindow = 2 * SegBytes
)

// New constructs a controller by name. Supported: reno, cubic, vegas,
// veno, bbr.
func New(name string) Controller {
	switch name {
	case "reno":
		return NewReno()
	case "cubic":
		return NewCubic()
	case "vegas":
		return NewVegas()
	case "veno":
		return NewVeno()
	case "bbr":
		return NewBBR()
	}
	return nil
}

// Names lists the implemented algorithms in the paper's order.
func Names() []string { return []string{"reno", "cubic", "vegas", "veno", "bbr"} }
