package fault

import (
	"errors"
	"fmt"
	"time"

	"fivegsim/internal/handoff"
)

// Scenario names a paper-calibrated fault preset. The string value is
// the CLI spelling (`fgbench -faults <scenario>`).
type Scenario string

const (
	// HandoffOutage replays an NSA hand-off storm: two 5G→5G roll-back
	// interruptions at the measured 108.4 ms ladder latency (Fig. 6),
	// then a stormy tail ten times longer — the multi-second app-layer
	// outages §3.4 observes when signaling retries pile up.
	HandoffOutage Scenario = "handoff-outage"
	// EdgeOfCoverage parks the UE at the usable-coverage boundary
	// (§3.2): the air-interface rate collapses to ≈12 % (deep MCS
	// downshift) and HARQ round trips add ≈10 ms of one-way latency for
	// a 5-second window.
	EdgeOfCoverage Scenario = "edge-of-coverage"
	// BackhaulBrownout degrades the under-provisioned wired segment
	// (§4.2): the bottleneck serves at 15 % rate with 1 % injected loss
	// and 8 ms of extra one-way delay for a 4-second window.
	BackhaulBrownout Scenario = "backhaul-brownout"
	// CellFailover kills the serving gNB cell (PCI 72, the Fig. 2b
	// cell) for 4 seconds: a radio-link-failure re-establishment, the
	// calibrated 4G fallback rate while the cell is down, and a
	// re-addition interruption when it returns.
	CellFailover Scenario = "cell-failover"
)

// Scenarios lists every preset in presentation order.
func Scenarios() []Scenario {
	return []Scenario{HandoffOutage, EdgeOfCoverage, BackhaulBrownout, CellFailover}
}

// ErrUnknownScenario is the sentinel wrapped by ScenarioByName for
// unrecognized names; match with errors.Is.
var ErrUnknownScenario = errors.New("fault: unknown scenario")

// ScenarioByName resolves the CLI spelling of a preset.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if string(s) == name {
			return s, nil
		}
	}
	return "", fmt.Errorf("%w %q (have %v)", ErrUnknownScenario, name, Scenarios())
}

// Plan materializes the preset. All windows sit inside the first seven
// simulated seconds so Quick-mode runs (8 s flows) exercise every
// fault; full runs see the same adversity followed by recovery.
func (s Scenario) Plan() *Plan {
	nsaHO := handoff.ExpectedLatency(handoff.FiveToFive) // ≈108.4 ms
	switch s {
	case HandoffOutage:
		return &Plan{Name: string(s), Faults: []Fault{
			{Kind: LinkOutage, At: 2 * time.Second, Dur: nsaHO},
			{Kind: LinkOutage, At: 4 * time.Second, Dur: nsaHO},
			{Kind: LinkOutage, At: 6 * time.Second, Dur: 10 * nsaHO},
		}}
	case EdgeOfCoverage:
		return &Plan{Name: string(s), Faults: []Fault{
			{Kind: RadioDegrade, At: 1500 * time.Millisecond, Dur: 5 * time.Second, Scale: 0.12},
			{Kind: LatencyBurst, At: 1500 * time.Millisecond, Dur: 5 * time.Second, Extra: 10 * time.Millisecond},
		}}
	case BackhaulBrownout:
		return &Plan{Name: string(s), Faults: []Fault{
			{Kind: WiredDegrade, At: 2 * time.Second, Dur: 4 * time.Second, Scale: 0.15},
			{Kind: LossBurst, At: 2 * time.Second, Dur: 4 * time.Second, LossRate: 0.01},
			{Kind: LatencyBurst, At: 2 * time.Second, Dur: 4 * time.Second, Extra: 8 * time.Millisecond},
		}}
	case CellFailover:
		return &Plan{Name: string(s), Faults: []Fault{
			{Kind: CellFailure, At: 3 * time.Second, Dur: 4 * time.Second, PCI: 72},
		}}
	}
	return &Plan{Name: string(s)}
}
