package fault_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"fivegsim/internal/fault"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/transport"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *fault.Plan
		ok   bool
	}{
		{"nil plan", nil, false},
		{"empty plan", &fault.Plan{Name: "empty"}, false},
		{"outage ok", fault.Outage("ho", time.Second, 100*time.Millisecond), true},
		{"negative start", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LinkOutage, At: -time.Second, Dur: time.Second}}}, false},
		{"zero duration", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LinkOutage, At: time.Second}}}, false},
		{"loss rate too high", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LossBurst, At: 0, Dur: time.Second, LossRate: 1.5}}}, false},
		{"loss rate ok", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LossBurst, At: 0, Dur: time.Second, LossRate: 0.05}}}, true},
		{"bad hop", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LossBurst, At: 0, Dur: time.Second, LossRate: 0.05, Hop: "core"}}}, false},
		{"uplink hop ok", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LossBurst, At: 0, Dur: time.Second, LossRate: 0.05, Hop: fault.HopUplink}}}, true},
		{"latency without extra", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.LatencyBurst, At: 0, Dur: time.Second}}}, false},
		{"degrade scale 1", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.WiredDegrade, At: 0, Dur: time.Second, Scale: 1}}}, false},
		{"degrade ok", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.RadioDegrade, At: 0, Dur: time.Second, Scale: 0.3}}}, true},
		{"cell failure negative fallback", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.CellFailure, At: 0, Dur: time.Second, FallbackBps: -1}}}, false},
		{"unknown kind", &fault.Plan{Name: "p", Faults: []fault.Fault{
			{Kind: fault.Kind(99), At: 0, Dur: time.Second}}}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: expected a validation error", tc.name)
			} else if !errors.Is(err, fault.ErrInvalidPlan) {
				t.Errorf("%s: error %v does not wrap ErrInvalidPlan", tc.name, err)
			}
		}
	}
}

func TestScenarioPlansValidate(t *testing.T) {
	for _, s := range fault.Scenarios() {
		p := s.Plan()
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s yields an invalid plan: %v", s, err)
		}
		if p.Name != string(s) {
			t.Errorf("preset %s plan is named %q", s, p.Name)
		}
		if p.Duration() > 8*time.Second {
			t.Errorf("preset %s runs to %s — outside the Quick-mode 8 s flow", s, p.Duration())
		}
	}
}

func TestScenarioByName(t *testing.T) {
	s, err := fault.ScenarioByName("cell-failover")
	if err != nil || s != fault.CellFailover {
		t.Fatalf("ScenarioByName(cell-failover) = %v, %v", s, err)
	}
	if _, err := fault.ScenarioByName("meteor-strike"); !errors.Is(err, fault.ErrUnknownScenario) {
		t.Fatalf("unknown scenario error %v does not wrap ErrUnknownScenario", err)
	}
}

func TestCellDownAndDownPCIs(t *testing.T) {
	p := &fault.Plan{Name: "holes", Faults: []fault.Fault{
		{Kind: fault.CellFailure, At: time.Second, Dur: 2 * time.Second, PCI: 72},
		{Kind: fault.CellFailure, At: 0, Dur: time.Second, PCI: 44},
		{Kind: fault.CellFailure, At: 5 * time.Second, Dur: time.Second, PCI: 44},
	}}
	if got := p.DownPCIs(); !reflect.DeepEqual(got, []int{44, 72}) {
		t.Fatalf("DownPCIs = %v, want [44 72]", got)
	}
	var nilPlan *fault.Plan
	if nilPlan.DownPCIs() != nil || nilPlan.CellDown(72, 0) || nilPlan.FallbackAt(0) {
		t.Fatal("nil plan must report no failed cells")
	}
	cases := []struct {
		pci  int
		at   time.Duration
		down bool
	}{
		{72, 500 * time.Millisecond, false},
		{72, 1500 * time.Millisecond, true},
		{72, 3 * time.Second, false},
		{44, 500 * time.Millisecond, true},
		{44, 2 * time.Second, false},
		{44, 5500 * time.Millisecond, true},
		{100, 1500 * time.Millisecond, false},
	}
	for _, tc := range cases {
		if got := p.CellDown(tc.pci, tc.at); got != tc.down {
			t.Errorf("CellDown(%d, %s) = %v, want %v", tc.pci, tc.at, got, tc.down)
		}
	}
}

// faultedBulk runs one short bulk flow with the plan armed via the
// PathConfig.Inject hook — the exact wiring the facade uses.
func faultedBulk(seed int64, plan *fault.Plan, ctrl string) transport.BulkResult {
	pc := netsim.DefaultPath(radio.NR, true)
	pc.Seed = seed
	if plan != nil {
		pc.Inject = fault.Hook(plan)
	}
	r := transport.RunBulk(pc, ctrl, 3*time.Second)
	r.CwndTrace = nil // cut the comparison payload down to the headline series
	return r
}

// TestInjectionDeterminism is the (Seed, Plan) contract at the path
// level: the same seed and plan reproduce the run exactly; a different
// seed or a different plan each produce a different run.
func TestInjectionDeterminism(t *testing.T) {
	plan := fault.BackhaulBrownout.Plan() // exercises loss, latency and rate faults
	a := faultedBulk(7, plan, "cubic")
	b := faultedBulk(7, plan, "cubic")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (seed, plan) diverged: %+v vs %+v", a, b)
	}
	c := faultedBulk(8, plan, "cubic")
	if reflect.DeepEqual(a.RxRates, c.RxRates) {
		t.Fatal("different seeds produced an identical rate series")
	}
	d := faultedBulk(7, fault.EdgeOfCoverage.Plan(), "cubic")
	if reflect.DeepEqual(a.RxRates, d.RxRates) {
		t.Fatal("different plans produced an identical rate series")
	}
}

// TestNilPlanIsCleanPath asserts the no-op fast path: a path without an
// Inject hook behaves exactly like one was never offered.
func TestNilPlanIsCleanPath(t *testing.T) {
	clean := faultedBulk(7, nil, "cubic")
	again := faultedBulk(7, nil, "cubic")
	if !reflect.DeepEqual(clean, again) {
		t.Fatal("clean path is not reproducible")
	}
}

// TestFaultsBite asserts the injections have teeth: an outage stalls the
// receiver and a loss burst costs cubic throughput.
func TestFaultsBite(t *testing.T) {
	clean := faultedBulk(7, nil, "cubic")
	outage := faultedBulk(7, fault.Outage("blackout", time.Second, 800*time.Millisecond), "cubic")
	if outage.ThroughputBps >= clean.ThroughputBps {
		t.Fatalf("an 800 ms outage did not cost throughput: clean %.0f vs faulted %.0f",
			clean.ThroughputBps, outage.ThroughputBps)
	}
	deadAir := 0
	for _, s := range outage.RxRates {
		if s.At > time.Second && s.At < 1800*time.Millisecond && s.Bps == 0 {
			deadAir++
		}
	}
	if deadAir < 5 {
		t.Fatalf("outage window shows only %d dead 100 ms bins", deadAir)
	}
	lossy := faultedBulk(7, &fault.Plan{Name: "lossy", Faults: []fault.Fault{
		{Kind: fault.LossBurst, At: 500 * time.Millisecond, Dur: 2 * time.Second, LossRate: 0.05},
	}}, "cubic")
	if lossy.LossEvents <= clean.LossEvents {
		t.Fatalf("5%% loss burst did not raise loss events: clean %d vs lossy %d",
			clean.LossEvents, lossy.LossEvents)
	}
	if lossy.ThroughputBps >= clean.ThroughputBps {
		t.Fatalf("5%% loss burst did not cost cubic throughput: clean %.0f vs lossy %.0f",
			clean.ThroughputBps, lossy.ThroughputBps)
	}
}

func TestOutageTotalAndBrownout(t *testing.T) {
	p := &fault.Plan{Name: "mix", Faults: []fault.Fault{
		{Kind: fault.LinkOutage, At: 0, Dur: 300 * time.Millisecond},
		{Kind: fault.CellFailure, At: time.Second, Dur: 2 * time.Second, PCI: 72},
		{Kind: fault.LatencyBurst, At: 0, Dur: time.Second, Extra: 5 * time.Millisecond},
		{Kind: fault.WiredDegrade, At: 0, Dur: time.Second, Scale: 0.25},
	}}
	want := 300*time.Millisecond + 2*fault.ReestablishLatency
	if got := p.OutageTotal(); got != want {
		t.Fatalf("OutageTotal = %s, want %s", got, want)
	}
	extra, scale := p.WiredBrownout()
	if extra != 10*time.Millisecond {
		t.Fatalf("WiredBrownout extra RTT = %s, want 10ms", extra)
	}
	if scale != 4 {
		t.Fatalf("WiredBrownout jitter scale = %v, want 4", scale)
	}
}
