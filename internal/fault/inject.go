package fault

import (
	"strconv"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

// ReestablishLatency is the radio-link-failure interruption of a
// CellFailure: T310 expiry plus RRC re-establishment on the fallback
// cell. Far longer than a prepared hand-off (the ladders of Fig. 6),
// which is exactly why unplanned cell failures hurt more than the
// hand-offs the paper measures.
const ReestablishLatency = 200 * time.Millisecond

// fallbackRateBps is the calibrated daytime 4G downlink rate, the
// post-failover goodput when a CellFailure leaves FallbackBps zero.
var fallbackRateBps = netsim.DefaultPath(radio.LTE, true).RANRateBps

// Hook adapts a plan to the netsim.PathConfig.Inject attachment point:
// every path built with this hook arms the plan against its own
// scheduler, keyed by its own PathConfig.Seed. Paths are independent
// DES worlds, so arming per path preserves worker-count invariance.
func Hook(p *Plan) func(sch *des.Scheduler, path *netsim.Path) {
	return func(sch *des.Scheduler, path *netsim.Path) { Arm(p, sch, path) }
}

// Arm schedules every fault of the plan onto the path's scheduler.
// Random draws (loss-burst coin flips) come from substreams keyed by
// the path seed and the fault index. Fault activations are counted as
// `fault.windows{kind=...}` on the path's registry and appear as
// `fault` category spans on its tracer; both are nil-safe no-ops when
// telemetry is off.
func Arm(p *Plan, sch *des.Scheduler, path *netsim.Path) {
	if p == nil || len(p.Faults) == 0 {
		return
	}
	src := rng.New(path.Cfg.Seed)
	reg, tr := path.Cfg.Obs, path.Cfg.Trace
	for i, f := range p.Faults {
		f := f
		cWin := reg.Counter("fault.windows{kind=" + f.Kind.String() + "}")
		tr.Span("fault "+f.Kind.String(), "fault", f.At, f.Dur)
		switch f.Kind {
		case LinkOutage:
			sch.At(f.At, func() {
				cWin.Inc()
				path.Outage(f.Dur)
			})
		case LossBurst:
			h := hopOf(path, f.Hop)
			r := src.Stream("fault." + strconv.Itoa(i) + ".loss")
			sch.At(f.At, func() {
				cWin.Inc()
				h.SetInjectLoss(f.LossRate, r)
			})
			sch.At(f.At+f.Dur, func() { h.SetInjectLoss(0, nil) })
		case LatencyBurst:
			h := hopOf(path, f.Hop)
			sch.At(f.At, func() {
				cWin.Inc()
				h.SetExtraProp(f.Extra)
			})
			sch.At(f.At+f.Dur, func() { h.SetExtraProp(0) })
		case WiredDegrade:
			sch.At(f.At, func() {
				cWin.Inc()
				path.Bottleneck.SetRateScale(f.Scale)
			})
			sch.At(f.At+f.Dur, func() { path.Bottleneck.SetRateScale(1) })
		case RadioDegrade:
			sch.At(f.At, func() {
				cWin.Inc()
				path.RAN.SetRateScale(f.Scale)
			})
			sch.At(f.At+f.Dur, func() { path.RAN.SetRateScale(1) })
		case CellFailure:
			sch.At(f.At, func() {
				cWin.Inc()
				// Capture the pre-failure rate at failure time so a
				// preceding fault's rate change is restored correctly.
				prev := path.Cfg.RANRateBps
				fb := f.FallbackBps
				if fb == 0 {
					fb = fallbackRateBps
				}
				path.Outage(ReestablishLatency)
				path.SetRANRate(fb)
				sch.At(f.At+f.Dur, func() {
					// The cell returns: an SgNB re-addition interruption,
					// then the original rate.
					path.Outage(ReestablishLatency)
					path.SetRANRate(prev)
				})
			})
		}
	}
}

// hopOf resolves a Fault.Hop name against the path's wired hops.
func hopOf(path *netsim.Path, name string) *netsim.Hop {
	if name == HopUplink {
		return path.UplinkRAN
	}
	return path.Bottleneck
}
