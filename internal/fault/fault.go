// Package fault is fivegsim's deterministic fault-injection subsystem.
//
// The paper's sharpest operational findings are failure-shaped: NSA
// hand-offs stall TCP for multiples of their signaling latency (§3.4,
// Fig. 12), coverage holes force UEs onto degraded 4G paths (§3.2), and
// the wired segment degrades rather than fails cleanly (§4.2). A Plan is
// a timed list of such adversities — link outages, loss and latency
// bursts, backhaul brownouts, radio degradation at the coverage edge,
// and serving-cell failures with 4G fallback — that is armed onto a
// netsim path (Arm / Hook) or onto a walking hand-off campaign
// (Plan.CellDown).
//
// Determinism contract: every random draw a plan makes comes from
// rng.Source substreams keyed by the path's seed and the fault's index
// within the plan, never from shared state, so a given (Seed, Plan)
// yields byte-identical reports at any worker count — the same contract
// internal/par documents for the campaign engine.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// LinkOutage interrupts the radio in both directions for Dur (the
	// data plane of a hand-off or a short radio-link failure).
	LinkOutage Kind = iota
	// LossBurst drops arriving packets i.i.d. with LossRate on a wired
	// hop for the window (transient congestion upstream).
	LossBurst
	// LatencyBurst adds Extra one-way delay on a wired hop for the
	// window (routing change, queueing upstream of the model).
	LatencyBurst
	// WiredDegrade scales the bottleneck's serving rate by Scale for the
	// window (a backhaul brownout: degraded, not failed).
	WiredDegrade
	// RadioDegrade scales the air-interface rate by Scale for the window
	// (edge-of-coverage MCS collapse).
	RadioDegrade
	// CellFailure kills the serving cell: a radio-link-failure
	// re-establishment outage, then the 4G fallback rate until the cell
	// returns at the end of the window (with a re-addition outage). On
	// the campaign side the same fault carves PCI out of the coverage
	// map for the window (Plan.CellDown).
	CellFailure
)

var kindNames = [...]string{
	"link-outage", "loss-burst", "latency-burst",
	"wired-degrade", "radio-degrade", "cell-failure",
}

// String returns the kind's kebab-case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Hop names accepted by Fault.Hop for the wired-hop fault kinds.
const (
	// HopBottleneck targets the legacy-Internet bottleneck (the default).
	HopBottleneck = "bottleneck"
	// HopUplink targets the uplink RAN serializer (ACK path).
	HopUplink = "ul-ran"
)

// Fault is one timed adversity. Only the fields relevant to Kind are
// consulted; see the Kind constants for which.
type Fault struct {
	Kind Kind
	// At is the window start in simulated time; Dur its length.
	At  time.Duration
	Dur time.Duration
	// Hop targets a wired hop for LossBurst/LatencyBurst: HopBottleneck
	// (the default when empty) or HopUplink.
	Hop string
	// LossRate is the i.i.d. drop probability of a LossBurst, in (0, 1].
	LossRate float64
	// Extra is the added one-way delay of a LatencyBurst.
	Extra time.Duration
	// Scale is the rate multiplier of WiredDegrade/RadioDegrade, in (0, 1).
	Scale float64
	// FallbackBps is the post-failover radio rate of a CellFailure;
	// 0 means the calibrated daytime 4G rate.
	FallbackBps float64
	// PCI is the failed cell of a CellFailure (campaign-side hole).
	PCI int
}

// ErrInvalidPlan is the sentinel wrapped by every Plan validation
// failure; match with errors.Is.
var ErrInvalidPlan = errors.New("fault: invalid plan")

// Plan is a named, ordered list of timed faults. The zero Plan is
// invalid; build one by hand, from a Scenario preset, or with the
// Outage/CoverageHole constructors.
type Plan struct {
	Name   string
	Faults []Fault
}

// Validate checks every fault's fields. All failures wrap
// ErrInvalidPlan and name the offending fault.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil plan", ErrInvalidPlan)
	}
	if len(p.Faults) == 0 {
		return fmt.Errorf("%w: %q has no faults", ErrInvalidPlan, p.Name)
	}
	for i, f := range p.Faults {
		bad := func(msg string) error {
			return fmt.Errorf("%w: %q fault %d (%s): %s", ErrInvalidPlan, p.Name, i, f.Kind, msg)
		}
		if f.At < 0 {
			return bad("negative start time")
		}
		if f.Dur <= 0 {
			return bad("non-positive duration")
		}
		if f.Hop != "" && f.Hop != HopBottleneck && f.Hop != HopUplink {
			return bad("unknown hop " + f.Hop)
		}
		switch f.Kind {
		case LinkOutage:
			// At/Dur suffice.
		case LossBurst:
			if f.LossRate <= 0 || f.LossRate > 1 {
				return bad("loss rate outside (0, 1]")
			}
		case LatencyBurst:
			if f.Extra <= 0 {
				return bad("non-positive extra latency")
			}
		case WiredDegrade, RadioDegrade:
			if f.Scale <= 0 || f.Scale >= 1 {
				return bad("scale outside (0, 1)")
			}
		case CellFailure:
			if f.FallbackBps < 0 {
				return bad("negative fallback rate")
			}
		default:
			return bad("unknown kind")
		}
	}
	return nil
}

// Duration returns the end of the latest fault window.
func (p *Plan) Duration() time.Duration {
	var end time.Duration
	for _, f := range p.Faults {
		if f.At+f.Dur > end {
			end = f.At + f.Dur
		}
	}
	return end
}

// OutageTotal returns the total injected radio-outage time: LinkOutage
// windows plus the re-establishment and re-addition interruptions of
// every CellFailure.
func (p *Plan) OutageTotal() time.Duration {
	var total time.Duration
	for _, f := range p.Faults {
		switch f.Kind {
		case LinkOutage:
			total += f.Dur
		case CellFailure:
			total += 2 * ReestablishLatency
		}
	}
	return total
}

// DownPCIs returns the sorted, de-duplicated PCIs carved out by the
// plan's CellFailure faults (nil for a nil plan).
func (p *Plan) DownPCIs() []int {
	if p == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, f := range p.Faults {
		if f.Kind == CellFailure && !seen[f.PCI] {
			seen[f.PCI] = true
			out = append(out, f.PCI)
		}
	}
	sort.Ints(out)
	return out
}

// CellDown reports whether pci is inside any CellFailure window at the
// given campaign time — the predicate handoff.Config.CellDown expects.
func (p *Plan) CellDown(pci int, at time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == CellFailure && f.PCI == pci && at >= f.At && at < f.At+f.Dur {
			return true
		}
	}
	return false
}

// FallbackAt reports whether the path is inside a CellFailure fallback
// window at the given time (used to attribute the 4G energy envelope).
func (p *Plan) FallbackAt(at time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == CellFailure && at >= f.At && at < f.At+f.Dur {
			return true
		}
	}
	return false
}

// WiredBrownout aggregates the plan's wired-segment faults into
// probe-level degradation terms for internal/wire: the summed
// LatencyBurst RTT inflation and a queueing-jitter scale of 1/Scale for
// the deepest WiredDegrade (a browned-out segment drains slower, so
// probes see proportionally more queueing).
func (p *Plan) WiredBrownout() (extraRTT time.Duration, jitterScale float64) {
	jitterScale = 1
	for _, f := range p.Faults {
		switch f.Kind {
		case LatencyBurst:
			extraRTT += 2 * f.Extra
		case WiredDegrade:
			if s := 1 / f.Scale; s > jitterScale {
				jitterScale = s
			}
		}
	}
	return extraRTT, jitterScale
}

// Outage returns a plan with a single radio outage of the given
// duration — the building block of the outage-vs-stall curves.
func Outage(name string, at, dur time.Duration) *Plan {
	return &Plan{Name: name, Faults: []Fault{{Kind: LinkOutage, At: at, Dur: dur}}}
}

// CoverageHole returns a plan that fails the given cells for the whole
// window [0, dur) — the campaign-side hole that triggers hand-off
// storms and 4G dwell.
func CoverageHole(name string, dur time.Duration, pcis ...int) *Plan {
	p := &Plan{Name: name}
	for _, pci := range pcis {
		p.Faults = append(p.Faults, Fault{Kind: CellFailure, At: 0, Dur: dur, PCI: pci})
	}
	return p
}
