package pop

import (
	"time"

	"fivegsim/internal/obs"
	"fivegsim/internal/traffic"
)

// Live telemetry for the population tick engine, following the arena
// discipline of the tick itself: every instrument handle and every
// accumulator slot is allocated once at Instrument time, the sharded
// tick phases write only into their own padded slots, and the serial
// end-of-tick merge folds the slots into the pre-registered obs
// instruments in fixed (shard, cell) order. Telemetry therefore adds
// zero allocations to the steady-state tick and never touches the RNG
// or any report state — reports are byte-identical with a registry
// attached or not (determinism_test.go pins this).
//
// Metric namespace (`pop.*`, the des./netsim. convention):
//
//	pop.ticks                       ticks executed
//	pop.ue_moved                    UEs that changed position this tick
//	pop.ue_attached / pop.ue_outage per-tick attach outcomes (UE-ticks)
//	pop.handoffs                    serving-cell changes between ticks
//	pop.pingpongs                   A3 ping-pong hand-offs (A→B→A in window)
//	pop.births / pop.deaths         churn arrivals and departures
//	pop.births_blocked              arrivals dropped on a full arena
//	pop.prb_demand / pop.prb_granted  PRB-ticks demanded vs granted
//	pop.bytes_delivered{class=…}    delivered bytes per traffic class
//	pop.tick_wall_us                tick latency histogram (µs)

// Telemetry bundles the optional observability attachments of a
// population run. The zero value means telemetry off: the tick engine
// stays on its instrumented-free fast path (0 allocs/op, PopTick100k).
type Telemetry struct {
	// Obs receives the pop.* instruments described above.
	Obs *obs.Registry
	// Trace receives one "pop.tick" wall-duration span per tick on the
	// simulated timeline.
	Trace *obs.Tracer
	// OnTick, when non-nil, is invoked after every completed tick with
	// the executed tick count and the planned run length — the
	// population layer's contribution to the campaign progress stream.
	// It runs on the goroutine that called Tick; keep it cheap.
	OnTick func(tick, total int)
}

// enabled reports whether any attachment is set.
func (t Telemetry) enabled() bool {
	return t.Obs != nil || t.Trace != nil || t.OnTick != nil
}

// ueShardCounters is one UE shard's phase-A accumulator, padded to a
// cache line so concurrent shards never write the same line.
type ueShardCounters struct {
	moved, attached, outage, handoffs, pingpongs, prbDemand int64
	_                                                       [2]int64 // pad to 64 B
}

// cellCounters is one cell's phase-C accumulator slot (cells are the
// phase-C shard unit), padded to a cache line.
type cellCounters struct {
	grantedPRB int64
	bits       [traffic.NumClasses]float64 // delivered bits per class
	_          [4]int64                    // pad to 64 B
}

// telemetry is the attached instrument state.
type telemetry struct {
	opts Telemetry

	ticks      *obs.Counter
	moved      *obs.Counter
	attached   *obs.Counter
	outage     *obs.Counter
	handoffs   *obs.Counter
	pingpongs  *obs.Counter
	births     *obs.Counter
	deaths     *obs.Counter
	blocked    *obs.Counter
	prbDemand  *obs.Counter
	prbGranted *obs.Counter
	bytes      [traffic.NumClasses]*obs.Counter
	tickWall   *obs.Histogram

	ueShard []ueShardCounters
	cell    []cellCounters
	// byteCarry holds the sub-byte residue per class so the integer
	// byte counters stay exact over long runs.
	byteCarry [traffic.NumClasses]float64
}

// Instrument attaches (or, with the zero Telemetry, detaches) live
// telemetry to the population. Call it before ticking; attaching mid-run
// is safe but counts only subsequent ticks. All instruments are
// pre-registered here so the tick path never takes the registry lock.
func (p *Population) Instrument(t Telemetry) {
	if !t.enabled() {
		p.tel = nil
		return
	}
	reg := t.Obs // nil-safe: handles no-op, merge cost stays negligible
	tel := &telemetry{
		opts:       t,
		ticks:      reg.Counter("pop.ticks"),
		moved:      reg.Counter("pop.ue_moved"),
		attached:   reg.Counter("pop.ue_attached"),
		outage:     reg.Counter("pop.ue_outage"),
		handoffs:   reg.Counter("pop.handoffs"),
		pingpongs:  reg.Counter("pop.pingpongs"),
		births:     reg.Counter("pop.births"),
		deaths:     reg.Counter("pop.deaths"),
		blocked:    reg.Counter("pop.births_blocked"),
		prbDemand:  reg.Counter("pop.prb_demand"),
		prbGranted: reg.Counter("pop.prb_granted"),
		tickWall:   reg.Histogram("pop.tick_wall_us", obs.DurationBuckets),
		ueShard:    make([]ueShardCounters, len(p.ueShards)),
		cell:       make([]cellCounters, len(p.cells)),
	}
	for c := traffic.Class(0); c < traffic.NumClasses; c++ {
		tel.bytes[c] = reg.Counter("pop.bytes_delivered{class=" + c.String() + "}")
	}
	p.tel = tel
}

// mergeTick folds the per-shard and per-cell accumulators into the
// registered instruments and resets them, then emits the tick span,
// latency sample and progress callback. Serial, called once per Tick on
// the ticking goroutine; fixed iteration order keeps counter totals
// identical for every Workers value.
func (p *Population) mergeTick(tickIdx int, wall time.Duration) {
	t := p.tel
	var moved, attached, outage, handoffs, pingpongs, demand int64
	for i := range t.ueShard {
		sc := &t.ueShard[i]
		moved += sc.moved
		attached += sc.attached
		outage += sc.outage
		handoffs += sc.handoffs
		pingpongs += sc.pingpongs
		demand += sc.prbDemand
		*sc = ueShardCounters{}
	}
	var granted int64
	var bits [traffic.NumClasses]float64
	for c := range t.cell {
		cc := &t.cell[c]
		granted += cc.grantedPRB
		for k := range cc.bits {
			bits[k] += cc.bits[k]
		}
		*cc = cellCounters{}
	}
	t.ticks.Inc()
	t.moved.Add(moved)
	t.attached.Add(attached)
	t.outage.Add(outage)
	t.handoffs.Add(handoffs)
	t.pingpongs.Add(pingpongs)
	t.births.Add(p.tickBirths)
	t.deaths.Add(p.tickDeaths)
	t.blocked.Add(p.tickBlocked)
	t.prbDemand.Add(demand)
	t.prbGranted.Add(granted)
	for k := range bits {
		t.byteCarry[k] += bits[k] / 8
		whole := int64(t.byteCarry[k])
		t.byteCarry[k] -= float64(whole)
		t.bytes[k].Add(whole)
	}
	t.tickWall.Observe(float64(wall) / float64(time.Microsecond))
	t.opts.Trace.WallSpan("pop.tick", "pop", time.Duration(tickIdx)*p.Model.TickDur, wall)
	if t.opts.OnTick != nil {
		t.opts.OnTick(p.tick, p.Model.Ticks)
	}
}
