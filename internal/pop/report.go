package pop

import (
	"fmt"
	"math"
	"sort"

	"fivegsim/internal/radio"
)

// Reports over a finished run. Every formatter here emits byte-stable
// lines — fixed ordering (dense cell index, which is PCI-ordered within
// each technology), fixed float formatting — because the determinism
// suite compares Workers-1 and Workers-N runs as raw bytes, not as
// parsed approximations.

// UtilSamples appends every recorded per-tick utilization sample
// (granted PRBs / budget) of the given technology's cells to out and
// returns it. The window covers the last min(Ticks, Model.Ticks) ticks.
func (p *Population) UtilSamples(t radio.Tech, out []float64) []float64 {
	ticks := p.tick
	if ticks > p.utilTicks {
		ticks = p.utilTicks
	}
	ncells := len(p.cells)
	for k := 0; k < ticks; k++ {
		row := p.util[k*ncells : (k+1)*ncells]
		for c, u := range row {
			if p.cells[c].Tech == t {
				out = append(out, u)
			}
		}
	}
	return out
}

// MeanUtil returns the mean recorded utilization of the technology's
// cells over the sample window.
func (p *Population) MeanUtil(t radio.Tech) float64 {
	var sum float64
	var n int
	for _, u := range p.UtilSamples(t, nil) {
		sum += u
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PerUEThroughputBps returns each UE's mean delivered rate over the run
// (total delivered bits / elapsed time). Without churn index i is UE i
// and elapsed time is the whole run; with churn the slice covers the
// currently live UEs in slot order, each normalized by its own lifetime
// so short-lived arrivals are not diluted by ticks before their birth.
func (p *Population) PerUEThroughputBps() []float64 {
	tickSec := p.Model.TickDur.Seconds()
	if !p.Model.Churn.Enabled {
		out := make([]float64, p.n)
		elapsed := float64(p.tick) * tickSec
		if elapsed <= 0 {
			return out
		}
		for i, bits := range p.sumBits {
			out[i] = bits / elapsed
		}
		return out
	}
	out := make([]float64, 0, p.alive)
	for i := 0; i < p.n; i++ {
		if p.bornTick[i] < 0 {
			continue
		}
		life := float64(p.tick-int(p.bornTick[i])) * tickSec
		if life <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, p.sumBits[i]/life)
	}
	return out
}

// JainIndex computes Jain's fairness index J = (Σx)² / (n·Σx²) over xs.
// 1 is perfectly fair; 1/n is maximally unfair. Empty or all-zero input
// returns 0.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if len(xs) == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by sorting a copy;
// nearest-rank with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (s[hi]-s[lo])*(pos-float64(lo))
}

// CellLoadLines formats one line per cell — dense index order — with the
// cell's PCI, technology, mean utilization over the sample window, and
// mean attached UEs per tick. The byte-stable output is the determinism
// suite's cell-load fingerprint.
func (p *Population) CellLoadLines() []string {
	ncells := len(p.cells)
	ticks := p.tick
	window := ticks
	if window > p.utilTicks {
		window = p.utilTicks
	}
	lines := make([]string, 0, ncells)
	for c, cell := range p.cells {
		var sum float64
		for k := 0; k < window; k++ {
			sum += p.util[k*ncells+c]
		}
		meanUtil := 0.0
		if window > 0 {
			meanUtil = sum / float64(window)
		}
		meanAttach := 0.0
		if ticks > 0 {
			meanAttach = float64(p.attach[c]) / float64(ticks)
		}
		lines = append(lines, fmt.Sprintf("cell pci=%d tech=%s util=%.9f attach=%.4f",
			cell.PCI, cell.Tech, meanUtil, meanAttach))
	}
	return lines
}

// FairnessLines formats the population-level fairness summary: Jain's
// index and throughput percentiles over per-UE mean rates, byte-stable
// for the determinism suite.
func (p *Population) FairnessLines() []string {
	thr := p.PerUEThroughputBps()
	return []string{
		fmt.Sprintf("fairness n=%d jain=%.9f", len(thr), JainIndex(thr)),
		fmt.Sprintf("throughput_mbps p10=%.6f p50=%.6f p90=%.6f",
			Quantile(thr, 0.10)/1e6, Quantile(thr, 0.50)/1e6, Quantile(thr, 0.90)/1e6),
	}
}
