package pop

// The per-cell PRB scheduler: each tick, every cell splits its downlink
// PRB budget (the TDD 3:1 airtime is already folded into Band.DLShare,
// so the budget is the band's full PRB grid) across the demands of its
// attached UEs by integer max-min water-filling.
//
// Three properties are load-bearing and locked in by the property tests
// (sched_test.go):
//
//   - Conservation: Σ grants ≤ budget, and no UE is granted more than
//     it asked for.
//   - Work-conservation: no PRB idles while demand is queued — the total
//     grant is min(budget, Σ demands).
//   - Starvation-freedom: the shortfall pass walks the UEs from a
//     rotating start index (round·budget mod n), so consecutive rounds'
//     service windows tile the index space and under persistent
//     overload every demanding UE is served within ⌈n/budget⌉ rounds.

// Schedule splits budget PRBs across demands (both in PRBs) by integer
// max-min water-filling and writes the per-UE allocation into grants
// (same length as demands, zeroed first). round selects the rotation
// offset of the shortfall pass; callers pass the tick number. The total
// granted is returned.
//
// Schedule touches nothing beyond the two slices, so per-cell calls on
// disjoint segments are safe to run concurrently, and it allocates
// nothing — the population tick calls it once per cell from preallocated
// arena scratch.
func Schedule(demands, grants []int32, budget int32, round int) int32 {
	n := len(demands)
	if n == 0 || budget <= 0 {
		for i := range grants {
			grants[i] = 0
		}
		return 0
	}
	var want int64
	active := int32(0)
	for i, d := range demands {
		grants[i] = 0
		if d > 0 {
			active++
			want += int64(d)
		}
	}
	if want <= int64(budget) {
		// Underload: everyone gets exactly what they asked for.
		for i, d := range demands {
			if d > 0 {
				grants[i] = d
			}
		}
		return int32(want)
	}
	// Advance the rotation by one full budget per round: the windows the
	// shortfall pass serves then tile the index space instead of sliding
	// by one, which is what makes the ⌈n/budget⌉ starvation bound hold.
	start := int((int64(round) * int64(budget)) % int64(n))
	if start < 0 {
		start += n
	}
	remaining := budget
	for active > 0 && remaining > 0 {
		share := remaining / active
		if share == 0 {
			// Fewer PRBs than demanding UEs: one PRB each, walking from
			// the rotating start so the window sweeps the whole cell
			// across rounds instead of pinning to the low indices.
			for k := 0; k < n && remaining > 0; k++ {
				i := (start + k) % n
				if demands[i] > grants[i] {
					grants[i]++
					remaining--
				}
			}
			break
		}
		// Water-filling pass: everyone unsatisfied gets up to share.
		// Each pass either fully satisfies some UE (active shrinks) or
		// leaves remaining < active, which forces the share == 0 path —
		// so the loop terminates.
		stillActive := int32(0)
		for k := 0; k < n; k++ {
			i := (start + k) % n
			need := demands[i] - grants[i]
			if need <= 0 {
				continue
			}
			g := share
			if need < g {
				g = need
			}
			grants[i] += g
			remaining -= g
			if demands[i] > grants[i] {
				stillActive++
			}
		}
		active = stillActive
	}
	return budget - remaining
}
