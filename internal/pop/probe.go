package pop

import (
	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
	"fivegsim/internal/handoff"
)

// The N=1 contract: the paper's measurement study is a single probe UE
// walking the campus, and the population layer must reproduce those
// numbers exactly — not approximately — when the population degenerates
// to one UE. Two things make that hold:
//
//   - The engine side: a 1-UE population has no contention, so the PRB
//     scheduler's underload path grants the full demand and the
//     delivered rate is Band.Rate(se, prbs) — the identical call (same
//     SE, same band, same PRB count) the probe pipeline makes through
//     radio.DLBitRate. probe_test.go pins this float-for-float at
//     surveyed positions.
//
//   - The experiment side: the probe experiments themselves (coverage
//     survey, hand-off campaigns) are the N=1 special case of a
//     population study, so ProbeSurvey and ProbeCampaign delegate to
//     the exact single-UE pipelines. A population-flavoured X14 run is
//     therefore bit-identical to the seed experiments by construction,
//     for any Workers value — both delegates carry the internal/par
//     determinism contract.

// ProbeSurvey runs the paper's walking coverage survey as the N=1
// special case of a population study: n sampled probe positions over the
// campus, one UE. Identical to coverage.RunParallel by construction.
func ProbeSurvey(c *deploy.Campus, n int, seed int64, workers int) *coverage.Survey {
	return coverage.RunParallel(c, n, seed, workers)
}

// ProbeCampaign runs the paper's hand-off walk campaigns as the N=1
// special case: n walks of a single probe UE. Identical to
// handoff.RunCampaigns by construction.
func ProbeCampaign(c *deploy.Campus, cfg handoff.Config, seed int64, n, workers int) *handoff.Campaign {
	return handoff.RunCampaigns(c, cfg, seed, n, workers)
}
