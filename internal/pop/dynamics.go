package pop

// Population dynamics: birth–death UE churn, stateful A3 hand-off and
// load-coupled interference (DESIGN.md §13). All three are opt-in Model
// extensions; the zero values keep the engine bit-for-bit on the PR-6
// behaviour (fixed population, memoryless best-server re-attach, static
// per-cell interference Load), which the determinism and N=1 probe
// suites continue to pin.
//
// Determinism contract: churn is a serial pre-phase-A step whose draws
// come from a dedicated substream reseeded per tick (rng.Key.At(0,
// tick)), deaths scan slots in index order and births pop the free list
// LIFO — so the live set after the churn step is a pure function of
// (seed, tick), never of the worker count. A3 state and the ping-pong
// counters live in per-UE arena slots written only by the owning phase-A
// shard. The load EWMA folds the (deterministic) per-cell utilization
// serially after phase C. Workers therefore stays a pure throughput
// knob with every dynamic enabled (TestDynamicsWorkersEquivalence).

import (
	"fmt"
	"math"
	"math/rand"

	"fivegsim/internal/geom"
	"fivegsim/internal/radio"
)

// ChurnModel parametrizes birth–death UE churn: Poisson arrivals per
// tick, exponentially distributed lifetimes (in ticks), and a fixed
// arena capacity so steady-state ticks stay allocation-free — arrivals
// that find the arena full are dropped (counted as blocked births).
type ChurnModel struct {
	Enabled bool
	// ArrivalPerTick is the Poisson mean of per-tick UE arrivals.
	ArrivalPerTick float64
	// MeanLifetimeTicks is the mean of the exponential UE lifetime,
	// in ticks (default 300 — 30 s of 100 ms ticks).
	MeanLifetimeTicks float64
	// MaxN caps the arena (live UEs at any instant). 0 sizes it from
	// Little's law: N + λ·L plus a 4σ Poisson fluctuation margin.
	MaxN int
}

// A3Model parametrizes the per-UE sticky serving-cell state machine:
// Eq. (1)'s hysteresis margin applied on RSRP, sustained for a
// time-to-trigger counted in scheduling ticks. The zero value (Enabled
// false) is the memoryless best-server re-pick of PR 6.
type A3Model struct {
	Enabled bool
	// HysteresisDB is the RSRP advantage a neighbor must hold over the
	// serving cell (the paper's ISP runs 3 dB).
	HysteresisDB float64
	// TTTTicks is how many consecutive ticks (including the firing one)
	// the advantage must hold; ≤1 hands off on the first qualifying
	// tick. At 100 ms ticks the ISP's 324 ms rounds to 3.
	TTTTicks int
	// PingPongWindowTicks bounds the A→B→A ping-pong detector: a
	// hand-off back to the previous serving cell within this many ticks
	// counts as a ping-pong (default 10 ≈ 1 s).
	PingPongWindowTicks int
}

// LoadCouplingModel couples each cell's interference Load to the
// scheduler's measured PRB utilization through a damped EWMA,
// replacing the static per-cell Load constant: cells that the
// population actually fills interfere more, which reshapes SINR and
// therefore next tick's attachment and rates. The fixed point is
// bounded in [0, 1] (TestLoadCouplingBounded).
type LoadCouplingModel struct {
	Enabled bool
	// Alpha is the EWMA damping weight on the newest utilization sample
	// (default 0.3). Load_{t+1} = (1−α)·Load_t + α·util_t.
	Alpha float64
}

// DefaultDynamics returns DefaultModel with every population dynamic
// enabled at the paper-calibrated operating point: churn in
// steady-state balance with the initial population, the ISP's 3 dB /
// 324 ms A3 configuration, and damped load coupling.
func DefaultDynamics() Model {
	m := DefaultModel()
	m.Churn = ChurnModel{Enabled: true, MeanLifetimeTicks: 300}
	m.A3 = A3Model{Enabled: true, HysteresisDB: 3, TTTTicks: 3}
	m.LoadCoupling = LoadCouplingModel{Enabled: true, Alpha: 0.3}
	return m
}

// dynamicsDefaults fills the dynamic sub-models' zero fields (called
// from Model.withDefaults).
func (m Model) dynamicsDefaults() Model {
	if m.Churn.Enabled && m.Churn.MeanLifetimeTicks <= 0 {
		m.Churn.MeanLifetimeTicks = 300
	}
	if m.A3.Enabled {
		if m.A3.TTTTicks < 1 {
			m.A3.TTTTicks = 1
		}
		if m.A3.PingPongWindowTicks <= 0 {
			m.A3.PingPongWindowTicks = 10
		}
	}
	if m.LoadCoupling.Enabled && (m.LoadCoupling.Alpha <= 0 || m.LoadCoupling.Alpha > 1) {
		m.LoadCoupling.Alpha = 0.3
	}
	return m
}

// churnCapacity sizes the arena for a churning population: the initial
// count plus the Little's-law standing churn population λ·L and a 4σ
// Poisson margin, so blocked births are rare at the configured rates.
func churnCapacity(n int, ch ChurnModel) int {
	if ch.MaxN > 0 {
		if ch.MaxN < n {
			return n
		}
		return ch.MaxN
	}
	standing := ch.ArrivalPerTick * ch.MeanLifetimeTicks
	c := float64(n) + standing + 4*math.Sqrt(standing+1) + 16
	return int(math.Ceil(c))
}

// expTicks draws an exponential lifetime in ticks with the given mean,
// floored at 1 (a UE lives at least one tick) and clamped far below
// int32 overflow.
func expTicks(r *rand.Rand, mean float64) int32 {
	t := r.ExpFloat64() * mean
	if t > 1<<30 {
		t = 1 << 30
	}
	return 1 + int32(t)
}

// churnStep runs the serial birth–death step for the tick about to
// execute: deaths first (slot order), then Poisson births popped off the
// free list. All draws come from the churn substream reseeded for this
// tick, so the step is a pure function of (seed, tick). Nothing here
// allocates: the free list is a preallocated stack and the per-UE resets
// write arena slots in place.
func (p *Population) churnStep() {
	p.tickBirths, p.tickDeaths, p.tickBlocked = 0, 0, 0
	tick := int32(p.tick)
	for i := 0; i < p.n; i++ {
		if p.bornTick[i] >= 0 && p.deathTick[i] <= tick {
			p.killUE(i)
			p.tickDeaths++
		}
	}
	r := p.churnRng
	r.Seed(p.churnKey.At(0, p.tick))
	births := poissonCount(r, p.Model.Churn.ArrivalPerTick)
	for b := 0; b < births; b++ {
		if len(p.free) == 0 {
			p.tickBlocked++
			continue
		}
		slot := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.spawnUE(int(slot), r)
		p.tickBirths++
	}
	p.alive += int(p.tickBirths) - int(p.tickDeaths)
	p.birthsTotal += p.tickBirths
	p.deathsTotal += p.tickDeaths
	p.blockedTotal += p.tickBlocked
}

// poissonCount is deploy.PoissonCount's Knuth/normal split, duplicated
// here without the package dependency inversion: pop already depends on
// deploy, so this is just the same draw on the churn substream.
func poissonCount(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return n
}

// spawnUE initializes a freshly claimed arena slot: PPP position, class
// draw, waypoint, and an exponential death tick. Draws happen in fixed
// field order on the churn substream.
func (p *Population) spawnUE(i int, r *rand.Rand) {
	m := &p.Model
	p.Campus.PlacePPP(r, p.x[i:i+1], p.y[i:i+1])
	p.tx[i], p.ty[i] = p.x[i], p.y[i]
	p.speed[i] = 0
	if m.MaxSpeedKmh > 0 {
		t := roadWaypoint(p.Campus, r)
		p.tx[i], p.ty[i] = t.X, t.Y
		p.speed[i] = drawSpeedKmh(r, *m) / 3.6
	}
	p.class[i] = m.Mix.Sample(r)
	p.bornTick[i] = int32(p.tick)
	p.deathTick[i] = int32(p.tick) + expTicks(r, m.Churn.MeanLifetimeTicks)
	p.cell[i] = -1
	p.se[i] = 0
	p.demandBps[i] = 0
	p.demandPRB[i], p.grantPRB[i] = 0, 0
	p.thrBps[i] = 0
	p.sumBits[i] = 0
	p.a3Hold[i] = 0
	p.prevCell[i] = -1
	p.lastHOTick[i] = 0
	p.hoCount[i], p.ppCount[i] = 0, 0
}

// killUE returns slot i to the free list and clears its service state so
// the dead slot sorts into the outage bucket and is never scheduled.
func (p *Population) killUE(i int) {
	p.bornTick[i] = -1
	p.cell[i] = -1
	p.se[i] = 0
	p.speed[i] = 0
	p.demandBps[i] = 0
	p.demandPRB[i], p.grantPRB[i] = 0, 0
	p.thrBps[i] = 0
	p.free = append(p.free, int32(i))
}

// a3Attach is the stateful attach step: the serving cell persists across
// ticks and changes only through the A3 rule — a candidate holding
// HysteresisDB of RSRP advantage for TTTTicks consecutive ticks — or
// through radio-link failure (serving no longer usable), which forces an
// immediate hand-off. Candidate selection is the same NSA policy as the
// memoryless path: strongest usable NR cell, else strongest usable LTE
// cell. Writes stay confined to UE i's arena slots.
func (p *Population) a3Attach(i int, d float64) {
	pos := geom.Point{X: p.x[i], Y: p.y[i]}
	cand, ok := p.Campus.BestServer(radio.NR, pos)
	if !ok || !cand.Usable() {
		lte, okL := p.Campus.BestServer(radio.LTE, pos)
		if !okL || !lte.Usable() {
			// Coverage hole: service drops, serving state resets — the
			// eventual re-attach is a fresh camp, not a hand-off.
			p.cell[i] = -1
			p.se[i] = 0
			p.a3Hold[i] = 0
			return
		}
		cand = lte
	}
	ciCand := p.pciIdx[cand.PCI]
	prior := p.cell[i]
	if prior < 0 || prior == ciCand {
		// Fresh attach after outage/birth, or already serving the best
		// candidate: camp on it, no event, TTT disarmed.
		p.a3Hold[i] = 0
		p.cell[i] = ciCand
		p.se[i] = cand.SE
		p.setDemandPRB(i, int(ciCand), d)
		return
	}
	serv, okS := p.Campus.MeasureServing(p.cells[prior].Tech, pos, p.cells[prior].PCI)
	if !okS || !serv.Usable() {
		// Radio-link failure: the serving cell fell below the service
		// threshold (or ≥14 dB under the local best, off the field-map
		// shortlist). Forced hand-off, no TTT.
		p.recordHandoff(i, ciCand)
		p.a3Hold[i] = 0
		p.cell[i] = ciCand
		p.se[i] = cand.SE
		p.setDemandPRB(i, int(ciCand), d)
		return
	}
	better := cand.RSRPdBm-serv.RSRPdBm > p.Model.A3.HysteresisDB
	if p.cells[prior].Tech != cand.Tech {
		// Vertical candidate (LTE serving, NR back in coverage): RSRP is
		// not comparable across bands, so sustained candidate usability
		// stands in for the margin — cand is usable by construction.
		better = true
	}
	if better {
		p.a3Hold[i]++
		if int(p.a3Hold[i]) >= p.Model.A3.TTTTicks {
			p.recordHandoff(i, ciCand)
			p.a3Hold[i] = 0
			p.cell[i] = ciCand
			p.se[i] = cand.SE
			p.setDemandPRB(i, int(ciCand), d)
			return
		}
	} else {
		p.a3Hold[i] = 0
	}
	// Stay on the serving cell at its measured (possibly degraded) SE.
	p.se[i] = serv.SE
	p.setDemandPRB(i, int(prior), d)
}

// recordHandoff books a serving-cell change for UE i onto the per-UE
// hand-off and ping-pong counters (a hand-off back to the previous
// serving cell within the ping-pong window is a ping-pong).
func (p *Population) recordHandoff(i int, to int32) {
	if to == p.prevCell[i] && p.tick-int(p.lastHOTick[i]) <= p.Model.A3.PingPongWindowTicks {
		p.ppCount[i]++
	}
	p.prevCell[i] = p.cell[i]
	p.lastHOTick[i] = int32(p.tick)
	p.hoCount[i]++
}

// coupleLoads folds this tick's measured per-cell PRB utilization into
// the damped load EWMA and publishes it as the cells' interference Load
// for the next tick. Serial, fixed cell order — byte-identical for every
// worker count.
func (p *Population) coupleLoads() {
	a := p.Model.LoadCoupling.Alpha
	ncells := len(p.cells)
	row := p.util[(p.tick%p.utilTicks)*ncells : (p.tick%p.utilTicks)*ncells+ncells]
	for c := range p.cells {
		e := (1-a)*p.loadEwma[c] + a*row[c]
		p.loadEwma[c] = e
		p.cells[c].Load = e
	}
}

// RestoreLoads writes the cells' original interference Loads back. A
// load-coupled population temporarily owns its campus's Load fields;
// Run/RunWith/RunContext restore them on return, and callers driving
// Tick by hand with LoadCoupling enabled must call this before handing
// the campus to anything else.
func (p *Population) RestoreLoads() {
	for c, cell := range p.cells {
		cell.Load = p.baseLoad[c]
	}
}

// CoupledLoad returns cell c's (dense index) current load EWMA.
func (p *Population) CoupledLoad(c int) float64 { return p.loadEwma[c] }

// Alive returns the number of live UEs (== Len() without churn).
func (p *Population) Alive() int { return p.alive }

// Capacity returns the arena capacity (== Len()).
func (p *Population) Capacity() int { return p.n }

// FreeSlots returns the current free-list depth. The conservation
// invariant FreeSlots() + Alive() == Capacity() holds after every tick,
// including a run cut short by cancellation.
func (p *Population) FreeSlots() int { return len(p.free) }

// Births, Deaths and BlockedBirths return the cumulative churn counts.
func (p *Population) Births() int64 { return p.birthsTotal }

// Deaths returns the cumulative death count.
func (p *Population) Deaths() int64 { return p.deathsTotal }

// BlockedBirths returns how many arrivals found the arena full and were
// dropped.
func (p *Population) BlockedBirths() int64 { return p.blockedTotal }

// TickChurn returns the last tick's (births, deaths, blocked) counts —
// the per-tick conservation triple births − deaths == ΔAlive.
func (p *Population) TickChurn() (births, deaths, blocked int64) {
	return p.tickBirths, p.tickDeaths, p.tickBlocked
}

// Handoffs returns the cumulative hand-off and ping-pong counts over
// the live arena (counters of dead UEs leave the totals when their slot
// is reused; the telemetry counters keep the monotone totals).
func (p *Population) Handoffs() (handoffs, pingpongs int64) {
	for i := 0; i < p.n; i++ {
		handoffs += int64(p.hoCount[i])
		pingpongs += int64(p.ppCount[i])
	}
	return handoffs, pingpongs
}

// PeakHandoffsPerTick returns the largest single-tick hand-off count
// seen so far — the hand-off-storm amplitude.
func (p *Population) PeakHandoffsPerTick() int64 { return p.hoPeak }

// DynamicsLines formats the population-dynamics summary — live count,
// churn totals, hand-off and ping-pong totals, storm peak — byte-stable
// in the CellLoadLines tradition so the determinism suite can compare
// dynamic runs as raw bytes.
func (p *Population) DynamicsLines() []string {
	ho, pp := p.Handoffs()
	return []string{
		fmt.Sprintf("dynamics alive=%d births=%d deaths=%d blocked=%d free=%d",
			p.alive, p.birthsTotal, p.deathsTotal, p.blockedTotal, len(p.free)),
		fmt.Sprintf("handoff total=%d pingpong=%d storm_peak=%d", ho, pp, p.hoPeak),
	}
}
