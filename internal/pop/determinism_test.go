package pop

import (
	"strings"
	"testing"

	"fivegsim/internal/deploy"
	"fivegsim/internal/obs"
)

// Determinism-equivalence suite, mirroring the top-level parallel_test.go
// contract: a population run's reports must be byte-identical for any
// Workers value, across seeds. The comparison is over the raw formatted
// report lines (cell-load fingerprint + fairness summary) — bytes, not
// tolerances — so any float reordering in the tick pipeline fails loud.

func reportFingerprint(p *Population) string {
	var b strings.Builder
	for _, l := range p.CellLoadLines() {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, l := range p.FairnessLines() {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func popModelForTest(n, ticks int) Model {
	m := DefaultModel()
	m.N = n
	m.Ticks = ticks
	return m
}

func TestPopulationWorkersEquivalence(t *testing.T) {
	n, ticks := 2000, 30
	if testing.Short() {
		n, ticks = 600, 10
	}
	for _, seed := range []int64{1, 42, 7} {
		campus := deploy.New(seed)
		base := reportFingerprint(Run(campus, popModelForTest(n, ticks), seed, 1))
		for _, workers := range []int{2, 8} {
			got := reportFingerprint(Run(campus, popModelForTest(n, ticks), seed, workers))
			if got != base {
				t.Fatalf("seed %d: workers %d report differs from workers 1:\n--- w1 ---\n%s--- w%d ---\n%s",
					seed, workers, base, workers, got)
			}
		}
	}
}

// TestPopulationRebuildEquivalence pins that rebuilding the population
// from scratch with the same seed reproduces the identical report —
// i.e. no hidden state leaks between runs through the shared campus.
func TestPopulationRebuildEquivalence(t *testing.T) {
	campus := deploy.New(42)
	m := popModelForTest(400, 8)
	a := reportFingerprint(Run(campus, m, 42, 4))
	b := reportFingerprint(Run(campus, m, 42, 4))
	if a != b {
		t.Fatalf("same-seed rebuild differs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestPopulationTelemetryReportUnchanged pins that attaching live
// telemetry is purely observational: the reports are byte-identical
// with and without a registry, tracer and progress hook attached — the
// counters read the simulation, never steer it (no RNG draws, no state
// writes on the telemetry path) — at every worker count.
func TestPopulationTelemetryReportUnchanged(t *testing.T) {
	m := popModelForTest(600, 10)
	campus := deploy.New(42)
	base := reportFingerprint(Run(campus, m, 42, 1))
	for _, workers := range []int{1, 4} {
		tel := Telemetry{Obs: obs.NewRegistry(), Trace: obs.NewTracer(0), OnTick: func(int, int) {}}
		got := reportFingerprint(RunWith(campus, m, 42, workers, tel))
		if got != base {
			t.Fatalf("workers %d: telemetry changed the report:\n--- off ---\n%s--- on ---\n%s",
				workers, base, got)
		}
	}
}

// TestPopulationSeedSensitivity guards against the opposite failure:
// everything collapsing to one output regardless of seed.
func TestPopulationSeedSensitivity(t *testing.T) {
	m := popModelForTest(400, 8)
	a := reportFingerprint(Run(deploy.New(1), m, 1, 1))
	b := reportFingerprint(Run(deploy.New(2), m, 2, 1))
	if a == b {
		t.Fatal("seeds 1 and 2 produced identical reports")
	}
}

// TestPopulationPPPCount pins the PPP sizing path: N=0 draws the count
// from λ·A and the draw is seed-stable.
func TestPopulationPPPCount(t *testing.T) {
	campus := deploy.New(7)
	m := DefaultModel()
	m.Ticks = 1
	a := New(campus, m, 7)
	b := New(campus, m, 7)
	if a.Len() != b.Len() {
		t.Fatalf("same-seed PPP counts differ: %d vs %d", a.Len(), b.Len())
	}
	mean := m.LambdaPerKm2 * campus.AreaKm2()
	lo, hi := int(mean*0.8), int(mean*1.2)
	if a.Len() < lo || a.Len() > hi {
		t.Fatalf("PPP count %d outside ±20%% of mean %.0f", a.Len(), mean)
	}
}
