package pop

import (
	"context"
	"errors"
	"testing"

	"fivegsim/internal/deploy"
	"fivegsim/internal/geom"
	"fivegsim/internal/obs"
	"fivegsim/internal/radio"
	"fivegsim/internal/traffic"
)

// The population-dynamics property/invariant suite (ISSUE 8): churn
// conservation, A3 TTT/hysteresis invariants, load-coupling boundedness,
// the N=1 probe contract under A3, Workers-equivalence with every
// dynamic enabled, cancellation safety, the attach-skip equivalence and
// the steady-state allocation guard.

func dynamicsModelForTest(n, ticks int) Model {
	m := DefaultModel()
	m.N = n
	m.Ticks = ticks
	m.Churn = ChurnModel{Enabled: true, ArrivalPerTick: 8, MeanLifetimeTicks: 40}
	m.A3 = A3Model{Enabled: true, HysteresisDB: 3, TTTTicks: 3}
	m.LoadCoupling = LoadCouplingModel{Enabled: true, Alpha: 0.3}
	return m
}

// dynamicsFingerprint extends the determinism fingerprint with the
// dynamics summary so churn/hand-off state is part of the byte-compared
// report.
func dynamicsFingerprint(p *Population) string {
	s := reportFingerprint(p)
	for _, l := range p.DynamicsLines() {
		s += l + "\n"
	}
	return s
}

// TestChurnConservation is the exhaustive per-tick conservation law:
// births − deaths == ΔAlive at every tick, the free list and the live
// set always partition the arena, and the live count equals the number
// of occupied slots.
func TestChurnConservation(t *testing.T) {
	m := dynamicsModelForTest(500, 60)
	if testing.Short() {
		m.Ticks = 25
	}
	campus := deploy.New(42)
	p := New(campus, m, 42)
	defer p.RestoreLoads()
	if p.Alive() != 500 {
		t.Fatalf("initial alive %d, want 500", p.Alive())
	}
	for k := 0; k < m.Ticks; k++ {
		before := p.Alive()
		p.Tick(1)
		births, deaths, blocked := p.TickChurn()
		if delta := p.Alive() - before; births-deaths != int64(delta) {
			t.Fatalf("tick %d: births %d − deaths %d != ΔAlive %d", k, births, deaths, delta)
		}
		if blocked < 0 {
			t.Fatalf("tick %d: negative blocked count %d", k, blocked)
		}
		if p.FreeSlots()+p.Alive() != p.Capacity() {
			t.Fatalf("tick %d: free %d + alive %d != capacity %d",
				k, p.FreeSlots(), p.Alive(), p.Capacity())
		}
		occupied := 0
		for i := 0; i < p.n; i++ {
			if p.bornTick[i] >= 0 {
				occupied++
			}
		}
		if occupied != p.Alive() {
			t.Fatalf("tick %d: %d occupied slots, alive says %d", k, occupied, p.Alive())
		}
	}
	if int64(p.Alive()) != 500+p.Births()-p.Deaths() {
		t.Fatalf("total conservation: alive %d != 500 + births %d − deaths %d",
			p.Alive(), p.Births(), p.Deaths())
	}
	if p.Births() == 0 || p.Deaths() == 0 {
		t.Fatalf("churn inactive: births %d deaths %d — model exercises nothing", p.Births(), p.Deaths())
	}
}

// TestChurnArenaFullBlocksBirths drives a tiny arena to saturation and
// pins the overflow policy: arrivals are dropped (counted), never
// written over a live slot, and conservation still holds.
func TestChurnArenaFullBlocksBirths(t *testing.T) {
	m := DefaultModel()
	m.N = 50
	m.Ticks = 30
	m.Churn = ChurnModel{Enabled: true, ArrivalPerTick: 20, MeanLifetimeTicks: 1000, MaxN: 60}
	campus := deploy.New(7)
	p := New(campus, m, 7)
	for k := 0; k < m.Ticks; k++ {
		p.Tick(1)
		if p.Alive() > p.Capacity() {
			t.Fatalf("tick %d: alive %d exceeds capacity %d", k, p.Alive(), p.Capacity())
		}
		if p.FreeSlots()+p.Alive() != p.Capacity() {
			t.Fatalf("tick %d: arena partition broken", k)
		}
	}
	if p.BlockedBirths() == 0 {
		t.Fatal("20 arrivals/tick into a 60-slot arena never blocked a birth")
	}
}

// TestA3NoHandoffBeforeTTT is the TTT invariant: every same-technology
// hand-off whose old serving cell was still measurable and usable (i.e.
// not a forced radio-link-failure hand-off) must have held its A3
// advantage for exactly TTTTicks consecutive ticks — the hold counter
// snapshot before the firing tick reads TTTTicks−1 — and the winning
// candidate must clear the hysteresis margin at the firing tick.
func TestA3NoHandoffBeforeTTT(t *testing.T) {
	campus := deploy.New(7)
	m := DefaultModel()
	m.N = 800
	m.Ticks = 60
	m.MaxSpeedKmh = 60 // brisk, to provoke hand-offs inside the window
	m.A3 = A3Model{Enabled: true, HysteresisDB: 3, TTTTicks: 3}
	if testing.Short() {
		m.N, m.Ticks = 300, 30
	}
	p := New(campus, m, 7)
	prevCell := make([]int32, p.n)
	prevHold := make([]int32, p.n)
	handoffs, checked := 0, 0
	for k := 0; k < m.Ticks; k++ {
		copy(prevCell, p.cell)
		copy(prevHold, p.a3Hold)
		p.Tick(1)
		for i := 0; i < p.n; i++ {
			old, now := prevCell[i], p.cell[i]
			if old < 0 || now < 0 || old == now {
				continue
			}
			handoffs++
			if p.cells[old].Tech != p.cells[now].Tech {
				continue // vertical hand-off: RSRP not comparable, TTT not applicable
			}
			pos := geom.Point{X: p.x[i], Y: p.y[i]}
			serv, ok := campus.MeasureServing(p.cells[old].Tech, pos, p.cells[old].PCI)
			if !ok || !serv.Usable() {
				continue // radio-link failure: forced hand-off bypasses TTT
			}
			checked++
			if int(prevHold[i]) != p.Model.A3.TTTTicks-1 {
				t.Fatalf("tick %d UE %d: hand-off %d→%d fired with hold %d, want %d (TTT %d)",
					k, i, old, now, prevHold[i], p.Model.A3.TTTTicks-1, p.Model.A3.TTTTicks)
			}
			best, okB := campus.BestServer(p.cells[now].Tech, pos)
			if okB && best.PCI == p.cells[now].PCI &&
				best.RSRPdBm-serv.RSRPdBm <= p.Model.A3.HysteresisDB {
				t.Fatalf("tick %d UE %d: hand-off %d→%d with margin %.2f dB ≤ hysteresis %.1f dB",
					k, i, old, now, best.RSRPdBm-serv.RSRPdBm, p.Model.A3.HysteresisDB)
			}
		}
	}
	if handoffs == 0 {
		t.Fatal("no hand-offs occurred — the invariant was never exercised")
	}
	if ho, _ := p.Handoffs(); ho == 0 {
		t.Fatal("per-UE hand-off counters stayed zero despite observed serving changes")
	}
	_ = checked
}

// TestA3HysteresisBlocksAllHandoffs pins the hysteresis half of Eq. (1)
// from the other side: with an unreachable margin, a static population
// never hands off — and its reports are byte-identical to the memoryless
// engine, since a static UE's sticky serving cell IS its best server.
func TestA3HysteresisBlocksAllHandoffs(t *testing.T) {
	base := popModelForTest(400, 10)
	base.MaxSpeedKmh = 0
	campus := deploy.New(42)
	want := reportFingerprint(Run(campus, base, 42, 1))

	a3 := base
	a3.A3 = A3Model{Enabled: true, HysteresisDB: 1000, TTTTicks: 3}
	p := Run(campus, a3, 42, 1)
	if ho, pp := p.Handoffs(); ho != 0 || pp != 0 {
		t.Fatalf("static population under 1000 dB hysteresis handed off %d times (%d ping-pongs)", ho, pp)
	}
	if got := reportFingerprint(p); got != want {
		t.Fatalf("static A3 run diverged from memoryless engine:\n--- memoryless ---\n%s--- a3 ---\n%s", want, got)
	}
}

// TestSingleUEProbeContractWithA3 re-pins the N=1 bit-for-bit probe
// contract with the A3 state machine enabled: a teleported probe is a
// fresh camp each Place, so it must attach to the survey's best server
// and deliver exactly radio.DLBitRate — stateful attach included.
func TestSingleUEProbeContractWithA3(t *testing.T) {
	campus := deploy.New(42)
	n := 200
	if testing.Short() {
		n = 60
	}
	survey := ProbeSurvey(campus, n, 42, 1)

	m := DefaultModel()
	m.N = 1
	m.MaxSpeedKmh = 0
	m.Mix = traffic.MixWeights{Web: 0, Video: 0, Bulk: 1} // saturating probe
	m.A3 = A3Model{Enabled: true, HysteresisDB: 3, TTTTicks: 3}

	p := New(campus, m, 42)
	for i, s := range survey.Samples {
		p.Place(0, s.Pos)
		p.Tick(1)
		var want radio.Measurement
		var band radio.Band
		switch {
		case s.NR.Usable():
			want, band = s.NR, radio.BandNR()
		case s.LTE.Usable():
			want, band = s.LTE, radio.BandLTE()
		default:
			if p.ServingPCI(0) != -1 {
				t.Fatalf("sample %d: survey saw outage, A3 population attached to PCI %d", i, p.ServingPCI(0))
			}
			continue
		}
		if p.ServingPCI(0) != want.PCI {
			t.Fatalf("sample %d: serving PCI %d, survey best server %d", i, p.ServingPCI(0), want.PCI)
		}
		if got, exp := p.ThroughputBps(0), radio.DLBitRate(want, band, band.PRBs); got != exp {
			t.Fatalf("sample %d: throughput %.17g, probe pipeline %.17g (must be bit-identical)", i, got, exp)
		}
	}
}

// TestLoadCouplingBounded pins the EWMA fixed point: with utilization in
// [0, 1] every coupled Load stays in [0, 1] at every tick — no runaway
// interference spiral — and RestoreLoads puts the campus back exactly.
func TestLoadCouplingBounded(t *testing.T) {
	m := dynamicsModelForTest(1000, 40)
	if testing.Short() {
		m.N, m.Ticks = 400, 15
	}
	campus := deploy.New(1)
	orig := make([]float64, 0)
	for _, c := range append(append([]*radio.Cell(nil), campus.NRCells...), campus.LTECells...) {
		orig = append(orig, c.Load)
	}
	p := New(campus, m, 1)
	moved := false
	for k := 0; k < m.Ticks; k++ {
		p.Tick(1)
		for c := range p.cells {
			l := p.CoupledLoad(c)
			if l < 0 || l > 1 {
				t.Fatalf("tick %d: cell %d coupled load %f outside [0,1]", k, c, l)
			}
			if p.cells[c].Load != l {
				t.Fatalf("tick %d: cell %d Load %f not published (ewma %f)", k, c, p.cells[c].Load, l)
			}
			if l != orig[c] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("coupled loads never departed from the static baseline")
	}
	p.RestoreLoads()
	all := append(append([]*radio.Cell(nil), campus.NRCells...), campus.LTECells...)
	for c, cell := range all {
		if cell.Load != orig[c] {
			t.Fatalf("RestoreLoads left cell %d at %f, want %f", c, cell.Load, orig[c])
		}
	}
}

// TestDynamicsWorkersEquivalence is the headline determinism property:
// with churn, A3 and load coupling all enabled, the extended report
// (cell loads, fairness, dynamics summary) is byte-identical for Workers
// 1, 2 and 8 across seeds 1, 42 and 7.
func TestDynamicsWorkersEquivalence(t *testing.T) {
	n, ticks := 1200, 25
	if testing.Short() {
		n, ticks = 400, 10
	}
	for _, seed := range []int64{1, 42, 7} {
		campus := deploy.New(seed)
		base := dynamicsFingerprint(Run(campus, dynamicsModelForTest(n, ticks), seed, 1))
		for _, workers := range []int{2, 8} {
			got := dynamicsFingerprint(Run(campus, dynamicsModelForTest(n, ticks), seed, workers))
			if got != base {
				t.Fatalf("seed %d: workers %d dynamics report differs from workers 1:\n--- w1 ---\n%s--- w%d ---\n%s",
					seed, workers, base, workers, got)
			}
		}
	}
}

// TestChurnCancellation: a churning campaign canceled mid-run leaks no
// arena slots (the free-list partition holds), reports the context error,
// and its partial results are byte-identical to a run of exactly the
// completed tick count — paper-ordered, nothing torn.
func TestChurnCancellation(t *testing.T) {
	const cutAt = 6
	m := dynamicsModelForTest(500, 40)
	campus := deploy.New(42)

	ctx, cancel := context.WithCancel(context.Background())
	tel := Telemetry{Obs: obs.NewRegistry(), OnTick: func(tick, total int) {
		if tick >= cutAt {
			cancel()
		}
	}}
	p, err := RunContext(ctx, campus, m, 42, 4, tel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if p.Ticks() != cutAt {
		t.Fatalf("canceled run executed %d ticks, want %d", p.Ticks(), cutAt)
	}
	if p.FreeSlots()+p.Alive() != p.Capacity() {
		t.Fatalf("canceled run leaked arena slots: free %d + alive %d != capacity %d",
			p.FreeSlots(), p.Alive(), p.Capacity())
	}

	// Reference: the same model ticked exactly cutAt times, no cancellation.
	ref := New(campus, m, 42)
	for k := 0; k < cutAt; k++ {
		ref.Tick(4)
	}
	ref.RestoreLoads()
	if got, want := dynamicsFingerprint(p), dynamicsFingerprint(ref); got != want {
		t.Fatalf("partial results differ from a %d-tick run:\n--- canceled ---\n%s--- reference ---\n%s",
			cutAt, got, want)
	}

	// An uncancelable run reports nil and the full tick count.
	p2, err := RunContext(context.Background(), campus, m, 42, 4, Telemetry{})
	if err != nil || p2.Ticks() != m.Ticks {
		t.Fatalf("clean run: err %v ticks %d, want nil and %d", err, p2.Ticks(), m.Ticks)
	}
}

// TestAttachSkipEquivalence pins the moved-bitmask optimization: a
// static population (the skip path's steady state) produces reports
// byte-identical to the always-recompute path.
func TestAttachSkipEquivalence(t *testing.T) {
	m := popModelForTest(800, 12)
	m.MaxSpeedKmh = 0
	campus := deploy.New(42)

	fast := New(campus, m, 42)
	slow := New(campus, m, 42)
	slow.noAttachSkip = true
	for k := 0; k < m.Ticks; k++ {
		fast.Tick(1)
		slow.Tick(1)
	}
	if a, b := reportFingerprint(fast), reportFingerprint(slow); a != b {
		t.Fatalf("attach-skip path diverged from recompute path:\n--- skip ---\n%s--- recompute ---\n%s", a, b)
	}
	for i := 0; i < fast.n; i++ {
		if fast.cell[i] != slow.cell[i] || fast.se[i] != slow.se[i] {
			t.Fatalf("UE %d: skip path cell/se (%d, %g) != recompute (%d, %g)",
				i, fast.cell[i], fast.se[i], slow.cell[i], slow.se[i])
		}
	}
}

// TestDynamicsTickAllocs is the steady-state allocation guard with every
// dynamic enabled: churn draws, A3 measurements and the load EWMA must
// all run inside the preallocated arena (the PopTick100kChurn bench
// holds the same invariant at scale under the fgperf gate).
func TestDynamicsTickAllocs(t *testing.T) {
	m := dynamicsModelForTest(2000, 50)
	campus := deploy.New(42)
	p := New(campus, m, 42)
	defer p.RestoreLoads()
	for k := 0; k < 5; k++ {
		p.Tick(1) // settle into churn steady state
	}
	if got := testing.AllocsPerRun(10, func() { p.Tick(1) }); got > 0 {
		t.Fatalf("dynamics tick allocates %.1f times, want 0", got)
	}
}

// TestChurnSeedSensitivity guards the churn substreams against stream
// collapse: different seeds must produce different churn histories.
func TestChurnSeedSensitivity(t *testing.T) {
	m := dynamicsModelForTest(300, 10)
	a := Run(deploy.New(1), m, 1, 1)
	b := Run(deploy.New(2), m, 2, 1)
	if dynamicsFingerprint(a) == dynamicsFingerprint(b) {
		t.Fatal("seeds 1 and 2 produced identical dynamics reports")
	}
}
