package pop

import (
	"testing"

	"fivegsim/internal/deploy"
	"fivegsim/internal/obs"
)

// Allocation guards for the tick hot path: after New (which pre-warms
// the campus field maps and builds the whole arena), a tick must not
// allocate — static or walking, web-heavy or saturating. PopTick100k in
// internal/perf benches the same invariant at 100k UEs and the fgperf
// -compare gate holds it across PRs; this test catches regressions at
// unit-test speed.

func allocsPerTick(t *testing.T, m Model) float64 {
	t.Helper()
	campus := deploy.New(42)
	p := New(campus, m, 42)
	p.Tick(1) // first tick settles any remaining lazy state
	return testing.AllocsPerRun(10, func() {
		p.Tick(1)
	})
}

func TestTickZeroAllocStatic(t *testing.T) {
	m := DefaultModel()
	m.N = 3000
	m.MaxSpeedKmh = 0
	if got := allocsPerTick(t, m); got != 0 {
		t.Fatalf("static tick allocates %.1f times, want 0", got)
	}
}

func TestTickZeroAllocWalking(t *testing.T) {
	m := DefaultModel()
	m.N = 3000
	if got := allocsPerTick(t, m); got != 0 {
		t.Fatalf("walking tick allocates %.1f times, want 0", got)
	}
}

// TestTickZeroAllocWithTelemetry: attaching live telemetry must not
// re-introduce steady-state allocations — the instruments are
// pre-registered at Instrument time and the shard/cell accumulator
// slots are reused across ticks, so the instrumented tick stays at
// 0 allocs/op too (PopTick100kTel benches the same path at scale).
func TestTickZeroAllocWithTelemetry(t *testing.T) {
	m := DefaultModel()
	m.N = 3000
	campus := deploy.New(42)
	p := New(campus, m, 42)
	p.Instrument(Telemetry{Obs: obs.NewRegistry(), Trace: obs.NewTracer(0)})
	p.Tick(1)
	got := testing.AllocsPerRun(10, func() {
		p.Tick(1)
	})
	if got != 0 {
		t.Fatalf("instrumented tick allocates %.1f times, want 0", got)
	}
}
