// Package pop is the population layer: PPP-placed UE populations over
// the deployed campus, contending for per-cell PRB budgets under a
// per-UE traffic mix. It scales the paper's single walking probe into
// the system regime — cell-load distributions, per-UE throughput
// fairness and outage exposure as emergent properties of contention —
// while keeping the probe experiments recoverable bit-for-bit as the
// N=1 special case (see probe.go).
//
// UE state is structure-of-arrays in a preallocated arena: one tick of a
// 100k-UE population is a batch loop over flat slices with zero per-UE
// allocations (the PopTick100k bench and alloc_test.go guard this).
// Ticks follow the internal/par determinism contract — per-shard
// substreams reseeded from an rng.Key per (shard, tick), writes confined
// to shard-owned slots — so every report is bit-identical for any
// Workers value.
package pop

import (
	"context"
	"math"
	"math/rand"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/geom"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
	"fivegsim/internal/traffic"
)

// popShardSize is the number of UEs per RNG shard. Like the coverage
// survey's shard size, it is a pure function of the population size —
// never of the worker count — so the substream an individual UE draws
// from is stable across Workers settings.
const popShardSize = 1024

// minWalkSpeedKmh floors the redrawn waypoint speed so a walker can
// never draw 0 km/h and stall on a waypoint forever.
const minWalkSpeedKmh = 0.3

// Model parametrizes a population run.
type Model struct {
	// N fixes the population size. 0 draws it from the PPP: a Poisson
	// count with mean LambdaPerKm2 × campus area.
	N int
	// LambdaPerKm2 is the PPP intensity used when N is 0.
	LambdaPerKm2 float64
	// Mix is the per-UE application mix (web/video/bulk weights); the
	// zero value falls back to traffic.DefaultMix.
	Mix traffic.MixWeights
	// TickDur is the scheduling tick (default 100 ms, one measurement
	// bin of the paper's traces).
	TickDur time.Duration
	// Ticks is the run length used by Run and sizes the utilization
	// sample window (default 50).
	Ticks int
	// MinSpeedKmh and MaxSpeedKmh bound the random-waypoint walking
	// speed. MaxSpeedKmh 0 keeps the population static (a PPP snapshot).
	MinSpeedKmh, MaxSpeedKmh float64
	// Churn, A3 and LoadCoupling are the population dynamics
	// (dynamics.go). Their zero values reproduce the pre-dynamics
	// engine bit-for-bit: fixed population, memoryless best-server
	// attach, static interference Load.
	Churn        ChurnModel
	A3           A3Model
	LoadCoupling LoadCouplingModel
}

// DefaultModel returns the campus default: a PPP population at 5000
// UEs/km² (≈2300 UEs over the 0.46 km² campus), the default traffic mix,
// 100 ms ticks and pedestrian mobility up to 5 km/h.
func DefaultModel() Model {
	return Model{
		LambdaPerKm2: 5000,
		Mix:          traffic.DefaultMix(),
		TickDur:      100 * time.Millisecond,
		Ticks:        50,
		MinSpeedKmh:  0,
		MaxSpeedKmh:  5,
	}
}

func (m Model) withDefaults() Model {
	if m.TickDur <= 0 {
		m.TickDur = 100 * time.Millisecond
	}
	if m.Ticks <= 0 {
		m.Ticks = 1
	}
	if m.Mix == (traffic.MixWeights{}) {
		m.Mix = traffic.DefaultMix()
	}
	if m.MaxSpeedKmh < m.MinSpeedKmh {
		m.MaxSpeedKmh = m.MinSpeedKmh
	}
	return m.dynamicsDefaults()
}

// Population is a UE population and its preallocated tick arena. All
// per-UE state is structure-of-arrays; nothing inside Tick allocates.
type Population struct {
	Campus *deploy.Campus
	Model  Model

	n     int // arena capacity (== initial count without churn)
	alive int // live UEs; tracked by the churn step
	seed  int64

	// Per-UE state (SoA arena).
	x, y      []float64 // position (m)
	tx, ty    []float64 // waypoint target
	speed     []float64 // m/s; 0 = static
	class     []traffic.Class
	demandBps []float64 // this tick's offered rate
	se        []float64 // serving-link spectral efficiency (bits/RE/layer)
	thrBps    []float64 // this tick's delivered rate
	sumBits   []float64 // delivered bits accumulated over the run
	cell      []int32   // serving cell dense index, -1 = outage
	demandPRB []int32   // this tick's PRB demand (≤ cell budget)
	grantPRB  []int32   // this tick's PRB grant

	// Dynamics state (dynamics.go). bornTick is -1 on free slots and
	// doubles as the attach-skip / lifetime anchor; a3Hold is the A3
	// time-to-trigger counter in ticks; prevCell/lastHOTick feed the
	// ping-pong detector; hoCount/ppCount are per-UE event totals.
	bornTick   []int32
	deathTick  []int32
	a3Hold     []int32
	prevCell   []int32
	lastHOTick []int32
	hoCount    []int32
	ppCount    []int32
	free       []int32 // free-slot stack (churn), preallocated to capacity
	churnRng   *rand.Rand
	churnKey   rng.Key
	hoPrev     int64 // cumulative hand-offs at last tick boundary
	hoPeak     int64 // largest single-tick hand-off count (storm metric)

	tickBirths, tickDeaths, tickBlocked   int64
	birthsTotal, deathsTotal, blockedTotal int64

	// Load-coupling state: the campus cells' original Loads and the
	// utilization EWMA published onto them each tick.
	baseLoad []float64
	loadEwma []float64

	// noAttachSkip disables the moved-bitmask attach reuse (tests hold
	// the skip path byte-identical to the always-recompute path).
	noAttachSkip bool

	// Cells, dense-indexed NR first then LTE.
	cells  []*radio.Cell
	nNR    int
	budget []int32
	pciIdx map[int]int32

	// Counting-sort and scheduler scratch.
	cnt         []int32 // per-bucket counts, then fill cursors
	bounds      []int   // bucket cut points over order; bucket ncells = outage
	order       []int32 // UE indices grouped by serving cell
	schedDemand []int32
	schedGrant  []int32
	segs        []par.Range // per-cell segments over order, rebuilt per tick

	// Determinism plumbing.
	ueShards []par.Range
	shardRng []*rand.Rand
	ueKey    rng.Key

	// Accumulators.
	util      []float64 // utilization ring: Model.Ticks × ncells samples
	utilTicks int
	attach    []int64 // per-cell total attached UE-ticks
	tick      int

	// Live telemetry; nil keeps the tick on the uninstrumented fast
	// path (see telemetry.go).
	tel *telemetry

	// Tick-phase closures, built once so Tick allocates nothing.
	workers int
	phaseA  func(par.Range)
	phaseC  func(par.Range)
}

// New builds a population over the campus: PPP placement (outdoor,
// uniform given the count), per-UE class assignment from the mix, and
// the full tick arena. The campus field maps are warmed up front so the
// first tick already runs the allocation-free BestServer fast path.
func New(c *deploy.Campus, m Model, seed int64) *Population {
	m = m.withDefaults()
	src := rng.New(seed)
	placeRng := src.Stream("pop.place")
	n := m.N
	if n <= 0 {
		n = deploy.PoissonCount(placeRng, m.LambdaPerKm2*c.AreaKm2())
		if n < 1 {
			n = 1
		}
	}
	capN := n
	if m.Churn.Enabled {
		capN = churnCapacity(n, m.Churn)
	}
	p := &Population{Campus: c, Model: m, n: capN, alive: n, seed: seed}

	p.x = make([]float64, capN)
	p.y = make([]float64, capN)
	p.tx = make([]float64, capN)
	p.ty = make([]float64, capN)
	p.speed = make([]float64, capN)
	p.class = make([]traffic.Class, capN)
	p.demandBps = make([]float64, capN)
	p.se = make([]float64, capN)
	p.thrBps = make([]float64, capN)
	p.sumBits = make([]float64, capN)
	p.cell = make([]int32, capN)
	p.demandPRB = make([]int32, capN)
	p.grantPRB = make([]int32, capN)

	p.bornTick = make([]int32, capN)
	p.deathTick = make([]int32, capN)
	p.a3Hold = make([]int32, capN)
	p.prevCell = make([]int32, capN)
	p.lastHOTick = make([]int32, capN)
	p.hoCount = make([]int32, capN)
	p.ppCount = make([]int32, capN)
	for i := range p.prevCell {
		p.prevCell[i] = -1
		p.cell[i] = -1 // unattached until the first tick resolves
	}

	p.cells = append(append([]*radio.Cell(nil), c.NRCells...), c.LTECells...)
	p.nNR = len(c.NRCells)
	p.budget = make([]int32, len(p.cells))
	p.pciIdx = make(map[int]int32, len(p.cells))
	for i, cell := range p.cells {
		p.budget[i] = int32(cell.Band.PRBs)
		p.pciIdx[cell.PCI] = int32(i)
	}

	ncells := len(p.cells)
	p.cnt = make([]int32, ncells+1)
	p.bounds = make([]int, ncells+2)
	p.order = make([]int32, capN)
	p.schedDemand = make([]int32, capN)
	p.schedGrant = make([]int32, capN)
	p.segs = make([]par.Range, 0, ncells)

	p.utilTicks = m.Ticks
	p.util = make([]float64, p.utilTicks*ncells)
	p.attach = make([]int64, ncells)

	p.baseLoad = make([]float64, ncells)
	p.loadEwma = make([]float64, ncells)
	for i, cell := range p.cells {
		p.baseLoad[i] = cell.Load
		p.loadEwma[i] = cell.Load
	}

	c.WarmFieldMaps()
	c.PlacePPP(placeRng, p.x[:n], p.y[:n])
	copy(p.tx[:n], p.x[:n])
	copy(p.ty[:n], p.y[:n])
	classRng := src.Stream("pop.class")
	for i := 0; i < n; i++ {
		p.class[i] = m.Mix.Sample(classRng)
	}
	if m.MaxSpeedKmh > 0 {
		walkRng := src.Stream("pop.walk")
		for i := 0; i < n; i++ {
			t := roadWaypoint(c, walkRng)
			p.tx[i], p.ty[i] = t.X, t.Y
			p.speed[i] = drawSpeedKmh(walkRng, m) / 3.6
		}
	}
	if m.Churn.Enabled {
		// Slots [n, capN) start free, stacked so the first births claim
		// the lowest indices; initial UEs draw their lifetimes from a
		// dedicated init stream so enabling churn does not perturb the
		// placement/class/walk draws above.
		p.free = make([]int32, 0, capN)
		for i := capN - 1; i >= n; i-- {
			p.bornTick[i] = -1
			p.free = append(p.free, int32(i))
		}
		initRng := src.Stream("pop.churn.init")
		for i := 0; i < n; i++ {
			p.deathTick[i] = expTicks(initRng, m.Churn.MeanLifetimeTicks)
		}
		p.churnKey = src.Key("pop.churn")
		p.churnRng = src.Stream("pop.churn.tick")
	}

	p.ueShards = par.ShardSize(capN, popShardSize)
	p.ueKey = src.Key("pop.ue")
	p.shardRng = make([]*rand.Rand, len(p.ueShards))
	for i := range p.shardRng {
		p.shardRng[i] = src.Shard("pop.ue", i)
	}

	p.phaseA = func(r par.Range) {
		rr := p.shardRng[r.Index]
		rr.Seed(p.ueKey.At(r.Index, p.tick))
		if p.tel == nil {
			for i := r.Lo; i < r.Hi; i++ {
				if p.bornTick[i] < 0 {
					continue // free churn slot
				}
				p.stepUE(i, rr)
			}
			return
		}
		// Instrumented shard body: the same per-UE step, bracketed by
		// before/after reads feeding the shard's own accumulator slot.
		// prev-cell comparison counts hand-offs (skipped on the first
		// tick, when cell[] still holds its pre-attach zero state);
		// position comparison counts movers; ping-pong deltas come off
		// the per-UE counter the A3 state machine maintains.
		sc := &p.tel.ueShard[r.Index]
		firstTick := p.tick == 0
		for i := r.Lo; i < r.Hi; i++ {
			if p.bornTick[i] < 0 {
				continue // free churn slot
			}
			prev := p.cell[i]
			px, py := p.x[i], p.y[i]
			pp := p.ppCount[i]
			p.stepUE(i, rr)
			if p.x[i] != px || p.y[i] != py {
				sc.moved++
			}
			if c := p.cell[i]; c >= 0 {
				sc.attached++
				if !firstTick && prev >= 0 && prev != c {
					sc.handoffs++
				}
			} else {
				sc.outage++
			}
			if p.ppCount[i] != pp {
				sc.pingpongs++
			}
			sc.prbDemand += int64(p.demandPRB[i])
		}
	}
	p.phaseC = func(r par.Range) {
		p.scheduleCell(r)
	}
	return p
}

// drawSpeedKmh draws a waypoint speed within the model's bounds, floored
// so walkers never stall.
func drawSpeedKmh(r *rand.Rand, m Model) float64 {
	lo := m.MinSpeedKmh
	if lo < minWalkSpeedKmh {
		lo = minWalkSpeedKmh
	}
	hi := m.MaxSpeedKmh
	if hi < lo {
		hi = lo
	}
	return rng.Uniform(r, lo, hi)
}

// roadWaypoint draws a random waypoint on the campus road graph — the
// same distance-proportional draw the hand-off walker uses.
func roadWaypoint(c *deploy.Campus, r *rand.Rand) geom.Point {
	at := r.Float64() * c.RoadLengthM()
	for _, road := range c.Roads {
		l := road.Length()
		if at <= l {
			return road.At(at / l)
		}
		at -= l
	}
	return c.Roads[len(c.Roads)-1].B
}

// Len returns the arena size — the population size without churn, the
// slot capacity with it (Alive counts the live UEs).
func (p *Population) Len() int { return p.n }

// Ticks returns how many ticks have executed.
func (p *Population) Ticks() int { return p.tick }

// Place pins UE i at pos and cancels its current waypoint (the probe
// harness teleports its single UE along surveyed positions this way).
// A teleport is a fresh camp: the serving-cell state and the A3
// time-to-trigger reset, and the attach-skip cache is invalidated, so
// the next tick resolves the best server at the new position exactly as
// the survey pipeline does.
func (p *Population) Place(i int, pos geom.Point) {
	p.x[i], p.y[i] = pos.X, pos.Y
	p.tx[i], p.ty[i] = pos.X, pos.Y
	p.speed[i] = 0
	p.cell[i] = -1
	p.se[i] = 0
	p.a3Hold[i] = 0
	p.bornTick[i] = int32(p.tick) // force attach resolution next tick
}

// ServingPCI returns UE i's serving cell PCI after the last tick, or -1
// in outage.
func (p *Population) ServingPCI(i int) int {
	if p.cell[i] < 0 {
		return -1
	}
	return p.cells[p.cell[i]].PCI
}

// GrantPRB returns UE i's PRB grant from the last tick.
func (p *Population) GrantPRB(i int) int { return int(p.grantPRB[i]) }

// DemandPRB returns UE i's PRB demand from the last tick.
func (p *Population) DemandPRB(i int) int { return int(p.demandPRB[i]) }

// ThroughputBps returns UE i's delivered rate over the last tick.
func (p *Population) ThroughputBps(i int) float64 { return p.thrBps[i] }

// Class returns UE i's traffic class.
func (p *Population) Class(i int) traffic.Class { return p.class[i] }

// Run builds the population and executes Model.Ticks ticks across up to
// workers goroutines (the par.Workers convention). Reports are
// bit-identical for every workers value.
func Run(c *deploy.Campus, m Model, seed int64, workers int) *Population {
	return RunWith(c, m, seed, workers, Telemetry{})
}

// RunWith is Run with live telemetry attached: pop.* instruments into
// t.Obs, per-tick spans into t.Trace, and tick progress through
// t.OnTick. The zero Telemetry is exactly Run — the uninstrumented
// fast path — and reports are byte-identical either way.
func RunWith(c *deploy.Campus, m Model, seed int64, workers int, t Telemetry) *Population {
	p, _ := RunContext(context.Background(), c, m, seed, workers, t)
	return p
}

// RunContext is RunWith with cancellation: the context is checked at
// every tick boundary, so a canceled campaign stops within one tick. The
// returned population holds the completed ticks' state — partial reports
// are byte-identical to a run planned for exactly that many ticks, the
// free-list conservation invariant holds, and the campus's original
// interference Loads are restored even on the early-exit path. The error
// is the context's (wrapped verbatim) when the run was cut short, nil
// when every tick executed.
func RunContext(ctx context.Context, c *deploy.Campus, m Model, seed int64, workers int, t Telemetry) (*Population, error) {
	p := New(c, m, seed)
	p.Instrument(t)
	defer p.RestoreLoads()
	for i := 0; i < p.Model.Ticks; i++ {
		if err := ctx.Err(); err != nil {
			return p, err
		}
		p.Tick(workers)
	}
	return p, nil
}

// Tick advances the population by one scheduling interval:
//
//	A. per-UE (sharded): move, draw offered traffic, attach through the
//	   cached BestServer field maps, convert demand to PRBs;
//	B. serial O(N): counting-sort UEs into per-cell groups;
//	C. per-cell (sharded): run the PRB scheduler over each cell's group,
//	   scatter grants, convert to delivered throughput, accumulate
//	   cell-load and fairness state.
//
// Workers only sets the goroutine count; shard layouts depend on the
// population and cell counts alone, so results are bit-identical for
// every value. With workers 1 the phases run inline — the zero-alloc
// batch loop PopTick100k measures.
func (p *Population) Tick(workers int) {
	var wall0 time.Time
	if p.tel != nil {
		wall0 = time.Now()
	}
	p.workers = workers
	if p.Model.Churn.Enabled {
		p.churnStep()
	}
	par.Do(workers, p.ueShards, p.phaseA)

	// Phase B: counting sort by serving cell. Bucket ncells collects the
	// outage UEs; they sort after every cell and are not scheduled.
	ncells := len(p.cells)
	for b := range p.cnt {
		p.cnt[b] = 0
	}
	for i := 0; i < p.n; i++ {
		b := p.cell[i]
		if b < 0 {
			b = int32(ncells)
		}
		p.cnt[b]++
	}
	p.bounds[0] = 0
	for b := 0; b <= ncells; b++ {
		p.bounds[b+1] = p.bounds[b] + int(p.cnt[b])
	}
	for b := range p.cnt {
		p.cnt[b] = int32(p.bounds[b]) // reuse as fill cursors
	}
	for i := 0; i < p.n; i++ {
		b := p.cell[i]
		if b < 0 {
			b = int32(ncells)
		}
		p.order[p.cnt[b]] = int32(i)
		p.cnt[b]++
	}
	p.segs = par.Segments(p.bounds[:ncells+1], p.segs[:0])

	par.Do(workers, p.segs, p.phaseC)
	if p.Model.LoadCoupling.Enabled {
		p.coupleLoads()
	}
	if p.Model.A3.Enabled {
		// Hand-off-storm bookkeeping: per-tick hand-off count off the
		// per-UE counters (serial O(N) fold, fixed order).
		var total int64
		for i := 0; i < p.n; i++ {
			total += int64(p.hoCount[i])
		}
		if d := total - p.hoPrev; d > p.hoPeak {
			p.hoPeak = d
		}
		p.hoPrev = total
	}
	p.tick++
	if p.tel != nil {
		p.mergeTick(p.tick-1, time.Since(wall0))
	}
}

// stepUE is the phase-A batch body: one UE's move/demand/attach step.
// Writes are confined to UE i's slots.
func (p *Population) stepUE(i int, r *rand.Rand) {
	m := &p.Model
	moved := false
	if m.MaxSpeedKmh > 0 && p.speed[i] > 0 {
		pos := geom.Point{X: p.x[i], Y: p.y[i]}
		tgt := geom.Point{X: p.tx[i], Y: p.ty[i]}
		step := p.speed[i] * m.TickDur.Seconds()
		if pos.Dist(tgt) <= step {
			pos = tgt
			nt := roadWaypoint(p.Campus, r)
			p.tx[i], p.ty[i] = nt.X, nt.Y
			p.speed[i] = drawSpeedKmh(r, *m) / 3.6
		} else {
			dir := tgt.Sub(pos)
			norm := math.Hypot(dir.X, dir.Y)
			pos = pos.Add(dir.Scale(step / norm))
		}
		moved = pos.X != p.x[i] || pos.Y != p.y[i]
		p.x[i], p.y[i] = pos.X, pos.Y
	}

	d := traffic.OfferedBps(p.class[i], r)
	p.demandBps[i] = d
	p.demandPRB[i] = 0
	p.grantPRB[i] = 0
	p.thrBps[i] = 0

	if m.A3.Enabled {
		p.a3Attach(i, d)
		return
	}

	if p.canReuseAttach(i, moved) {
		// Unmoved UE on the memoryless path: BestServer is a pure
		// function of position and the (static) cell Loads, so last
		// tick's serving cell and SE are still exact — skip the field-map
		// lookups entirely. Demand still varies tick to tick, so the
		// PRB conversion reruns.
		if ci := p.cell[i]; ci >= 0 {
			p.setDemandPRB(i, int(ci), d)
		}
		return
	}

	p.cell[i] = -1
	p.se[i] = 0

	pos := geom.Point{X: p.x[i], Y: p.y[i]}
	serving, ok := p.Campus.BestServer(radio.NR, pos)
	if !ok || !serving.Usable() {
		// NSA fallback: no usable NR secondary, data rides the LTE layer.
		lte, okL := p.Campus.BestServer(radio.LTE, pos)
		if !okL || !lte.Usable() {
			return // coverage hole: no service this tick
		}
		serving = lte
	}
	ci := p.pciIdx[serving.PCI]
	p.cell[i] = ci
	p.se[i] = serving.SE
	p.setDemandPRB(i, int(ci), d)
}

// canReuseAttach reports whether UE i's cached serving cell and SE from
// the previous tick are still exact, making the attach lookups skippable.
// True only when the UE did not move this tick, a previous tick resolved
// the cache (tick > 0 and the slot was not born or teleported this tick),
// and nothing position-independent can shift the answer: load coupling
// changes SINR between ticks, and the A3 path never reaches here (its TTT
// counter must observe every tick).
func (p *Population) canReuseAttach(i int, moved bool) bool {
	return !moved && !p.noAttachSkip &&
		p.tick > 0 && p.bornTick[i] != int32(p.tick) &&
		!p.Model.LoadCoupling.Enabled
}

// setDemandPRB converts UE i's offered rate d into this tick's PRB demand
// against serving cell ci's band, clamped to the cell budget.
func (p *Population) setDemandPRB(i, ci int, d float64) {
	if d <= 0 {
		return
	}
	perPRB := p.cells[ci].Band.Rate(p.se[i], 1)
	if perPRB <= 0 {
		return
	}
	need := int32(math.Ceil(d / perPRB))
	if need > p.budget[ci] || need < 0 {
		need = p.budget[ci] // a single UE cannot use more than the grid
	}
	p.demandPRB[i] = need
}

// scheduleCell is the phase-C batch body: PRB scheduling and throughput
// for one cell's UE group (r.Index is the dense cell index, [r.Lo, r.Hi)
// its segment of the order array). Writes are confined to the segment's
// UEs and the cell's own accumulator slots.
func (p *Population) scheduleCell(r par.Range) {
	c := r.Index
	seg := r
	demands := p.schedDemand[seg.Lo:seg.Hi]
	grants := p.schedGrant[seg.Lo:seg.Hi]
	for j := 0; j < seg.Len(); j++ {
		demands[j] = p.demandPRB[p.order[seg.Lo+j]]
	}
	granted := Schedule(demands, grants, p.budget[c], p.tick)

	// Telemetry writes land in the cell's own padded slot (phase C
	// shards by cell, so slot c belongs to this call alone).
	var cellTel *cellCounters
	if p.tel != nil {
		cellTel = &p.tel.cell[c]
		cellTel.grantedPRB += int64(granted)
	}

	band := p.cells[c].Band
	tickSec := p.Model.TickDur.Seconds()
	for j := 0; j < seg.Len(); j++ {
		ue := p.order[seg.Lo+j]
		g := grants[j]
		p.grantPRB[ue] = g
		thr := 0.0
		if g > 0 {
			thr = band.Rate(p.se[ue], int(g))
			if thr > p.demandBps[ue] {
				thr = p.demandBps[ue]
			}
		}
		p.thrBps[ue] = thr
		p.sumBits[ue] += thr * tickSec
		if cellTel != nil {
			cellTel.bits[p.class[ue]] += thr * tickSec
		}
	}
	p.util[(p.tick%p.utilTicks)*len(p.cells)+c] = float64(granted) / float64(p.budget[c])
	p.attach[c] += int64(seg.Len())
}
