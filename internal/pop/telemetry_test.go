package pop

import (
	"testing"
	"time"

	"fivegsim/internal/deploy"
	"fivegsim/internal/obs"
	"fivegsim/internal/traffic"
)

// Telemetry-soundness suite: the sharded pop.* counters must add up to
// the population invariants (every UE attaches or is in outage every
// tick, granted PRBs never exceed demand), stay identical across worker
// counts (the merge runs in fixed shard order), and drive the tracer
// and progress hook once per tick.

func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name && m.Kind == "counter" {
			return int64(m.Value)
		}
	}
	t.Fatalf("registry has no counter %q", name)
	return 0
}

func TestTelemetryCounterInvariants(t *testing.T) {
	reg := obs.NewRegistry()
	campus := deploy.New(42)
	m := popModelForTest(500, 10)
	p := RunWith(campus, m, 42, 1, Telemetry{Obs: reg})

	if ticks := counterValue(t, reg, "pop.ticks"); ticks != int64(m.Ticks) {
		t.Fatalf("pop.ticks = %d, want %d", ticks, m.Ticks)
	}
	attached := counterValue(t, reg, "pop.ue_attached")
	outage := counterValue(t, reg, "pop.ue_outage")
	if ueTicks := int64(p.Len()) * int64(m.Ticks); attached+outage != ueTicks {
		t.Fatalf("attached %d + outage %d != UE-ticks %d", attached, outage, ueTicks)
	}
	if attached == 0 {
		t.Fatal("no UE ever attached")
	}
	demand := counterValue(t, reg, "pop.prb_demand")
	granted := counterValue(t, reg, "pop.prb_granted")
	if granted > demand {
		t.Fatalf("granted PRBs %d exceed demand %d", granted, demand)
	}
	if granted == 0 {
		t.Fatal("scheduler granted nothing")
	}
	moved := counterValue(t, reg, "pop.ue_moved")
	if moved == 0 {
		t.Fatal("walking population never moved")
	}
	var bytes int64
	for c := traffic.Class(0); c < traffic.NumClasses; c++ {
		bytes += counterValue(t, reg, "pop.bytes_delivered{class="+c.String()+"}")
	}
	if bytes == 0 {
		t.Fatal("no bytes delivered")
	}
	// The tick-latency histogram saw exactly one sample per tick.
	for _, m2 := range reg.Snapshot() {
		if m2.Name == "pop.tick_wall_us" {
			if m2.Count != int64(m.Ticks) {
				t.Fatalf("pop.tick_wall_us count %d, want %d", m2.Count, m.Ticks)
			}
			return
		}
	}
	t.Fatal("registry has no pop.tick_wall_us histogram")
}

// TestTelemetryWorkerEquivalence: counter totals are part of the
// determinism contract — identical for every Workers value.
func TestTelemetryWorkerEquivalence(t *testing.T) {
	totals := func(workers int) map[string]int64 {
		reg := obs.NewRegistry()
		campus := deploy.New(7)
		RunWith(campus, popModelForTest(600, 8), 7, workers, Telemetry{Obs: reg})
		out := map[string]int64{}
		for _, m := range reg.Snapshot() {
			if m.Kind == "counter" {
				out[m.Name] = int64(m.Value)
			}
		}
		return out
	}
	base := totals(1)
	if len(base) == 0 {
		t.Fatal("serial run registered no counters")
	}
	for _, workers := range []int{2, 8} {
		got := totals(workers)
		for name, want := range base {
			if got[name] != want {
				t.Fatalf("workers %d: %s = %d, want %d (serial)", workers, name, got[name], want)
			}
		}
		if len(got) != len(base) {
			t.Fatalf("workers %d registered %d counters, serial %d", workers, len(got), len(base))
		}
	}
}

// TestTelemetryStaticPopulationNoMovement: a zero-speed population
// reports zero moved UEs and zero hand-offs over the whole run.
func TestTelemetryStaticPopulationNoMovement(t *testing.T) {
	reg := obs.NewRegistry()
	m := popModelForTest(300, 6)
	m.MaxSpeedKmh = 0
	RunWith(deploy.New(3), m, 3, 1, Telemetry{Obs: reg})
	if moved := counterValue(t, reg, "pop.ue_moved"); moved != 0 {
		t.Fatalf("static population moved %d UE-ticks", moved)
	}
	if ho := counterValue(t, reg, "pop.handoffs"); ho != 0 {
		t.Fatalf("static population handed off %d times", ho)
	}
}

// TestTelemetryTraceAndProgress: one pop.tick span and one OnTick
// callback per tick, with monotonically advancing tick counters.
func TestTelemetryTraceAndProgress(t *testing.T) {
	tracer := obs.NewTracer(64)
	var ticks []int
	m := popModelForTest(200, 5)
	RunWith(deploy.New(1), m, 1, 1, Telemetry{
		Trace:  tracer,
		OnTick: func(tick, total int) { ticks = append(ticks, tick); _ = total },
	})
	events := tracer.Events()
	if len(events) != m.Ticks {
		t.Fatalf("tracer holds %d spans, want %d", len(events), m.Ticks)
	}
	for i, e := range events {
		if e.Name != "pop.tick" || e.Cat != "pop" {
			t.Fatalf("span %d is %s/%s, want pop.tick/pop", i, e.Name, e.Cat)
		}
		if want := time.Duration(i) * m.TickDur; e.Sim != want {
			t.Fatalf("span %d anchored at sim %v, want %v", i, e.Sim, want)
		}
	}
	if len(ticks) != m.Ticks {
		t.Fatalf("OnTick fired %d times, want %d", len(ticks), m.Ticks)
	}
	for i, tk := range ticks {
		if tk != i+1 {
			t.Fatalf("OnTick sequence %v, want 1..%d", ticks, m.Ticks)
		}
	}
}

// TestInstrumentDetach: re-instrumenting with the zero Telemetry drops
// back to the uninstrumented fast path — the old registry stops moving.
func TestInstrumentDetach(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(deploy.New(5), popModelForTest(200, 10), 5)
	p.Instrument(Telemetry{Obs: reg})
	p.Tick(1)
	p.Tick(1)
	before := counterValue(t, reg, "pop.ticks")
	if before != 2 {
		t.Fatalf("pop.ticks = %d after 2 instrumented ticks", before)
	}
	p.Instrument(Telemetry{})
	p.Tick(1)
	if after := counterValue(t, reg, "pop.ticks"); after != before {
		t.Fatalf("detached population still counts: %d -> %d", before, after)
	}
}
