package pop

import (
	"sync"
	"testing"

	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
)

// TestSurveyConcurrentWithTicks runs a sharded coverage survey while a
// population ticks on the same warmed campus — the exact sharing pattern
// a campaign service hits when a live survey overlaps a running
// simulation. Under `go test -race` (the ci.sh race step) this proves
// the read paths the two share — field-map shortlists, cell batches,
// shadow lattice — are data-race free; without -race it still pins that
// the concurrent survey is byte-identical to a serial one.
//
// The population uses a static model with dynamics off: load coupling
// deliberately mutates radio.Cell.Load between ticks, which IS a real
// race with concurrent survey readers — concurrent use is only
// documented for static-load populations, and this test draws that
// boundary as much as it checks it.
func TestSurveyConcurrentWithTicks(t *testing.T) {
	campus := deploy.New(42)
	m := DefaultModel()
	m.N = 2000
	p := New(campus, m, 42) // warms the field maps
	p.Tick(1)

	ref := coverage.RunParallel(campus, 1500, 7, 1)
	refSamples := make([]coverage.Sample, len(ref.Samples))
	copy(refSamples, ref.Samples)

	var wg sync.WaitGroup
	wg.Add(1)
	var got *coverage.Survey
	go func() {
		defer wg.Done()
		got = coverage.RunParallel(campus, 1500, 7, 4)
	}()
	for i := 0; i < 20; i++ {
		p.Tick(2)
	}
	wg.Wait()

	for i := range refSamples {
		if got.Samples[i] != refSamples[i] {
			t.Fatalf("sample %d differs between concurrent and serial survey", i)
		}
	}
}
