package pop

import (
	"reflect"
	"testing"
	"time"

	"fivegsim/internal/coverage"
	"fivegsim/internal/deploy"
	"fivegsim/internal/handoff"
	"fivegsim/internal/radio"
	"fivegsim/internal/traffic"
)

// N=1 regression suite: the population layer must reproduce the paper's
// single-probe pipelines bit-for-bit when the population degenerates to
// one UE. The probe delegates are held DeepEqual to the seed pipelines,
// and the engine itself is held float-for-float against radio.DLBitRate
// at surveyed positions.

func TestProbeSurveyMatchesCoverage(t *testing.T) {
	campus := deploy.New(42)
	n := 1200
	if testing.Short() {
		n = 300
	}
	for _, workers := range []int{1, 8} {
		got := ProbeSurvey(campus, n, 42, workers)
		want := coverage.RunParallel(campus, n, 42, workers)
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Fatalf("workers %d: ProbeSurvey diverges from coverage.RunParallel", workers)
		}
	}
}

func TestProbeCampaignMatchesHandoff(t *testing.T) {
	campus := deploy.New(42)
	// ProbeCampaign is a direct delegate, so the equivalence holds by
	// construction and does not get stronger with campaign length — keep
	// the walks short instead of replaying the paper's full 80 minutes.
	cfg := handoff.DefaultConfig()
	cfg.Duration = 15 * time.Minute
	n := 3
	if testing.Short() {
		cfg.Duration = 5 * time.Minute
		n = 2
	}
	for _, workers := range []int{1, 8} {
		got := ProbeCampaign(campus, cfg, 42, n, workers)
		want := handoff.RunCampaigns(campus, cfg, 42, n, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers %d: ProbeCampaign diverges from handoff.RunCampaigns", workers)
		}
	}
}

// TestSingleUEMatchesProbePipeline is the substantive engine half of the
// N=1 contract: a single saturating UE teleported along surveyed
// positions must attach to the same serving cell the survey measured and
// deliver exactly radio.DLBitRate(m, band, band.PRBs) — the full-grid
// grant with no contention — bit-for-bit, for every Workers value.
func TestSingleUEMatchesProbePipeline(t *testing.T) {
	campus := deploy.New(42)
	n := 400
	if testing.Short() {
		n = 100
	}
	survey := coverage.RunParallel(campus, n, 42, 1)

	m := DefaultModel()
	m.N = 1
	m.MaxSpeedKmh = 0                                     // teleported, not walking
	m.Mix = traffic.MixWeights{Web: 0, Video: 0, Bulk: 1} // saturating probe

	for _, workers := range []int{1, 8} {
		p := New(campus, m, 42)
		if p.Len() != 1 {
			t.Fatalf("population size %d, want 1", p.Len())
		}
		for i, s := range survey.Samples {
			p.Place(0, s.Pos)
			p.Tick(workers)

			var want radio.Measurement
			var band radio.Band
			switch {
			case s.NR.Usable():
				want, band = s.NR, radio.BandNR()
			case s.LTE.Usable():
				want, band = s.LTE, radio.BandLTE()
			default:
				if p.ServingPCI(0) != -1 {
					t.Fatalf("sample %d: survey saw outage, population attached to PCI %d",
						i, p.ServingPCI(0))
				}
				continue
			}
			if p.ServingPCI(0) != want.PCI {
				t.Fatalf("sample %d: serving PCI %d, survey best server %d",
					i, p.ServingPCI(0), want.PCI)
			}
			if p.GrantPRB(0) != band.PRBs {
				t.Fatalf("sample %d: grant %d PRBs, want full grid %d (no contention)",
					i, p.GrantPRB(0), band.PRBs)
			}
			if got, exp := p.ThroughputBps(0), radio.DLBitRate(want, band, band.PRBs); got != exp {
				t.Fatalf("sample %d: throughput %.17g, probe pipeline %.17g (must be bit-identical)",
					i, got, exp)
			}
		}
	}
}
