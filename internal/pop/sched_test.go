package pop

import (
	"math/rand"
	"testing"
)

// Property suite for the PRB scheduler. Three properties are checked
// over 1000 randomized demand vectors (sizes 0–200, demands 0–400 PRBs,
// budgets 1–264 spanning underload and deep overload):
//
//   - conservation: Σ grants ≤ budget and 0 ≤ grant[i] ≤ demand[i];
//   - work-conservation: Σ grants == min(budget, Σ demands);
//   - starvation-freedom: under persistent overload every demanding UE
//     is served within ⌈n/budget⌉ consecutive rounds.

func TestScheduleProperties(t *testing.T) {
	r := rand.New(rand.NewSource(600))
	for trial := 0; trial < 1000; trial++ {
		n := r.Intn(201)
		budget := int32(1 + r.Intn(264))
		demands := make([]int32, n)
		grants := make([]int32, n)
		var want int64
		for i := range demands {
			switch r.Intn(4) {
			case 0:
				demands[i] = 0 // idle UE
			default:
				demands[i] = int32(r.Intn(401))
			}
			if demands[i] > 0 {
				want += int64(demands[i])
			}
		}
		round := r.Intn(1000)
		granted := Schedule(demands, grants, budget, round)

		var total int64
		for i, g := range grants {
			if g < 0 {
				t.Fatalf("trial %d: negative grant %d at %d", trial, g, i)
			}
			if g > demands[i] {
				t.Fatalf("trial %d: grant %d exceeds demand %d at %d", trial, g, demands[i], i)
			}
			total += int64(g)
		}
		if total != int64(granted) {
			t.Fatalf("trial %d: returned total %d != Σ grants %d", trial, granted, total)
		}
		if total > int64(budget) {
			t.Fatalf("trial %d: Σ grants %d exceeds budget %d", trial, total, budget)
		}
		expect := want
		if expect > int64(budget) {
			expect = int64(budget)
		}
		if total != expect {
			t.Fatalf("trial %d: not work-conserving: granted %d, want min(budget=%d, demand=%d)=%d",
				trial, total, budget, want, expect)
		}
	}
}

func TestScheduleZeroAndNegativeDemands(t *testing.T) {
	demands := []int32{-5, 0, 10, -1, 3}
	grants := make([]int32, len(demands))
	granted := Schedule(demands, grants, 100, 0)
	if granted != 13 {
		t.Fatalf("granted = %d, want 13", granted)
	}
	for i, g := range grants {
		if demands[i] <= 0 && g != 0 {
			t.Fatalf("non-demanding UE %d granted %d", i, g)
		}
	}
}

func TestScheduleEmptyAndZeroBudget(t *testing.T) {
	if g := Schedule(nil, nil, 100, 0); g != 0 {
		t.Fatalf("empty: granted %d", g)
	}
	demands := []int32{5, 5}
	grants := []int32{7, 7} // stale grants must be zeroed
	if g := Schedule(demands, grants, 0, 3); g != 0 || grants[0] != 0 || grants[1] != 0 {
		t.Fatalf("zero budget: granted %d, grants %v", g, grants)
	}
}

// TestScheduleStarvationFreedom runs deep overload — n demanding UEs,
// budget ≪ n — for ⌈n/budget⌉ consecutive rounds and checks that every
// UE was served at least once: the rotating shortfall start sweeps the
// whole index space.
func TestScheduleStarvationFreedom(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 50; trial++ {
		n := 50 + r.Intn(151)
		budget := int32(1 + r.Intn(20)) // far below n
		demands := make([]int32, n)
		grants := make([]int32, n)
		for i := range demands {
			demands[i] = int32(1 + r.Intn(50))
		}
		served := make([]bool, n)
		rounds := (n + int(budget) - 1) / int(budget)
		base := r.Intn(1000)
		for round := 0; round < rounds; round++ {
			Schedule(demands, grants, budget, base+round)
			for i, g := range grants {
				if g > 0 {
					served[i] = true
				}
			}
		}
		for i, s := range served {
			if !s {
				t.Fatalf("trial %d (n=%d budget=%d): UE %d starved over %d rounds",
					trial, n, budget, i, rounds)
			}
		}
	}
}

// TestScheduleDeterministic pins that Schedule is a pure function of
// (demands, budget, round) — same inputs, same grants.
func TestScheduleDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	demands := make([]int32, 120)
	for i := range demands {
		demands[i] = int32(r.Intn(100))
	}
	a := make([]int32, len(demands))
	b := make([]int32, len(demands))
	Schedule(demands, a, 264, 17)
	Schedule(demands, b, 264, 17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}
