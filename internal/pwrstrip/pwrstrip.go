// Package pwrstrip is the paper's custom energy logger: it reads battery
// status (timestamp, instantaneous current, voltage) at a 100 ms
// granularity — here from the simulated power series instead of the
// Android kernel — and integrates energy the way the §6 analysis does.
package pwrstrip

import (
	"fmt"
	"time"

	"fivegsim/internal/energy"
)

// Record is one battery sample: the (timestamp, current, voltage) triple
// pwrStrip reads from the kernel.
type Record struct {
	At        time.Duration
	CurrentMA float64
	VoltageV  float64
}

// PowerW returns the instantaneous power.
func (r Record) PowerW() float64 { return r.CurrentMA / 1000 * r.VoltageV }

// Interval is the sampling granularity of the tool.
const Interval = 100 * time.Millisecond

// nominalV is the battery voltage; it sags slightly under load.
const nominalV = 3.85

// Capture converts a simulated power series into battery records,
// including the non-radio device floor.
func Capture(series []energy.PowerSample, deviceFloorW float64) []Record {
	out := make([]Record, 0, len(series))
	for _, s := range series {
		p := s.PowerW + deviceFloorW
		v := nominalV - 0.04*p/3 // IR sag
		out = append(out, Record{At: s.At, CurrentMA: p / v * 1000, VoltageV: v})
	}
	return out
}

// EnergyJ integrates the trace (left Riemann sum at the tool's fixed
// interval, as the paper's offline analysis does).
func EnergyJ(records []Record) float64 {
	var j float64
	for _, r := range records {
		j += r.PowerW() * Interval.Seconds()
	}
	return j
}

// Header returns the CSV header of a pwrStrip trace.
func Header() []string { return []string{"t_ms", "current_ma", "voltage_v", "power_mw"} }

// Rows renders records for CSV export.
func Rows(records []Record) [][]string {
	rows := make([][]string, 0, len(records))
	for _, r := range records {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.At.Milliseconds()),
			fmt.Sprintf("%.1f", r.CurrentMA),
			fmt.Sprintf("%.3f", r.VoltageV),
			fmt.Sprintf("%.1f", r.PowerW()*1000),
		})
	}
	return rows
}
