package pwrstrip

import (
	"math"
	"testing"
	"time"

	"fivegsim/internal/energy"
)

func TestCaptureAndIntegrate(t *testing.T) {
	// Constant 1 W radio + 0.5 W floor for 10 s = 15 J.
	var series []energy.PowerSample
	for i := 0; i < 100; i++ {
		series = append(series, energy.PowerSample{At: time.Duration(i) * Interval, PowerW: 1.0})
	}
	recs := Capture(series, 0.5)
	if len(recs) != 100 {
		t.Fatalf("records = %d", len(recs))
	}
	if got := EnergyJ(recs); math.Abs(got-15) > 0.05 {
		t.Fatalf("energy = %.2f J, want 15", got)
	}
	for _, r := range recs {
		if r.VoltageV >= 3.85 || r.VoltageV < 3.5 {
			t.Fatalf("implausible voltage %v", r.VoltageV)
		}
		if math.Abs(r.PowerW()-1.5) > 1e-9 {
			t.Fatalf("power = %v, want 1.5", r.PowerW())
		}
	}
}

func TestCaptureMatchesReplayEnergy(t *testing.T) {
	// Integrating the pwrStrip trace of a replay should approximate the
	// replay's own energy accounting (the series samples at 100 ms; the
	// machine integrates at 10 ms, so bursts shorter than a sample can
	// differ — 20 % tolerance).
	tr := energy.Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, 100)}
	for i := 0; i < 30; i++ {
		tr.Bytes[i] = 4 << 20
	}
	r := energy.Replay(energy.ModelNSA, tr)
	got := EnergyJ(Capture(r.Series, 0))
	if r.EnergyJ <= 0 || math.Abs(got-r.EnergyJ)/r.EnergyJ > 0.2 {
		t.Fatalf("pwrstrip integral %.1f J vs replay %.1f J", got, r.EnergyJ)
	}
}

func TestRows(t *testing.T) {
	recs := []Record{{At: 100 * time.Millisecond, CurrentMA: 500, VoltageV: 3.8}}
	rows := Rows(recs)
	if len(rows) != 1 || len(rows[0]) != len(Header()) {
		t.Fatal("rows malformed")
	}
	if rows[0][0] != "100" {
		t.Fatalf("timestamp = %s", rows[0][0])
	}
}
