// Package wire implements the end-to-end latency study of §4.4: the
// Table 6 SPEEDTEST server catalog, the distance/hop RTT model behind
// Figs. 13–15, and the max-min-delay buffer estimation of Table 3.
package wire

// Server is one Table 6 measurement target.
type Server struct {
	ID         int
	Name       string
	IP         string
	City       string
	Lat, Lon   float64
	DistanceKm float64
}

// Servers is the paper's Table 6: the 20 nationwide SPEEDTEST servers used
// for the end-to-end delay analysis, 1.67–3426 km from the campus.
var Servers = []Server{
	{5145, "Beijing Unicom", "61.135.202.2", "Beijing", 39.9289, 116.3883, 1.67},
	{27154, "China Unicom 5G", "61.181.174.254", "Tianjin", 39.1422, 117.1767, 111.65},
	{5039, "China Unicom Jinan Branch", "119.164.254.58", "Jinan", 36.6683, 116.9972, 366.42},
	{25728, "China Mobile Liaoning Branch Dalian", "221.180.176.102", "Dalian", 38.9128, 121.4989, 462.77},
	{27100, "Shandong CMCC 5G", "120.221.94.86", "Qingdao", 36.1748, 120.4284, 553.80},
	{5396, "China Telecom Jiangsu 5G", "115.169.22.130", "Suzhou", 31.3566, 120.4682, 638.00},
	{16375, "China Mobile Jilin", "111.26.139.78", "Changchun", 43.7914, 125.4784, 859.32},
	{5724, "China Unicom", "112.122.10.26", "Hefei", 31.8639, 117.2808, 900.06},
	{5485, "China Unicom Hubei Branch", "113.57.249.2", "Wuhan", 30.5801, 114.2734, 1056.52},
	{4690, "China Unicom Lanzhou Branch Co.Ltd", "180.95.155.86", "Lanzhou", 36.0564, 103.7922, 1183.99},
	{6715, "China Mobile Zhejiang 5G", "112.15.227.66", "Ningbo", 29.8573, 121.6323, 1213.23},
	{4870, "Changsha Hunan Unicom Server1", "220.202.152.178", "Changsha", 28.1792, 113.1136, 1341.73},
	{5530, "CCN", "117.59.115.2", "Chongqing", 29.5628, 106.5528, 1459.16},
	{4884, "China Unicom Fujian", "36.250.1.90", "Fuzhou", 26.0614, 119.3061, 1563.93},
	{16398, "China Mobile Guizhou", "117.187.8.178", "Guiyang", 26.6639, 106.6779, 1730.12},
	{26678, "Guangzhou Unicom 5G", "58.248.20.98", "Guangzhou", 23.1167, 113.25, 1890.52},
	{5674, "GX Unicom", "121.31.15.130", "Nanning", 22.8167, 108.3167, 2048.98},
	{16503, "China Mobile Hainan", "221.182.240.218", "Haikou", 19.9111, 110.3301, 2285.12},
	{27575, "Xinjiang Telecom Cloud", "202.100.171.140", "Urumqi", 43.8010, 87.6005, 2404.00},
	{17245, "China Mobile Group Xinjiang", "117.190.149.118", "Kashi", 39.4694, 76.0739, 3426.37},
}
