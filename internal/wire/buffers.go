package wire

import (
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
)

// BufferEstimate reproduces Table 3: in-network buffer sizes estimated by
// the classical max-min delay method — the largest queueing delay observed
// on a segment times an assumed 1 Gb/s capacity, expressed in 60-byte
// packets, exactly the paper's accounting.
type BufferEstimate struct {
	RAN       int
	Wired     int
	WholePath int
}

// estimation constants per the paper: "the result is derived under the
// assumption of 1 Gbps path capacity and also 60 Bytes packet size".
const (
	assumedCapacityBps = 1e9
	assumedPacketBytes = 60
)

// EstimateBuffers loads a path to 90 % of its baseline (so the wired
// bottleneck exercises its depth during cross-traffic episodes while the
// RAN queue stays transient) for the given duration, sampling per-segment
// queueing delay every 10 ms, then converts max-min delay into the
// Table 3 packet counts.
func EstimateBuffers(tech radio.Tech, duration time.Duration, seed int64) BufferEstimate {
	cfg := netsim.DefaultPath(tech, true)
	cfg.Seed = seed
	sch := des.New()
	path := netsim.NewPath(sch, cfg)
	path.ToUE = netsim.ReceiverFunc(func(p *netsim.Packet) {})

	offered := cfg.RANRateBps * 0.90
	interval := time.Duration(float64((netsim.MSS+netsim.HeaderBytes)*8) / offered * float64(time.Second))
	var seq int64
	var tick func()
	tick = func() {
		if sch.Now() >= duration {
			return
		}
		path.ServerIngress.Receive(&netsim.Packet{Seq: seq, Len: netsim.MSS, Wire: netsim.MSS + netsim.HeaderBytes})
		seq++
		sch.After(interval, tick)
	}
	tick()

	var ranMaxDelay, wiredMaxDelay float64 // seconds
	var sample func()
	sample = func() {
		if sch.Now() >= duration {
			return
		}
		if d := float64(path.RAN.QueuedBytes()*8) / cfg.RANRateBps; d > ranMaxDelay {
			ranMaxDelay = d
		}
		if d := float64(path.Bottleneck.QueuedBytes()*8) / cfg.BottleneckBps; d > wiredMaxDelay {
			wiredMaxDelay = d
		}
		sch.After(10*time.Millisecond, sample)
	}
	sample()
	sch.RunUntil(duration)

	toPackets := func(delaySec float64) int {
		return int(delaySec * assumedCapacityBps / 8 / assumedPacketBytes)
	}
	est := BufferEstimate{
		RAN:   toPackets(ranMaxDelay),
		Wired: toPackets(wiredMaxDelay),
	}
	est.WholePath = est.RAN + est.Wired
	return est
}

// StanfordBufferRule returns the buffer a bottleneck needs under the
// B = RTT·C/√n rule the paper cites [16,71,85], in bytes.
func StanfordBufferRule(rtt time.Duration, capacityBps float64, flows int) int {
	if flows < 1 {
		flows = 1
	}
	return int(rtt.Seconds() * capacityBps / 8 / sqrtf(flows))
}

func sqrtf(n int) float64 {
	x := float64(n)
	// Newton iterations are plenty for the small n used here.
	g := x
	for i := 0; i < 20; i++ {
		g = (g + x/g) / 2
	}
	return g
}
