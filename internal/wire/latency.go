package wire

import (
	"math"
	"time"

	"fivegsim/internal/par"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
	"fivegsim/internal/stats"
)

// Latency model calibration (§4.4): the 5G access RTT (RAN + flat core +
// metro) is ≈10.5 ms; the legacy 4G core adds ≈22 ms of RTT ("the flatten
// architecture ... reduces latency by 20 ms" plus the slower 4G air
// interface); the wire adds ≈26.5 µs of RTT per kilometre (fibre at 2/3 c
// with ≈2.7× routing inflation) and ≈0.8 ms per transit router.
const (
	accessRTT5G = 10500 * time.Microsecond
	coreExtra4G = 22300 * time.Microsecond
	perKmRTT    = 26.5 * float64(time.Microsecond)
	perHopRTT   = 800 * time.Microsecond
)

// ranRTT returns the hop-1 round trip of Fig. 14: 2.19 ms (5G) vs 2.6 ms
// (4G).
func ranRTT(t radio.Tech) time.Duration {
	if t == radio.NR {
		return 2190 * time.Microsecond
	}
	return 2600 * time.Microsecond
}

// HopCount returns the transit router count to a target at the given
// distance (grows with distance like real interprovince paths).
func HopCount(distanceKm float64) int {
	if distanceKm < 0 {
		distanceKm = 0
	}
	return 4 + int(math.Round(2.2*math.Log10(1+distanceKm/8)))
}

// BaseRTT returns the deterministic RTT to a target at distanceKm over
// the given technology.
func BaseRTT(t radio.Tech, distanceKm float64) time.Duration {
	rtt := accessRTT5G +
		time.Duration(perKmRTT*distanceKm) +
		time.Duration(HopCount(distanceKm)-4)*perHopRTT
	if t == radio.LTE {
		rtt += coreExtra4G
	}
	return rtt
}

// Probe is one traceroute-style RTT sample.
type Probe struct {
	Server Server
	Tech   radio.Tech
	RTT    time.Duration
}

// MeasureServer draws n RTT probes to one server (queueing jitter is
// log-normal around the base).
func MeasureServer(t radio.Tech, s Server, n int, seed int64) []Probe {
	return MeasureServerDegraded(t, s, n, seed, Degradation{})
}

// Degradation models a browned-out wired segment as probes see it:
// ExtraRTT of deterministic inflation (rerouting, upstream queueing)
// plus a multiplicative JitterScale on the log-normal queueing term (a
// segment draining at reduced rate queues proportionally longer). The
// zero value is no degradation; JitterScale 0 means 1.
type Degradation struct {
	ExtraRTT    time.Duration
	JitterScale float64
}

// MeasureServerDegraded is MeasureServer through a degraded segment.
// The probe stream and draw sequence are identical to the clean
// measurement, so a zero Degradation reproduces MeasureServer byte for
// byte and a (seed, Degradation) pair is deterministic.
func MeasureServerDegraded(t radio.Tech, s Server, n int, seed int64, deg Degradation) []Probe {
	r := rng.New(seed).Stream("wire." + s.Name + t.String())
	base := BaseRTT(t, s.DistanceKm) + deg.ExtraRTT
	scale := deg.JitterScale
	if scale == 0 {
		scale = 1
	}
	out := make([]Probe, n)
	for i := range out {
		jitter := rng.LogNormal(r, math.Log(1.5), 0.8) * scale // ms of queueing
		rtt := base + time.Duration(jitter*float64(time.Millisecond))
		out[i] = Probe{Server: s, Tech: t, RTT: rtt}
	}
	return out
}

// Fig13Pair is one scatter point: the 4G and 5G RTT of the same path.
type Fig13Pair struct {
	Server Server
	RTT4G  time.Duration
	RTT5G  time.Duration
}

// RTTScatter reproduces Fig. 13: for each of the 20 servers measured from
// 4 gNB/eNB sites (80 paths), the mean 4G vs 5G RTT over 30 probes. The
// paths are probed across up to workers goroutines (0 = GOMAXPROCS);
// every path's probe stream is keyed by (site, server), so the scatter
// is identical for any worker count.
func RTTScatter(seed int64, workers int) []Fig13Pair {
	const sites = 4
	return par.Map(workers, sites*len(Servers), func(k int) Fig13Pair {
		site, s := k/len(Servers), Servers[k%len(Servers)]
		p4 := MeasureServer(radio.LTE, s, 30, seed+int64(site*1000+s.ID))
		p5 := MeasureServer(radio.NR, s, 30, seed+int64(site*1000+s.ID)+7)
		return Fig13Pair{
			Server: s,
			RTT4G:  meanRTT(p4),
			RTT5G:  meanRTT(p5),
		}
	})
}

func meanRTT(ps []Probe) time.Duration {
	var sum time.Duration
	for _, p := range ps {
		sum += p.RTT
	}
	return sum / time.Duration(len(ps))
}

// ScatterSummary aggregates the Fig. 13 headline numbers.
type ScatterSummary struct {
	MeanOneWay5G time.Duration // paper: 21.8 ms
	MeanRTTGap   time.Duration // paper: 22.3 ms (31.86 %)
	GapFraction  float64
}

// Summarize computes the §4.4 overview statistics from the scatter.
func Summarize(pairs []Fig13Pair) ScatterSummary {
	var sum5, gap, sum4 time.Duration
	for _, p := range pairs {
		sum5 += p.RTT5G
		sum4 += p.RTT4G
		gap += p.RTT4G - p.RTT5G
	}
	n := time.Duration(len(pairs))
	out := ScatterSummary{
		MeanOneWay5G: sum5 / n / 2,
		MeanRTTGap:   gap / n,
	}
	if sum4 > 0 {
		out.GapFraction = float64(gap) / float64(sum4)
	}
	return out
}

// HopRTT is one rung of the Fig. 14 per-hop RTT ladder.
type HopRTT struct {
	Hop int
	RTT time.Duration
}

// HopBreakdown reproduces Fig. 14: cumulative traceroute RTT over the
// 8-hop example path. Hop 1 is the RAN, hop 2 the cellular core (where the
// 5G flat architecture wins ≈20 ms), hops 3–8 the wired Internet.
func HopBreakdown(t radio.Tech, seed int64) []HopRTT {
	r := rng.New(seed).Stream("wire.hops" + t.String())
	out := []HopRTT{{Hop: 1, RTT: ranRTT(t) + time.Duration(rng.ClampedNormal(r, 0, 0.2, -0.3, 0.3)*float64(time.Millisecond))}}
	core := accessRTT5G - ranRTT(radio.NR) - 4*time.Millisecond // metro share stays in later hops
	if t == radio.LTE {
		core += coreExtra4G
	}
	cum := out[0].RTT + core
	out = append(out, HopRTT{Hop: 2, RTT: cum})
	// Six wired hops of the same-city example path (≈30 km total).
	perHop := []float64{1.2, 0.9, 1.4, 1.1, 0.8, 1.6}
	for i, ms := range perHop {
		cum += time.Duration((ms + rng.ClampedNormal(r, 0, 0.25, -0.5, 0.5)) * float64(time.Millisecond))
		out = append(out, HopRTT{Hop: 3 + i, RTT: cum})
	}
	return out
}

// DistanceBin is one Fig. 15 x-axis group.
type DistanceBin struct {
	LoKm, HiKm float64
	RTT4G      stats.Summary
	RTT5G      stats.Summary
}

// RTTvsDistance reproduces Fig. 15: RTT grouped by path distance. The
// per-server probe sweeps run across up to workers goroutines; probe
// streams are keyed per server, and binning walks the servers in catalog
// order, so the bins are identical for any worker count.
func RTTvsDistance(seed int64, workers int) []DistanceBin {
	edges := []float64{0, 200, 600, 1200, 1800, 2500, 3500}
	bins := make([]DistanceBin, len(edges)-1)
	for i := range bins {
		bins[i] = DistanceBin{LoKm: edges[i], HiKm: edges[i+1]}
	}
	collect := func(t radio.Tech) map[int][]float64 {
		probes := par.Map(workers, len(Servers), func(k int) []Probe {
			return MeasureServer(t, Servers[k], 30, seed+int64(Servers[k].ID))
		})
		m := map[int][]float64{}
		for k, s := range Servers {
			for _, p := range probes[k] {
				for i := range bins {
					if s.DistanceKm >= bins[i].LoKm && s.DistanceKm < bins[i].HiKm {
						m[i] = append(m[i], float64(p.RTT)/float64(time.Millisecond))
					}
				}
			}
		}
		return m
	}
	m4 := collect(radio.LTE)
	m5 := collect(radio.NR)
	for i := range bins {
		bins[i].RTT4G = stats.Summarize(m4[i])
		bins[i].RTT5G = stats.Summarize(m5[i])
	}
	return bins
}
