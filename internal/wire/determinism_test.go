package wire

import (
	"testing"
	"time"

	"fivegsim/internal/radio"
)

func TestMeasureServerDeterministic(t *testing.T) {
	a := MeasureServer(radio.NR, Servers[3], 10, 7)
	b := MeasureServer(radio.NR, Servers[3], 10, 7)
	for i := range a {
		if a[i].RTT != b[i].RTT {
			t.Fatal("probes not deterministic")
		}
	}
	c := MeasureServer(radio.NR, Servers[3], 10, 8)
	if a[0].RTT == c[0].RTT && a[1].RTT == c[1].RTT {
		t.Fatal("different seeds should differ")
	}
}

func TestProbeJitterAlwaysPositive(t *testing.T) {
	for _, s := range Servers {
		base := BaseRTT(radio.NR, s.DistanceKm)
		for _, p := range MeasureServer(radio.NR, s, 30, 3) {
			if p.RTT <= base {
				t.Fatalf("probe RTT %v at or below base %v (queueing jitter must add)", p.RTT, base)
			}
			if p.RTT > base+200*time.Millisecond {
				t.Fatalf("probe RTT %v implausibly far above base %v", p.RTT, base)
			}
		}
	}
}

func TestEstimateBuffersDeterministic(t *testing.T) {
	a := EstimateBuffers(radio.LTE, 5*time.Second, 3)
	b := EstimateBuffers(radio.LTE, 5*time.Second, 3)
	if a != b {
		t.Fatalf("buffer estimation not deterministic: %+v vs %+v", a, b)
	}
}
