package wire

import (
	"math"
	"testing"
	"time"

	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
)

func TestTable6Catalog(t *testing.T) {
	if len(Servers) != 20 {
		t.Fatalf("Table 6 has 20 servers, got %d", len(Servers))
	}
	prev := 0.0
	for _, s := range Servers {
		if s.DistanceKm < prev {
			t.Fatalf("servers not ordered by distance at %s", s.Name)
		}
		prev = s.DistanceKm
		if s.IP == "" || s.City == "" || s.Lat == 0 || s.Lon == 0 {
			t.Fatalf("incomplete server record: %+v", s)
		}
	}
	if Servers[0].DistanceKm != 1.67 || math.Abs(Servers[19].DistanceKm-3426.37) > 0.01 {
		t.Fatal("distance endpoints do not match Table 6")
	}
}

func TestFig13Scatter(t *testing.T) {
	pairs := RTTScatter(42, 1)
	if len(pairs) != 80 {
		t.Fatalf("paper measures 80 paths, got %d", len(pairs))
	}
	s := Summarize(pairs)
	// Paper: 5G one-way 21.8 ms; gap 22.3 ms (31.86 %).
	oneWay := float64(s.MeanOneWay5G) / float64(time.Millisecond)
	if math.Abs(oneWay-21.8) > 4 {
		t.Fatalf("5G mean one-way = %.1f ms, paper 21.8", oneWay)
	}
	gap := float64(s.MeanRTTGap) / float64(time.Millisecond)
	if math.Abs(gap-22.3) > 3 {
		t.Fatalf("RTT gap = %.1f ms, paper 22.3", gap)
	}
	if s.GapFraction < 0.2 || s.GapFraction > 0.45 {
		t.Fatalf("gap fraction = %.2f, paper 31.86%%", s.GapFraction)
	}
	// 5G wins on every path.
	for _, p := range pairs {
		if p.RTT5G >= p.RTT4G {
			t.Fatalf("5G slower than 4G to %s", p.Server.Name)
		}
	}
}

func TestFig14HopBreakdown(t *testing.T) {
	nr := HopBreakdown(radio.NR, 1)
	lte := HopBreakdown(radio.LTE, 1)
	if len(nr) != 8 || len(lte) != 8 {
		t.Fatalf("want 8 hops, got %d/%d", len(nr), len(lte))
	}
	// Hop 1 (RAN): 2.19 vs 2.6 ms — a negligible difference.
	h1nr := float64(nr[0].RTT) / float64(time.Millisecond)
	h1lte := float64(lte[0].RTT) / float64(time.Millisecond)
	if math.Abs(h1nr-2.19) > 0.5 || math.Abs(h1lte-2.6) > 0.5 {
		t.Fatalf("hop-1 RTTs %.2f/%.2f, paper 2.19/2.6", h1nr, h1lte)
	}
	// The reduction comes from hop 2 (the flat core): the 4G−5G gap at
	// hop 2 is ≈20 ms larger than at hop 1.
	gap1 := lte[0].RTT - nr[0].RTT
	gap2 := lte[1].RTT - nr[1].RTT
	delta := float64(gap2-gap1) / float64(time.Millisecond)
	if math.Abs(delta-22.3) > 3 {
		t.Fatalf("core-hop gap growth = %.1f ms, paper ≈20 ms", delta)
	}
	// Cumulative RTT must be monotone.
	for i := 1; i < 8; i++ {
		if nr[i].RTT <= nr[i-1].RTT || lte[i].RTT <= lte[i-1].RTT {
			t.Fatal("cumulative hop RTT not monotone")
		}
	}
}

func TestFig15RTTvsDistance(t *testing.T) {
	bins := RTTvsDistance(42, 1)
	// 5× RTT growth from ≈100 km to ≈2500 km.
	var rtt100, rtt2500 float64
	for _, b := range bins {
		if b.LoKm == 0 && b.RTT5G.N > 0 {
			rtt100 = b.RTT5G.Mean
		}
		if b.LoKm == 1800 && b.RTT5G.N > 0 {
			rtt2500 = b.RTT5G.Mean
		}
	}
	if rtt100 == 0 || rtt2500 == 0 {
		t.Fatal("missing distance bins")
	}
	ratio := rtt2500 / rtt100
	if ratio < 3 || ratio > 7.5 {
		t.Fatalf("RTT(2500)/RTT(100) = %.1f, paper ≈5×", ratio)
	}
	// Paper: ≈82.35 ms at 2500 km for 5G.
	if math.Abs(rtt2500-82.35) > 15 {
		t.Fatalf("5G RTT at long range = %.1f ms, paper 82.35", rtt2500)
	}
	// The 4G−5G gap is roughly constant (22±3.57 ms) so its *relative*
	// share shrinks with distance.
	first, last := bins[0], bins[len(bins)-1]
	gapFirst := first.RTT4G.Mean - first.RTT5G.Mean
	gapLast := last.RTT4G.Mean - last.RTT5G.Mean
	if math.Abs(gapFirst-22) > 5 || math.Abs(gapLast-22) > 5 {
		t.Fatalf("gap not ≈22 ms across distance: %.1f / %.1f", gapFirst, gapLast)
	}
	if gapLast/last.RTT4G.Mean >= gapFirst/first.RTT4G.Mean {
		t.Fatal("relative latency advantage should shrink with distance")
	}
}

func TestTable3BufferEstimates(t *testing.T) {
	nr := EstimateBuffers(radio.NR, 20*time.Second, 42)
	lte := EstimateBuffers(radio.LTE, 20*time.Second, 42)
	// Table 3 shape: wired dominates the whole path; the 5G path's wired
	// buffer ≈2.5× the 4G path's; whole path ≈2.5–3×.
	if nr.Wired <= nr.RAN {
		t.Fatalf("5G wired estimate (%d) must dominate RAN (%d)", nr.Wired, nr.RAN)
	}
	wiredRatio := float64(nr.Wired) / float64(lte.Wired)
	if wiredRatio < 1.8 || wiredRatio > 3.5 {
		t.Fatalf("wired buffer ratio = %.2f, paper ≈2.5", wiredRatio)
	}
	pathRatio := float64(nr.WholePath) / float64(lte.WholePath)
	if pathRatio < 1.8 || pathRatio > 4 {
		t.Fatalf("whole-path ratio = %.2f, paper ≈2.66", pathRatio)
	}
	// Magnitudes in the paper's units (60 B packets at 1 Gb/s): wired 5G
	// ≈26724, 4G ≈10539.
	if nr.Wired < 15000 || nr.Wired > 35000 {
		t.Fatalf("5G wired estimate = %d pkts, paper 26724", nr.Wired)
	}
	if lte.Wired < 6000 || lte.Wired > 14000 {
		t.Fatalf("4G wired estimate = %d pkts, paper 10539", lte.Wired)
	}
}

func TestStanfordRule(t *testing.T) {
	// The paper's argument: with equal flow counts and similar RTT, the 5G
	// path needs ≈5× the buffer of the 4G path (capacity ratio 880/130).
	rtt := 40 * time.Millisecond
	b5 := StanfordBufferRule(rtt, 880e6, 16)
	b4 := StanfordBufferRule(rtt, 130e6, 16)
	ratio := float64(b5) / float64(b4)
	if math.Abs(ratio-880.0/130.0) > 0.1 {
		t.Fatalf("Stanford-rule ratio = %.2f, want %.2f", ratio, 880.0/130.0)
	}
	if b5 <= 0 {
		t.Fatal("non-positive buffer")
	}
}

func TestHopCountGrowsWithDistance(t *testing.T) {
	if HopCount(1) >= HopCount(1000) || HopCount(1000) >= HopCount(3400) {
		t.Fatal("hop count must grow with distance")
	}
	if HopCount(0) < 4 {
		t.Fatal("minimum path has ≥4 hops")
	}
}

func TestBaseRTTMonotone(t *testing.T) {
	prev := time.Duration(0)
	for _, d := range []float64{1, 100, 500, 1500, 3000} {
		rtt := BaseRTT(radio.NR, d)
		if rtt <= prev {
			t.Fatal("BaseRTT not monotone in distance")
		}
		if BaseRTT(radio.LTE, d) <= rtt {
			t.Fatal("4G must be slower than 5G at every distance")
		}
		prev = rtt
	}
}

func TestFig13ScatterCorrelation(t *testing.T) {
	// The paper's scatter hugs a line offset by the constant core gap: the
	// per-path 4G and 5G RTTs must be strongly correlated (distance is the
	// shared driver).
	pairs := RTTScatter(42, 1)
	var xs, ys []float64
	for _, p := range pairs {
		xs = append(xs, float64(p.RTT4G))
		ys = append(ys, float64(p.RTT5G))
	}
	if r := stats.Pearson(xs, ys); r < 0.95 {
		t.Fatalf("4G/5G RTT correlation = %.3f, scatter should hug the diagonal", r)
	}
}
