package wire

import (
	"reflect"
	"testing"
)

// The probe sweeps behind Figs. 13–14 keep per-path seeds fixed by
// (site, server), so fanning the sweep out cannot change a single RTT.
func TestRTTScatterWorkerEquivalence(t *testing.T) {
	seeds := []int64{1, 42, 7}
	if testing.Short() {
		seeds = seeds[:1] // one seed still races the fan-out under CI
	}
	for _, seed := range seeds {
		serial := RTTScatter(seed, 1)
		for _, workers := range []int{2, 4, 16} {
			if par := RTTScatter(seed, workers); !reflect.DeepEqual(serial, par) {
				t.Fatalf("seed %d: RTTScatter differs at workers=%d", seed, workers)
			}
		}
	}
}

func TestRTTvsDistanceWorkerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42, 7} {
		serial := RTTvsDistance(seed, 1)
		for _, workers := range []int{2, 8} {
			if par := RTTvsDistance(seed, workers); !reflect.DeepEqual(serial, par) {
				t.Fatalf("seed %d: RTTvsDistance differs at workers=%d", seed, workers)
			}
		}
	}
}

func TestRTTScatterSeedSensitivity(t *testing.T) {
	if reflect.DeepEqual(RTTScatter(1, 2), RTTScatter(2, 2)) {
		t.Fatal("different seeds produced identical scatter data")
	}
}
