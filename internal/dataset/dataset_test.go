package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestWriteCSVRowWidthMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("want error on row width mismatch")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"x\": 1") {
		t.Fatalf("json = %q", buf.String())
	}
}
