// Package dataset writes the released-dataset artifacts (CSV/JSON) so the
// simulated campaign can be exported in the same spirit as the paper's
// public data release [68].
package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV writes a header plus rows.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("dataset: row %d has %d fields, header has %d", i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("dataset: encode json: %w", err)
	}
	return nil
}
