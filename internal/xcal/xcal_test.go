package xcal

import (
	"strings"
	"testing"
	"time"

	"fivegsim/internal/geom"
	"fivegsim/internal/handoff"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

func TestKPILogging(t *testing.T) {
	l := New()
	m := radio.Measurement{PCI: 72, Tech: radio.NR, RSRPdBm: -84.5, RSRQdB: -11.2, SINRdB: 14.3, CQI: 11, MCS: 19}
	l.LogKPI(2*time.Second, geom.Point{X: 10, Y: 20}, m, 264)
	l.LogKPI(time.Second, geom.Point{X: 5, Y: 9}, m, 260)
	rows := l.KPIRows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "1000" {
		t.Fatalf("rows not time-ordered: %v", rows[0])
	}
	if len(rows[0]) != len(KPIHeader()) {
		t.Fatal("row width != header width")
	}
	if rows[0][3] != "5G" || rows[0][4] != "72" {
		t.Fatalf("unexpected row: %v", rows[0])
	}
}

func TestHandoffLadderLogging(t *testing.T) {
	l := New()
	trace, total := handoff.Execute(handoff.FiveToFive, rng.New(1).Stream("x"))
	l.LogHandoff(handoff.Event{
		Kind: handoff.FiveToFive, At: time.Second, FromPCI: 226, ToPCI: 44,
		Latency: total, Trace: trace,
	})
	// Measurement report + every ladder step + completion.
	want := len(trace) + 2
	if len(l.Signaling) != want {
		t.Fatalf("signaling rows = %d, want %d", len(l.Signaling), want)
	}
	joined := ""
	for _, s := range l.Signaling {
		joined += s.Message + "\n"
	}
	for _, needle := range []string{"Measurement Report", "Roll-back to master eNB", "Hand-off Complete"} {
		if !strings.Contains(joined, needle) {
			t.Fatalf("signaling log missing %q", needle)
		}
	}
	if rows := l.SignalingRows(); len(rows) != want || len(rows[0]) != len(SignalingHeader()) {
		t.Fatal("signaling rows malformed")
	}
}
