// Package xcal is the XCAL-Mobile-equivalent logger: it records the
// physical/MAC-layer KPI samples and control-plane signaling messages the
// paper's measurement campaign collects over the diagnostic interface,
// and exports them in the released-dataset format.
package xcal

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fivegsim/internal/geom"
	"fivegsim/internal/handoff"
	"fivegsim/internal/radio"
)

// KPIRecord is one physical-layer sample row.
type KPIRecord struct {
	At      time.Duration
	Pos     geom.Point
	Tech    radio.Tech
	PCI     int
	RSRPdBm float64
	RSRQdB  float64
	SINRdB  float64
	CQI     int
	MCS     int
	PRBs    int
}

// SignalingRecord is one control-plane message row.
type SignalingRecord struct {
	At      time.Duration
	Message string
	Detail  string
}

// Logger accumulates KPI and signaling rows like an XCAL capture session.
// The Log methods and row accessors are safe for concurrent use, so
// parallel campaign shards may feed one capture session; read the KPIs
// and Signaling fields directly only after logging has quiesced.
type Logger struct {
	mu        sync.Mutex
	KPIs      []KPIRecord
	Signaling []SignalingRecord
}

// New returns an empty capture session.
func New() *Logger { return &Logger{} }

// LogKPI appends a KPI sample built from a radio measurement.
func (l *Logger) LogKPI(at time.Duration, pos geom.Point, m radio.Measurement, prbs int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.KPIs = append(l.KPIs, KPIRecord{
		At: at, Pos: pos, Tech: m.Tech, PCI: m.PCI,
		RSRPdBm: m.RSRPdBm, RSRQdB: m.RSRQdB, SINRdB: m.SINRdB,
		CQI: m.CQI, MCS: m.MCS, PRBs: prbs,
	})
}

// LogSignaling appends a control-plane message.
func (l *Logger) LogSignaling(at time.Duration, message, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.Signaling = append(l.Signaling, SignalingRecord{At: at, Message: message, Detail: detail})
}

// LogHandoff appends the full signaling ladder of a hand-off event, the
// way XCAL-Mobile exposes the Fig. 24 exchange. The ladder is appended
// atomically, so concurrent loggers cannot interleave their messages
// inside one hand-off's exchange.
func (l *Logger) LogHandoff(e handoff.Event) {
	at := e.At
	recs := make([]SignalingRecord, 0, len(e.Trace)+2)
	recs = append(recs, SignalingRecord{At: at, Message: "Measurement Report",
		Detail: fmt.Sprintf("serving PCI %d, neighbor PCI %d", e.FromPCI, e.ToPCI)})
	for _, step := range e.Trace {
		recs = append(recs, SignalingRecord{At: at, Message: step.Name,
			Detail: fmt.Sprintf("%s hand-off, step latency %v", e.Kind, step.Latency)})
		at += step.Latency
	}
	recs = append(recs, SignalingRecord{At: at, Message: "Hand-off Complete",
		Detail: fmt.Sprintf("PCI %d → %d in %v", e.FromPCI, e.ToPCI, e.Latency)})
	l.mu.Lock()
	defer l.mu.Unlock()
	l.Signaling = append(l.Signaling, recs...)
}

// KPIHeader returns the CSV header of the KPI table.
func KPIHeader() []string {
	return []string{"t_ms", "x_m", "y_m", "tech", "pci", "rsrp_dbm", "rsrq_db", "sinr_db", "cqi", "mcs", "prbs"}
}

// KPIRows renders the KPI table as CSV-ready strings, time-ordered.
func (l *Logger) KPIRows() [][]string {
	l.mu.Lock()
	sorted := append([]KPIRecord(nil), l.KPIs...)
	l.mu.Unlock()
	rows := make([][]string, 0, len(sorted))
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, k := range sorted {
		rows = append(rows, []string{
			fmt.Sprintf("%d", k.At.Milliseconds()),
			fmt.Sprintf("%.1f", k.Pos.X),
			fmt.Sprintf("%.1f", k.Pos.Y),
			k.Tech.String(),
			fmt.Sprintf("%d", k.PCI),
			fmt.Sprintf("%.2f", k.RSRPdBm),
			fmt.Sprintf("%.2f", k.RSRQdB),
			fmt.Sprintf("%.2f", k.SINRdB),
			fmt.Sprintf("%d", k.CQI),
			fmt.Sprintf("%d", k.MCS),
			fmt.Sprintf("%d", k.PRBs),
		})
	}
	return rows
}

// SignalingHeader returns the CSV header of the signaling table.
func SignalingHeader() []string { return []string{"t_ms", "message", "detail"} }

// SignalingRows renders the signaling log.
func (l *Logger) SignalingRows() [][]string {
	l.mu.Lock()
	msgs := append([]SignalingRecord(nil), l.Signaling...)
	l.mu.Unlock()
	rows := make([][]string, 0, len(msgs))
	for _, s := range msgs {
		rows = append(rows, []string{fmt.Sprintf("%d", s.At.Milliseconds()), s.Message, s.Detail})
	}
	return rows
}
