package video

import (
	"testing"
	"time"

	"fivegsim/internal/radio"
)

func TestFig18ThroughputShape(t *testing.T) {
	rows := RunFig18(30*time.Second, 42)
	if len(rows) != 16 {
		t.Fatalf("want 16 rows (4 res × 2 scenes × 2 techs), got %d", len(rows))
	}
	get := func(res Resolution, tech radio.Tech, dyn bool) float64 {
		for _, r := range rows {
			if r.Res == res && r.Tech == tech && r.Dynamic == dyn {
				return r.Received
			}
		}
		t.Fatalf("missing row %v/%v/%v", res, tech, dyn)
		return 0
	}
	// §5.2: all resolutions fit within the 5G uplink; 4G cannot support
	// 5.7K ("the average throughput of 5.7K video under 4G is much smaller
	// than that under 5G").
	if g5, g4 := get(R57K, radio.NR, false), get(R57K, radio.LTE, false); g4 > 0.72*g5 {
		t.Fatalf("4G 5.7K (%.0f Mb/s) should fall far below 5G (%.0f Mb/s)", g4/1e6, g5/1e6)
	}
	// 5G carries static 5.7K essentially loss-free (≈74 Mb/s offered).
	if g := get(R57K, radio.NR, false); g < 65e6 || g > 85e6 {
		t.Fatalf("5G static 5.7K received = %.0f Mb/s, want ≈74", g/1e6)
	}
	// Up to 4K, 4G and 5G receive the same static stream (both fit).
	for _, res := range []Resolution{R720P, R1080P} {
		g5, g4 := get(res, radio.NR, false), get(res, radio.LTE, false)
		if g4 < 0.95*g5 {
			t.Fatalf("%v static should fit both techs: 4G %.0f vs 5G %.0f", res, g4/1e6, g5/1e6)
		}
	}
	// Dynamic scenes carry more bits than static at every resolution.
	for _, res := range Resolutions() {
		if get(res, radio.NR, true) <= get(res, radio.NR, false) {
			t.Fatalf("%v: dynamic throughput should exceed static on 5G", res)
		}
	}
	// 5G received rates never exceed the uplink budget by more than
	// rounding.
	for _, r := range rows {
		if r.Tech == radio.NR && r.Received > 108e6 {
			t.Fatalf("received %.0f Mb/s exceeds the 5G uplink", r.Received/1e6)
		}
	}
}

func TestFig19FluctuationAndFreezes(t *testing.T) {
	dyn := Run(R57K, radio.NR, true, 30*time.Second, 42)
	static := Run(R57K, radio.NR, false, 30*time.Second, 42)
	// The paper observes 6 frame-freezing events in the dynamic 5.7K
	// session and none worth reporting in the static one.
	if dyn.Freezes < 1 || dyn.Freezes > 15 {
		t.Fatalf("dynamic 5.7K freezes = %d, paper reports 6", dyn.Freezes)
	}
	if static.Freezes != 0 {
		t.Fatalf("static 5.7K froze %d times", static.Freezes)
	}
	// Fig. 19: the dynamic series fluctuates far more than the static one.
	variance := func(xs []float64) float64 {
		var sum, ss float64
		for _, x := range xs {
			sum += x
		}
		m := sum / float64(len(xs))
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		return ss / float64(len(xs))
	}
	vd := variance(dyn.ThroughputSeries(time.Second))
	vs := variance(static.ThroughputSeries(time.Second))
	if vd < 2*vs {
		t.Fatalf("dynamic variance (%.2e) should dwarf static (%.2e)", vd, vs)
	}
}

func TestFig20FrameDelay(t *testing.T) {
	s := Run(R4K, radio.NR, false, 30*time.Second, 42)
	delay := s.MeanFrameDelay()
	// §5.2: "even for 5G, the frame latency remains on the level of
	// 950 ms, which falls short of the 460 ms requirements".
	if delay < 800*time.Millisecond || delay > 1100*time.Millisecond {
		t.Fatalf("5G 4K frame delay = %v, paper ≈950 ms", delay)
	}
	if delay < RealTimeBudget {
		t.Fatalf("frame delay %v must miss the %v real-time budget", delay, RealTimeBudget)
	}
	// 4G is worse (congestion at 4K).
	s4 := Run(R4K, radio.LTE, false, 30*time.Second, 42)
	if s4.MeanFrameDelay() <= delay {
		t.Fatalf("4G 4K delay (%v) should exceed 5G's (%v)", s4.MeanFrameDelay(), delay)
	}
}

func TestProcessingDominatesTransmission(t *testing.T) {
	// §5.2: frame processing ≈650 ms is ≈10× the network transmission
	// share (≈66 ms).
	proc := ProcessingLatency()
	if proc != 650*time.Millisecond {
		t.Fatalf("processing latency = %v, paper 650 ms", proc)
	}
	s := Run(R4K, radio.NR, false, 30*time.Second, 42)
	network := s.MeanFrameDelay() - proc - PlayoutBuffer
	if network <= 0 {
		t.Fatalf("network share non-positive: %v", network)
	}
	ratio := float64(proc) / float64(network)
	if ratio < 5 || ratio > 30 {
		t.Fatalf("processing/network ratio = %.1f, paper ≈10×", ratio)
	}
}

func TestSessionDeterminism(t *testing.T) {
	a := Run(R4K, radio.NR, true, 10*time.Second, 5)
	b := Run(R4K, radio.NR, true, 10*time.Second, 5)
	if a.Freezes != b.Freezes || len(a.Frames) != len(b.Frames) || a.MeanFrameDelay() != b.MeanFrameDelay() {
		t.Fatal("session must be deterministic")
	}
}

func TestOfferedVsReceived(t *testing.T) {
	// Overloaded 4G 5.7K must drop frames: offered > received.
	s := Run(R57K, radio.LTE, true, 20*time.Second, 3)
	if s.ReceivedBps() >= s.OfferedBps() {
		t.Fatal("overloaded uplink must drop frames")
	}
	dropped := 0
	for _, f := range s.Frames {
		if f.Dropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no frames dropped on an overloaded 4G uplink")
	}
}

func TestResolutionNames(t *testing.T) {
	want := []string{"720P", "1080P", "4K", "5.7K"}
	for i, res := range Resolutions() {
		if res.String() != want[i] {
			t.Fatalf("resolution %d name %q", i, res.String())
		}
	}
}
