// Package video implements 360TEL, the paper's §5.2 UHD panoramic
// video-telephony system: an Insta360-style camera producing 30 fps
// panoramic frames, the H.264 hardware codec pipeline with the measured
// stage latencies, RTMP-style uplink streaming over the simulated radio,
// and the stopwatch frame-delay methodology of Fig. 20.
package video

import (
	"time"

	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

// Resolution of the panoramic capture.
type Resolution int

const (
	// R720P through R57K are the four Fig. 18 operating points.
	R720P Resolution = iota
	R1080P
	R4K
	R57K
)

var resNames = [...]string{"720P", "1080P", "4K", "5.7K"}

// String returns the marketing name.
func (r Resolution) String() string {
	if int(r) < len(resNames) {
		return resNames[r]
	}
	return "?"
}

// Resolutions lists the Fig. 18 sweep.
func Resolutions() []Resolution { return []Resolution{R720P, R1080P, R4K, R57K} }

// bitrateProfile returns the encoder output in bits/s for a scene type.
// Dynamic panoramas encode poorly: the paper cites 4K telephony producing
// 35–68 Mb/s with unpredictable fluctuations, and 5.7K overshooting the
// 100 Mb/s 5G uplink budget in dynamic scenes.
func bitrateProfile(res Resolution, dynamic bool) (mean, std float64) {
	switch res {
	case R720P:
		if dynamic {
			return 10e6, 2e6
		}
		return 8e6, 1e6
	case R1080P:
		if dynamic {
			return 20e6, 4e6
		}
		return 16e6, 2e6
	case R4K:
		if dynamic {
			return 52e6, 12e6
		}
		return 38e6, 5e6
	default: // 5.7K
		if dynamic {
			return 86e6, 22e6
		}
		return 74e6, 5e6
	}
}

// Pipeline stage latencies measured in §5.2 with the stopwatch method:
// capture + patch splice + preview rendering ≈440 ms, H.264 hardware
// encode ≈160 ms, decode ≈50 ms — ≈650 ms of pure processing per frame.
const (
	CaptureSpliceRender = 440 * time.Millisecond
	EncodeLatency       = 160 * time.Millisecond
	DecodeLatency       = 50 * time.Millisecond
	// FPS is the camera frame rate.
	FPS = 30
	// PlayoutBuffer is the RTMP ingest/pull relay plus receiver jitter
	// buffer that every delivered frame traverses.
	PlayoutBuffer = 250 * time.Millisecond
	// FreezeBacklog: an uplink backlog beyond this stalls the receiver's
	// playout (counted once per congestion episode, with a minimum
	// inter-freeze spacing so sustained overload reads as distinct stalls
	// the way a viewer would count them).
	FreezeBacklog = 600 * time.Millisecond
	freezeSpacing = 2500 * time.Millisecond
	// RealTimeBudget is the 460 ms end-to-end requirement for interactive
	// telephony the paper cites [88].
	RealTimeBudget = 460 * time.Millisecond
)

// ulCapacity returns the usable uplink goodput for a technology (§4.1
// daytime baselines: 100 Mb/s effective for 5G video after protocol
// overhead, ≈45 Mb/s for 4G).
func ulCapacity(t radio.Tech) float64 {
	if t == radio.NR {
		return 100e6
	}
	return 42e6
}

// Frame is one transmitted video frame.
type Frame struct {
	Index   int
	Bytes   int
	SentAt  time.Duration // capture timestamp
	Delay   time.Duration // end-to-end stopwatch delay
	Dropped bool          // dropped at the sender queue (congestion)
}

// SessionResult summarizes one 360TEL call.
type SessionResult struct {
	Res      Resolution
	Tech     radio.Tech
	Dynamic  bool
	Frames   []Frame
	Freezes  int
	Duration time.Duration
}

// OfferedBps returns the encoder's mean output rate over the session.
func (s SessionResult) OfferedBps() float64 {
	var bytes int64
	for _, f := range s.Frames {
		bytes += int64(f.Bytes)
	}
	return float64(bytes*8) / s.Duration.Seconds()
}

// ReceivedBps returns the delivered (non-dropped) throughput.
func (s SessionResult) ReceivedBps() float64 {
	var bytes int64
	for _, f := range s.Frames {
		if !f.Dropped {
			bytes += int64(f.Bytes)
		}
	}
	return float64(bytes*8) / s.Duration.Seconds()
}

// MeanFrameDelay returns the average stopwatch delay of delivered frames.
func (s SessionResult) MeanFrameDelay() time.Duration {
	var sum time.Duration
	n := 0
	for _, f := range s.Frames {
		if !f.Dropped {
			sum += f.Delay
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// ThroughputSeries returns the received throughput in windows (Fig. 19).
func (s SessionResult) ThroughputSeries(window time.Duration) []float64 {
	nw := int(s.Duration/window) + 1
	buckets := make([]float64, nw)
	for _, f := range s.Frames {
		if f.Dropped {
			continue
		}
		arrive := f.SentAt + f.Delay
		idx := int(arrive / window)
		if idx >= 0 && idx < nw {
			buckets[idx] += float64(f.Bytes) * 8
		}
	}
	for i := range buckets {
		buckets[i] /= window.Seconds()
	}
	return buckets
}

// Run simulates one 360TEL session: frames are produced at 30 fps with a
// scene-dependent bitrate process, pass through the codec pipeline, queue
// at the uplink (RTMP over the radio), and are measured with the
// stopwatch method at the receiver. The sender drops frames when its
// uplink queue exceeds two seconds of backlog (RTMP's behaviour under
// congestion), which the receiver experiences as freezes.
func Run(res Resolution, tech radio.Tech, dynamic bool, duration time.Duration, seed int64) SessionResult {
	r := rng.New(seed).Stream("video.session")
	mean, std := bitrateProfile(res, dynamic)
	cap := ulCapacity(tech)
	frameInterval := time.Second / FPS

	out := SessionResult{Res: res, Tech: tech, Dynamic: dynamic, Duration: duration}

	// Uplink queue state: the time at which the link frees up.
	var linkFreeAt time.Duration
	// Network one-way latency (RTMP server in the same city).
	oneWay := 11 * time.Millisecond
	if tech == radio.LTE {
		oneWay = 22 * time.Millisecond
	}
	var lastArrival time.Duration
	inCongestion := false
	lastFreezeAt := -freezeSpacing

	// The bitrate process: GOP-scale (1 s) rate states with per-frame
	// variation; dynamic scenes occasionally spike far above the mean.
	gopRate := mean
	burstLeft := 0 // remaining GOPs of an ongoing view-change burst
	for now, idx := time.Duration(0), 0; now < duration; now, idx = now+frameInterval, idx+1 {
		if idx%FPS == 0 {
			gopRate = rng.ClampedNormal(r, mean, std, mean/3, mean+3.5*std)
			if dynamic {
				if burstLeft == 0 && r.Float64() < 0.2 {
					burstLeft = 1 + r.Intn(3) // view changes last 1–3 s
				}
				if burstLeft > 0 {
					burstLeft--
					gopRate = mean + rng.Uniform(r, 2.4, 3.6)*std
				}
			}
		}
		frameBits := rng.ClampedNormal(r, gopRate/FPS, gopRate/FPS/6, gopRate/FPS/2, gopRate/FPS*2)
		f := Frame{Index: idx, Bytes: int(frameBits / 8), SentAt: now}

		// Encoder output becomes available after capture+splice+encode.
		ready := now + CaptureSpliceRender + EncodeLatency
		if linkFreeAt < ready {
			linkFreeAt = ready
		}
		// Sender-side congestion control: skip the frame once the uplink
		// backlog exceeds the encoder's frame-skip threshold (the bounded
		// RTMP send queue), which lets the backlog drain after a burst.
		if backlog := linkFreeAt - ready; backlog > 800*time.Millisecond {
			f.Dropped = true
			out.Frames = append(out.Frames, f)
			if !inCongestion && now-lastFreezeAt > freezeSpacing {
				out.Freezes++
				inCongestion = true
				lastFreezeAt = now
			}
			continue
		}
		tx := time.Duration(frameBits / cap * float64(time.Second))
		linkFreeAt += tx
		arrival := linkFreeAt + oneWay + DecodeLatency + PlayoutBuffer
		f.Delay = arrival - now
		out.Frames = append(out.Frames, f)
		lastArrival = arrival

		// Freeze accounting: one freeze per congestion episode, detected
		// when the uplink backlog first exceeds the playout slack.
		if backlog := linkFreeAt - ready; backlog > FreezeBacklog {
			if !inCongestion && now-lastFreezeAt > freezeSpacing {
				out.Freezes++
				inCongestion = true
				lastFreezeAt = now
			}
		} else if backlog < FreezeBacklog/2 {
			inCongestion = false
		}
	}
	_ = lastArrival
	return out
}

// Fig18Row is one bar group of Fig. 18.
type Fig18Row struct {
	Res      Resolution
	Tech     radio.Tech
	Dynamic  bool
	Received float64 // bits/s
}

// RunFig18 sweeps resolution × {static, dynamic} × {4G, 5G}.
func RunFig18(duration time.Duration, seed int64) []Fig18Row {
	var out []Fig18Row
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		for _, res := range Resolutions() {
			for _, dyn := range []bool{false, true} {
				s := Run(res, tech, dyn, duration, seed)
				out = append(out, Fig18Row{Res: res, Tech: tech, Dynamic: dyn, Received: s.ReceivedBps()})
			}
		}
	}
	return out
}

// ProcessingLatency returns the fixed pipeline cost per frame (§5.2:
// ≈650 ms, ≈10× the network's share).
func ProcessingLatency() time.Duration {
	return CaptureSpliceRender + EncodeLatency + DecodeLatency
}
