package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"fivegsim"
	"fivegsim/internal/obs"
)

// The HTTP surface. Telemetry endpoints (/metrics, /metrics.json,
// /progress, /trace, /debug/pprof) are the shared obs.Handler mux —
// the same endpoints fgobs serve exposes — with the campaign API
// mounted alongside:
//
//	POST   /campaigns                submit a spec (fgserve.spec/v1)
//	GET    /campaigns                list campaign statuses
//	GET    /campaigns/{id}           status snapshot with ETA
//	GET    /campaigns/{id}/stream    replay + tail events (NDJSON; SSE
//	                                 with Accept: text/event-stream)
//	GET    /campaigns/{id}/report    text report (unit order)
//	GET    /campaigns/{id}/manifest  run-manifest artifact (JSON array)
//	DELETE /campaigns/{id}           cancel via context cancellation

// errorDoc is the uniform JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}

// errorCode maps service errors to HTTP statuses: validation failures
// are the client's fault (400), capacity and drain are retryable (503),
// unknown ids are 404.
func errorCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrInvalidSpec),
		errors.Is(err, fivegsim.ErrInvalidConfig),
		errors.Is(err, fivegsim.ErrUnknownExperiment):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// Handler builds the service mux: the campaign API plus the shared
// telemetry handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	tele := obs.Handler(obs.ServeOptions{
		Registry: s.reg, Progress: s.tracker, Tracer: s.tracer, Pprof: s.opts.Pprof,
	})
	mux.Handle("/metrics", tele)
	mux.Handle("/metrics.json", tele)
	mux.Handle("/progress", tele)
	if s.tracer != nil {
		mux.Handle("/trace", tele)
	}
	if s.opts.Pprof {
		mux.Handle("/debug/pprof/", tele)
	}
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /campaigns/{id}/manifest", s.handleManifest)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "fgserve campaign service")
		fmt.Fprintln(w, "  POST   /campaigns                submit a campaign spec (fgserve.spec/v1)")
		fmt.Fprintln(w, "  GET    /campaigns                list campaigns")
		fmt.Fprintln(w, "  GET    /campaigns/{id}           status snapshot (ETA, unit counts)")
		fmt.Fprintln(w, "  GET    /campaigns/{id}/stream    result/progress stream (NDJSON or SSE)")
		fmt.Fprintln(w, "  GET    /campaigns/{id}/report    text report of completed units")
		fmt.Fprintln(w, "  GET    /campaigns/{id}/manifest  run-manifest artifact (JSON array)")
		fmt.Fprintln(w, "  DELETE /campaigns/{id}           cancel the campaign")
		fmt.Fprintln(w, "  GET    /metrics                  Prometheus text exposition")
		fmt.Fprintln(w, "  GET    /metrics.json /progress   JSON mirrors")
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	// Unknown fields are a spec-version skew; reject at the boundary
	// rather than silently dropping a knob the client thought it set.
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		code := errorCode(err)
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/campaigns/"+st.ID)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.List())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	text, state, err := s.report(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Fgserve-State", string(state))
	fmt.Fprint(w, text)
}

func (s *Service) handleManifest(w http.ResponseWriter, r *http.Request) {
	ms, err := s.manifests(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", r.PathValue("id")+"-manifest.json"))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ms)
}

// handleStream writes the campaign's event log — replay then live tail
// — as NDJSON (one event per line), or as Server-Sent Events when the
// client asks for text/event-stream. The response ends when the
// campaign closes; a mid-run disconnect just stops the tail.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	flusher, _ := w.(http.Flusher)
	wroteHeader := false
	writeEvent := func(ev Event) error {
		if !wroteHeader {
			if sse {
				w.Header().Set("Content-Type", "text/event-stream")
				w.Header().Set("Cache-Control", "no-store")
			} else {
				w.Header().Set("Content-Type", "application/x-ndjson")
			}
			wroteHeader = true
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if sse {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	err := s.Stream(r.Context(), id, writeEvent)
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		// Complete, or the client went away.
	case !wroteHeader:
		writeError(w, errorCode(err), err)
	}
}

// Server is a bound fgserve endpoint: the HTTP listener plus the
// service drain, both tied to the context given to Start.
type Server struct {
	// Addr is the resolved listen address (port 0 supported).
	Addr     string
	http     *obs.Server
	drained  chan struct{}
	drainErr error
}

// DrainGrace bounds how long a stopping service waits for in-flight
// units after its context is canceled.
const DrainGrace = 15 * time.Second

// Start binds addr and serves the campaign API until ctx is canceled,
// then drains: the HTTP listener shuts down with obs's bounded grace
// and the service waits for in-flight units up to DrainGrace. It
// returns as soon as the listener is bound.
func (s *Service) Start(ctx context.Context, addr string) (*Server, error) {
	hs, err := obs.ServeHandler(ctx, addr, s.Handler())
	if err != nil {
		return nil, err
	}
	srv := &Server{Addr: hs.Addr, http: hs, drained: make(chan struct{})}
	go func() {
		defer close(srv.drained)
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), DrainGrace)
		defer cancel()
		srv.drainErr = s.Shutdown(dctx)
	}()
	return srv, nil
}

// Wait blocks until both the HTTP server and the worker pool have shut
// down, returning the first error (nil on a clean drain).
func (srv *Server) Wait() error {
	err := srv.http.Wait()
	<-srv.drained
	if err != nil {
		return err
	}
	return srv.drainErr
}
