package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fivegsim"
	"fivegsim/internal/obs"
)

// Schema identifiers of the service's response documents.
const (
	// StatusSchemaV1 versions the campaign status document.
	StatusSchemaV1 = "fgserve.status/v1"
	// EventSchemaV1 versions the stream event envelope.
	EventSchemaV1 = "fgserve.event/v1"
)

// Sentinel errors of the service API.
var (
	// ErrNotFound reports an unknown campaign id.
	ErrNotFound = errors.New("serve: no such campaign")
	// ErrQueueFull reports admission refused because the bounded queue
	// is at capacity; retry later.
	ErrQueueFull = errors.New("serve: campaign queue full")
	// ErrDraining reports admission refused because the service is
	// shutting down.
	ErrDraining = errors.New("serve: draining, not accepting campaigns")
)

// State is a campaign's lifecycle phase.
type State string

const (
	// StateQueued: admitted, no unit dispatched yet.
	StateQueued State = "queued"
	// StateRunning: at least one unit dispatched, more to come.
	StateRunning State = "running"
	// StateDone: every unit completed (failed experiments complete too —
	// Status.Failed counts them).
	StateDone State = "done"
	// StateCanceled: canceled via the API or a service drain; pending
	// units never run, in-flight units finish and are kept.
	StateCanceled State = "canceled"
)

func (st State) terminal() bool { return st == StateDone || st == StateCanceled }

// Status is the queryable snapshot of one campaign.
type Status struct {
	Schema      string    `json:"schema"`
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	State       State     `json:"state"`
	Spec        Spec      `json:"spec"`
	Units       int       `json:"units"`
	Completed   int       `json:"completed"`
	Failed      int       `json:"failed"`
	InFlight    []string  `json:"in_flight,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// Elapsed is wall time since the first unit was dispatched (0 while
	// queued); ETA the completed-work extrapolation (obs.EstimateETA).
	Elapsed time.Duration `json:"elapsed_ns"`
	ETA     time.Duration `json:"eta_ns,omitempty"`
	// Error is the terminal cause of a canceled campaign ("context
	// canceled" for an API cancel).
	Error string `json:"error,omitempty"`
}

// Event is one record of a campaign's replayable stream, in the order
// the service emits them: progress start/finish events in completion
// order, result events in unit order (the paper-order frontier), one
// terminal status event.
type Event struct {
	Schema   string `json:"schema"`
	Seq      int    `json:"seq"`
	Campaign string `json:"campaign"`
	// Kind is "progress", "result" or "status"; exactly one of the
	// corresponding payload fields is set.
	Kind     string             `json:"kind"`
	Seed     int64              `json:"seed,omitempty"`
	Progress *obs.ProgressEvent `json:"progress,omitempty"`
	Result   *fivegsim.Result   `json:"result,omitempty"`
	Status   *Status            `json:"status,omitempty"`
}

// Options configures a Service.
type Options struct {
	// PoolWorkers sizes the shared worker pool — the service's total
	// unit-level concurrency across all campaigns. 0 means GOMAXPROCS.
	PoolWorkers int
	// MaxActive bounds admission: the number of campaigns that may be
	// queued or running at once. A submit beyond the bound fails with
	// ErrQueueFull. 0 means 8.
	MaxActive int
	// Registry backs /metrics: the service's own serve.* instruments
	// plus every unit's merged simulator telemetry. Nil creates a fresh
	// registry.
	Registry *obs.Registry
	// Tracer, when non-nil, is attached to every unit run and backs
	// /trace.
	Tracer *obs.Tracer
	// Pprof mounts net/http/pprof on the handler.
	Pprof bool
}

// Service is the long-running campaign service: a bounded admission
// queue, a shared worker pool that round-robins units across admitted
// campaigns (so N concurrent campaigns share the pool fairly), and a
// replayable event log per campaign. Create with New; attach to HTTP
// with Handler or Start.
type Service struct {
	opts    Options
	reg     *obs.Registry
	tracker *obs.ProgressTracker
	tracer  *obs.Tracer
	// run executes one unit; tests substitute a synthetic runner.
	run func(ctx context.Context, id string, cfg fivegsim.Config) (fivegsim.Result, error)

	mu        sync.Mutex
	cond      *sync.Cond // guards + signals all campaign/queue state below
	campaigns map[string]*campaign
	order     []string // admission order; the round-robin universe
	rr        int      // fair-share cursor into order
	idSeq     int
	draining  bool
	wg        sync.WaitGroup

	mSubmitted *obs.Counter
	mCompleted *obs.Counter
	mCanceled  *obs.Counter
	mUnitsDone *obs.Counter
	mUnitsFail *obs.Counter
	mActive    *obs.Gauge
	mQueue     *obs.Gauge
}

// campaign is the service-side state of one admitted spec. Every field
// is guarded by Service.mu.
type campaign struct {
	id      string
	spec    Spec
	baseCfg fivegsim.Config
	ctx     context.Context
	cancel  context.CancelFunc
	cause   error // terminal cancel cause

	submitted time.Time
	started   time.Time
	finished  time.Time

	units     []Unit
	results   []fivegsim.Result
	done      []bool
	running   map[int]bool // in-flight unit indexes
	next      int          // next unit to dispatch
	emitNext  int          // paper-order result-emission frontier
	completed int
	failed    int
	events    []Event
	state     State
}

// closedLocked reports whether the campaign will never append another
// event: terminal state and no unit still in flight.
func (c *campaign) closedLocked() bool { return c.state.terminal() && len(c.running) == 0 }

// dispatchableLocked reports whether the campaign has a unit ready for
// a pool worker.
func (c *campaign) dispatchableLocked() bool {
	return (c.state == StateQueued || c.state == StateRunning) && c.next < len(c.units)
}

// New starts a Service: PoolWorkers goroutines begin waiting for units
// immediately. Stop it with Shutdown (Start wires that to context
// cancellation).
func New(opts Options) *Service {
	if opts.PoolWorkers <= 0 {
		opts.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = 8
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s := &Service{
		opts:      opts,
		reg:       opts.Registry,
		tracker:   obs.NewProgressTracker(),
		tracer:    opts.Tracer,
		run:       fivegsim.RunContext,
		campaigns: map[string]*campaign{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.mSubmitted = s.reg.Counter("serve.campaigns_submitted")
	s.mCompleted = s.reg.Counter("serve.campaigns_completed")
	s.mCanceled = s.reg.Counter("serve.campaigns_canceled")
	s.mUnitsDone = s.reg.Counter("serve.units_completed")
	s.mUnitsFail = s.reg.Counter("serve.units_failed")
	s.mActive = s.reg.Gauge("serve.campaigns_active")
	s.mQueue = s.reg.Gauge("serve.queue_depth")
	for i := 0; i < opts.PoolWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and admits a campaign spec, returning its initial
// status. Validation failures wrap ErrInvalidSpec; a full queue is
// ErrQueueFull; a draining service is ErrDraining.
func (s *Service) Submit(spec Spec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	baseCfg, err := spec.Config()
	if err != nil {
		return Status{}, err // unreachable after Validate; belt and braces
	}
	units := spec.Units()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Status{}, ErrDraining
	}
	active := 0
	for _, id := range s.order {
		if !s.campaigns[id].state.terminal() {
			active++
		}
	}
	if active >= s.opts.MaxActive {
		return Status{}, fmt.Errorf("%w: %d campaigns active (max %d)", ErrQueueFull, active, s.opts.MaxActive)
	}
	s.idSeq++
	ctx, cancel := context.WithCancel(context.Background())
	c := &campaign{
		id:        fmt.Sprintf("c%04d", s.idSeq),
		spec:      spec,
		baseCfg:   baseCfg,
		ctx:       ctx,
		cancel:    cancel,
		submitted: time.Now(),
		units:     units,
		results:   make([]fivegsim.Result, len(units)),
		done:      make([]bool, len(units)),
		running:   map[int]bool{},
		state:     StateQueued,
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mSubmitted.Inc()
	s.mActive.Add(1)
	s.mQueue.Add(int64(len(units)))
	s.cond.Broadcast()
	return s.statusLocked(c), nil
}

// Status returns the current snapshot of one campaign.
func (s *Service) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return s.statusLocked(c), nil
}

// List returns every campaign's status in admission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.campaigns[id]))
	}
	return out
}

// Cancel cancels a campaign: its context is canceled (errors.Is
// context.Canceled), pending units never start, in-flight units finish
// and keep their results. Canceling a terminal campaign is an idempotent
// no-op returning the terminal status.
func (s *Service) Cancel(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	s.cancelLocked(c, context.Canceled)
	return s.statusLocked(c), nil
}

func (s *Service) cancelLocked(c *campaign, cause error) {
	if c.state.terminal() {
		return
	}
	c.cancel()
	c.state = StateCanceled
	c.cause = cause
	c.finished = time.Now()
	s.mCanceled.Inc()
	s.mActive.Add(-1)
	s.mQueue.Add(-int64(len(c.units) - c.next))
	st := s.statusLocked(c)
	s.appendEventLocked(c, Event{Kind: "status", Status: &st})
	s.cond.Broadcast()
}

// Stream replays the campaign's event log from the beginning and then
// tails it, invoking fn for every event in order, until the campaign
// closes (fn then saw the complete history and Stream returns nil), fn
// returns an error (returned as-is), or ctx is canceled (ctx.Err()).
// Late subscribers see exactly what live ones saw — the log is
// append-only and replayable.
func (s *Service) Stream(ctx context.Context, id string, fn func(Event) error) error {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	// A canceled stream context must wake the cond wait below.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	sent := 0
	for {
		s.mu.Lock()
		for sent == len(c.events) && !c.closedLocked() && ctx.Err() == nil {
			s.cond.Wait()
		}
		batch := c.events[sent:len(c.events):len(c.events)]
		closed := c.closedLocked() && sent+len(batch) == len(c.events)
		s.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, ev := range batch {
			if err := fn(ev); err != nil {
				return err
			}
			sent++
		}
		if closed {
			return nil
		}
	}
}

// Shutdown drains the service: admission closes, every non-terminal
// campaign is canceled, and the worker pool is waited for (in-flight
// units finish — the library cannot interrupt a running experiment)
// until ctx expires, which bounds the drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, id := range s.order {
		s.cancelLocked(s.campaigns[id], context.Canceled)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out with units in flight: %w", ctx.Err())
	}
}

// worker is one pool goroutine: claim the next unit fairly, run it,
// repeat until the service drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var c *campaign
		ui := -1
		for {
			if s.draining {
				s.mu.Unlock()
				return
			}
			c, ui = s.pickLocked()
			if c != nil {
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.runUnit(c, ui)
	}
}

// pickLocked claims the next unit under the fair-share discipline:
// round-robin across admitted campaigns in admission order, skipping
// campaigns with nothing to dispatch. One unit per turn means a
// 40-unit campaign and a 2-unit campaign admitted together alternate
// units instead of queueing head-to-tail.
func (s *Service) pickLocked() (*campaign, int) {
	n := len(s.order)
	for k := 0; k < n; k++ {
		idx := (s.rr + k) % n
		c := s.campaigns[s.order[idx]]
		if !c.dispatchableLocked() {
			continue
		}
		s.rr = (idx + 1) % n
		ui := c.next
		c.next++
		c.running[ui] = true
		if c.state == StateQueued {
			c.state = StateRunning
			c.started = time.Now()
		}
		s.mQueue.Add(-1)
		pe := obs.ProgressEvent{
			Kind: obs.ProgressExperimentStart, Experiment: c.units[ui].Experiment,
			Completed: c.completed, Total: len(c.units), Elapsed: time.Since(c.started),
		}
		s.tracker.Observe(pe)
		s.appendEventLocked(c, Event{Kind: "progress", Seed: c.units[ui].Seed, Progress: &pe})
		return c, ui
	}
	return nil, -1
}

// runUnit executes one claimed unit outside the service lock and folds
// its outcome back in: telemetry merged into the service registry,
// result recorded, the paper-order frontier advanced, progress and
// status events appended.
func (s *Service) runUnit(c *campaign, ui int) {
	u := c.units[ui]
	cfg := c.baseCfg
	cfg.Seed = u.Seed
	cfg.Trace = s.tracer
	// Each unit runs against its own sub-registry so its manifest
	// snapshot covers that run alone; the merge below keeps the service
	// registry live mid-campaign.
	var sub *obs.Registry
	if s.reg != nil {
		sub = obs.NewRegistry()
		cfg.Obs = sub
	}
	// Inner tick events (population runs) feed the /progress tracker.
	cfg.OnProgress = s.tracker.Observe
	res, err := s.run(c.ctx, u.Experiment, cfg)
	if err == nil && s.reg != nil {
		s.reg.Merge(sub)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(c.running, ui)
	if err != nil {
		// The campaign was canceled between claim and start; the unit
		// never ran. The frontier stops here — closedLocked drains the
		// stream once the remaining in-flight units land.
		s.cond.Broadcast()
		return
	}
	c.results[ui] = res
	c.done[ui] = true
	c.completed++
	s.mUnitsDone.Inc()
	if res.Err != nil {
		c.failed++
		s.mUnitsFail.Inc()
	}
	elapsed := time.Since(c.started)
	pe := obs.ProgressEvent{
		Kind: obs.ProgressExperimentFinish, Experiment: u.Experiment,
		Completed: c.completed, Total: len(c.units), Failed: res.Err != nil,
		Elapsed: elapsed, ETA: obs.EstimateETA(elapsed, c.completed, len(c.units)),
	}
	s.tracker.Observe(pe)
	s.appendEventLocked(c, Event{Kind: "progress", Seed: u.Seed, Progress: &pe})
	// Advance the unit-order frontier: results stream in seed-ladder ×
	// paper order no matter which worker finished first.
	for c.emitNext < len(c.units) && c.done[c.emitNext] {
		r := c.results[c.emitNext]
		s.appendEventLocked(c, Event{Kind: "result", Seed: c.units[c.emitNext].Seed, Result: &r})
		c.emitNext++
	}
	if c.completed == len(c.units) && c.state == StateRunning {
		c.state = StateDone
		c.finished = time.Now()
		s.mCompleted.Inc()
		s.mActive.Add(-1)
		st := s.statusLocked(c)
		s.appendEventLocked(c, Event{Kind: "status", Status: &st})
	}
	s.cond.Broadcast()
}

func (s *Service) appendEventLocked(c *campaign, ev Event) {
	ev.Schema = EventSchemaV1
	ev.Seq = len(c.events)
	ev.Campaign = c.id
	c.events = append(c.events, ev)
}

func (s *Service) statusLocked(c *campaign) Status {
	st := Status{
		Schema:      StatusSchemaV1,
		ID:          c.id,
		Name:        c.spec.Name,
		State:       c.state,
		Spec:        c.spec,
		Units:       len(c.units),
		Completed:   c.completed,
		Failed:      c.failed,
		SubmittedAt: c.submitted,
		StartedAt:   c.started,
		FinishedAt:  c.finished,
	}
	for ui := range c.running {
		st.InFlight = append(st.InFlight, fmt.Sprintf("%s@%d", c.units[ui].Experiment, c.units[ui].Seed))
	}
	sort.Strings(st.InFlight)
	if !c.started.IsZero() {
		if c.finished.IsZero() {
			st.Elapsed = time.Since(c.started)
		} else {
			st.Elapsed = c.finished.Sub(c.started)
		}
	}
	if !c.state.terminal() {
		st.ETA = obs.EstimateETA(st.Elapsed, c.completed, len(c.units))
	}
	if c.cause != nil {
		st.Error = c.cause.Error()
	}
	return st
}

// report renders the campaign's completed results in unit order — for
// a finished campaign, byte-identical to concatenating Result.Report()
// over a direct RunExperimentsContext run of the same spec.
func (s *Service) report(id string) (string, State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return "", "", ErrNotFound
	}
	var b []byte
	for ui := range c.units {
		if c.done[ui] {
			b = append(b, c.results[ui].Report()...)
		}
	}
	return string(b), c.state, nil
}

// manifests returns the run manifests of completed units in unit order.
func (s *Service) manifests(id string) ([]obs.RunManifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]obs.RunManifest, 0, c.completed)
	for ui := range c.units {
		if c.done[ui] {
			out = append(out, c.results[ui].Manifest)
		}
	}
	return out, nil
}
