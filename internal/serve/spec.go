// Package serve is fivegsim's long-running campaign service: an
// HTTP/JSON API that accepts versioned campaign specs, validates them
// at the boundary, runs them on a bounded job queue where concurrent
// campaigns share one worker pool fairly, and streams per-result and
// per-tick progress as NDJSON or SSE.
//
// The unit of scheduling is one (seed, experiment) pair. A campaign
// spec expands into its units — seed-ladder order outer, paper order
// inner — and the pool round-robins across admitted campaigns, so a
// long campaign cannot starve a short one. Results stream in unit
// order no matter which worker finishes first (the same paper-order
// frontier the library's RunExperimentsContext keeps), and every
// result crosses the wire in the stable fivegsim.result/v1 encoding.
//
// Everything the service reports is replayable: each campaign keeps an
// append-only event log, so a stream opened mid-run (or after the run)
// sees the full history before it starts tailing.
package serve

import (
	"errors"
	"fmt"

	"fivegsim"
	"fivegsim/internal/fault"
)

// SpecSchemaV1 identifies the campaign-spec wire format accepted by
// POST /campaigns. A spec with an empty schema field is treated as v1
// (curl convenience); anything else is rejected at admission.
const SpecSchemaV1 = "fgserve.spec/v1"

// ErrInvalidSpec is the sentinel wrapped by every spec validation
// failure; match with errors.Is. The underlying library errors stay on
// the chain: errors.Is also matches fivegsim.ErrInvalidConfig,
// fivegsim.ErrUnknownExperiment, fault.ErrInvalidPlan and
// fault.ErrUnknownScenario for the corresponding failures.
var ErrInvalidSpec = errors.New("serve: invalid campaign spec")

// SpecError reports the spec field that failed admission validation.
type SpecError struct {
	Field  string
	Reason string
	Cause  error
}

func (e *SpecError) Error() string {
	s := fmt.Sprintf("serve: invalid campaign spec: %s: %s", e.Field, e.Reason)
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

// Is matches ErrInvalidSpec.
func (e *SpecError) Is(target error) bool { return target == ErrInvalidSpec }

// Unwrap exposes the underlying library error (nil for shape-only
// failures).
func (e *SpecError) Unwrap() error { return e.Cause }

// Spec is a versioned campaign request: which experiments to run, at
// which seeds, with which knobs. The zero value (plus a schema) is a
// full default-seed campaign over every experiment.
type Spec struct {
	// Schema must be SpecSchemaV1 or empty (treated as v1).
	Schema string `json:"schema"`
	// Name is an optional human label echoed in status documents.
	Name string `json:"name,omitempty"`
	// Experiments lists registry IDs to run; empty means every
	// registered experiment. Order is irrelevant — the service always
	// runs and streams them in paper order.
	Experiments []string `json:"experiments,omitempty"`
	// Seeds is the seed ladder: the campaign runs every experiment once
	// per seed, in ladder order. Empty means the canonical seed (42).
	// Duplicate seeds are rejected — they would name the same unit
	// twice.
	Seeds []int64 `json:"seeds,omitempty"`
	// Quick selects the reduced-duration experiment variants.
	Quick bool `json:"quick,omitempty"`
	// Workers is the engine parallelism *inside* one experiment run
	// (survey shards, campaign walks). 0 means serial — in a shared
	// service the pool provides cross-experiment parallelism, so
	// per-unit fan-out is opt-in.
	Workers int `json:"workers,omitempty"`
	// Scenario arms a fault-scenario preset (fgbench -faults list) on
	// every unit.
	Scenario string `json:"scenario,omitempty"`
	// Population overrides the population-experiment UE count (X12–X15).
	Population int `json:"population,omitempty"`
}

// Config materializes the library configuration the spec describes,
// with Seed left at the ladder's first entry (the service overrides it
// per unit). The error chain keeps fault.ErrUnknownScenario matchable.
func (sp Spec) Config() (fivegsim.Config, error) {
	cfg := fivegsim.Config{
		Quick:      sp.Quick,
		Workers:    sp.Workers,
		Population: sp.Population,
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if len(sp.Seeds) > 0 {
		cfg.Seed = sp.Seeds[0]
	} else {
		cfg.Seed = 42
	}
	if sp.Scenario != "" {
		s, err := fault.ScenarioByName(sp.Scenario)
		if err != nil {
			return fivegsim.Config{}, err
		}
		cfg.Faults = s.Plan()
	}
	return cfg, nil
}

// seeds returns the effective seed ladder (the canonical seed when the
// spec names none).
func (sp Spec) seeds() []int64 {
	if len(sp.Seeds) == 0 {
		return []int64{42}
	}
	return sp.Seeds
}

// experimentIDs resolves the effective experiment list in paper order:
// the full registry when the spec names none, otherwise the named
// subset reordered to paper order.
func (sp Spec) experimentIDs() []string {
	all := fivegsim.Experiments()
	if len(sp.Experiments) == 0 {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		return ids
	}
	want := make(map[string]bool, len(sp.Experiments))
	for _, id := range sp.Experiments {
		want[id] = true
	}
	ids := make([]string, 0, len(sp.Experiments))
	for _, e := range all {
		if want[e.ID] {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// Validate checks the spec at the admission boundary. All failures
// wrap ErrInvalidSpec and name the offending field; library causes
// (unknown experiment, unknown scenario, invalid config/fault plan)
// stay matchable through the chain.
func (sp Spec) Validate() error {
	if sp.Schema != "" && sp.Schema != SpecSchemaV1 {
		return &SpecError{Field: "schema",
			Reason: fmt.Sprintf("unknown schema %q (want %s)", sp.Schema, SpecSchemaV1)}
	}
	seen := make(map[int64]bool, len(sp.Seeds))
	for _, s := range sp.Seeds {
		if seen[s] {
			return &SpecError{Field: "seeds",
				Reason: fmt.Sprintf("bad seed ladder: duplicate seed %d", s)}
		}
		seen[s] = true
	}
	dup := make(map[string]bool, len(sp.Experiments))
	for _, id := range sp.Experiments {
		if dup[id] {
			return &SpecError{Field: "experiments",
				Reason: fmt.Sprintf("duplicate experiment %q", id)}
		}
		dup[id] = true
	}
	if err := fivegsim.ValidateExperiments(sp.Experiments...); err != nil {
		return &SpecError{Field: "experiments", Reason: "unknown experiment", Cause: err}
	}
	cfg, err := sp.Config()
	if err != nil {
		return &SpecError{Field: "scenario", Reason: "unknown fault scenario", Cause: err}
	}
	if err := cfg.Validate(); err != nil {
		return &SpecError{Field: "config", Reason: "rejected by fivegsim.Config.Validate", Cause: err}
	}
	return nil
}

// Units returns the campaign's work units in execution/stream order:
// seed-ladder order outer, paper order inner.
func (sp Spec) Units() []Unit {
	seeds := sp.seeds()
	ids := sp.experimentIDs()
	units := make([]Unit, 0, len(seeds)*len(ids))
	for _, seed := range seeds {
		for _, id := range ids {
			units = append(units, Unit{Seed: seed, Experiment: id})
		}
	}
	return units
}

// Unit is one schedulable piece of a campaign: one experiment at one
// seed.
type Unit struct {
	Seed       int64  `json:"seed"`
	Experiment string `json:"experiment"`
}
