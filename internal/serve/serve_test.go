package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fivegsim"
	"fivegsim/internal/fault"
)

// newTestService builds a service with a synthetic runner so queueing,
// fairness and cancellation are testable without simulator wall-clock.
// The runner respects ctx like the real library: canceled before start
// means the unit never ran.
func newTestService(t *testing.T, opts Options, unitTime time.Duration) (*Service, *int32) {
	t.Helper()
	s := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	var ran int32
	s.run = func(ctx context.Context, id string, cfg fivegsim.Config) (fivegsim.Result, error) {
		if err := ctx.Err(); err != nil {
			return fivegsim.Result{}, err
		}
		atomic.AddInt32(&ran, 1)
		if unitTime > 0 {
			select {
			case <-time.After(unitTime):
			case <-ctx.Done():
				// A canceled in-flight unit still "finishes" — the real
				// library cannot interrupt a running experiment either.
			}
		}
		return fivegsim.Result{ID: id, Title: "fake " + id,
			Lines: []string{fmt.Sprintf("seed=%d", cfg.Seed)}}, nil
	}
	return s, &ran
}

func waitState(t *testing.T, s *Service, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Status(id)
	t.Fatalf("campaign %s never reached %s (at %s, %d/%d units)", id, want, st.State, st.Completed, st.Units)
	return Status{}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want error // sentinel expected on the chain (nil = valid)
	}{
		{"empty spec is a full default campaign", Spec{}, nil},
		{"explicit v1 schema", Spec{Schema: SpecSchemaV1, Experiments: []string{"T1"}}, nil},
		{"fault scenario preset", Spec{Scenario: "cell-failover", Experiments: []string{"X9"}}, nil},
		{"unknown schema", Spec{Schema: "fgserve.spec/v9"}, ErrInvalidSpec},
		{"duplicate seed in ladder", Spec{Seeds: []int64{1, 2, 1}}, ErrInvalidSpec},
		{"duplicate experiment", Spec{Experiments: []string{"T1", "T1"}}, ErrInvalidSpec},
		{"unknown experiment", Spec{Experiments: []string{"NOPE"}}, fivegsim.ErrUnknownExperiment},
		{"negative workers", Spec{Workers: -1}, fivegsim.ErrInvalidConfig},
		{"negative population", Spec{Population: -5}, fivegsim.ErrInvalidConfig},
		{"unknown scenario", Spec{Scenario: "meteor-strike"}, fault.ErrUnknownScenario},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not match %v", tc.name, err, tc.want)
		}
		if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: error %v does not match ErrInvalidSpec", tc.name, err)
		}
	}
}

// TestSpecUnits: the unit expansion is seed-ladder order outer, paper
// order inner, regardless of how the spec listed the experiments.
func TestSpecUnits(t *testing.T) {
	sp := Spec{Experiments: []string{"F7", "T1", "F4"}, Seeds: []int64{7, 1}}
	got := sp.Units()
	want := []Unit{{7, "T1"}, {7, "F4"}, {7, "F7"}, {1, "T1"}, {1, "F4"}, {1, "F7"}}
	if len(got) != len(want) {
		t.Fatalf("units = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("units[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if n := len((Spec{}).Units()); n != len(fivegsim.Experiments()) {
		t.Fatalf("empty spec expands to %d units, want the full registry", n)
	}
}

// TestServiceResultOrder: results stream in unit order (seed-major,
// paper order) even when a parallel pool completes them out of order.
func TestServiceResultOrder(t *testing.T) {
	s, _ := newTestService(t, Options{PoolWorkers: 4, MaxActive: 2}, 3*time.Millisecond)
	st, err := s.Submit(Spec{Experiments: []string{"F7", "T1", "F4"}, Seeds: []int64{9, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	err = s.Stream(context.Background(), st.ID, func(ev Event) error {
		if ev.Kind == "result" {
			order = append(order, fmt.Sprintf("%s@%d", ev.Result.ID, ev.Seed))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "T1@9,F4@9,F7@9,T1@3,F4@3,F7@3"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("result order %s, want %s", got, want)
	}
}

// TestStreamReplay: a subscriber arriving after the campaign finished
// sees the identical full event history a live subscriber saw.
func TestStreamReplay(t *testing.T) {
	s, _ := newTestService(t, Options{PoolWorkers: 2, MaxActive: 2}, 0)
	st, err := s.Submit(Spec{Experiments: []string{"T1", "F4"}})
	if err != nil {
		t.Fatal(err)
	}
	collect := func() []string {
		var seqs []string
		if err := s.Stream(context.Background(), st.ID, func(ev Event) error {
			seqs = append(seqs, fmt.Sprintf("%d:%s", ev.Seq, ev.Kind))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return seqs
	}
	live := collect()
	late := collect()
	if strings.Join(live, " ") != strings.Join(late, " ") {
		t.Fatalf("replay diverged:\nlive %v\nlate %v", live, late)
	}
	if live[len(live)-1] != fmt.Sprintf("%d:status", len(live)-1) {
		t.Fatalf("stream does not end with a status event: %v", live)
	}
}

// TestCancelMidCampaign: DELETE mid-run cancels the campaign context
// (errors.Is context.Canceled on the runner's ctx), pending units never
// start, the stream terminates, and the drained service leaks no
// goroutines.
func TestCancelMidCampaign(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{PoolWorkers: 1, MaxActive: 2})
	firstDone := make(chan struct{})
	release := make(chan struct{})
	ctxErrs := make(chan error, 16)
	var ran int32
	s.run = func(ctx context.Context, id string, cfg fivegsim.Config) (fivegsim.Result, error) {
		if err := ctx.Err(); err != nil {
			return fivegsim.Result{}, err
		}
		n := atomic.AddInt32(&ran, 1)
		if n == 1 {
			close(firstDone)
			return fivegsim.Result{ID: id, Title: "first"}, nil
		}
		// Second unit: hold until the test cancels, then report what the
		// campaign context said.
		select {
		case <-ctx.Done():
			ctxErrs <- context.Cause(ctx)
		case <-release:
		}
		return fivegsim.Result{ID: id, Title: "second"}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := bytes.NewBufferString(`{"schema":"fgserve.spec/v1","experiments":["T1","F4","F7","F10"]}`)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %+v", resp.StatusCode, st)
	}
	<-firstDone

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled Status
	json.NewDecoder(resp.Body).Decode(&canceled)
	resp.Body.Close()
	if canceled.State != StateCanceled {
		t.Fatalf("DELETE left state %s", canceled.State)
	}
	if canceled.Error != context.Canceled.Error() {
		t.Fatalf("canceled status error = %q, want %q", canceled.Error, context.Canceled.Error())
	}
	select {
	case err := <-ctxErrs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("in-flight unit saw %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight unit never observed the cancellation")
	}
	// The stream drains: in-flight unit lands, then the log closes.
	if err := s.Stream(context.Background(), st.ID, func(Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateCanceled)
	if n := atomic.LoadInt32(&ran); n != 2 {
		t.Fatalf("%d units ran after a cancel at unit 2 (pool=1)", n)
	}
	if final.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (first unit + the in-flight one)", final.Completed)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d before, %d after drain\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestTwoTenantFairness: under a saturated single-worker pool, a small
// campaign submitted behind a large one still makes progress — the
// round-robin pool interleaves their units instead of queueing
// head-to-tail.
func TestTwoTenantFairness(t *testing.T) {
	s, _ := newTestService(t, Options{PoolWorkers: 1, MaxActive: 2}, 4*time.Millisecond)
	big, err := s.Submit(Spec{Name: "big", Experiments: []string{"T1", "F4"}, Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}})
	if err != nil {
		t.Fatal(err)
	}
	// Let the big campaign get a head start, then contend.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Status(big.ID)
		if st.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("big campaign never started")
		}
		time.Sleep(time.Millisecond)
	}
	small, err := s.Submit(Spec{Name: "small", Experiments: []string{"T1", "F4"}, Seeds: []int64{99}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, small.ID, StateDone)
	bigAtSmallDone, err := s.Status(big.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bigAtSmallDone.State != StateRunning {
		t.Fatalf("big campaign is %s (%d/%d) at small-campaign completion — no fair sharing",
			bigAtSmallDone.State, bigAtSmallDone.Completed, bigAtSmallDone.Units)
	}
	waitState(t, s, big.ID, StateDone)
}

// TestAdmissionBound: the queue is bounded — a submit past MaxActive
// is refused with ErrQueueFull / HTTP 503, and space frees up when a
// campaign finishes.
func TestAdmissionBound(t *testing.T) {
	s, _ := newTestService(t, Options{PoolWorkers: 1, MaxActive: 1}, 2*time.Millisecond)
	first, err := s.Submit(Spec{Experiments: []string{"T1"}, Seeds: []int64{1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(Spec{Experiments: []string{"T1"}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-admission returned %v, want ErrQueueFull", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"experiments":["T1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-admission over HTTP: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	waitState(t, s, first.ID, StateDone)
	if _, err := s.Submit(Spec{Experiments: []string{"T1"}}); err != nil {
		t.Fatalf("admission after completion failed: %v", err)
	}
}

// TestHTTPValidationErrors: bad specs fail at the boundary with 400 and
// a JSON error body; unknown campaigns are 404.
func TestHTTPValidationErrors(t *testing.T) {
	s, _ := newTestService(t, Options{PoolWorkers: 1, MaxActive: 2}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []struct {
		body string
		code int
	}{
		{`{"schema":"fgserve.spec/v9"}`, http.StatusBadRequest},
		{`{"experiments":["NOPE"]}`, http.StatusBadRequest},
		{`{"seeds":[1,1]}`, http.StatusBadRequest},
		{`{"workers":-1}`, http.StatusBadRequest},
		{`{"scenario":"meteor-strike"}`, http.StatusBadRequest},
		{`{"unknown_field":true}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var doc errorDoc
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != tc.code || doc.Error == "" {
			t.Errorf("POST %s: status %d (want %d), error %q", tc.body, resp.StatusCode, tc.code, doc.Error)
		}
	}
	for _, path := range []string{"/campaigns/c9999", "/campaigns/c9999/stream", "/campaigns/c9999/report", "/campaigns/c9999/manifest"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServiceEndToEnd drives the real library through the full HTTP
// surface: POST a quick spec, tail the NDJSON stream, and check the
// acceptance contract — results arrive in paper order, /metrics is
// live, and the final report is byte-identical to the same spec run
// through fivegsim.RunExperimentsContext directly.
func TestServiceEndToEnd(t *testing.T) {
	s := New(Options{PoolWorkers: 2, MaxActive: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Experiments listed out of paper order on purpose: the service
	// must stream them T1, F4, F10 anyway. F10 exercises the DES
	// substrate so /metrics carries simulator series, not just serve_*.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"schema":"fgserve.spec/v1","name":"e2e","experiments":["F10","F4","T1"],"seeds":[7],"quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.Units != 3 {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, st)
	}

	// Tail the stream to completion, collecting result IDs in arrival
	// order and checking the v1 result envelope decodes.
	resp, err = http.Get(ts.URL + "/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var resultIDs []string
	var sawStatus *Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Kind {
		case "result":
			if ev.Result == nil || ev.Result.ID == "" {
				t.Fatalf("result event without result: %s", sc.Text())
			}
			resultIDs = append(resultIDs, ev.Result.ID)
		case "status":
			sawStatus = ev.Status
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(resultIDs, ","); got != "T1,F4,F10" {
		t.Fatalf("streamed results %q, want paper order T1,F4,F10", got)
	}
	if sawStatus == nil || sawStatus.State != StateDone || sawStatus.Failed != 0 {
		t.Fatalf("terminal status event %+v", sawStatus)
	}

	// /metrics is live and carries both service and simulator series.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"serve_campaigns_submitted 1", "serve_units_completed 3", "des_events_fired"} {
		if !strings.Contains(prom.String(), series) {
			t.Fatalf("/metrics missing %q:\n%s", series, prom.String())
		}
	}

	// The manifest artifact holds one manifest per unit, in order.
	resp, err = http.Get(ts.URL + "/campaigns/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var manifests []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&manifests); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(manifests) != 3 {
		t.Fatalf("manifest artifact has %d entries, want 3", len(manifests))
	}

	// Acceptance: the served report is byte-identical to the same spec
	// run directly through the library.
	resp, err = http.Get(ts.URL + "/campaigns/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	var served bytes.Buffer
	served.ReadFrom(resp.Body)
	resp.Body.Close()
	spec := Spec{Experiments: []string{"F10", "F4", "T1"}, Seeds: []int64{7}, Quick: true}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fivegsim.RunExperimentsContext(context.Background(), cfg, "T1", "F4", "F10")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range direct {
		want.WriteString(r.Report())
	}
	if served.String() != want.String() {
		t.Fatalf("served report differs from direct run:\n-- served --\n%s\n-- direct --\n%s", served.String(), want.String())
	}
}

// TestSSEFraming: an event-stream Accept header switches the stream to
// SSE framing with ids and event names.
func TestSSEFraming(t *testing.T) {
	s, _ := newTestService(t, Options{PoolWorkers: 1, MaxActive: 2}, 0)
	st, err := s.Submit(Spec{Experiments: []string{"T1"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	for _, want := range []string{"id: 0\n", "event: result\n", "event: status\n", "data: {"} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("SSE body missing %q:\n%s", want, body.String())
		}
	}
}
