package energy

import (
	"testing"
	"time"
)

func TestReplayWithParamsOverride(t *testing.T) {
	tr := webTrace()
	base := Replay(ModelNSA, tr)
	halved := ReplayWithParams(ModelNSA, tr, func(p DRXParams) DRXParams {
		p.Ttail = p.Ttail / 4
		return p
	})
	if halved.EnergyJ >= base.EnergyJ {
		t.Fatalf("shorter tail must save energy: %.1f vs %.1f J", halved.EnergyJ, base.EnergyJ)
	}
}

func TestRRCInactiveSavesTailEnergy(t *testing.T) {
	tr := webTrace()
	base := Replay(ModelNSA, tr)
	rrci := ReplayWithParams(ModelNSA, tr, func(p DRXParams) DRXParams {
		p.HasRRCI = true
		p.TResume = 120 * time.Millisecond
		p.Ttail = 2 * p.Tlong
		return p
	})
	saving := 1 - rrci.EnergyJ/base.EnergyJ
	if saving < 0.2 {
		t.Fatalf("RRC_INACTIVE saving = %.1f%%, should be substantial for bursty web", 100*saving)
	}
	if rrci.InState[RRCInactive] == 0 {
		t.Fatal("RRC_INACTIVE never entered")
	}
	// RRC_INACTIVE trades the single long NSA promotion for many short
	// resumes: with ~50 page loads, full promotions would cost ~50 × 1.68 s;
	// the fast-resume path keeps total promotion time an order of
	// magnitude lower.
	if rrci.InState[Promotion] > 15*time.Second {
		t.Fatalf("resume overhead too high: %v in promotion", rrci.InState[Promotion])
	}
}

func TestRRCInactiveStillDrainsEverything(t *testing.T) {
	tr := fileTrace()
	r := ReplayWithParams(ModelNSA, tr, func(p DRXParams) DRXParams {
		p.HasRRCI = true
		p.TResume = 120 * time.Millisecond
		p.Ttail = 2 * p.Tlong
		return p
	})
	if r.Duration <= tr.Duration() {
		t.Fatal("replay ended before the transfer finished")
	}
	if r.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
}
