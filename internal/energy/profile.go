package energy

import (
	"time"

	"fivegsim/internal/radio"
)

// ActiveUseProfile is the screen-on, continuously-scheduled power
// envelope behind Fig. 21: with the scheduler keeping the radio in
// RRC_CONNECTED continuous reception, the 5G module's baseline is far
// higher than the DRX-shaped envelope the trace replay uses — the paper's
// point that the consumption "is intrinsic to the 5G radio hardware".
type ActiveUseProfile struct {
	BaseW   float64
	PerBitJ float64
	CapBps  float64
}

// ActiveUseFor returns the Fig. 21 radio envelope per technology.
func ActiveUseFor(t radio.Tech) ActiveUseProfile {
	if t == radio.NR {
		return ActiveUseProfile{BaseW: 2.6, PerBitJ: 2.2e-9, CapBps: 880e6}
	}
	return ActiveUseProfile{BaseW: 1.1, PerBitJ: 8.0e-9, CapBps: 130e6}
}

// RadioPowerW returns the radio component at a sustained rate.
func (p ActiveUseProfile) RadioPowerW(rateBps float64) float64 {
	if rateBps > p.CapBps {
		rateBps = p.CapBps
	}
	return p.BaseW + p.PerBitJ*rateBps
}

// Device-level components of the Fig. 21 breakdown (watts).
const (
	SystemPowerW = 0.45 // Android system, airplane mode, screen off
	ScreenPowerW = 1.8  // maximum brightness
)

// App is one Fig. 21 workload.
type App struct {
	Name    string
	RateBps float64 // sustained network intensity during use
	AppW    float64 // application CPU/GPU (measured offline)
}

// Apps returns the four §6.1 applications.
func Apps() []App {
	return []App{
		{Name: "Browser", RateBps: 12e6, AppW: 0.35},
		{Name: "Player", RateBps: 35e6, AppW: 0.45},
		{Name: "Game", RateBps: 8e6, AppW: 0.9},
		{Name: "Download", RateBps: 900e6, AppW: 0.25},
	}
}

// Breakdown is one Fig. 21 bar.
type Breakdown struct {
	App    App
	Tech   radio.Tech
	System float64
	Screen float64
	AppW   float64
	Radio  float64
}

// Total returns the device power.
func (b Breakdown) Total() float64 { return b.System + b.Screen + b.AppW + b.Radio }

// RadioShare returns the radio's share of the total.
func (b Breakdown) RadioShare() float64 { return b.Radio / b.Total() }

// RunFig21 profiles the four applications on both radios.
func RunFig21() []Breakdown {
	var out []Breakdown
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		prof := ActiveUseFor(tech)
		for _, app := range Apps() {
			out = append(out, Breakdown{
				App: app, Tech: tech,
				System: SystemPowerW, Screen: ScreenPowerW, AppW: app.AppW,
				Radio: prof.RadioPowerW(app.RateBps),
			})
		}
	}
	return out
}

// EfficiencyPoint is one Fig. 22 sample: total radio energy (promotion
// and tail included) per delivered bit for a saturated transfer of the
// given duration.
type EfficiencyPoint struct {
	Tech     radio.Tech
	Duration time.Duration
	JPerBit  float64
}

// RunFig22 sweeps saturated transfer durations.
func RunFig22(durations []time.Duration) []EfficiencyPoint {
	var out []EfficiencyPoint
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		power := PowerFor(tech)
		params := ParamsFor(tech)
		for _, d := range durations {
			bits := power.DLRateBps * d.Seconds()
			energy := power.PromoW*params.TPro.Seconds() +
				power.SaturatedPowerW()*d.Seconds() +
				power.CDRXW*params.Ttail.Seconds()
			out = append(out, EfficiencyPoint{Tech: tech, Duration: d, JPerBit: energy / bits})
		}
	}
	return out
}

// ShowcaseMarkers are the Fig. 23 annotations.
type ShowcaseMarkers struct {
	PromotionStart time.Duration // t1
	TransferStart  time.Duration // t2
	TransferEnd    time.Duration // t3
	LTETailEnd     time.Duration // t4 (LTE run)
	NRTailEnd      time.Duration // t5 (NR run)
}

// Showcase runs the Fig. 23 experiment — a web load every 3 s, ten times —
// on both radios and returns the traces plus marker timestamps and total
// energies.
func Showcase(trace Trace) (lte, nsa ReplayResult, m ShowcaseMarkers) {
	lte = Replay(ModelLTE, trace)
	nsa = Replay(ModelNSA, trace)
	m.PromotionStart = firstState(nsa, Promotion)
	m.TransferStart = firstState(nsa, Active)
	m.TransferEnd = lastNonzeroBin(trace)
	m.LTETailEnd = lte.Duration
	m.NRTailEnd = nsa.Duration
	return lte, nsa, m
}

func firstState(r ReplayResult, s State) time.Duration {
	for _, p := range r.Series {
		if p.State == s {
			return p.At
		}
	}
	return 0
}

func lastNonzeroBin(t Trace) time.Duration {
	last := 0
	for i, b := range t.Bytes {
		if b > 0 {
			last = i
		}
	}
	return time.Duration(last+1) * t.BinDur
}
