package energy

import (
	"math"
	"testing"
	"time"

	"fivegsim/internal/radio"
)

func TestTable7Parameters(t *testing.T) {
	nr, lte := ParamsFor(radio.NR), ParamsFor(radio.LTE)
	// Table 7 exact values.
	if nr.Tidle != 1280*time.Millisecond || nr.Ton != 10*time.Millisecond {
		t.Fatal("paging DRX parameters wrong")
	}
	if lte.TPro != 623*time.Millisecond || nr.TPro != 1681*time.Millisecond {
		t.Fatal("promotion delays wrong (Table 7: 623 / 1681 ms)")
	}
	if nr.T4r5r != 1238*time.Millisecond {
		t.Fatal("LTE→NR activation delay wrong (1238 ms)")
	}
	if lte.Ttail != 10720*time.Millisecond || nr.Ttail != 21440*time.Millisecond {
		t.Fatal("tails wrong (Table 7: 10720 / 21440 ms)")
	}
	if nr.Ttail != 2*lte.Ttail {
		t.Fatal("the NSA tail must be twice the LTE tail (the double-tail effect)")
	}
	if lte.Tinac != 80*time.Millisecond || nr.Tinac != 100*time.Millisecond {
		t.Fatal("inactivity timers wrong (80/100 ms)")
	}
}

func TestSaturatedPowerRatio(t *testing.T) {
	// §6.1: the 5G module consumes 2–3× the 4G module.
	ratio := PowerFor(radio.NR).SaturatedPowerW() / PowerFor(radio.LTE).SaturatedPowerW()
	if ratio < 1.9 || ratio > 3.2 {
		t.Fatalf("5G/4G saturated power ratio = %.2f, paper reports 2–3×", ratio)
	}
}

func webTrace() Trace {
	// A deterministic miniature of traffic.Web (kept local to avoid an
	// import cycle in tests): 10 sessions of 5 loads.
	const bins = 3000
	tr := Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, bins+1)}
	for s := 0; s < 10; s++ {
		for l := 0; l < 5; l++ {
			start := s*300 + l*30
			for k := 0; k < 3; k++ {
				tr.Bytes[start+k] += 1 << 20
			}
		}
	}
	return tr
}

func videoTrace() Trace {
	bins := 1200
	tr := Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, bins)}
	for i := range tr.Bytes {
		tr.Bytes[i] = int64(112e6 / 8 / 10)
	}
	return tr
}

func fileTrace() Trace {
	total := int64(2850) << 20
	perBin := int64(50) << 20
	tr := Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, int(total/perBin)+1)}
	for i := range tr.Bytes {
		b := perBin
		if total < perBin {
			b = total
		}
		tr.Bytes[i] = b
		total -= b
	}
	return tr
}

func TestTable4Orderings(t *testing.T) {
	traces := map[string]Trace{"web": webTrace(), "video": videoTrace(), "file": fileTrace()}
	for name, tr := range traces {
		e := map[Model]float64{}
		for _, m := range Models() {
			e[m] = Replay(m, tr).EnergyJ
			if e[m] <= 0 {
				t.Fatalf("%s/%v: non-positive energy", name, m)
			}
		}
		// Oracle always beats NSA, by a bounded margin (§6.3: optimizing
		// the protocol alone provides marginal benefits).
		saving := 1 - e[ModelOracle]/e[ModelNSA]
		if saving < 0.02 || saving > 0.45 {
			t.Errorf("%s: oracle saving = %.1f%%, paper reports 11–16%%", name, 100*saving)
		}
		switch name {
		case "web":
			// Table 4: LTE wins for unsaturated web; dyn ≈ LTE.
			if e[ModelLTE] >= e[ModelNSA] {
				t.Errorf("web: LTE (%.0fJ) must beat NSA (%.0fJ)", e[ModelLTE], e[ModelNSA])
			}
			ratio := e[ModelNSA] / e[ModelLTE]
			if ratio < 1.15 || ratio > 1.9 {
				t.Errorf("web NSA/LTE = %.2f, paper 1.33 (Fig. 23: 1.67)", ratio)
			}
			if d := e[ModelDynSwitch] / e[ModelLTE]; d > 1.15 {
				t.Errorf("web dyn (%.0fJ) should track LTE (%.0fJ)", e[ModelDynSwitch], e[ModelLTE])
			}
			// §6.3: dynamic switching saves ≈25 % over NSA for web.
			if s := 1 - e[ModelDynSwitch]/e[ModelNSA]; s < 0.12 || s > 0.40 {
				t.Errorf("web dyn saving over NSA = %.1f%%, paper 25.04%%", 100*s)
			}
		case "video", "file":
			// High-rate transfers favor 5G.
			if e[ModelNSA] >= e[ModelLTE] {
				t.Errorf("%s: NSA (%.0fJ) must beat LTE (%.0fJ)", name, e[ModelNSA], e[ModelLTE])
			}
			if e[ModelDynSwitch] >= e[ModelLTE] {
				t.Errorf("%s: dyn (%.0fJ) must beat LTE (%.0fJ)", name, e[ModelDynSwitch], e[ModelLTE])
			}
		}
		if name == "file" {
			// The file row's big margin: LTE ≈ 2.3× NSA.
			if r := e[ModelLTE] / e[ModelNSA]; r < 1.8 || r > 3.2 {
				t.Errorf("file LTE/NSA = %.2f, paper 2.27", r)
			}
		}
	}
}

func TestTable4Magnitudes(t *testing.T) {
	// Absolute energies in the paper's range (Joules, not mJ or kJ).
	if e := Replay(ModelLTE, fileTrace()).EnergyJ; math.Abs(e-357.67) > 120 {
		t.Fatalf("file LTE = %.0f J, paper 357.67", e)
	}
	if e := Replay(ModelNSA, fileTrace()).EnergyJ; math.Abs(e-157.29) > 50 {
		t.Fatalf("file NSA = %.0f J, paper 157.29", e)
	}
	if e := Replay(ModelNSA, videoTrace()).EnergyJ; math.Abs(e-140.19) > 45 {
		t.Fatalf("video NSA = %.0f J, paper 140.19", e)
	}
	if e := Replay(ModelLTE, videoTrace()).EnergyJ; math.Abs(e-227.13) > 70 {
		t.Fatalf("video LTE = %.0f J, paper 227.13", e)
	}
}

func TestReplayCompletesTransfers(t *testing.T) {
	tr := fileTrace()
	for _, m := range Models() {
		r := Replay(m, tr)
		// The replay must run past the trace (tail) and the LTE model must
		// take far longer than the NSA model (completion times diverge).
		if r.Duration <= tr.Duration() {
			t.Fatalf("%v: replay ended before the tail", m)
		}
	}
	lte := Replay(ModelLTE, tr).Duration
	nsa := Replay(ModelNSA, tr).Duration
	if lte < 2*nsa {
		t.Fatalf("LTE file completion (%v) should be several times NSA's (%v)", lte, nsa)
	}
}

func TestFig21Breakdown(t *testing.T) {
	rows := RunFig21()
	if len(rows) != 8 {
		t.Fatalf("want 8 bars (4 apps × 2 techs), got %d", len(rows))
	}
	var nrShare, lteShare float64
	for _, b := range rows {
		if b.Tech == radio.NR {
			nrShare += b.RadioShare()
			// §6.1: the 5G module exceeds the screen (≈1.8×).
			if b.Radio < b.Screen {
				t.Errorf("%s on 5G: radio (%.2fW) below screen (%.2fW)", b.App.Name, b.Radio, b.Screen)
			}
		} else {
			lteShare += b.RadioShare()
		}
	}
	nrShare /= 4
	lteShare /= 4
	// Paper: 5G accounts for 55.18 % on average; 4G for 24.2–50.2 %.
	if nrShare < 0.45 || nrShare > 0.68 {
		t.Fatalf("mean 5G radio share = %.1f%%, paper 55.18%%", 100*nrShare)
	}
	if lteShare >= nrShare {
		t.Fatal("4G radio share must be below 5G's")
	}
	if lteShare < 0.15 || lteShare > 0.52 {
		t.Fatalf("mean 4G radio share = %.1f%%, paper 24–50%%", 100*lteShare)
	}
}

func TestFig22EnergyPerBit(t *testing.T) {
	durations := []time.Duration{time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second, 50 * time.Second}
	pts := RunFig22(durations)
	byTech := map[radio.Tech][]EfficiencyPoint{}
	for _, p := range pts {
		byTech[p.Tech] = append(byTech[p.Tech], p)
	}
	for tech, ps := range byTech {
		for i := 1; i < len(ps); i++ {
			if ps[i].JPerBit >= ps[i-1].JPerBit {
				t.Fatalf("%v: energy/bit must fall with transfer duration", tech)
			}
		}
	}
	// §6.1: "the energy-per-bit of 5G is only 1/4 of 4G" — we require the
	// 4G cost to be ≳2.5× at every duration.
	for i := range byTech[radio.NR] {
		ratio := byTech[radio.LTE][i].JPerBit / byTech[radio.NR][i].JPerBit
		if ratio < 2.2 {
			t.Fatalf("4G/5G energy-per-bit ratio = %.2f at %v, paper ≈4", ratio, byTech[radio.NR][i].Duration)
		}
	}
}

func TestFig23Showcase(t *testing.T) {
	// Ten web loads 3 s apart, one session (the Fig. 23 experiment).
	tr := Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, 320)}
	for l := 0; l < 10; l++ {
		for k := 0; k < 3; k++ {
			tr.Bytes[l*30+k] = 1 << 20
		}
	}
	lte, nsa, m := Showcase(tr)
	// (i) 5G consumes ≈1.67× the 4G energy for the same session.
	ratio := nsa.EnergyJ / lte.EnergyJ
	if ratio < 1.2 || ratio > 2.1 {
		t.Fatalf("NSA/LTE web session energy = %.2f, paper 1.67", ratio)
	}
	// (iii) the NR tail is about twice the LTE tail: t5 − t3 ≈ 2 × (t4 − t3).
	lteTail := m.LTETailEnd - m.TransferEnd
	nrTail := m.NRTailEnd - m.TransferEnd
	if nrTail < time.Duration(1.6*float64(lteTail)) {
		t.Fatalf("NR tail (%v) should be ≈2× LTE tail (%v)", nrTail, lteTail)
	}
	// Markers are ordered.
	if !(m.PromotionStart <= m.TransferStart && m.TransferStart < m.TransferEnd &&
		m.TransferEnd < m.LTETailEnd && m.LTETailEnd < m.NRTailEnd) {
		t.Fatalf("marker ordering violated: %+v", m)
	}
	// (ii) jagged fluctuations: the NSA series must visit both high power
	// (active) and DRX-level power repeatedly during the session.
	transitions := 0
	high := false
	for _, p := range nsa.Series {
		if p.At > m.TransferEnd {
			break
		}
		h := p.PowerW > 1.0
		if h != high {
			transitions++
			high = h
		}
	}
	if transitions < 8 {
		t.Fatalf("only %d power transitions during the session; Fig. 23 shows jagged per-load fluctuations", transitions)
	}
}

func TestStateString(t *testing.T) {
	for s := Idle; s <= CDRX; s++ {
		if s.String() == "?" {
			t.Fatalf("state %d unnamed", s)
		}
	}
	for _, m := range Models() {
		if m.String() == "?" {
			t.Fatalf("model %d unnamed", m)
		}
	}
}

func TestDynSwitchUsesBothRadios(t *testing.T) {
	// A trace alternating heavy (>100 Mb/s) and light bins must produce
	// switches under the dynamic model.
	tr := Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, 200)}
	for i := range tr.Bytes {
		if (i/30)%2 == 0 {
			tr.Bytes[i] = 2 << 20 // 160 Mb/s
		} else {
			tr.Bytes[i] = 10 << 10
		}
	}
	r := Replay(ModelDynSwitch, tr)
	if r.Switches < 2 {
		t.Fatalf("dynamic model never switched (%d)", r.Switches)
	}
}
