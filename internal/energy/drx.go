// Package energy implements the §6 energy study: the RRC/DRX state
// machine of Fig. 25 with the Table 7 parameters extracted from
// XCAL-Mobile, a per-state power model calibrated to the paper's
// breakdowns, trace-driven replay under the four §6.3 schedulers (LTE,
// NR NSA, NR Oracle, dynamic 4G/5G switching), and the Fig. 21–23
// profiling experiments.
package energy

import (
	"time"

	"fivegsim/internal/radio"
)

// State is an RRC/DRX radio state (Fig. 25).
type State int

const (
	// Idle: RRC_IDLE with paging DRX.
	Idle State = iota
	// Promotion: connection establishment (RRC_IDLE → RRC_CONNECTED);
	// under NSA an NR promotion includes the LTE leg plus SgNB addition.
	Promotion
	// Active: RRC_CONNECTED with ongoing transfer.
	Active
	// ConnectedIdle: RRC_CONNECTED, inactivity timer running (no data,
	// radio listening at full readiness).
	ConnectedIdle
	// CDRX: connected-mode discontinuous reception during the tail.
	CDRX
	// RRCInactive is the Rel-15 38.331 state the paper notes is coming
	// with SA: connection context retained at near-idle power, enabling a
	// fast resume instead of a full promotion (§B).
	RRCInactive
)

var stateNames = [...]string{"IDLE", "PROMOTION", "ACTIVE", "CONNECTED_IDLE", "C-DRX", "RRC_INACTIVE"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "?"
}

// DRXParams is the Table 7 configuration observed in the operator's
// network.
type DRXParams struct {
	Tidle time.Duration // paging DRX cycle
	Ton   time.Duration // on-duration timer
	TPro  time.Duration // promotion delay from idle
	Tinac time.Duration // DRX inactivity timer
	Tlong time.Duration // long C-DRX cycle
	Ttail time.Duration // tail before falling back to RRC_IDLE
	T4r5r time.Duration // LTE→NR activation delay (NSA only)
	// HasRRCI enables the RRC_INACTIVE extension: instead of falling all
	// the way to RRC_IDLE after the tail, the radio parks its context in
	// RRC_INACTIVE and resumes in TResume instead of TPro.
	HasRRCI bool
	TResume time.Duration
}

// ParamsFor returns the measured Table 7 parameters per technology. The
// NR tail is twice the LTE tail: rolling back from NR RRC_CONNECTED
// passes through the LTE state machine again ("the process is equivalent
// to activating an LTE tail period again", §6.2).
func ParamsFor(t radio.Tech) DRXParams {
	if t == radio.NR {
		return DRXParams{
			Tidle: 1280 * time.Millisecond,
			Ton:   10 * time.Millisecond,
			TPro:  1681 * time.Millisecond,
			Tinac: 100 * time.Millisecond,
			Tlong: 320 * time.Millisecond,
			Ttail: 21440 * time.Millisecond,
			T4r5r: 1238 * time.Millisecond,
		}
	}
	return DRXParams{
		Tidle: 1280 * time.Millisecond,
		Ton:   10 * time.Millisecond,
		TPro:  623 * time.Millisecond,
		Tinac: 80 * time.Millisecond,
		Tlong: 320 * time.Millisecond,
		Ttail: 10720 * time.Millisecond,
	}
}

// PowerModel holds the per-state radio power in watts plus the marginal
// energy per transferred bit.
type PowerModel struct {
	IdleW     float64
	PromoW    float64
	ActiveW   float64 // connected baseline while transferring or awaiting
	CDRXW     float64 // average over the tail's sleep/wake duty cycle
	PerBitJ   float64 // marginal energy per bit moved
	DLRateBps float64 // radio drain rate during replay
}

// PowerFor returns the calibrated power model. Calibration anchors (§6):
// the 5G module consumes 2–3× the 4G module under saturation; 5G
// energy-per-bit under saturation is ≈¼ of 4G's; the NR tail is both
// longer and hotter (the double NSA tail of Fig. 23); NR's connected
// baseline benefits from NR micro-sleep but its RF/baseband drinks far
// more per hertz of bandwidth when moving bits.
func PowerFor(t radio.Tech) PowerModel {
	if t == radio.NR {
		return PowerModel{
			IdleW:     0.025,
			PromoW:    2.2,
			ActiveW:   0.67,
			CDRXW:     0.45,
			PerBitJ:   4.7e-9,
			DLRateBps: 880e6,
		}
	}
	return PowerModel{
		IdleW:     0.02,
		PromoW:    1.4,
		ActiveW:   1.05,
		CDRXW:     0.35,
		PerBitJ:   8.0e-9,
		DLRateBps: 130e6,
	}
}

// SaturatedPowerW returns the radio power at full rate.
func (p PowerModel) SaturatedPowerW() float64 {
	return p.ActiveW + p.PerBitJ*p.DLRateBps
}
