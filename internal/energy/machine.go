package energy

import (
	"time"

	"fivegsim/internal/obs"
	"fivegsim/internal/radio"
)

// Trace is offered traffic in fixed-width bins (the Wireshark captures
// the paper replays in §6.3).
type Trace struct {
	BinDur time.Duration
	Bytes  []int64
}

// TotalBytes sums the trace.
func (t Trace) TotalBytes() int64 {
	var n int64
	for _, b := range t.Bytes {
		n += b
	}
	return n
}

// Duration returns the trace span.
func (t Trace) Duration() time.Duration { return time.Duration(len(t.Bytes)) * t.BinDur }

// BinRate returns the offered rate of bin i in bits/s.
func (t Trace) BinRate(i int) float64 {
	return float64(t.Bytes[i]*8) / t.BinDur.Seconds()
}

// PowerSample is one point of the pwrStrip-style power series.
type PowerSample struct {
	At     time.Duration
	PowerW float64
	State  State
	Tech   radio.Tech
}

// ReplayResult is the outcome of a trace replay.
type ReplayResult struct {
	EnergyJ  float64
	Duration time.Duration // until the queue drained and the tail ended
	Series   []PowerSample
	InState  map[State]time.Duration
	Switches int // 4G↔5G transitions (dynamic model only)
}

// RecordObs mirrors the replay outcome into reg under the
// `energy.*{model=...}` namespace: per-state residency counters
// (milliseconds), total energy (millijoules), replay duration and radio
// switches. Nil-safe on a nil registry.
func (r ReplayResult) RecordObs(reg *obs.Registry, model Model) {
	if reg == nil {
		return
	}
	label := "{model=" + model.String() + "}"
	for state, d := range r.InState {
		reg.Counter("energy.state_ms{model=" + model.String() + ",state=" + state.String() + "}").Add(d.Milliseconds())
	}
	reg.Counter("energy.total_mj" + label).Add(int64(r.EnergyJ * 1000))
	reg.Counter("energy.replay_ms" + label).Add(r.Duration.Milliseconds())
	reg.Counter("energy.radio_switches" + label).Add(int64(r.Switches))
}

// Model selects a §6.3 power-management strategy.
type Model int

const (
	// ModelLTE replays on the 4G radio only.
	ModelLTE Model = iota
	// ModelNSA replays on the 5G NSA radio (the phone's behaviour).
	ModelNSA
	// ModelOracle is the paper's protocol oracle: perfect sleep/awake
	// transitions (no promotion cost, no inactivity-timer waste), but the
	// same radio hardware per-state power and the protocol tail — "the
	// bottleneck may lie in the hardware itself" (§6.3).
	ModelOracle
	// ModelDynSwitch opportunistically serves bins below the 4G capacity
	// on the 4G radio and switches the 5G module on only when the offered
	// rate approaches 100 Mb/s (§6.3).
	ModelDynSwitch
)

var modelNames = [...]string{"LTE", "NR NSA", "NR Oracle", "Dyn. switch"}

// String names the model like Table 4.
func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return "?"
}

// Models lists the Table 4 rows.
func Models() []Model { return []Model{ModelLTE, ModelNSA, ModelOracle, ModelDynSwitch} }

// DynSwitchThresholdBps is the 4G-capacity threshold of the dynamic
// scheme ("if the instantaneous traffic intensity ... is approaching 4G's
// capacity, i.e., 100 Mbps, we switch the radio into the 5G NR module").
const DynSwitchThresholdBps = 100e6

// switchPenaltyJ is the signaling cost of one 4G↔5G transition under the
// dynamic model.
const switchPenaltyJ = 0.25

// step is the state-machine integration step.
const step = 10 * time.Millisecond

// Replay drives the Fig. 25 state machine over a trace and integrates
// radio energy. The run extends beyond the trace until the queue has
// drained and the radio has fallen back to RRC_IDLE (tail included).
func Replay(model Model, trace Trace) ReplayResult {
	return ReplayWithParams(model, trace, nil)
}

// ReplayWithParams is Replay with a DRX-parameter override hook (used by
// the DRX-sweep and RRC_INACTIVE ablations).
func ReplayWithParams(model Model, trace Trace, mod func(DRXParams) DRXParams) ReplayResult {
	res := ReplayResult{InState: map[State]time.Duration{}}

	paramsFor := func(t radio.Tech) DRXParams {
		p := ParamsFor(t)
		if mod != nil {
			p = mod(p)
		}
		return p
	}

	techFor := func(binRate float64) radio.Tech {
		switch model {
		case ModelLTE:
			return radio.LTE
		case ModelDynSwitch:
			if binRate > DynSwitchThresholdBps {
				return radio.NR
			}
			return radio.LTE
		default:
			return radio.NR
		}
	}

	tech := techFor(0)
	if model == ModelNSA || model == ModelOracle {
		tech = radio.NR
	}
	params := paramsFor(tech)
	power := PowerFor(tech)

	state := Idle
	var queue float64 // bytes waiting
	var stateLeft time.Duration
	var energy float64
	now := time.Duration(0)
	lastSample := time.Duration(-1)

	setState := func(s State, dur time.Duration) {
		state = s
		stateLeft = dur
	}

	oracle := model == ModelOracle

	for {
		bin := int(now / trace.BinDur)
		if bin < len(trace.Bytes) {
			// Deliver this step's share of the bin's bytes into the queue.
			queue += float64(trace.Bytes[bin]) * step.Seconds() / trace.BinDur.Seconds()
			// Dynamic switching decision per bin boundary: the demand is
			// the offered rate or the backlog drain pressure, whichever
			// is larger (a queued-up bulk keeps the 5G radio selected).
			if model == ModelDynSwitch {
				demand := trace.BinRate(bin)
				if backlogRate := queue * 8 / trace.BinDur.Seconds(); backlogRate > demand {
					demand = backlogRate
				}
				want := techFor(demand)
				if want != tech {
					tech = want
					params = paramsFor(tech)
					power = PowerFor(tech)
					energy += switchPenaltyJ
					res.Switches++
					if state == Active || state == ConnectedIdle {
						// Connection carries over; tail timers restart.
					} else if state == CDRX {
						setState(CDRX, params.Ttail)
					}
				}
			}
		} else if queue <= 0 && (state == Idle || state == RRCInactive) {
			break
		}

		stepPower := 0.0
		drained := 0.0
		switch state {
		case Idle:
			stepPower = power.IdleW
			if queue > 0 {
				if oracle {
					setState(Active, 0) // perfect instant wake
				} else {
					setState(Promotion, params.TPro)
				}
			}
		case Promotion:
			stepPower = power.PromoW
			stateLeft -= step
			if stateLeft <= 0 {
				setState(Active, 0)
			}
		case Active:
			stepPower = power.ActiveW
			if queue > 0 {
				capacity := power.DLRateBps / 8 * step.Seconds()
				drained = capacity
				if drained > queue {
					drained = queue
				}
				queue -= drained
				if oracle {
					// Perfect micro-sleep: the oracle pays the connected
					// baseline only for the slots actually transmitting and
					// drops to the DRX floor in between.
					frac := drained / capacity
					stepPower = power.ActiveW*frac + power.CDRXW*0.7*(1-frac)
				}
				stepPower += power.PerBitJ * drained * 8 / step.Seconds()
			} else {
				if oracle {
					setState(CDRX, params.Ttail) // no inactivity waste
				} else {
					setState(ConnectedIdle, params.Tinac)
				}
			}
		case ConnectedIdle:
			stepPower = power.ActiveW
			if queue > 0 {
				setState(Active, 0)
			} else {
				stateLeft -= step
				if stateLeft <= 0 {
					setState(CDRX, params.Ttail)
				}
			}
		case CDRX:
			stepPower = power.CDRXW
			if oracle {
				// Perfect sleep inside the mandated DRX cycles: scheduling
				// can trim the wake ramps but not the hardware's DRX floor
				// (§6.3: "the bottleneck may lie in the hardware itself").
				stepPower = power.CDRXW * 0.7
			}
			if queue > 0 {
				setState(Active, 0) // fast resume from connected DRX
			} else {
				stateLeft -= step
				if stateLeft <= 0 {
					if params.HasRRCI {
						setState(RRCInactive, 0)
					} else {
						setState(Idle, 0)
					}
				}
			}
		case RRCInactive:
			// Context retained at near-idle power; resume is a short RACH
			// rather than a full promotion.
			stepPower = power.IdleW * 1.5
			if queue > 0 {
				setState(Promotion, params.TResume)
			}
		}

		energy += stepPower * step.Seconds()
		res.InState[state] += step
		if now-lastSample >= 100*time.Millisecond {
			res.Series = append(res.Series, PowerSample{At: now, PowerW: stepPower, State: state, Tech: tech})
			lastSample = now
		}
		now += step
		if now > trace.Duration()+5*time.Minute {
			break // safety against pathological traces
		}
	}
	res.EnergyJ = energy
	res.Duration = now
	return res
}
