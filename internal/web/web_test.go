package web

import (
	"testing"

	"fivegsim/internal/radio"
)

func fig16(t *testing.T) []CategoryResult {
	t.Helper()
	return RunFig16(3, 42)
}

func TestFig16Categories(t *testing.T) {
	res := fig16(t)
	if len(res) != 10 { // 5 categories × 2 technologies
		t.Fatalf("got %d category results", len(res))
	}
	for _, r := range res {
		if r.PLT() <= 0 || r.Downloading <= 0 || r.Rendering <= 0 {
			t.Fatalf("degenerate result: %+v", r)
		}
		// Paper Fig. 16: PLTs between ≈1 s and ≈6 s.
		if r.PLT().Seconds() < 0.8 || r.PLT().Seconds() > 8 {
			t.Fatalf("%v %s PLT = %.2fs out of the Fig. 16 range", r.Tech, r.Category, r.PLT().Seconds())
		}
	}
}

func TestFig16MarginalPLTGain(t *testing.T) {
	plt, dl := Reductions(fig16(t))
	// §5.1: "the 5G PLT shows minimum reduction (5 % on average)" despite
	// the 5× throughput gain, and "5G only provides a marginal 20.68 %
	// reduction" on downloading alone.
	if plt < 0.0 || plt > 0.16 {
		t.Fatalf("PLT reduction = %.1f%%, paper ≈5%% (must be marginal)", 100*plt)
	}
	if dl < 0.12 || dl > 0.34 {
		t.Fatalf("downloading reduction = %.1f%%, paper 20.68%%", 100*dl)
	}
	if plt >= dl {
		t.Fatal("PLT reduction must be smaller than downloading reduction (rendering dilutes it)")
	}
}

func TestFig16RenderingDominatesLargePages(t *testing.T) {
	for _, r := range fig16(t) {
		if r.Tech != radio.NR {
			continue
		}
		if r.Category == "Map" || r.Category == "Shopping" {
			if r.Rendering <= r.Downloading {
				t.Fatalf("%s on 5G: rendering (%.2fs) should dominate downloading (%.2fs)",
					r.Category, r.Rendering.Seconds(), r.Downloading.Seconds())
			}
		}
	}
}

func TestFig17ImageSweep(t *testing.T) {
	res := RunFig17(42)
	if len(res) != 10 {
		t.Fatalf("got %d image results", len(res))
	}
	byTech := map[radio.Tech][]ImageResult{}
	for _, r := range res {
		byTech[r.Tech] = append(byTech[r.Tech], r)
	}
	for tech, rs := range byTech {
		for i := 1; i < len(rs); i++ {
			if rs[i].Rendering <= rs[i-1].Rendering {
				t.Fatalf("%v: rendering must grow with image size", tech)
			}
		}
	}
	// 4G downloads slower than 5G at every size; the absolute gap grows
	// with size (bandwidth matters more for bigger objects).
	gapSmall := byTech[radio.LTE][0].Downloading - byTech[radio.NR][0].Downloading
	gapBig := byTech[radio.LTE][4].Downloading - byTech[radio.NR][4].Downloading
	if gapBig <= gapSmall {
		t.Fatalf("download gap should grow with size: %v → %v", gapSmall, gapBig)
	}
	for i := range byTech[radio.LTE] {
		if byTech[radio.LTE][i].Downloading <= byTech[radio.NR][i].Downloading {
			t.Fatalf("4G download faster than 5G at %d MB", byTech[radio.LTE][i].SizeMB)
		}
	}
	// For 16 MB images even 5G's PLT is rendering-bound (the paper's
	// computational-bottleneck conclusion).
	last := byTech[radio.NR][4]
	if last.Rendering <= last.Downloading {
		t.Fatalf("16 MB on 5G: rendering (%.2fs) should exceed downloading (%.2fs)",
			last.Rendering.Seconds(), last.Downloading.Seconds())
	}
}

func TestLoadDeterministic(t *testing.T) {
	p := Corpus()[0]
	a := Load(p, radio.NR, 7)
	b := Load(p, radio.NR, 7)
	if a.Downloading != b.Downloading || a.Rendering != b.Rendering {
		t.Fatal("Load must be deterministic for a fixed seed")
	}
}
