// Package web implements the §5.1 page-load study: an HTML5 site corpus
// (search / image / shopping / map / video categories), downloads over the
// simulated network with HTTP/2 + BBR (the paper's configuration), a fetch
// dependency chain, and a device rendering model. The headline findings it
// reproduces: 5G cuts PLT by only ≈5 % because rendering dominates, and
// even the downloading share shrinks by only ≈20 % because short flows end
// long before TCP converges.
package web

import (
	"time"

	"fivegsim/internal/netsim"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
	"fivegsim/internal/transport"
)

// Page describes one test page.
type Page struct {
	Category string
	// Bytes is the total transferred content size.
	Bytes int64
	// ChainDepth counts sequential request dependencies (HTML → CSS →
	// fonts → scripts → API calls), each costing an RTT plus server think
	// time even on an infinite pipe.
	ChainDepth int
	// ServerThink is the per-chain-step backend latency.
	ServerThink time.Duration
	// RenderBase is the device-side parse/layout/paint time, which no
	// network can reduce.
	RenderBase time.Duration
}

// Corpus returns the Fig. 16 category mix (10 pages per category are
// sampled around these profiles).
func Corpus() []Page {
	return []Page{
		{Category: "Search", Bytes: 600 << 10, ChainDepth: 6, ServerThink: 150 * time.Millisecond, RenderBase: 1250 * time.Millisecond},
		{Category: "Image", Bytes: 3 << 20, ChainDepth: 7, ServerThink: 140 * time.Millisecond, RenderBase: 2100 * time.Millisecond},
		{Category: "Shopping", Bytes: 2500 << 10, ChainDepth: 10, ServerThink: 160 * time.Millisecond, RenderBase: 3300 * time.Millisecond},
		{Category: "Map", Bytes: 4 << 20, ChainDepth: 9, ServerThink: 150 * time.Millisecond, RenderBase: 4100 * time.Millisecond},
		{Category: "Video", Bytes: 5 << 20, ChainDepth: 8, ServerThink: 145 * time.Millisecond, RenderBase: 2600 * time.Millisecond},
	}
}

// LoadResult is one measured page load (the Chrome-devtools split the
// paper uses: content downloading vs page rendering).
type LoadResult struct {
	Page        Page
	Tech        radio.Tech
	Downloading time.Duration
	Rendering   time.Duration
}

// PLT returns the total page-load time.
func (r LoadResult) PLT() time.Duration { return r.Downloading + r.Rendering }

// Load fetches one page over a fresh path using HTTP/2 + BBR and returns
// the download/render split.
func Load(page Page, tech radio.Tech, seed int64) LoadResult {
	cfg := netsim.DefaultPath(tech, true)
	cfg.Seed = seed
	rtt := cfg.BaseRTT()

	// TCP + TLS handshakes (HTTP/2 over TLS 1.2: 2 round trips), then the
	// request dependency chain, then the bulk of the bytes over the
	// simulated transport (slow-start transient included).
	setup := 2 * rtt
	chain := time.Duration(page.ChainDepth) * (rtt + page.ServerThink)
	transfer, ok := transport.RunTransfer(cfg, "bbr", page.Bytes, 60*time.Second)
	if !ok {
		transfer = 60 * time.Second
	}
	r := rng.New(seed).Stream("web.render")
	render := page.RenderBase +
		time.Duration(rng.ClampedNormal(r, 0, 40, -100, 100)*float64(time.Millisecond)) +
		// Decode/layout cost grows with content size (≈90 ms/MB on the
		// phone-class device).
		time.Duration(float64(page.Bytes)/float64(1<<20)*140*float64(time.Millisecond))
	return LoadResult{
		Page:        page,
		Tech:        tech,
		Downloading: setup + chain + transfer,
		Rendering:   render,
	}
}

// CategoryResult aggregates Fig. 16's per-category bars.
type CategoryResult struct {
	Category    string
	Tech        radio.Tech
	Downloading time.Duration
	Rendering   time.Duration
	N           int
}

// PLT returns the mean page-load time of the category.
func (c CategoryResult) PLT() time.Duration { return c.Downloading + c.Rendering }

// RunFig16 loads pagesPerCategory variants of every category on both
// technologies and returns the per-category means, 4G first then 5G.
func RunFig16(pagesPerCategory int, seed int64) []CategoryResult {
	var out []CategoryResult
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		for _, base := range Corpus() {
			agg := CategoryResult{Category: base.Category, Tech: tech}
			r := rng.New(seed).Stream("web.variants." + base.Category)
			for i := 0; i < pagesPerCategory; i++ {
				p := base
				p.Bytes = int64(float64(p.Bytes) * rng.Uniform(r, 0.8, 1.25))
				res := Load(p, tech, seed+int64(i)*31+int64(len(base.Category)))
				agg.Downloading += res.Downloading
				agg.Rendering += res.Rendering
				agg.N++
			}
			agg.Downloading /= time.Duration(agg.N)
			agg.Rendering /= time.Duration(agg.N)
			out = append(out, agg)
		}
	}
	return out
}

// ImageResult is one Fig. 17 bar: PLT split for a single image of the
// given size.
type ImageResult struct {
	SizeMB      int
	Tech        radio.Tech
	Downloading time.Duration
	Rendering   time.Duration
}

// PLT returns the total load time.
func (r ImageResult) PLT() time.Duration { return r.Downloading + r.Rendering }

// RunFig17 loads single-image pages of 1–16 MB on both technologies.
func RunFig17(seed int64) []ImageResult {
	var out []ImageResult
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		for _, mb := range []int{1, 2, 4, 8, 16} {
			p := Page{
				Category: "Image", Bytes: int64(mb) << 20, ChainDepth: 2,
				ServerThink: 40 * time.Millisecond,
				RenderBase:  150 * time.Millisecond,
			}
			res := Load(p, tech, seed+int64(mb))
			out = append(out, ImageResult{
				SizeMB: mb, Tech: tech,
				Downloading: res.Downloading, Rendering: res.Rendering,
			})
		}
	}
	return out
}

// Reductions summarizes the paper's two headline percentages from a
// Fig. 16 run: the total-PLT reduction (≈5 %) and the downloading-only
// reduction (≈20.68 %) going from 4G to 5G.
func Reductions(results []CategoryResult) (plt, downloading float64) {
	var plt4, plt5, dl4, dl5 float64
	for _, r := range results {
		if r.Tech == radio.LTE {
			plt4 += r.PLT().Seconds()
			dl4 += r.Downloading.Seconds()
		} else {
			plt5 += r.PLT().Seconds()
			dl5 += r.Downloading.Seconds()
		}
	}
	return 1 - plt5/plt4, 1 - dl5/dl4
}
