package netsim

import (
	"strconv"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/obs"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

// PathConfig describes one end-to-end path between the cloud server and
// the UE, per technology and time of day. Defaults are calibrated to the
// paper's measurements (see DefaultPath).
type PathConfig struct {
	Tech    radio.Tech
	Daytime bool

	// Downlink radio goodput available to the foreground UE (PRB share
	// and MCS applied): the UDP baselines of Fig. 7.
	RANRateBps     float64
	RANBufferBytes int
	RANOneWay      time.Duration

	// CoreOneWay is the gNB/eNB → packet core latency: the paper's Fig. 14
	// shows the 5G flat architecture takes ≈20 ms (RTT) out of this hop.
	CoreOneWay time.Duration

	// The legacy Internet bottleneck.
	BottleneckBps         float64
	BottleneckBufferBytes int
	BottleneckOneWay      time.Duration

	// ServerOneWay covers the remaining wired hops to the cloud server.
	ServerOneWay time.Duration

	// Uplink capacity (carries ACKs and uplink video).
	ULRateBps float64

	Cross CrossConfig
	Seed  int64

	// Obs, when non-nil, collects `des.*` and `netsim.*` metrics for
	// every hop and scheduler this path is built on. Trace additionally
	// records drop/outage instants (and, with Profile, per-callback
	// spans) into the bounded trace ring. All three default to off.
	Obs     *obs.Registry
	Trace   *obs.Tracer
	Profile bool

	// Inject, when non-nil, is invoked once by NewPath after the path is
	// wired up, before any traffic flows. It is the fault-injection
	// attachment point (internal/fault schedules its timed faults here);
	// netsim itself knows nothing about fault plans. Nil is the exact
	// pre-fault behaviour.
	Inject func(sch *des.Scheduler, p *Path)
}

// DefaultPath returns the calibrated path for a technology/time of day.
//
// Calibration targets (paper §4): UDP DL baselines 880/900 Mb/s (5G
// day/night) and 130/200 Mb/s (4G); UL 130/130 and 50/100 Mb/s; one-way
// path latency ≈21.8 ms (5G) with the 4G path ≈22 ms RTT slower, of which
// the RAN accounts for 2.19 vs 2.6 ms RTT and the core hop the bulk
// (Fig. 14); a 1 Gb/s wired bottleneck whose buffer is provisioned for
// 4G-era flows.
func DefaultPath(tech radio.Tech, daytime bool) PathConfig {
	cfg := PathConfig{
		Tech:             tech,
		Daytime:          daytime,
		BottleneckBps:    1e9,
		BottleneckOneWay: 3 * time.Millisecond,
		ServerOneWay:     4 * time.Millisecond,
		Cross:            DefaultCross(),
		Seed:             1,
	}
	if tech == radio.LTE {
		cfg.Cross = LegacyCross()
	}
	if tech == radio.NR {
		if daytime {
			cfg.RANRateBps = 880e6
		} else {
			cfg.RANRateBps = 900e6
		}
		cfg.ULRateBps = 130e6
		cfg.RANBufferBytes = 3_750_000 // ≈5× the 4G RAN buffer (Table 3)
		cfg.RANOneWay = 1100 * time.Microsecond
		cfg.CoreOneWay = 2500 * time.Microsecond
		cfg.BottleneckBufferBytes = 1_600_000 // ≈2.5× the 4G path's (Table 3)
	} else {
		if daytime {
			cfg.RANRateBps = 132e6
			cfg.ULRateBps = 50e6
		} else {
			cfg.RANRateBps = 202e6
			cfg.ULRateBps = 100e6
		}
		cfg.RANBufferBytes = 2_000_000
		cfg.RANOneWay = 1300 * time.Microsecond
		cfg.CoreOneWay = 13500 * time.Microsecond
		cfg.BottleneckBufferBytes = 640_000
	}
	return cfg
}

// BaseRTT returns the no-queueing round-trip time of the path.
func (c PathConfig) BaseRTT() time.Duration {
	oneWay := c.RANOneWay + c.CoreOneWay + c.BottleneckOneWay + c.ServerOneWay
	return 2 * oneWay
}

// Path is a built end-to-end path running on a shared scheduler.
type Path struct {
	Sch *des.Scheduler
	Cfg PathConfig

	// ServerIngress accepts downlink packets from the server-side sender.
	ServerIngress Receiver
	// UEIngress accepts uplink packets from the UE (ACKs, uplink video).
	UEIngress Receiver

	// ToUE / ToServer are set by the endpoints to receive deliveries.
	ToUE     Receiver
	ToServer Receiver

	Bottleneck *Hop
	RAN        *RANHop
	UplinkRAN  *Hop
	CrossSink  *Sink

	// Pool recycles the packets the path generates itself (UDP load and
	// cross traffic); see PacketPool for the ownership rule. Transport
	// engines keep allocating their own packets — Release ignores them.
	Pool *PacketPool
}

// NewPath wires up the downlink chain
//
//	server → wired → [bottleneck+cross] → core → RAN → UE
//
// and the uplink chain UE → UL-RAN → core+wired → server.
func NewPath(sch *des.Scheduler, cfg PathConfig) *Path {
	p := &Path{Sch: sch, Cfg: cfg, Pool: NewPacketPool()}
	src := rng.New(cfg.Seed)

	if cfg.Obs != nil || cfg.Trace != nil {
		sch.SetObs(cfg.Obs, cfg.Trace)
		sch.SetProfile(cfg.Profile)
	}
	flowBytes := newFlowCounters(cfg.Obs)

	// Downlink, built back to front. The endpoint wrappers are where
	// pool-owned packets finish their life: released after the consumer
	// callback returns (consumers copy what they need synchronously).
	ueDeliver := ReceiverFunc(func(pkt *Packet) {
		flowBytes.add(pkt)
		if p.ToUE != nil {
			p.ToUE.Receive(pkt)
		}
		p.Pool.Release(pkt)
	})
	p.RAN = NewRANHop(sch, cfg.Tech, cfg.RANRateBps,
		cfg.RANOneWay, cfg.RANBufferBytes, src.Stream("ran.harq"), ueDeliver)

	core := NewHop(sch, "core", 10e9, cfg.CoreOneWay, 64_000_000, p.RAN)

	p.CrossSink = &Sink{}
	demux := ReceiverFunc(func(pkt *Packet) {
		if pkt.Background {
			p.CrossSink.Receive(pkt)
			p.Pool.Release(pkt)
			return
		}
		core.Receive(pkt)
	})
	p.Bottleneck = NewHop(sch, "bottleneck", cfg.BottleneckBps,
		cfg.BottleneckOneWay, cfg.BottleneckBufferBytes, demux)

	serverWired := NewHop(sch, "server-wired", 10e9, cfg.ServerOneWay, 64_000_000, p.Bottleneck)
	p.ServerIngress = serverWired

	StartCross(sch, cfg.Cross, src.Stream("cross"), p.Pool, p.Bottleneck)

	// Uplink.
	serverDeliver := ReceiverFunc(func(pkt *Packet) {
		if p.ToServer != nil {
			p.ToServer.Receive(pkt)
		}
		p.Pool.Release(pkt)
	})
	ulWired := NewHop(sch, "ul-wired", 10e9,
		cfg.CoreOneWay+cfg.BottleneckOneWay+cfg.ServerOneWay, 64_000_000, serverDeliver)
	p.UplinkRAN = NewHop(sch, "ul-ran", cfg.ULRateBps,
		cfg.RANOneWay, 2_000_000, ulWired)
	p.UEIngress = p.UplinkRAN

	for _, h := range []*Hop{core, p.Bottleneck, serverWired, ulWired, p.UplinkRAN} {
		h.SetPool(p.Pool)
	}
	p.RAN.SetPool(p.Pool)

	if cfg.Obs != nil || cfg.Trace != nil {
		p.RAN.SetObs(cfg.Obs, cfg.Trace)
		core.SetObs(cfg.Obs, cfg.Trace)
		p.Bottleneck.SetObs(cfg.Obs, cfg.Trace)
		serverWired.SetObs(cfg.Obs, cfg.Trace)
		ulWired.SetObs(cfg.Obs, cfg.Trace)
		p.UplinkRAN.SetObs(cfg.Obs, cfg.Trace)
	}

	if cfg.Inject != nil {
		cfg.Inject(sch, p)
	}

	return p
}

// flowCounters caches per-flow delivered-byte counters so the per-packet
// delivery path never takes the registry lock. Small flow IDs (the
// foreground flows) hit a fixed array; others fall back to one shared
// overflow counter.
type flowCounters struct {
	small [8]*obs.Counter
	other *obs.Counter
}

func newFlowCounters(reg *obs.Registry) *flowCounters {
	if reg == nil {
		return nil
	}
	fc := &flowCounters{other: reg.Counter("netsim.flow_bytes{flow=other}")}
	for i := range fc.small {
		fc.small[i] = reg.Counter("netsim.flow_bytes{flow=" + strconv.Itoa(i) + "}")
	}
	return fc
}

func (fc *flowCounters) add(p *Packet) {
	if fc == nil {
		return
	}
	c := fc.other
	if p.FlowID >= 0 && p.FlowID < len(fc.small) {
		c = fc.small[p.FlowID]
	}
	c.Add(int64(p.Len))
}

// SetRANRate changes the downlink radio goodput (e.g. PRB contention or a
// weaker MCS after movement).
func (p *Path) SetRANRate(bps float64) {
	p.Cfg.RANRateBps = bps
	p.RAN.SetRate(bps)
}

// Outage interrupts the radio in both directions for d (hand-off).
func (p *Path) Outage(d time.Duration) {
	p.Cfg.Trace.Span("outage", "netsim", p.Sch.Now(), d)
	p.RAN.SetOutage(d)
}
