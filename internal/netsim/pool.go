package netsim

// PacketPool recycles Packet structs for the traffic a path generates
// itself (the UDP load generators and the cross-traffic pump), so the
// per-packet steady state allocates nothing. The pool is owned by a
// single scheduler's event loop and is deliberately not thread-safe — a
// sync.Pool would buy nothing here and cost an atomic per packet.
//
// Ownership rule: a packet obtained from Get is released back exactly
// once, by whoever terminates it — the delivery wrappers in NewPath
// release on final delivery, the hops release on drop (after OnDrop
// observers ran) and on HARQ residual loss. Packets built with plain
// &Packet{} (the transport engines own their retransmission state) are
// ignored by Release, so pooled and unpooled traffic mix freely on one
// path.
type PacketPool struct {
	free []*Packet

	// Gets and News count checkouts and fresh allocations (diagnostic;
	// Gets − News is the number of reuses).
	Gets int64
	News int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed pool-owned packet. Nil-safe: a nil pool
// degrades to plain allocation.
func (pl *PacketPool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.Gets++
	n := len(pl.free)
	if n == 0 {
		pl.News++
		return &Packet{pooled: true}
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	*p = Packet{Sack: p.Sack[:0], pooled: true}
	return p
}

// Release returns a pool-owned packet to the free list. Packets not
// checked out of a pool (pooled == false) and double releases are
// no-ops, as is a nil pool or packet.
func (pl *PacketPool) Release(p *Packet) {
	if pl == nil || p == nil || !p.pooled {
		return
	}
	p.pooled = false
	pl.free = append(pl.free, p)
}

// FreeLen reports the current free-list depth (diagnostic).
func (pl *PacketPool) FreeLen() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// pktRing is a growable FIFO ring buffer of packets: the hop queues.
// Unlike the append/reslice idiom it never leaks the consumed prefix and
// reaches a zero-allocation steady state once grown to the high-water
// mark.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) peek() *Packet { return r.buf[r.head] }

func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

func (r *pktRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 16
	}
	buf := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
