package netsim

import (
	"time"

	"fivegsim/internal/des"
)

// UDPResult summarizes an iperf3-style constant-rate UDP run.
type UDPResult struct {
	OfferedBps   float64
	DeliveredBps float64
	Sent         int64
	Received     int64
	LossRate     float64
	// ReceivedSeq is the in-order list of sequence numbers that arrived,
	// recorded when tracing is on (the Fig. 11 bursty-loss evidence).
	ReceivedSeq []int64
	// RTTBase is the configured no-load RTT (diagnostic).
	RTTBase time.Duration
}

// LossRuns returns the lengths of consecutive-loss runs in the trace —
// the burstiness measure behind Fig. 11.
func (r UDPResult) LossRuns() []int {
	var runs []int
	prev := int64(-1)
	for _, seq := range r.ReceivedSeq {
		if prev >= 0 && seq > prev+1 {
			runs = append(runs, int(seq-prev-1))
		}
		prev = seq
	}
	return runs
}

// RunUDP sends CBR traffic at offeredBps over a fresh path for the given
// duration and reports delivery statistics.
func RunUDP(cfg PathConfig, offeredBps float64, duration time.Duration, trace bool) UDPResult {
	sch := des.New()
	path := NewPath(sch, cfg)

	res := UDPResult{OfferedBps: offeredBps, RTTBase: cfg.BaseRTT()}
	var receivedBytes int64
	path.ToUE = ReceiverFunc(func(p *Packet) {
		res.Received++
		receivedBytes += int64(p.Len)
		if trace {
			res.ReceivedSeq = append(res.ReceivedSeq, p.Seq)
		}
	})

	interval := time.Duration(float64((MSS+HeaderBytes)*8) / offeredBps * float64(time.Second))
	var seq int64
	var tick func()
	tick = func() {
		if sch.Now() >= duration {
			return
		}
		p := path.Pool.Get()
		p.FlowID, p.Seq, p.Len, p.Wire, p.SentAt = 1, seq, MSS, MSS+HeaderBytes, sch.Now()
		path.ServerIngress.Receive(p)
		seq++
		res.Sent++
		sch.After(interval, tick)
	}
	tick()

	// Run past the nominal duration so in-flight packets drain.
	sch.RunUntil(duration + time.Second)

	if res.Sent > 0 {
		res.LossRate = 1 - float64(res.Received)/float64(res.Sent)
	}
	res.DeliveredBps = float64(receivedBytes*8) / duration.Seconds()
	return res
}

// UDPBaseline measures the peak deliverable UDP throughput of a path by
// offering slightly more than the radio can carry, mirroring the paper's
// "gradually increase the UDP sending rate" methodology (§4.1).
func UDPBaseline(cfg PathConfig, duration time.Duration) UDPResult {
	return RunUDP(cfg, cfg.RANRateBps*1.08, duration, false)
}
