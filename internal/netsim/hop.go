package netsim

import (
	"math/rand"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/obs"
)

// Hop is one store-and-forward element: a drop-tail FIFO buffer feeding a
// fixed-rate serializer, followed by a propagation delay. It is the router
// model under the paper's §4.2 buffer analysis.
//
// The per-packet path is allocation-free in steady state: the queue is a
// ring buffer, the serializer holds its single in-flight packet in a
// struct slot, and the scheduler callbacks (serve retry, tx complete,
// delivery) are bound once at construction — the delivery leg rides the
// scheduler's arg-carrying events instead of a per-packet closure.
type Hop struct {
	Name string

	sch     *des.Scheduler
	rateBps float64
	prop    time.Duration
	// limitBytes is the buffer size; at or beyond it arriving packets are
	// dropped (drop-tail), the behaviour the paper's bursty loss pattern
	// (Fig. 11) implicates.
	limitBytes int
	next       Receiver

	queue       pktRing
	queuedBytes int
	busy        bool
	lockout     bool

	// inflight is the packet occupying the serializer; the pre-bound
	// callbacks below are what keep the hot path closure-free.
	inflight  *Packet
	serveFn   func()
	txDoneFn  func()
	deliverFn func(any)

	// pool, when set, recycles pool-owned packets this hop terminates
	// (drops). Nil is a no-op.
	pool *PacketPool

	// Fault-injection state (see internal/fault). All three default to
	// the pass-through zero values, so an unfaulted hop behaves exactly
	// as before.
	injectLoss float64
	injectRng  *rand.Rand
	extraProp  time.Duration
	rateScale  float64 // 0 means no scaling

	// Stats.
	Forwarded  int64
	Dropped    int64
	DropEvents int64 // distinct overflow episodes
	inDrop     bool
	MaxQueued  int

	// OnDrop, if set, observes every dropped packet (before any pool
	// release — the packet is still intact inside the callback).
	OnDrop func(p *Packet)

	// Telemetry handles (nil = off), resolved once by SetObs; dropLabel
	// is pre-formatted so the obs-on drop path does no per-packet
	// string building.
	cEnq      *obs.Counter
	cDrop     *obs.Counter
	cFwd      *obs.Counter
	cBytes    *obs.Counter
	occ       *obs.Histogram
	trace     *obs.Tracer
	dropLabel string
}

// SetObs attaches `netsim.*{hop=Name}` instruments: packets
// enqueued/dropped/delivered, delivered bytes, and a buffer-occupancy
// histogram sampled at each enqueue. Drops additionally emit tracer
// instants so overflow episodes are visible on the trace timeline.
func (h *Hop) SetObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil && tr == nil {
		return
	}
	label := "{hop=" + h.Name + "}"
	h.cEnq = reg.Counter("netsim.pkt_enqueued" + label)
	h.cDrop = reg.Counter("netsim.pkt_dropped" + label)
	h.cFwd = reg.Counter("netsim.pkt_delivered" + label)
	h.cBytes = reg.Counter("netsim.bytes_delivered" + label)
	h.occ = reg.Histogram("netsim.occupancy_bytes"+label, obs.ByteBuckets)
	h.trace = tr
}

// SetPool attaches the pool used to recycle pool-owned packets the hop
// drops.
func (h *Hop) SetPool(pl *PacketPool) { h.pool = pl }

// drop records one dropped packet in the stats and telemetry, then
// recycles it if pool-owned.
func (h *Hop) drop(p *Packet) {
	h.Dropped++
	h.cDrop.Inc()
	h.trace.Instant(h.dropLabel, "netsim", h.sch.Now())
	if h.OnDrop != nil {
		h.OnDrop(p)
	}
	h.pool.Release(p)
}

// NewHop creates a hop serving at rateBps with the given propagation
// delay and buffer limit. Use SetRate for time-varying links.
func NewHop(sch *des.Scheduler, name string, rateBps float64, prop time.Duration, limitBytes int, next Receiver) *Hop {
	h := &Hop{
		Name: name, sch: sch, rateBps: rateBps, prop: prop,
		limitBytes: limitBytes, next: next,
		dropLabel: "drop " + name,
	}
	h.serveFn = h.serve
	h.txDoneFn = h.txDone
	h.deliverFn = func(a any) { h.next.Receive(a.(*Packet)) }
	return h
}

// SetRate changes the serving rate. It takes effect for the next packet
// entering the serializer.
func (h *Hop) SetRate(bps float64) { h.rateBps = bps }

// Rate returns the configured serving rate (before fault scaling).
func (h *Hop) Rate() float64 { return h.rateBps }

// QueuedBytes returns the current backlog.
func (h *Hop) QueuedBytes() int { return h.queuedBytes }

// SetInjectLoss arms (or, with rate ≤ 0, disarms) an i.i.d. drop
// probability applied to arriving packets before they are buffered —
// the fault layer's loss-burst window. Drops count into the hop's
// regular drop statistics and telemetry.
func (h *Hop) SetInjectLoss(rate float64, r *rand.Rand) {
	if rate <= 0 {
		h.injectLoss, h.injectRng = 0, nil
		return
	}
	h.injectLoss, h.injectRng = rate, r
}

// SetExtraProp adds d to the propagation delay of every subsequent
// delivery (a latency-burst window); d = 0 restores the baseline.
func (h *Hop) SetExtraProp(d time.Duration) { h.extraProp = d }

// SetRateScale scales the serving rate by s (a degradation window,
// 0 < s < 1); s ≤ 0 or s = 1 restores the configured rate.
func (h *Hop) SetRateScale(s float64) {
	if s <= 0 || s == 1 {
		h.rateScale = 0
		return
	}
	h.rateScale = s
}

// reliefBytes is the low watermark below which an overflowed queue starts
// accepting again. Hardware queues commonly drop until a watermark clears;
// this lockout is what turns an overflow episode into a run of consecutive
// foreground losses (the bursty pattern of Fig. 11).
const reliefBytes = 64 << 10

// Receive implements Receiver: enqueue or drop.
func (h *Hop) Receive(p *Packet) {
	if h.injectLoss > 0 && h.injectRng.Float64() < h.injectLoss {
		h.drop(p)
		return
	}
	relief := reliefBytes
	if relief > h.limitBytes/2 {
		relief = h.limitBytes / 2
	}
	if h.lockout && h.queuedBytes > h.limitBytes-relief {
		h.drop(p)
		return
	}
	h.lockout = false
	if h.queuedBytes+p.Wire > h.limitBytes {
		h.lockout = true
		if !h.inDrop {
			h.DropEvents++
			h.inDrop = true
		}
		h.drop(p)
		return
	}
	h.inDrop = false
	h.queue.push(p)
	h.queuedBytes += p.Wire
	if h.queuedBytes > h.MaxQueued {
		h.MaxQueued = h.queuedBytes
	}
	h.cEnq.Inc()
	h.occ.Observe(float64(h.queuedBytes))
	if !h.busy {
		h.serve()
	}
}

// serve starts transmitting the head-of-line packet.
func (h *Hop) serve() {
	if h.queue.len() == 0 {
		h.busy = false
		return
	}
	h.busy = true
	rate := h.rateBps
	if h.rateScale > 0 {
		rate *= h.rateScale
	}
	if rate <= 0 {
		// Link stalled (e.g. hand-off outage): retry shortly. The packet
		// stays queued at the head.
		h.sch.After(time.Millisecond, h.serveFn)
		return
	}
	p := h.queue.pop()
	h.queuedBytes -= p.Wire
	h.inflight = p
	txTime := time.Duration(float64(p.Wire*8) / rate * float64(time.Second))
	h.sch.After(txTime, h.txDoneFn)
}

// txDone fires when the serializer finishes the in-flight packet: hand
// it to the propagation stage and start on the next one.
func (h *Hop) txDone() {
	p := h.inflight
	h.inflight = nil
	h.Forwarded++
	h.cFwd.Inc()
	h.cBytes.Add(int64(p.Wire))
	h.sch.AfterArg(h.prop+h.extraProp, h.deliverFn, p)
	h.serve()
}
