package netsim

import (
	"math/rand"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/obs"
	"fivegsim/internal/radio"
)

// RANHop models the radio access hop: a deep base-station buffer feeding
// the air interface. Every transport block goes through HARQ — losses on
// the air never surface to the transport layer ("we can safely conclude
// that the packet loss bottleneck is not on the 5G wireless link", §4.2) —
// but retransmissions consume airtime and add jitter.
//
// Like Hop, the per-packet path is allocation-free in steady state: ring
// buffer queue, a single serializer slot (plus the HARQ outcome drawn for
// it), and callbacks bound once at construction.
type RANHop struct {
	Name string

	sch      *des.Scheduler
	rateBps  float64
	prop     time.Duration
	limit    int
	next     Receiver
	harq     radio.HARQ
	harqRTT  time.Duration // per-retransmission round trip on the air
	airScale float64
	rng      *rand.Rand

	queue         pktRing
	queuedBytes   int
	busy          bool
	outageUntil   time.Duration
	lastDeliverAt time.Duration
	rateScale     float64 // fault-injection degradation; 0 means no scaling

	// Serializer state for the in-flight block: the packet, its HARQ
	// outcome, and the retransmission latency it accrued. One block at a
	// time, so plain fields replace the per-packet closure.
	inflight      *Packet
	inflightLost  bool
	inflightExtra time.Duration
	serveFn       func()
	txDoneFn      func()
	deliverFn     func(any)

	// pool, when set, recycles pool-owned packets terminated here
	// (buffer drops, HARQ residual loss).
	pool *PacketPool

	// Stats.
	Forwarded    int64
	Dropped      int64
	MaxQueued    int
	AttemptsHist [8]int64 // HARQ attempts histogram (index = attempts, capped)
	ResidualLoss int64

	// Telemetry handles (nil = off), resolved once by SetObs.
	cEnq      *obs.Counter
	cDrop     *obs.Counter
	cFwd      *obs.Counter
	cBytes    *obs.Counter
	cRetx     *obs.Counter
	occ       *obs.Histogram
	trace     *obs.Tracer
	dropLabel string
}

// SetObs attaches `netsim.*{hop=Name}` instruments, plus a HARQ
// retransmission counter (attempts beyond the first).
func (h *RANHop) SetObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil && tr == nil {
		return
	}
	label := "{hop=" + h.Name + "}"
	h.cEnq = reg.Counter("netsim.pkt_enqueued" + label)
	h.cDrop = reg.Counter("netsim.pkt_dropped" + label)
	h.cFwd = reg.Counter("netsim.pkt_delivered" + label)
	h.cBytes = reg.Counter("netsim.bytes_delivered" + label)
	h.cRetx = reg.Counter("netsim.harq_retx" + label)
	h.occ = reg.Histogram("netsim.occupancy_bytes"+label, obs.ByteBuckets)
	h.trace = tr
}

// SetPool attaches the pool used to recycle pool-owned packets the hop
// terminates.
func (h *RANHop) SetPool(pl *PacketPool) { h.pool = pl }

// NewRANHop builds the radio hop for a technology. rateBps is the
// foreground goodput of the air interface (PRB share and MCS already
// applied); use SetRate for time-varying goodput.
func NewRANHop(sch *des.Scheduler, tech radio.Tech, rateBps float64, prop time.Duration, limitBytes int, rng *rand.Rand, next Receiver) *RANHop {
	harqRTT := 8 * time.Millisecond // LTE HARQ round trip
	if tech == radio.NR {
		harqRTT = 2500 * time.Microsecond // NR slot-level feedback
	}
	harq := radio.HARQFor(tech)
	h := &RANHop{
		Name: tech.String() + "-RAN", sch: sch,
		rateBps: rateBps,
		prop:    prop,
		limit:   limitBytes, next: next, harq: harq, harqRTT: harqRTT,
		// rateBps is the goodput; the air runs faster by the mean HARQ
		// attempt count so retransmission airtime is already budgeted.
		airScale: harq.MeanAttempts(),
		rng:      rng,
	}
	h.dropLabel = "drop " + h.Name
	h.serveFn = h.serve
	h.txDoneFn = h.txDone
	h.deliverFn = func(a any) { h.next.Receive(a.(*Packet)) }
	return h
}

// SetRate changes the foreground goodput of the air interface. It takes
// effect for the next block entering the serializer.
func (h *RANHop) SetRate(bps float64) { h.rateBps = bps }

// Rate returns the configured goodput (before fault scaling).
func (h *RANHop) Rate() float64 { return h.rateBps }

// QueuedBytes returns the current backlog.
func (h *RANHop) QueuedBytes() int { return h.queuedBytes }

// SetOutage suspends the air interface for d (a hand-off interruption):
// packets keep arriving and are buffered; service resumes afterwards.
func (h *RANHop) SetOutage(d time.Duration) {
	until := h.sch.Now() + d
	if until > h.outageUntil {
		h.outageUntil = until
	}
}

// SetRateScale scales the air-interface rate by s (a fault-injection
// degradation window: weak MCS at the coverage edge); s ≤ 0 or s = 1
// restores the configured rate.
func (h *RANHop) SetRateScale(s float64) {
	if s <= 0 || s == 1 {
		h.rateScale = 0
		return
	}
	h.rateScale = s
}

// Receive implements Receiver.
func (h *RANHop) Receive(p *Packet) {
	if h.queuedBytes+p.Wire > h.limit {
		h.Dropped++
		h.cDrop.Inc()
		h.trace.Instant(h.dropLabel, "netsim", h.sch.Now())
		h.pool.Release(p)
		return
	}
	h.queue.push(p)
	h.queuedBytes += p.Wire
	if h.queuedBytes > h.MaxQueued {
		h.MaxQueued = h.queuedBytes
	}
	h.cEnq.Inc()
	h.occ.Observe(float64(h.queuedBytes))
	if !h.busy {
		h.serve()
	}
}

func (h *RANHop) serve() {
	if h.queue.len() == 0 {
		h.busy = false
		return
	}
	h.busy = true
	if now := h.sch.Now(); now < h.outageUntil {
		h.sch.After(h.outageUntil-now, h.serveFn)
		return
	}
	rate := h.rateBps * h.airScale
	if h.rateScale > 0 {
		rate *= h.rateScale
	}
	if rate <= 0 {
		// Link stalled: retry shortly, head-of-line packet stays queued.
		h.sch.After(time.Millisecond, h.serveFn)
		return
	}
	p := h.queue.pop()
	h.queuedBytes -= p.Wire
	attempts, lost := h.harq.Attempts(h.rng.Float64())
	idx := attempts
	if idx >= len(h.AttemptsHist) {
		idx = len(h.AttemptsHist) - 1
	}
	h.AttemptsHist[idx]++
	if attempts > 1 {
		h.cRetx.Add(int64(attempts - 1))
	}
	// Each attempt occupies airtime; the scheduler's parallel HARQ
	// processes keep the link busy meanwhile, so the serializer is held
	// only for the airtime while the HARQ round trips show up as extra
	// per-packet latency (and mild reordering), not lost capacity.
	txTime := time.Duration(float64(p.Wire*8*attempts) / rate * float64(time.Second))
	h.inflight = p
	h.inflightLost = lost
	h.inflightExtra = time.Duration(attempts-1) * h.harqRTT
	h.sch.After(txTime, h.txDoneFn)
}

func (h *RANHop) txDone() {
	p, lost, extraLatency := h.inflight, h.inflightLost, h.inflightExtra
	h.inflight = nil
	if lost {
		h.ResidualLoss++ // probability ≈ 10⁻⁵⁶; tracked for completeness
		h.pool.Release(p)
	} else {
		h.Forwarded++
		h.cFwd.Inc()
		h.cBytes.Add(int64(p.Wire))
		// RLC in-order delivery: a block held up by HARQ round trips
		// also holds back its successors (head-of-line jitter), so
		// the transport layer never sees radio-induced reordering.
		deliverAt := h.sch.Now() + h.prop + extraLatency
		if deliverAt < h.lastDeliverAt {
			deliverAt = h.lastDeliverAt
		}
		h.lastDeliverAt = deliverAt
		h.sch.AtArg(deliverAt, h.deliverFn, p)
	}
	h.serve()
}

// Retransmissions returns the HARQ attempts histogram normalized over
// blocks needing more than one attempt — the Fig. 10 series.
func (h *RANHop) Retransmissions() map[int]float64 {
	var total int64
	for _, c := range h.AttemptsHist {
		total += c
	}
	out := map[int]float64{}
	if total == 0 {
		return out
	}
	for attempts, c := range h.AttemptsHist {
		if attempts >= 2 && c > 0 {
			out[attempts-1] = float64(c) / float64(total)
		}
	}
	return out
}
