package netsim

import (
	"testing"
	"time"

	"fivegsim/internal/radio"
)

// TestSaturatorSteadyStateMatchesBaseline: after the first slice fills
// the pipe, every further slice delivers the saturated goodput — the
// figure UDPBaseline approximates with a fresh path and a drain tail.
func TestSaturatorSteadyStateMatchesBaseline(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	base := UDPBaseline(cfg, 2*time.Second)
	s := NewSaturator(cfg, cfg.RANRateBps*1.2)
	s.RunSlice(time.Second) // pipe fill
	res := s.RunSlice(2 * time.Second)
	if res.DeliveredBps < base.DeliveredBps*0.95 || res.DeliveredBps > base.DeliveredBps*1.05 {
		t.Fatalf("steady-state slice %.1f Mb/s, baseline %.1f Mb/s (want within 5%%)",
			res.DeliveredBps/1e6, base.DeliveredBps/1e6)
	}
	if res.Sent == 0 || res.Received == 0 {
		t.Fatalf("slice moved no traffic: %+v", res)
	}
}

// TestSaturatorSliceAllocFree pins the steady-state allocation contract
// behind the PathSaturate benchmark: once the pipe, pool, rings and
// event free list have reached their high-water marks, advancing the
// same simulation by another slice allocates nothing.
func TestSaturatorSliceAllocFree(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	s := NewSaturator(cfg, cfg.RANRateBps*1.2)
	s.RunSlice(2 * time.Second) // warm: pool, rings, free list at capacity
	avg := testing.AllocsPerRun(10, func() { s.RunSlice(100 * time.Millisecond) })
	if avg != 0 {
		t.Fatalf("steady-state RunSlice allocates: %.2f allocs/run", avg)
	}
}

// TestSaturatorSliceStatsAreDeltas: statistics of one slice count that
// slice alone, and the simulated clock advances by exactly the slice
// width.
func TestSaturatorSliceStatsAreDeltas(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	s := NewSaturator(cfg, cfg.RANRateBps*1.2)
	s.RunSlice(time.Second)
	a := s.RunSlice(time.Second)
	b := s.RunSlice(time.Second)
	if s.Now() != 3*time.Second {
		t.Fatalf("clock at %v after three 1 s slices", s.Now())
	}
	// At saturation consecutive slices are near-identical; a cumulative
	// (non-delta) implementation would double b relative to a.
	if b.Sent > a.Sent*3/2 || a.Sent > b.Sent*3/2 {
		t.Fatalf("slice stats not deltas: sent %d then %d", a.Sent, b.Sent)
	}
}
