package netsim

import (
	"testing"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

// The per-packet hot path — pool checkout, hop enqueue, serialization,
// propagation, HARQ, delivery, pool release — must be allocation-free in
// steady state with observability off. A warm-up pass grows the ring
// buffers, the packet pool, and the scheduler's event free list to their
// high-water marks; after that, moving a packet end to end allocates
// nothing.

func TestPacketPathSteadyStateAllocFree(t *testing.T) {
	sch := des.New()
	pool := NewPacketPool()
	var delivered int64
	sink := ReceiverFunc(func(p *Packet) {
		delivered++
		pool.Release(p)
	})
	ran := NewRANHop(sch, radio.NR, 1e9, time.Millisecond, 1<<24, rng.New(1).Stream("harq"), sink)
	wired := NewHop(sch, "wired", 1e9, time.Millisecond, 1<<24, ran)
	wired.SetPool(pool)
	ran.SetPool(pool)

	send := func(n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.FlowID, p.Seq, p.Len, p.Wire = 1, int64(i), MSS, MSS+HeaderBytes
			p.SentAt = sch.Now()
			wired.Receive(p)
		}
		sch.Run()
	}
	send(256) // warm: rings, pool and event free list reach capacity

	before := delivered
	avg := testing.AllocsPerRun(20, func() { send(64) })
	if avg != 0 {
		t.Fatalf("steady-state packet path allocates: %.2f allocs/run", avg)
	}
	if got := delivered - before; got < 21*64 {
		t.Fatalf("deliveries missing: got %d, want at least %d", got, 21*64)
	}
	if pool.News > 512 {
		t.Fatalf("pool kept allocating: %d fresh packets for %d checkouts", pool.News, pool.Gets)
	}
}

// Dropped packets must also recycle without allocating: a saturated
// drop-tail hop in lockout exercises the drop path on every arrival.
func TestDropPathSteadyStateAllocFree(t *testing.T) {
	sch := des.New()
	pool := NewPacketPool()
	sink := ReceiverFunc(func(p *Packet) { pool.Release(p) })
	hop := NewHop(sch, "tight", 1e3, time.Second, 4*(MSS+HeaderBytes), sink)
	hop.SetPool(pool)

	send := func(n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.Wire = MSS + HeaderBytes
			hop.Receive(p)
		}
	}
	send(64) // warm; the 1 kb/s drain keeps the buffer full for the whole test

	if avg := testing.AllocsPerRun(20, func() { send(16) }); avg != 0 {
		t.Fatalf("drop path allocates: %.2f allocs/run", avg)
	}
	if hop.Dropped == 0 {
		t.Fatal("test never exercised the drop path")
	}
}
