package netsim

import (
	"math/rand"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/rng"
)

// CrossConfig describes the background traffic sharing the legacy Internet
// bottleneck. The paper attributes the 5G TCP anomaly to exactly this:
// routers provisioned for 4G-era flows overflow intermittently once a
// 5G-sized foreground flow removes the headroom that used to absorb
// bursts (§4.2).
//
// The aggregate is modelled as a modulated CBR: every Interval the rate is
// redrawn — usually a light load, occasionally a heavy busy period that
// pushes the link near (or past) line rate. It is the busy episodes,
// overlapping with a large foreground flow, that produce the bursty
// drop-tail losses of Fig. 11.
type CrossConfig struct {
	Interval   time.Duration // rate-modulation granularity
	PBusy      float64       // probability an interval is a busy period
	BusyLoBps  float64       // busy-period rate, uniform in [lo, hi]
	BusyHiBps  float64
	IdleHiBps  float64 // light load, uniform in [0, hi]
	PacketWire int
}

// DefaultCross returns the calibrated background mix for the 5G path:
// ≈15 % of time in 580–1150 Mb/s busy periods, light load otherwise. The
// Gbps-scale foreground flow leaves no headroom for these bursts, which is
// the §4.2 anomaly.
func DefaultCross() CrossConfig {
	return CrossConfig{
		Interval:   150 * time.Millisecond,
		PBusy:      0.15,
		BusyLoBps:  580e6,
		BusyHiBps:  1150e6,
		IdleHiBps:  110e6,
		PacketWire: MSS + HeaderBytes,
	}
}

// LegacyCross returns the background mix on the 4G path: similar busy
// cadence but bursts that stay below line rate minus a 4G-sized flow —
// the provisioning the wired Internet grew up with, under which a
// 130 Mb/s foreground barely ever collides with a burst.
func LegacyCross() CrossConfig {
	cfg := DefaultCross()
	cfg.BusyLoBps = 550e6
	cfg.BusyHiBps = 1020e6
	return cfg
}

// MeanRate returns the long-run aggregate background rate in bits/s.
func (c CrossConfig) MeanRate() float64 {
	return c.PBusy*(c.BusyLoBps+c.BusyHiBps)/2 + (1-c.PBusy)*c.IdleHiBps/2
}

// StartCross launches the modulated background source injecting into
// target. Packets are marked Background, drawn from pool (nil degrades to
// plain allocation), and terminate in a Sink after the bottleneck, where
// the path's delivery wrapper recycles them.
func StartCross(sch *des.Scheduler, cfg CrossConfig, r *rand.Rand, pool *PacketPool, target Receiver) {
	if cfg.Interval <= 0 {
		return
	}
	// Cross traffic is emitted by a token-bucket pump at a fixed 1 ms
	// cadence, with each tick's packets spread evenly across the tick so
	// the aggregate looks like the paced mix of many senders.
	const pumpTick = time.Millisecond
	var rate float64
	var tokens float64 // accumulated bytes
	redraw := func() {
		if r.Float64() < cfg.PBusy {
			rate = rng.Uniform(r, cfg.BusyLoBps, cfg.BusyHiBps)
		} else {
			rate = rng.Uniform(r, 0, cfg.IdleHiBps)
		}
	}
	// emit is the single injection callback shared by every packet; the
	// origin timestamp is stamped at fire time, as before.
	emit := func(a any) {
		p := a.(*Packet)
		p.SentAt = sch.Now()
		target.Receive(p)
	}
	var pump func()
	pump = func() {
		tokens += rate / 8 * pumpTick.Seconds()
		n := int(tokens / float64(cfg.PacketWire))
		tokens -= float64(n * cfg.PacketWire)
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.FlowID, p.Wire, p.Background = -1, cfg.PacketWire, true
			sch.AfterArg(time.Duration(i)*pumpTick/time.Duration(n), emit, p)
		}
		sch.After(pumpTick, pump)
	}
	var schedule func()
	schedule = func() {
		redraw()
		sch.After(cfg.Interval, schedule)
	}
	schedule()
	pump()
}
