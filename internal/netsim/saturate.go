package netsim

import (
	"time"

	"fivegsim/internal/des"
)

// Saturator drives saturating CBR traffic over one long-lived path. Where
// RunUDP builds a fresh scheduler and path per call — thousands of
// allocations of hops, pools and rings that dominate short runs — a
// Saturator constructs them once and advances the same simulation in
// slices: in-flight packets, pool inventory and cross-traffic state carry
// over between slices, so every slice after the first measures the
// steady state, and on a warmed path a slice allocates nothing (the
// alloc guard in alloc_test.go pins this). This is the engine under the
// rewritten PathSaturate benchmark.
type Saturator struct {
	sch      *des.Scheduler
	path     *Path
	offered  float64
	rttBase  time.Duration
	interval time.Duration

	seq, sent, received int64
	receivedBytes       int64

	tick    func()
	started bool
}

// NewSaturator builds the path for cfg and prepares a CBR source at
// offeredBps. Nothing runs until the first RunSlice.
func NewSaturator(cfg PathConfig, offeredBps float64) *Saturator {
	sch := des.New()
	s := &Saturator{
		sch:      sch,
		path:     NewPath(sch, cfg),
		offered:  offeredBps,
		rttBase:  cfg.BaseRTT(),
		interval: time.Duration(float64((MSS+HeaderBytes)*8) / offeredBps * float64(time.Second)),
	}
	s.path.ToUE = ReceiverFunc(func(p *Packet) {
		s.received++
		s.receivedBytes += int64(p.Len)
	})
	// Provision the packet pool and the scheduler's event free list past
	// their worst-case occupancy up front. Both are bounded — every hop
	// queue is byte-limited drop-tail and the cross-traffic rate is capped
	// — but the busy-period draws are heavy-tailed enough that the
	// high-water mark keeps inching up for simulated hours, and each new
	// record is an allocation in what must be an allocation-free steady
	// state (TestSaturatorSliceAllocFree). The bound: ≈3500 full-size
	// packets fill every buffer, plus the pump's one-tick backlog; events
	// track in-flight packets one-to-one plus the handful of sources.
	const prime = 8192
	pkts := make([]*Packet, prime)
	for i := range pkts {
		pkts[i] = s.path.Pool.Get()
	}
	for _, p := range pkts {
		s.path.Pool.Release(p)
	}
	for i := 0; i < prime; i++ {
		sch.After(0, func() {})
	}
	sch.RunUntil(0)
	// One self-perpetuating source event, bound once: each firing sends a
	// full MSS datagram and re-arms itself, exactly RunUDP's send loop.
	// The chain never stops — RunSlice bounds execution with the
	// scheduler deadline, leaving the next send queued for the following
	// slice.
	s.tick = func() {
		p := s.path.Pool.Get()
		p.FlowID, p.Seq, p.Len, p.Wire, p.SentAt = 1, s.seq, MSS, MSS+HeaderBytes, s.sch.Now()
		s.path.ServerIngress.Receive(p)
		s.seq++
		s.sent++
		s.sch.After(s.interval, s.tick)
	}
	return s
}

// RunSlice advances the simulation by d of saturating traffic and
// returns the delivery statistics of that slice alone (sent, received,
// loss and goodput are deltas over the slice). Packets in flight at the
// slice boundary carry over: they count as sent in this slice and as
// received in the one that drains them, which at saturation cancels out
// — the steady state RunUDP only approximates with its one-second drain
// tail.
func (s *Saturator) RunSlice(d time.Duration) UDPResult {
	if !s.started {
		s.started = true
		s.tick()
	}
	sent0, recv0, bytes0 := s.sent, s.received, s.receivedBytes
	s.sch.RunUntil(s.sch.Now() + d)
	res := UDPResult{
		OfferedBps: s.offered,
		RTTBase:    s.rttBase,
		Sent:       s.sent - sent0,
		Received:   s.received - recv0,
	}
	if res.Sent > 0 {
		res.LossRate = 1 - float64(res.Received)/float64(res.Sent)
	}
	res.DeliveredBps = float64((s.receivedBytes-bytes0)*8) / d.Seconds()
	return res
}

// Now returns the saturator's simulated clock (total time advanced).
func (s *Saturator) Now() time.Duration { return s.sch.Now() }
