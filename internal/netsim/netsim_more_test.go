package netsim

import (
	"testing"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/radio"
)

func TestSetRANRateTakesEffect(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	cfg.Cross = CrossConfig{}
	sch := des.New()
	path := NewPath(sch, cfg)
	var received int64
	path.ToUE = ReceiverFunc(func(p *Packet) { received += int64(p.Len) })
	rate := 900e6
	interval := time.Duration(float64((MSS+HeaderBytes)*8) / rate * 1e9)
	var tick func()
	tick = func() {
		if sch.Now() >= 2*time.Second {
			return
		}
		path.ServerIngress.Receive(&Packet{Len: MSS, Wire: MSS + HeaderBytes})
		sch.After(interval, tick)
	}
	tick()
	// Halfway through, drop the radio to a 4G-class rate.
	sch.After(time.Second, func() { path.SetRANRate(100e6) })
	sch.RunUntil(time.Second)
	firstHalf := received
	sch.RunUntil(2100 * time.Millisecond)
	secondHalf := received - firstHalf
	if secondHalf > firstHalf/3 {
		t.Fatalf("rate change ignored: %d vs %d bytes", firstHalf, secondHalf)
	}
	if path.Cfg.RANRateBps != 100e6 {
		t.Fatalf("config not updated: %v", path.Cfg.RANRateBps)
	}
}

func TestUplinkCarriesAckLoad(t *testing.T) {
	// The uplink hop must sustain the ACK stream of a saturated downlink:
	// ≈880 Mb/s / (2 × 1400 B) × 60 B ≈ 19 Mb/s ≪ 130 Mb/s.
	cfg := DefaultPath(radio.NR, true)
	cfg.Cross = CrossConfig{} // the cross source reschedules forever
	sch := des.New()
	path := NewPath(sch, cfg)
	var acked int64
	path.ToServer = ReceiverFunc(func(p *Packet) { acked++ })
	for i := 0; i < 10000; i++ {
		path.UEIngress.Receive(&Packet{Ack: true, Wire: HeaderBytes})
	}
	sch.RunUntil(2 * time.Second)
	if acked != 10000 {
		t.Fatalf("uplink dropped ACKs: %d/10000", acked)
	}
	if path.UplinkRAN.Dropped != 0 {
		t.Fatalf("uplink drops: %d", path.UplinkRAN.Dropped)
	}
}

func TestLockoutRecoversAfterDrain(t *testing.T) {
	sch := des.New()
	sink := &Sink{}
	hop := NewHop(sch, "h", 8e6, 0, 10_000, sink) // 1 kB/ms drain
	// Overflow the queue.
	for i := 0; i < 20; i++ {
		hop.Receive(&Packet{Wire: 1000})
	}
	if hop.Dropped == 0 {
		t.Fatal("no overflow")
	}
	droppedAtPeak := hop.Dropped
	// Let it drain fully, then offer again: must accept.
	sch.RunUntil(time.Second)
	hop.Receive(&Packet{Wire: 1000})
	sch.Run()
	if hop.Dropped != droppedAtPeak {
		t.Fatal("lockout did not clear after drain")
	}
}

func TestDayNightPRBContention(t *testing.T) {
	// §4.1: 4G gains ≈70 Mb/s at night (more PRBs); 5G barely moves.
	lteDay := DefaultPath(radio.LTE, true).RANRateBps
	lteNight := DefaultPath(radio.LTE, false).RANRateBps
	nrDay := DefaultPath(radio.NR, true).RANRateBps
	nrNight := DefaultPath(radio.NR, false).RANRateBps
	if lteNight-lteDay < 50e6 {
		t.Fatalf("4G day/night delta = %.0f Mb/s, paper ≈70", (lteNight-lteDay)/1e6)
	}
	if nrNight-nrDay > 40e6 {
		t.Fatalf("5G day/night delta = %.0f Mb/s, paper ≈20", (nrNight-nrDay)/1e6)
	}
}

func TestULRatesMatchPaper(t *testing.T) {
	// §4.1: UL baselines 50/100 Mb/s (4G day/night) and 130/130 (5G).
	if got := DefaultPath(radio.LTE, true).ULRateBps; got != 50e6 {
		t.Fatalf("4G day UL = %.0f", got/1e6)
	}
	if got := DefaultPath(radio.LTE, false).ULRateBps; got != 100e6 {
		t.Fatalf("4G night UL = %.0f", got/1e6)
	}
	if got := DefaultPath(radio.NR, true).ULRateBps; got != 130e6 {
		t.Fatalf("5G UL = %.0f", got/1e6)
	}
}

func TestCrossDisabled(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	cfg.Cross = CrossConfig{}
	r := RunUDP(cfg, cfg.RANRateBps*0.8, 3*time.Second, false)
	if r.LossRate != 0 {
		t.Fatalf("loss without cross traffic: %.3f%%", 100*r.LossRate)
	}
}
