// Package netsim is the packet-level discrete-event substrate for the
// paper's end-to-end experiments (§4): wired hops with finite drop-tail
// buffers, bursty cross traffic at the legacy Internet bottleneck, and a
// radio-access hop whose HARQ hides all air-interface loss from the
// transport layer. The transport engines in internal/transport run their
// congestion-control algorithms over these paths.
package netsim

import "time"

// Packet is the unit moved through the simulated network. Transport
// engines use Seq/Len/Ack*; the network layer only looks at Wire.
type Packet struct {
	FlowID int
	// Seq is the first payload byte's sequence number (data packets).
	Seq int64
	// Len is the payload length in bytes (0 for pure ACKs).
	Len int
	// Ack marks a pure acknowledgment travelling the reverse path.
	Ack bool
	// AckSeq is the cumulative acknowledgment (next expected byte).
	AckSeq int64
	// Sack carries up to four selective-acknowledgment blocks [lo, hi).
	Sack [][2]int64
	// Wire is the on-the-wire size in bytes including headers.
	Wire int
	// SentAt is the origin timestamp (RTT measurement).
	SentAt time.Duration
	// EchoTS echoes the data packet's SentAt back on the ACK.
	EchoTS time.Duration
	// Background marks cross-traffic packets that terminate at the
	// bottleneck sink.
	Background bool
	// Retransmit marks retransmitted data (diagnostics).
	Retransmit bool
	// pooled marks packets checked out of a PacketPool; only these are
	// recycled on delivery/drop (see PacketPool's ownership rule).
	pooled bool
}

// HeaderBytes is the IP+TCP/UDP header overhead per packet.
const HeaderBytes = 60

// MSS is the maximum segment payload used by the transport engines.
const MSS = 1400

// Receiver consumes packets at a hop or endpoint.
type Receiver interface {
	Receive(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(p *Packet) { f(p) }

// Sink drops everything (used for cross-traffic termination).
type Sink struct{ Count int64 }

// Receive implements Receiver.
func (s *Sink) Receive(p *Packet) { s.Count++ }
