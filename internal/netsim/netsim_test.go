package netsim

import (
	"testing"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
)

func TestHopForwardsInOrder(t *testing.T) {
	sch := des.New()
	var got []int64
	sink := ReceiverFunc(func(p *Packet) { got = append(got, p.Seq) })
	hop := NewHop(sch, "h", 1e6, time.Millisecond, 1<<20, sink)
	for i := int64(0); i < 10; i++ {
		hop.Receive(&Packet{Seq: i, Wire: 1000})
	}
	sch.Run()
	if len(got) != 10 {
		t.Fatalf("forwarded %d, want 10", len(got))
	}
	for i, seq := range got {
		if seq != int64(i) {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
	// Serialization: 10 packets × 8000 bits at 1 Mb/s = 80 ms, + 1 ms prop.
	if sch.Now() != 81*time.Millisecond {
		t.Fatalf("final time = %v, want 81ms", sch.Now())
	}
}

func TestHopDropTail(t *testing.T) {
	sch := des.New()
	sink := &Sink{}
	hop := NewHop(sch, "h", 1e3, 0, 2500, sink)
	for i := 0; i < 10; i++ {
		hop.Receive(&Packet{Seq: int64(i), Wire: 1000})
	}
	if hop.Dropped == 0 {
		t.Fatal("expected drop-tail losses")
	}
	if hop.QueuedBytes() > 2500 {
		t.Fatalf("queue exceeded limit: %d", hop.QueuedBytes())
	}
}

func TestRANHopInOrderDespiteHARQ(t *testing.T) {
	sch := des.New()
	var got []int64
	sink := ReceiverFunc(func(p *Packet) { got = append(got, p.Seq) })
	ran := NewRANHop(sch, radio.NR, 100e6, time.Millisecond, 1<<24,
		rng.New(1).Stream("h"), sink)
	for i := int64(0); i < 5000; i++ {
		ran.Receive(&Packet{Seq: i, Wire: 1460})
	}
	sch.Run()
	if len(got) != 5000 {
		t.Fatalf("delivered %d, want 5000 (HARQ must hide all loss)", len(got))
	}
	for i, seq := range got {
		if seq != int64(i) {
			t.Fatalf("RLC must deliver in order, got %d at %d", seq, i)
		}
	}
	if ran.AttemptsHist[2] == 0 {
		t.Fatal("no HARQ retransmissions occurred at 10% BLER")
	}
}

func TestRANOutageBuffersThenDrains(t *testing.T) {
	sch := des.New()
	delivered := 0
	sink := ReceiverFunc(func(p *Packet) { delivered++ })
	ran := NewRANHop(sch, radio.NR, 100e6, 0, 1<<22,
		rng.New(1).Stream("h"), sink)
	ran.SetOutage(100 * time.Millisecond)
	for i := int64(0); i < 100; i++ {
		ran.Receive(&Packet{Seq: i, Wire: 1460})
	}
	sch.RunUntil(50 * time.Millisecond)
	if delivered != 0 {
		t.Fatalf("delivered %d during outage", delivered)
	}
	sch.RunUntil(200 * time.Millisecond)
	if delivered != 100 {
		t.Fatalf("delivered %d after outage, want 100", delivered)
	}
}

func TestUDPBaselinesMatchFig7(t *testing.T) {
	// Paper Fig. 7 UDP baselines: 5G 880 (day) / 900 (night); 4G 130/200.
	cases := []struct {
		tech    radio.Tech
		daytime bool
		wantMin float64
		wantMax float64
	}{
		{radio.NR, true, 790e6, 900e6},
		{radio.NR, false, 800e6, 920e6},
		{radio.LTE, true, 118e6, 140e6},
		{radio.LTE, false, 180e6, 210e6},
	}
	var day, night float64
	for _, c := range cases {
		got := UDPBaseline(DefaultPath(c.tech, c.daytime), 8*time.Second).DeliveredBps
		if got < c.wantMin || got > c.wantMax {
			t.Errorf("%v daytime=%v baseline = %.0f Mb/s, want %.0f–%.0f",
				c.tech, c.daytime, got/1e6, c.wantMin/1e6, c.wantMax/1e6)
		}
		if c.tech == radio.NR {
			if c.daytime {
				day = got
			} else {
				night = got
			}
		}
	}
	if night <= day {
		t.Errorf("5G night baseline (%.0f) should exceed daytime (%.0f)", night/1e6, day/1e6)
	}
}

func TestFig9LossVsLoad(t *testing.T) {
	nr := DefaultPath(radio.NR, true)
	lte := DefaultPath(radio.LTE, true)
	fractions := []float64{0.2, 1.0 / 3, 0.5, 1}
	var nrLoss, lteLoss []float64
	for _, f := range fractions {
		nrLoss = append(nrLoss, RunUDP(nr, nr.RANRateBps*f, 10*time.Second, false).LossRate)
		lteLoss = append(lteLoss, RunUDP(lte, lte.RANRateBps*f, 10*time.Second, false).LossRate)
	}
	// Monotone in load for 5G.
	for i := 1; i < len(nrLoss); i++ {
		if nrLoss[i]+0.001 < nrLoss[i-1] {
			t.Fatalf("5G loss not monotone: %v", nrLoss)
		}
	}
	// Paper: at 1/2 load the 5G loss already exceeds ≈3 % (we accept ≥1.5 %)
	// and is ≈10× the 4G loss.
	if nrLoss[2] < 0.015 {
		t.Fatalf("5G loss at 1/2 load = %.2f%%, paper reports >3%%", 100*nrLoss[2])
	}
	if lteLoss[2] > nrLoss[2]/5 {
		t.Fatalf("4G loss at 1/2 load (%.3f%%) should be ≪ 5G's (%.2f%%)", 100*lteLoss[2], 100*nrLoss[2])
	}
	if lteLoss[3] > 0.01 {
		t.Fatalf("4G loss at full load = %.2f%%, paper reports ≈0.3%%", 100*lteLoss[3])
	}
}

func TestFig11BurstyLossPattern(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	r := RunUDP(cfg, cfg.RANRateBps*0.9, 8*time.Second, true)
	runs := r.LossRuns()
	if len(runs) == 0 {
		t.Fatal("no losses at 0.9× baseline")
	}
	long := 0
	for _, l := range runs {
		if l >= 5 {
			long++
		}
	}
	// Bursty: a substantial share of loss runs are ≥5 consecutive packets.
	if frac := float64(long) / float64(len(runs)); frac < 0.2 {
		t.Fatalf("only %.1f%% of loss runs are bursts (≥5 pkts); drop-tail overflow should be bursty", 100*frac)
	}
}

func TestFig10HARQAttempts(t *testing.T) {
	// Run saturated traffic and check the Fig. 10 claims: retransmissions
	// converge within ≤4 attempts on 4G and ≤2–3 on 5G, with zero residual
	// loss reaching the transport layer.
	for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
		cfg := DefaultPath(tech, true)
		sch := des.New()
		path := NewPath(sch, cfg)
		path.ToUE = ReceiverFunc(func(p *Packet) {})
		interval := time.Duration(float64((MSS+HeaderBytes)*8) / cfg.RANRateBps * float64(time.Second))
		var tick func()
		var seq int64
		tick = func() {
			if sch.Now() >= 5*time.Second {
				return
			}
			path.ServerIngress.Receive(&Packet{Seq: seq, Len: MSS, Wire: MSS + HeaderBytes})
			seq++
			sch.After(interval, tick)
		}
		tick()
		sch.RunUntil(6 * time.Second)
		if path.RAN.ResidualLoss != 0 {
			t.Fatalf("%v: HARQ residual loss reached transport", tech)
		}
		retx := path.RAN.Retransmissions()
		if len(retx) == 0 {
			t.Fatalf("%v: no HARQ retransmissions recorded", tech)
		}
		maxRetx := 0
		for k := range retx {
			if k > maxRetx {
				maxRetx = k
			}
		}
		if tech == radio.NR && maxRetx > 2 {
			t.Fatalf("5G max retransmissions = %d, paper observes ≤2", maxRetx)
		}
		if tech == radio.LTE && maxRetx > 4 {
			t.Fatalf("4G max retransmissions = %d, paper observes ≤4", maxRetx)
		}
	}
}

func TestCrossMeanRate(t *testing.T) {
	c := DefaultCross()
	if m := c.MeanRate(); m < 50e6 || m > 300e6 {
		t.Fatalf("cross mean rate = %.0f Mb/s, implausible", m/1e6)
	}
	if LegacyCross().BusyHiBps >= DefaultCross().BusyHiBps {
		t.Fatal("legacy (4G-path) bursts should be smaller than the 5G path's")
	}
}

func TestBaseRTTMatchesPaperGap(t *testing.T) {
	nr := DefaultPath(radio.NR, true).BaseRTT()
	lte := DefaultPath(radio.LTE, true).BaseRTT()
	// Paper: 5G one-way ≈21.8 ms ⇒ RTT ≈21.2 ms for the same-city server,
	// with the 4G path ≈22.3 ms RTT slower.
	gap := lte - nr
	if gap < 18*time.Millisecond || gap > 27*time.Millisecond {
		t.Fatalf("4G−5G RTT gap = %v, paper reports ≈22.3 ms", gap)
	}
}

func TestPathOutageStallsDelivery(t *testing.T) {
	cfg := DefaultPath(radio.NR, true)
	sch := des.New()
	path := NewPath(sch, cfg)
	var lastDelivery time.Duration
	path.ToUE = ReceiverFunc(func(p *Packet) { lastDelivery = sch.Now() })
	var tick func()
	var seq int64
	tick = func() {
		if sch.Now() >= 2*time.Second {
			return
		}
		path.ServerIngress.Receive(&Packet{Seq: seq, Len: MSS, Wire: MSS + HeaderBytes})
		seq++
		sch.After(5*time.Millisecond, tick)
	}
	tick()
	sch.After(time.Second, func() { path.Outage(108 * time.Millisecond) })
	sch.RunUntil(1050 * time.Millisecond)
	stalledAt := lastDelivery
	sch.RunUntil(1100 * time.Millisecond)
	if lastDelivery != stalledAt {
		t.Fatal("deliveries continued during hand-off outage")
	}
	sch.RunUntil(2 * time.Second)
	if lastDelivery <= 1108*time.Millisecond {
		t.Fatal("deliveries did not resume after outage")
	}
}
