package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := New(42).Stream("coverage")
	b := New(42).Stream("coverage")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name must produce identical streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := New(42).Stream("coverage")
	b := New(42).Stream("handoff")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look identical (%d/100 equal draws)", same)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1).Stream("x")
	b := New(2).Stream("x")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("different seeds should give different streams")
	}
}

func TestClampedNormalBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed).Stream("t")
		for i := 0; i < 50; i++ {
			v := ClampedNormal(r, 0, 10, -1, 1)
			if v < -1 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7).Stream("moments")
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := Normal(r, 5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ≈5", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %v, want ≈2", std)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(9).Stream("u")
	for i := 0; i < 1000; i++ {
		v := Uniform(r, 3, 4)
		if v < 3 || v >= 4 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(11).Stream("e")
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exp(r, 3)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exp mean = %v, want ≈3", mean)
	}
}

func TestKeyDeterministicAndNamed(t *testing.T) {
	a := New(42).Key("pop.ue")
	b := New(42).Key("pop.ue")
	if a != b {
		t.Fatal("same (seed, name) produced different keys")
	}
	if New(42).Key("pop.walk") == a {
		t.Fatal("different names produced the same key")
	}
	if New(7).Key("pop.ue") == a {
		t.Fatal("different seeds produced the same key")
	}
}

func TestKeyAtDistinctSeeds(t *testing.T) {
	// Distinct (shard, tick) pairs must give distinct seeds — the
	// population tick's per-shard reseed depends on it. Collisions over
	// a realistic grid would mean correlated shard streams.
	k := New(42).Key("pop.ue")
	seen := make(map[int64]bool)
	for shard := 0; shard < 64; shard++ {
		for tick := 0; tick < 256; tick++ {
			s := k.At(shard, tick)
			if seen[s] {
				t.Fatalf("seed collision at shard %d tick %d", shard, tick)
			}
			seen[s] = true
		}
	}
	if k.At(0, 0) == int64(k) {
		t.Fatal("At(0,0) collapsed onto the bare key")
	}
}
