// Package rng provides named, seeded random streams so that every fivegsim
// experiment is reproducible and adding a new random consumer does not
// perturb the draws seen by existing ones.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// Source derives independent sub-streams from a root seed. Each named
// stream is an independent *rand.Rand whose seed depends only on the root
// seed and the name.
type Source struct {
	seed int64
}

// New returns a Source rooted at seed.
func New(seed int64) *Source { return &Source{seed: seed} }

// Seed returns the root seed.
func (s *Source) Seed() int64 { return s.seed }

// Stream returns the deterministic sub-stream for name.
func (s *Source) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(s.StreamSeed(name)))
}

// StreamSeed returns the seed Stream(name) plants in its generator.
// Callers that keep long-lived *rand.Rand values and reseed them per run
// (hot loops where Stream's two allocations per call would show up) get
// the exact draw sequences Stream would produce.
func (s *Source) StreamSeed(name string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(s.seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Shard returns the deterministic sub-stream for one shard of a named
// parallel loop: independent of Stream(name), of every other shard
// index, and of how many workers execute the shards. The internal/par
// contract keys exactly one Shard stream per par.Range.Index.
func (s *Source) Shard(name string, index int) *rand.Rand {
	return s.Stream(name + "#" + strconv.Itoa(index))
}

// ShardSeed is StreamSeed for Shard(name, index): the seed to plant in a
// preallocated generator so it replays that shard's sub-stream.
func (s *Source) ShardSeed(name string, index int) int64 {
	return s.StreamSeed(name + "#" + strconv.Itoa(index))
}

// Key is the precomputed hash of (seed, name): an allocation-free handle
// for deriving per-(shard, tick) seeds inside hot loops, where Stream's
// string concatenation would allocate. A population tick reseeds its
// preallocated per-shard *rand.Rand from Key.At, so the draws a shard
// sees depend only on (seed, name, shard, tick) — never on how many
// values earlier ticks consumed, and never on the worker count.
type Key uint64

// Key derives the handle for name, using the same FNV-1a keying as
// Stream (hash of the little-endian seed bytes followed by the name).
func (s *Source) Key(name string) Key {
	return Key(uint64(s.StreamSeed(name)))
}

// At mixes the key with a shard index and a tick number into a seed,
// splitmix64-style. Distinct (shard, tick) pairs give independent seeds;
// the +1 offsets keep shard 0 / tick 0 from collapsing onto the bare key.
func (k Key) At(shard, tick int) int64 {
	z := uint64(k) + 0x9E3779B97F4A7C15*uint64(shard+1) + 0xBF58476D1CE4E5B9*uint64(tick+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Normal draws from N(mean, std) on r, a convenience wrapper.
func Normal(r *rand.Rand, mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// ClampedNormal draws from N(mean, std) truncated by rejection to [lo, hi].
// If the window is improbable the draw is clamped instead of looping
// forever.
func ClampedNormal(r *rand.Rand, mean, std, lo, hi float64) float64 {
	for i := 0; i < 16; i++ {
		v := Normal(r, mean, std)
		if v >= lo && v <= hi {
			return v
		}
	}
	v := Normal(r, mean, std)
	return math.Min(hi, math.Max(lo, v))
}

// Exp draws an exponentially distributed value with the given mean.
func Exp(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// LogNormal draws a log-normal with the given parameters of the underlying
// normal (mu, sigma in log space).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(Normal(r, mu, sigma))
}

// Uniform draws uniformly from [lo, hi).
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
