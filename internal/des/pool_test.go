package des

import (
	"testing"
	"time"
)

// TestStaleTimerCannotCancelRecycledEvent is the free-list safety
// regression: a Timer for an event that fired and whose storage was
// recycled for a newer event must stay a no-op — the generation counter,
// not pointer identity, decides whether Cancel touches the slot.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	s := New()
	firedFirst := false
	stale := s.After(time.Millisecond, func() { firedFirst = true })
	s.Run()
	if !firedFirst {
		t.Fatal("first event did not fire")
	}
	if s.FreeListLen() == 0 {
		t.Fatal("fired event was not recycled")
	}

	// The next schedule must reuse the fired event's storage.
	firedSecond := false
	fresh := s.After(time.Millisecond, func() { firedSecond = true })
	if s.FreeListLen() != 0 {
		t.Fatal("second event did not come from the free list")
	}

	stale.Cancel() // stale handle: must NOT cancel the recycled slot
	if stale.Active() {
		t.Fatal("stale timer reports active")
	}
	if !fresh.Active() {
		t.Fatal("fresh timer was deactivated by a stale handle")
	}
	s.Run()
	if !firedSecond {
		t.Fatal("stale Cancel killed the recycled event")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// TestStaleTimerAfterCancelReap covers the other recycle path: an event
// canceled and then reaped (popped or compacted) is recycled too, and the
// original Timer must not be able to cancel its successor.
func TestStaleTimerAfterCancelReap(t *testing.T) {
	s := New()
	stale := s.After(time.Millisecond, func() {})
	stale.Cancel()
	s.Run() // reaps the canceled event into the free list
	if s.FreeListLen() == 0 {
		t.Fatal("canceled event was not recycled after reaping")
	}
	ok := false
	fresh := s.After(time.Millisecond, func() { ok = true })
	stale.Cancel() // double-cancel via stale handle: no-op
	if !fresh.Active() {
		t.Fatal("stale double-cancel deactivated the recycled event")
	}
	s.Run()
	if !ok {
		t.Fatal("recycled event did not fire")
	}
}

// TestHeapCompaction: canceling more than half the queue (past the
// compactMin floor) must reap the canceled events in place without
// disturbing the firing order of the survivors.
func TestHeapCompaction(t *testing.T) {
	s := New()
	const n = 100
	var timers []Timer
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		timers = append(timers, s.At(time.Duration(i)*time.Millisecond, func() { fired = append(fired, i) }))
	}
	// Cancel everything except every fifth event: 80 canceled events
	// push well past the half-the-heap compaction trigger.
	for i := 0; i < n; i++ {
		if i%5 != 0 {
			timers[i].Cancel()
		}
	}
	if s.QueueLen() >= n {
		t.Fatalf("QueueLen = %d after mass cancel, want compacted (< %d)", s.QueueLen(), n)
	}
	if s.Pending() != n/5 {
		t.Fatalf("Pending = %d, want %d", s.Pending(), n/5)
	}
	s.Run()
	if len(fired) != n/5 {
		t.Fatalf("fired %d events, want %d", len(fired), n/5)
	}
	for k, v := range fired {
		if v != 5*k {
			t.Fatalf("fired[%d] = %d, want %d (order disturbed by compaction)", k, v, 5*k)
		}
	}
}

// TestAtArgDelivery: arg-carrying events fire with their payload and
// interleave with plain events in strict (at, seq) order.
func TestAtArgDelivery(t *testing.T) {
	s := New()
	var got []int
	record := func(a any) { got = append(got, *a.(*int)) }
	one, two, three := 1, 2, 3
	s.AtArg(2*time.Millisecond, record, &two)
	s.At(time.Millisecond, func() { got = append(got, one) })
	s.AfterArg(3*time.Millisecond, record, &three)
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestAtArgCancel: arg events cancel like plain ones.
func TestAtArgCancel(t *testing.T) {
	s := New()
	fired := false
	v := 0
	tm := s.AtArg(time.Millisecond, func(any) { fired = true }, &v)
	if !tm.Active() {
		t.Fatal("arg timer should be active")
	}
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled arg event fired")
	}
}

// TestZeroTimerNoOp: the zero Timer value is inert.
func TestZeroTimerNoOp(t *testing.T) {
	var tm Timer
	tm.Cancel()
	if tm.Active() {
		t.Fatal("zero timer reports active")
	}
}

// TestFiringOrderMatchesReferenceHeap drives a mixed schedule/cancel
// workload and checks the firing order against an insertion-sorted
// reference — the determinism contract the 4-ary heap must honor.
func TestFiringOrderMatchesReferenceHeap(t *testing.T) {
	s := New()
	type ref struct {
		at  time.Duration
		id  int
		cut bool
	}
	var want []ref
	var got []int
	id := 0
	var timers []Timer
	// A deterministic pseudo-random-ish schedule with reschedules.
	ats := []int{7, 3, 3, 9, 1, 4, 4, 4, 8, 2, 6, 5, 0, 9, 3}
	for _, a := range ats {
		a, i := time.Duration(a)*time.Millisecond, id
		timers = append(timers, s.At(a, func() { got = append(got, i) }))
		want = append(want, ref{at: a, id: i})
		id++
	}
	// Cancel every third.
	for i := 0; i < len(timers); i += 3 {
		timers[i].Cancel()
		want[i].cut = true
	}
	s.Run()
	var wantIDs []int
	// Stable sort by (at, insertion order) = (at, seq).
	for at := time.Duration(0); at <= 9*time.Millisecond; at += time.Millisecond {
		for _, r := range want {
			if r.at == at && !r.cut {
				wantIDs = append(wantIDs, r.id)
			}
		}
	}
	if len(got) != len(wantIDs) {
		t.Fatalf("fired %d, want %d", len(got), len(wantIDs))
	}
	for i := range wantIDs {
		if got[i] != wantIDs[i] {
			t.Fatalf("firing order %v, want %v", got, wantIDs)
		}
	}
}

// TestFreeListReuseBounded: a steady schedule/fire loop must stabilize on
// a tiny recycled population instead of growing the heap or free list.
func TestFreeListReuseBounded(t *testing.T) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10_000 {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if s.FreeListLen() > 4 {
		t.Fatalf("free list grew to %d on a 1-deep workload", s.FreeListLen())
	}
	if n != 10_000 {
		t.Fatalf("ran %d events", n)
	}
}
