// Package des implements a deterministic discrete-event scheduler.
//
// All simulations in fivegsim run on simulated time. Events are ordered by
// (time, sequence) so that two events scheduled for the same instant fire in
// scheduling order, which keeps runs reproducible.
//
// The scheduler is optionally observable: SetObs attaches an obs.Registry
// (and optionally an obs.Tracer) under the `des.*` metric namespace —
// events scheduled/fired/canceled, the live queue depth with its
// high-water mark, and, behind the SetProfile opt-in, a per-callback
// wall-time histogram. With no registry attached the instrumentation
// collapses to nil-receiver no-ops.
package des

import (
	"container/heap"
	"time"

	"fivegsim/internal/obs"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	sch *Scheduler
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. A nil Timer is also a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	e := t.ev
	if e.canceled || e.fired() {
		return
	}
	e.canceled = true
	e.sch.live--
	if e.sch.o.on {
		e.sch.o.canceled.Inc()
		e.sch.o.depth.Set(int64(e.sch.live))
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && !t.ev.canceled && !t.ev.fired() }

func (e *event) fired() bool { return e.fn == nil }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// schedObs holds the pre-resolved instrument handles. All fields are
// nil (no-op) until SetObs is called; `on` gates the hot-path updates
// behind a single predictable branch so the detached scheduler stays
// within a few percent of the uninstrumented one.
type schedObs struct {
	on        bool
	scheduled *obs.Counter
	fired     *obs.Counter
	canceled  *obs.Counter
	depth     *obs.Gauge
	simTime   *obs.Gauge
	cbWall    *obs.Histogram
	tracer    *obs.Tracer
	profile   bool
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are written in the callback style.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	// live counts scheduled-but-not-yet-fired, non-canceled events; it
	// is what Pending reports (canceled events linger in the heap until
	// popped but are not pending work).
	live int

	o schedObs
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// SetObs attaches telemetry under the `des.*` namespace. A nil registry
// detaches metrics; a nil tracer disables tracing. Call before the run.
func (s *Scheduler) SetObs(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil {
		s.o = schedObs{tracer: tracer, profile: s.o.profile}
		return
	}
	s.o = schedObs{
		on:        true,
		scheduled: reg.Counter("des.events_scheduled"),
		fired:     reg.Counter("des.events_fired"),
		canceled:  reg.Counter("des.events_canceled"),
		depth:     reg.Gauge("des.queue_depth"),
		simTime:   reg.Gauge(obs.MetricSimTime),
		cbWall:    reg.Histogram("des.callback_wall_us", obs.DurationBuckets),
		tracer:    tracer,
		profile:   s.o.profile,
	}
}

// SetProfile opts into per-callback wall-time measurement: each fired
// event is timed with the wall clock, recorded into the
// `des.callback_wall_us` histogram and, when a tracer is attached,
// emitted as a span whose duration is the callback's CPU time. This
// costs two time.Now() calls per event; leave it off for benchmarks.
func (s *Scheduler) SetProfile(on bool) { s.o.profile = on }

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at the absolute simulated time at. Times in the
// past are clamped to the present.
func (s *Scheduler) At(at time.Duration, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, fn: fn, sch: s}
	heap.Push(&s.queue, ev)
	s.live++
	if s.o.on {
		s.o.scheduled.Inc()
		s.o.depth.Set(int64(s.live))
	}
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live events still queued. Canceled
// events awaiting heap reaping are not counted.
func (s *Scheduler) Pending() int { return s.live }

// QueueLen reports the raw heap length, including canceled-but-unreaped
// events (diagnostic; Pending is the queue-depth metric).
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// step executes the next event. It reports false when the queue is empty.
func (s *Scheduler) step(limit time.Duration, bounded bool) bool {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if bounded && next.at > limit {
			return false
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.at
		fn := next.fn
		next.fn = nil
		s.live--
		if s.o.on {
			s.o.fired.Inc()
			s.o.depth.Set(int64(s.live))
		}
		if s.o.profile {
			t0 := time.Now()
			fn()
			wall := time.Since(t0)
			s.o.cbWall.Observe(float64(wall) / float64(time.Microsecond))
			s.o.tracer.WallSpan("des.callback", "des", next.at, wall)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step(0, false) {
	}
	if s.o.on {
		s.o.simTime.Set(int64(s.now))
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped && s.step(deadline, true) {
	}
	if s.now < deadline {
		s.now = deadline
	}
	if s.o.on {
		s.o.simTime.Set(int64(s.now))
	}
}
