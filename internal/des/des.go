// Package des implements a deterministic discrete-event scheduler.
//
// All simulations in fivegsim run on simulated time. Events are ordered by
// (time, sequence) so that two events scheduled for the same instant fire in
// scheduling order, which keeps runs reproducible.
//
// The scheduler is built for an allocation-free steady state: fired and
// reaped events are recycled through a per-scheduler free list (the
// scheduler is single-threaded, so no sync.Pool is involved), the priority
// queue is an inlined 4-ary min-heap specialized to the (at, seq) key, and
// Timer handles are values carrying a generation counter so a stale handle
// can never touch a recycled event. Because (at, seq) is a total order, any
// min-heap pops events in exactly the same sequence — the firing order, and
// therefore every simulation output, is byte-identical to the pre-pooling
// scheduler.
//
// The scheduler is optionally observable: SetObs attaches an obs.Registry
// (and optionally an obs.Tracer) under the `des.*` metric namespace —
// events scheduled/fired/canceled, the live queue depth with its
// high-water mark, and, behind the SetProfile opt-in, a per-callback
// wall-time histogram. With no registry attached the instrumentation
// collapses to nil-receiver no-ops.
package des

import (
	"time"

	"fivegsim/internal/obs"
)

// event is a scheduled callback. Events are owned by their scheduler and
// recycled through its free list; gen increments on every recycle so that
// stale Timer handles (whose gen no longer matches) become no-ops.
type event struct {
	at  time.Duration
	seq uint64
	gen uint64
	// Exactly one of fn/afn is set while the event is live. afn carries
	// arg so hot paths can schedule a pre-bound function plus a pointer
	// payload without allocating a closure per event.
	fn  func()
	afn func(any)
	arg any
	sch *Scheduler
	// canceled events stay in the heap but are skipped when popped (or
	// reaped in bulk by compact).
	canceled bool
}

// Timer is a value handle to a scheduled event that can be canceled. The
// zero Timer is valid and inert. Handles stay safe after the event fires:
// the generation counter recorded at scheduling time no longer matches the
// recycled event, so Cancel and Active degrade to no-ops instead of
// touching whatever the slot was reused for.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled or zero Timer is a no-op — including when the fired
// event's storage has been recycled for a newer timer.
func (t Timer) Cancel() {
	e := t.ev
	if e == nil || e.gen != t.gen || e.canceled {
		return
	}
	e.canceled = true
	s := e.sch
	s.live--
	s.canceledInHeap++
	if s.o.on {
		s.o.canceled.Inc()
		s.o.depth.Set(int64(s.live))
	}
	// Reap lazily: once canceled-but-unreaped events outnumber live ones
	// the heap is mostly dead weight — compact it in one pass.
	if s.canceledInHeap > len(s.queue)/2 && s.canceledInHeap >= compactMin {
		s.compact()
	}
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled
}

// compactMin is the minimum number of canceled events before Cancel
// considers compacting; below it the lazy skip-on-pop reaping is cheaper.
const compactMin = 32

// schedObs holds the pre-resolved instrument handles. All fields are
// nil (no-op) until SetObs is called; `on` gates the hot-path updates
// behind a single predictable branch so the detached scheduler stays
// within a few percent of the uninstrumented one.
type schedObs struct {
	on        bool
	scheduled *obs.Counter
	fired     *obs.Counter
	canceled  *obs.Counter
	depth     *obs.Gauge
	simTime   *obs.Gauge
	cbWall    *obs.Histogram
	tracer    *obs.Tracer
	profile   bool
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are written in the callback style.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   []*event // inlined 4-ary min-heap on (at, seq)
	free    []*event // recycled event structs
	stopped bool
	// live counts scheduled-but-not-yet-fired, non-canceled events; it
	// is what Pending reports (canceled events linger in the heap until
	// popped or compacted but are not pending work).
	live int
	// canceledInHeap counts canceled-but-unreaped events still occupying
	// heap slots; when they exceed half the heap, Cancel compacts.
	canceledInHeap int

	o schedObs
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// SetObs attaches telemetry under the `des.*` namespace. A nil registry
// detaches metrics; a nil tracer disables tracing. Call before the run.
func (s *Scheduler) SetObs(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil {
		s.o = schedObs{tracer: tracer, profile: s.o.profile}
		return
	}
	s.o = schedObs{
		on:        true,
		scheduled: reg.Counter("des.events_scheduled"),
		fired:     reg.Counter("des.events_fired"),
		canceled:  reg.Counter("des.events_canceled"),
		depth:     reg.Gauge("des.queue_depth"),
		simTime:   reg.Gauge(obs.MetricSimTime),
		cbWall:    reg.Histogram("des.callback_wall_us", obs.DurationBuckets),
		tracer:    tracer,
		profile:   s.o.profile,
	}
}

// SetProfile opts into per-callback wall-time measurement: each fired
// event is timed with the wall clock, recorded into the
// `des.callback_wall_us` histogram and, when a tracer is attached,
// emitted as a span whose duration is the callback's CPU time. This
// costs two time.Now() calls per event; leave it off for benchmarks.
func (s *Scheduler) SetProfile(on bool) { s.o.profile = on }

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// alloc takes an event from the free list (or makes one) and keys it.
func (s *Scheduler) alloc(at time.Duration) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{sch: s}
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev.at = at
	ev.seq = s.seq
	return ev
}

// recycle returns a popped event to the free list. Bumping gen here is
// what turns every outstanding Timer for this event into a no-op.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.canceled = false
	s.free = append(s.free, ev)
}

// schedule finishes At/AtArg: heap insert plus telemetry.
func (s *Scheduler) schedule(ev *event) Timer {
	s.heapPush(ev)
	s.live++
	if s.o.on {
		s.o.scheduled.Inc()
		s.o.depth.Set(int64(s.live))
	}
	return Timer{ev: ev, gen: ev.gen}
}

// At schedules fn to run at the absolute simulated time at. Times in the
// past are clamped to the present.
func (s *Scheduler) At(at time.Duration, fn func()) Timer {
	ev := s.alloc(at)
	ev.fn = fn
	return s.schedule(ev)
}

// AtArg schedules fn(arg) at the absolute simulated time at. It exists
// for hot paths that would otherwise allocate one closure per event: a
// pre-bound fn plus a pointer-shaped arg (e.g. *netsim.Packet) schedules
// with zero heap allocations in steady state.
func (s *Scheduler) AtArg(at time.Duration, fn func(any), arg any) Timer {
	ev := s.alloc(at)
	ev.afn = fn
	ev.arg = arg
	return s.schedule(ev)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, fn, arg)
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live events still queued. Canceled
// events awaiting heap reaping are not counted.
func (s *Scheduler) Pending() int { return s.live }

// QueueLen reports the raw heap length, including canceled-but-unreaped
// events (diagnostic; Pending is the queue-depth metric).
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// FreeListLen reports the number of recycled events awaiting reuse
// (diagnostic for the pooling tests).
func (s *Scheduler) FreeListLen() int { return len(s.free) }

// step executes the next event. It reports false when the queue is empty.
func (s *Scheduler) step(limit time.Duration, bounded bool) bool {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if bounded && next.at > limit {
			return false
		}
		s.heapPopHead()
		if next.canceled {
			s.canceledInHeap--
			s.recycle(next)
			continue
		}
		s.now = next.at
		at := next.at
		fn, afn, arg := next.fn, next.afn, next.arg
		// Recycle before the callback runs: the callback may schedule new
		// events that immediately reuse this struct (gen was bumped, so any
		// outstanding Timer for the fired event is already inert).
		s.recycle(next)
		s.live--
		if s.o.on {
			s.o.fired.Inc()
			s.o.depth.Set(int64(s.live))
		}
		if s.o.profile {
			t0 := time.Now()
			if afn != nil {
				afn(arg)
			} else {
				fn()
			}
			wall := time.Since(t0)
			s.o.cbWall.Observe(float64(wall) / float64(time.Microsecond))
			s.o.tracer.WallSpan("des.callback", "des", at, wall)
		} else if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step(0, false) {
	}
	if s.o.on {
		s.o.simTime.Set(int64(s.now))
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped && s.step(deadline, true) {
	}
	if s.now < deadline {
		s.now = deadline
	}
	if s.o.on {
		s.o.simTime.Set(int64(s.now))
	}
}

// ---- inlined 4-ary min-heap on (at, seq) ----
//
// A 4-ary heap halves the tree depth of the binary heap, cutting the
// sift-up comparisons on the push-heavy workload of a packet simulation,
// and keeps children in one cache line of the pointer array. less is the
// only ordering used anywhere, and it is a strict total order (seq is
// unique), so pop order — and thus simulation output — does not depend on
// the internal array layout.

func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) heapPush(ev *event) {
	s.queue = append(s.queue, ev)
	s.siftUp(len(s.queue) - 1)
}

func (s *Scheduler) heapPopHead() {
	q := s.queue
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

func (s *Scheduler) siftUp(i int) {
	q := s.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

func (s *Scheduler) siftDown(i int) {
	q := s.queue
	n := len(q)
	ev := q[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Smallest of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(q[c], q[min]) {
				min = c
			}
		}
		if !less(q[min], ev) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = ev
}

// compact removes every canceled event from the heap in one pass,
// recycles them, and restores the heap property bottom-up (Floyd). Pop
// order is unchanged — the heap invariant plus the total order on
// (at, seq) fully determine it.
func (s *Scheduler) compact() {
	q := s.queue
	kept := q[:0]
	for _, ev := range q {
		if ev.canceled {
			s.canceledInHeap--
			s.recycle(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	s.queue = kept
	for i := (len(kept) - 2) >> 2; i >= 0; i-- {
		s.siftDown(i)
	}
}
