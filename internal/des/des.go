// Package des implements a deterministic discrete-event scheduler.
//
// All simulations in fivegsim run on simulated time. Events are ordered by
// (time, sequence) so that two events scheduled for the same instant fire in
// scheduling order, which keeps runs reproducible.
package des

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. A nil Timer is also a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && !t.ev.canceled && !t.ev.fired() }

func (e *event) fired() bool { return e.fn == nil }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are written in the callback style.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at the absolute simulated time at. Times in the
// past are clamped to the present.
func (s *Scheduler) At(at time.Duration, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of events still queued (including canceled
// events that have not yet been reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// step executes the next event. It reports false when the queue is empty.
func (s *Scheduler) step(limit time.Duration, bounded bool) bool {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if bounded && next.at > limit {
			return false
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step(0, false) {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped && s.step(deadline, true) {
	}
	if s.now < deadline {
		s.now = deadline
	}
}
