package des

import (
	"testing"
	"time"
)

// The zero-allocation contract of the DES core (ISSUE 5): once the heap
// and free list are warm, a steady-state schedule→fire cycle must not
// touch the garbage collector at all with observability detached.

func TestScheduleFireSteadyStateAllocFree(t *testing.T) {
	s := New()
	noop := func() {}
	// Warm the free list and heap capacity.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, noop)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		s.After(time.Microsecond, noop)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/fire allocates %.2f allocs/op, want 0", avg)
	}
}

func TestScheduleCancelSteadyStateAllocFree(t *testing.T) {
	s := New()
	noop := func() {}
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, noop)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		tm := s.After(time.Microsecond, noop)
		tm.Cancel()
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/cancel allocates %.2f allocs/op, want 0", avg)
	}
}

func TestAtArgSteadyStateAllocFree(t *testing.T) {
	s := New()
	sink := 0
	fn := func(a any) { sink += *a.(*int) }
	payload := 7
	for i := 0; i < 64; i++ {
		s.AfterArg(time.Duration(i)*time.Microsecond, fn, &payload)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		s.AfterArg(time.Microsecond, fn, &payload)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state AtArg allocates %.2f allocs/op, want 0", avg)
	}
}
