package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		var fired []time.Duration
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			d := time.Duration(r.Intn(1_000_000)) * time.Microsecond
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != count {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilNeverExceedsDeadlineProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		deadline := time.Duration(r.Intn(1000)+1) * time.Millisecond
		ok := true
		for i := 0; i < 50; i++ {
			s.At(time.Duration(r.Intn(2000))*time.Millisecond, func() {
				if s.Now() > deadline {
					ok = false
				}
			})
		}
		s.RunUntil(deadline)
		return ok && s.Now() == deadline
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	tick()
	s.Run()
}

func BenchmarkSchedulerFanOut(b *testing.B) {
	// Heap behaviour with many pending events.
	s := New()
	for i := 0; i < b.N; i++ {
		s.At(time.Duration(i%1000)*time.Millisecond, func() {})
	}
	b.ResetTimer()
	s.Run()
}
