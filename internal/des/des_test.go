package des

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	s.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s (clock advances to deadline)", s.Now())
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := New()
	var at time.Duration = -1
	s.At(5*time.Second, func() {
		s.At(time.Second, func() { at = s.Now() }) // in the past: clamp to now
	})
	s.Run()
	if at != 5*time.Second {
		t.Fatalf("past event ran at %v, want clamped to 5s", at)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := New()
	n := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.At(time.Duration(i)*time.Second, func() {
			n++
			if i == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("ran %d events before stop, want 3", n)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}
