package des

import (
	"testing"
	"time"

	"fivegsim/internal/obs"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	s.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s (clock advances to deadline)", s.Now())
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := New()
	var at time.Duration = -1
	s.At(5*time.Second, func() {
		s.At(time.Second, func() { at = s.Now() }) // in the past: clamp to now
	})
	s.Run()
	if at != 5*time.Second {
		t.Fatalf("past event ran at %v, want clamped to 5s", at)
	}
}

func TestTimerActiveLifecycle(t *testing.T) {
	s := New()
	tm := s.After(time.Second, func() {})
	if !tm.Active() {
		t.Fatal("timer should be active while pending")
	}
	s.Run()
	if tm.Active() {
		t.Fatal("timer should be inactive after firing")
	}
	tm.Cancel() // canceling a fired timer is a no-op
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after post-fire cancel, want 0", s.Pending())
	}

	tm2 := s.After(time.Second, func() {})
	tm2.Cancel()
	if tm2.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	tm2.Cancel() // double-cancel is a no-op
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after double cancel, want 0", s.Pending())
	}
}

func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	s := New()
	fired := false
	s.At(2*time.Second, func() { fired = true })
	s.RunUntil(2 * time.Second)
	if !fired {
		t.Fatal("event exactly at the deadline must fire")
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
}

func TestAtPastTimestampWithObs(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetObs(reg, nil)
	var firedAt time.Duration = -1
	s.At(3*time.Second, func() {
		// Schedule into the past twice; both must clamp to now and fire.
		s.At(time.Second, func() { firedAt = s.Now() })
		s.At(-time.Hour, func() {})
	})
	s.Run()
	if firedAt != 3*time.Second {
		t.Fatalf("past event ran at %v, want clamped to 3s", firedAt)
	}
	if got := reg.Counter("des.events_fired").Value(); got != 3 {
		t.Fatalf("des.events_fired = %d, want 3", got)
	}
	if got := reg.Counter("des.events_scheduled").Value(); got != 3 {
		t.Fatalf("des.events_scheduled = %d, want 3", got)
	}
	if got := reg.Gauge(obs.MetricSimTime).Max(); got != int64(3*time.Second) {
		t.Fatalf("des.sim_time_ns max = %d, want %d", got, int64(3*time.Second))
	}
}

func TestPendingExcludesCanceled(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetObs(reg, nil)
	var timers []Timer
	for i := 1; i <= 6; i++ {
		timers = append(timers, s.At(time.Duration(i)*time.Second, func() {}))
	}
	timers[1].Cancel()
	timers[3].Cancel()
	if s.Pending() != 4 {
		t.Fatalf("Pending = %d after 2 cancels, want 4", s.Pending())
	}
	if s.QueueLen() != 6 {
		t.Fatalf("QueueLen = %d (canceled events linger until reaped), want 6", s.QueueLen())
	}
	if got := reg.Gauge("des.queue_depth").Value(); got != 4 {
		t.Fatalf("des.queue_depth = %d, want 4", got)
	}
	if got := reg.Gauge("des.queue_depth").Max(); got != 6 {
		t.Fatalf("des.queue_depth high-water = %d, want 6", got)
	}
	s.Run()
	if s.Pending() != 0 || s.QueueLen() != 0 {
		t.Fatalf("Pending/QueueLen = %d/%d after drain, want 0/0", s.Pending(), s.QueueLen())
	}
	if got := reg.Counter("des.events_canceled").Value(); got != 2 {
		t.Fatalf("des.events_canceled = %d, want 2", got)
	}
	if got := reg.Counter("des.events_fired").Value(); got != 4 {
		t.Fatalf("des.events_fired = %d, want 4", got)
	}
}

func TestSchedulerProfileHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	s := New()
	s.SetObs(reg, tr)
	s.SetProfile(true)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	h := reg.Histogram("des.callback_wall_us", obs.DurationBuckets)
	if h.Count() != 5 {
		t.Fatalf("callback_wall_us count = %d, want 5", h.Count())
	}
	if got := len(tr.Events()); got != 5 {
		t.Fatalf("tracer recorded %d spans, want 5", got)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := New()
	n := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.At(time.Duration(i)*time.Second, func() {
			n++
			if i == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("ran %d events before stop, want 3", n)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}
