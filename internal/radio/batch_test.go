package radio

import (
	"math"
	"math/rand"
	"testing"

	"fivegsim/internal/geom"
)

// gridObs is a deterministic stub Obstruction: walls appear every 40 m of
// Manhattan displacement, and a point is indoor when it falls in the odd
// 30 m stripe of both axes. It exercises the wall-count and indoor
// branches of PathLoss without dragging in the deployment layer.
type gridObs struct{}

func (gridObs) WallCrossings(a, b geom.Point) int {
	return int((math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)) / 40)
}

func (gridObs) Indoor(p geom.Point) bool {
	return int(p.X/30)%2 == 1 && int(p.Y/30)%2 == 1
}

// randomCells builds a mixed-tech cell list with randomized geometry,
// antenna patterns and loads — including the clamp corners Load < 0 and
// Load > 1 that MeasureCell's clamp01 must reproduce.
func randomCells(r *rand.Rand, n int) []*Cell {
	cells := make([]*Cell, n)
	for i := range cells {
		tech := LTE
		band := BandLTE()
		if i%2 == 0 {
			tech = NR
			band = BandNR()
		}
		load := r.Float64()*1.6 - 0.3 // spans [-0.3, 1.3): both clamp corners
		cells[i] = &Cell{
			PCI:  100 + i,
			Tech: tech,
			Band: band,
			Pos:  geom.Point{X: r.Float64() * 900, Y: r.Float64() * 600},
			Antenna: SectorAntenna{
				BoresightDeg: r.Float64() * 360,
				BeamwidthDeg: 40 + r.Float64()*50,
				MaxGainDBi:   10 + r.Float64()*10,
				FrontToBack:  20 + r.Float64()*10,
			},
			EIRPPerREdBm: DefaultEIRPPerRE(tech) + r.Float64()*4 - 2,
			Load:         load,
		}
	}
	return cells
}

// batchEnv evaluates the stub environment for every cell at p, exactly as
// the deployment layer would before calling the kernels.
func batchEnv(cells []*Cell, p geom.Point, r *rand.Rand) (idx []int32, walls []int32, indoor bool, shadow []float64) {
	obs := gridObs{}
	idx = make([]int32, len(cells))
	walls = make([]int32, len(cells))
	shadow = make([]float64, len(cells))
	for i, c := range cells {
		idx[i] = int32(i)
		walls[i] = int32(obs.WallCrossings(c.Pos, p))
		shadow[i] = r.NormFloat64() * 4
	}
	return idx, walls, obs.Indoor(p), shadow
}

// TestBatchRSRPMatchesScalar pins the tentpole equivalence: RSRPInto is
// bit-for-bit RSRPAt for every cell, point, wall count, indoor state and
// shadow value — across seeds, including indoor points behind multiple
// walls (blockage-cap corner) and points inside the d < 1 m clamp.
func TestBatchRSRPMatchesScalar(t *testing.T) {
	for _, seed := range []int64{1, 42, 7} {
		r := rand.New(rand.NewSource(seed))
		cells := randomCells(r, 12)
		b := NewCellBatch(cells)
		dst := make([]float64, len(cells))
		points := make([]geom.Point, 0, 64)
		for i := 0; i < 60; i++ {
			points = append(points, geom.Point{X: r.Float64() * 900, Y: r.Float64() * 600})
		}
		// Corner probes: on top of a cell (d < 1 clamp), deep indoor far
		// corner (wall cap + indoor penetration).
		points = append(points, cells[0].Pos, geom.Point{X: 45, Y: 45}, geom.Point{X: 895, Y: 595})
		for _, p := range points {
			idx, walls, indoor, shadow := batchEnv(cells, p, r)
			b.RSRPInto(dst, idx, p, walls, indoor, shadow)
			for i, c := range cells {
				want := RSRPAt(c, p, gridObs{}, shadow[i])
				if math.Float64bits(dst[i]) != math.Float64bits(want) {
					t.Fatalf("seed %d cell %d at %+v: batch %v != scalar %v", seed, i, p, dst[i], want)
				}
			}
		}
	}
}

// TestBatchMeasureMatchesScalar pins MeasureOne == MeasureCell bit for
// bit: same serving RSRP, same load-clamped interference sum in the same
// neighbor order, same KPI chain — for every cell as serving, across
// seeds and the Load clamp corners randomCells plants.
func TestBatchMeasureMatchesScalar(t *testing.T) {
	for _, seed := range []int64{1, 42, 7} {
		r := rand.New(rand.NewSource(seed))
		cells := randomCells(r, 10)
		b := NewCellBatch(cells)
		rsrp := make([]float64, len(cells))
		termMw := make([]float64, len(cells))
		terms := make([]InterferenceTerm, len(cells))
		for pt := 0; pt < 40; pt++ {
			p := geom.Point{X: r.Float64() * 900, Y: r.Float64() * 600}
			idx, walls, indoor, shadow := batchEnv(cells, p, r)
			b.RSRPInto(rsrp, idx, p, walls, indoor, shadow)
			b.TermsMwInto(termMw, idx, rsrp)
			for i, c := range cells {
				terms[i] = InterferenceTerm{PCI: c.PCI, RSRPdBm: rsrp[i], Load: c.Load}
			}
			for k := range cells {
				got := b.MeasureOne(idx, rsrp, termMw, k, p)
				want := MeasureCell(cells[k], p, rsrp[k], terms)
				if got != want {
					t.Fatalf("seed %d serving %d at %+v:\n batch  %+v\n scalar %+v", seed, k, p, got, want)
				}
			}
		}
	}
}

// TestBatchLoadReadLive pins the "Load is never cached" contract: mutating
// a cell's Load through the retained pointer after NewCellBatch must
// change the interference terms on the next evaluation.
func TestBatchLoadReadLive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cells := randomCells(r, 6)
	b := NewCellBatch(cells)
	p := geom.Point{X: 333, Y: 222}
	idx, walls, indoor, shadow := batchEnv(cells, p, r)
	rsrp := make([]float64, len(cells))
	termMw := make([]float64, len(cells))
	b.RSRPInto(rsrp, idx, p, walls, indoor, shadow)

	cells[1].Load = 0.25
	b.TermsMwInto(termMw, idx, rsrp)
	quarter := termMw[1]
	cells[1].Load = 1.0
	b.TermsMwInto(termMw, idx, rsrp)
	if math.Float64bits(termMw[1]) != math.Float64bits(quarter*4) {
		t.Fatalf("load mutation not visible: term at load 1.0 = %v, want 4×%v", termMw[1], quarter)
	}
}
