package radio

import (
	"math"

	"fivegsim/internal/geom"
)

// Cell is one sector of a base station as seen by the physical layer.
type Cell struct {
	PCI     int // physical cell identifier
	Tech    Tech
	Band    Band
	Pos     geom.Point
	Antenna SectorAntenna
	// EIRPPerREdBm is the transmitted power per resource element plus
	// feeder/system gains, before the antenna pattern is applied.
	EIRPPerREdBm float64
	// Load is the fraction of the cell's resources occupied by other
	// users (drives interference and PRB contention).
	Load float64
}

// DefaultEIRPPerRE returns the calibrated per-RE EIRP for a technology.
// Combined with PropagationFor these reproduce the paper's usable radii
// (≈230 m NR, ≈520 m LTE) against the −105 dBm service threshold.
func DefaultEIRPPerRE(t Tech) float64 {
	switch t {
	case NR:
		return 13 // 43 dBm over 264·12 REs plus array gain margin
	default:
		return 12.2 // 43 dBm over 100·12 REs ≈ 12.2 dBm/RE
	}
}

// Obstruction abstracts the building map so the radio layer does not
// depend on the deployment package.
type Obstruction interface {
	// WallCrossings returns how many exterior walls the segment a→b
	// penetrates.
	WallCrossings(a, b geom.Point) int
	// Indoor reports whether p is inside a building.
	Indoor(p geom.Point) bool
}

// OpenField is an Obstruction with no buildings.
type OpenField struct{}

// WallCrossings always returns 0 in the open field.
func (OpenField) WallCrossings(a, b geom.Point) int { return 0 }

// Indoor always returns false in the open field.
func (OpenField) Indoor(p geom.Point) bool { return false }

// Measurement is one physical-layer sample, mirroring the KPI set the
// paper extracts with XCAL-Mobile.
type Measurement struct {
	PCI     int
	Tech    Tech
	RSRPdBm float64
	RSRQdB  float64
	SINRdB  float64
	CQI     int
	MCS     int
	// SE is the spectral efficiency per layer in bits per RE.
	SE float64
	// DistanceM is the UE–cell distance (diagnostic).
	DistanceM float64
}

// RSRPAt returns the reference signal received power from cell c at point
// p with the given shadowing value (dB).
func RSRPAt(c *Cell, p geom.Point, obs Obstruction, shadowDB float64) float64 {
	prop := PropagationFor(c.Tech)
	d := c.Pos.Dist(p)
	az := c.Pos.AzimuthTo(p)
	walls := obs.WallCrossings(c.Pos, p)
	pl := prop.PathLoss(d, walls, obs.Indoor(p))
	return c.EIRPPerREdBm + c.Antenna.GainDBi(az) - pl + shadowDB
}

// MeasureCell computes the full KPI sample for a serving cell at point p,
// given the RSRP of every co-channel cell (serving included) so that
// inter-cell interference can be accounted. interferers maps PCI → RSRP
// (dBm) of other same-tech cells at p; their Load scales their
// contribution.
func MeasureCell(serving *Cell, p geom.Point, servingRSRP float64, interference []InterferenceTerm) Measurement {
	noise := dbmToMw(noisePerREdBm(serving.Band))
	sig := dbmToMw(servingRSRP)
	var interf float64
	for _, it := range interference {
		if it.PCI == serving.PCI {
			continue
		}
		interf += dbmToMw(it.RSRPdBm) * clamp01(it.Load)
	}
	return measureFrom(serving, p, servingRSRP, sig, interf, noise)
}

// measureFrom finishes a measurement from linear-domain powers (mW per
// RE): the serving signal, the summed load-scaled interference, and the
// thermal noise. Both the scalar MeasureCell and the batched
// CellBatch.MeasureOne funnel through this one KPI chain, which is what
// makes their bit-for-bit equivalence a structural property rather than
// a duplicated formula.
func measureFrom(serving *Cell, p geom.Point, servingRSRP, sig, interf, noise float64) Measurement {
	sinr := 10 * math.Log10(sig/(interf+noise))
	// RSRQ is reported against the wideband RSSI, which includes the
	// serving cell's own fully-loaded data REs (the −10.8 dB floor of an
	// isolated full-buffer cell) and a measurement noise floor ≈20 dB above
	// thermal (RF front-end imperfections dominate wideband RSSI at the
	// cell edge). This makes RSRQ sag together with RSRP near the edge,
	// matching the −5…−25 dB span of the paper's Fig. 4.
	measNoise := noise * 100
	rsrq := 10*math.Log10(sig/(sig+interf+measNoise)) - 10.8
	if rsrq < -25 {
		rsrq = -25
	}
	if rsrq > -3 {
		rsrq = -3
	}
	cqi := CQIFromSINR(sinr)
	return Measurement{
		PCI:       serving.PCI,
		Tech:      serving.Tech,
		RSRPdBm:   servingRSRP,
		RSRQdB:    rsrq,
		SINRdB:    sinr,
		CQI:       cqi,
		MCS:       MCSFromCQI(cqi),
		SE:        SpectralEfficiency(sinr),
		DistanceM: serving.Pos.Dist(p),
	}
}

// InterferenceTerm is one co-channel neighbor's contribution at a point.
type InterferenceTerm struct {
	PCI     int
	RSRPdBm float64
	Load    float64
}

// DLBitRate returns the downlink PHY bit-rate for a measurement given the
// PRBs granted to this UE.
func DLBitRate(m Measurement, band Band, prbs int) float64 {
	return band.Rate(m.SE, prbs)
}

// Usable reports whether the sample can sustain service (§3.1: below
// −105 dBm the connection cannot even be triggered).
func (m Measurement) Usable() bool { return m.RSRPdBm >= ServiceThresholdDBm }

func dbmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
