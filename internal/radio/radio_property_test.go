package radio

import (
	"math"
	"testing"
	"testing/quick"

	"fivegsim/internal/geom"
)

func TestPathLossMonotoneInDistanceProperty(t *testing.T) {
	for _, tech := range []Tech{LTE, NR} {
		prop := PropagationFor(tech)
		f := func(a, b uint16) bool {
			d1 := float64(a%2000) + 1
			d2 := float64(b%2000) + 1
			if d1 > d2 {
				d1, d2 = d2, d1
			}
			return prop.PathLoss(d1, 0, false) <= prop.PathLoss(d2, 0, false)+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
	}
}

func TestPathLossWallsOnlyAddLossProperty(t *testing.T) {
	prop := PropagationFor(NR)
	f := func(d16 uint16, walls uint8) bool {
		d := float64(d16%1000) + 1
		w := int(walls % 6)
		base := prop.PathLoss(d, 0, false)
		blocked := prop.PathLoss(d, w, false)
		indoor := prop.PathLoss(d, w, true)
		return blocked >= base-1e-9 && indoor > blocked-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutdoorBlockageCapped(t *testing.T) {
	prop := PropagationFor(NR)
	base := prop.PathLoss(100, 0, false)
	many := prop.PathLoss(100, 50, false)
	if many-base > prop.BlockCapDB+1e-9 {
		t.Fatalf("outdoor blockage %0.1f dB exceeds the %0.1f dB diffraction cap", many-base, prop.BlockCapDB)
	}
}

func TestBitRateNonNegativeProperty(t *testing.T) {
	band := BandNR()
	f := func(sinr float64, prb uint16) bool {
		if math.IsNaN(sinr) || math.IsInf(sinr, 0) {
			return true
		}
		se := SpectralEfficiency(math.Mod(sinr, 100))
		r := band.Rate(se, int(prb%uint16(band.PRBs))+1)
		return r >= 0 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAttemptsConsistentWithDraws(t *testing.T) {
	for _, tech := range []Tech{LTE, NR} {
		h := HARQFor(tech)
		want := h.MeanAttempts()
		// Empirical mean over a deterministic uniform grid.
		var sum float64
		n := 200000
		for i := 0; i < n; i++ {
			u := (float64(i) + 0.5) / float64(n)
			a, _ := h.Attempts(u)
			sum += float64(a)
		}
		got := sum / float64(n)
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("%v: empirical mean attempts %.4f vs analytic %.4f", tech, got, want)
		}
	}
}

func TestRSRPFallsWithDistanceUnderAntenna(t *testing.T) {
	c := &Cell{Tech: NR, Band: BandNR(), Antenna: DefaultSector(0), EIRPPerREdBm: DefaultEIRPPerRE(NR)}
	prev := math.Inf(1)
	for d := 10.0; d <= 500; d += 10 {
		r := RSRPAt(c, geom.Point{X: d}, OpenField{}, 0)
		if r >= prev {
			t.Fatalf("RSRP not decreasing at %v m", d)
		}
		prev = r
	}
}
