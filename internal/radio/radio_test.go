package radio

import (
	"math"
	"testing"
	"testing/quick"

	"fivegsim/internal/geom"
	"fivegsim/internal/rng"
)

func TestPeakDLRateMatchesPaper(t *testing.T) {
	// The paper: "the maximum physical layer bit-rate is 1200.98 Mbps for
	// 5G DL (time slot ratio is 3:1 ...)".
	got := BandNR().PeakDLRate() / 1e6
	if math.Abs(got-1200.98) > 1.0 {
		t.Fatalf("NR peak DL = %.2f Mb/s, want ≈1200.98", got)
	}
}

func TestLTEPeakPlausible(t *testing.T) {
	got := BandLTE().PeakDLRate() / 1e6
	// 20 MHz FDD with 2 layers: low-200s Mb/s, consistent with the 200 Mb/s
	// late-night UDP baseline the paper measures.
	if got < 180 || got < BandLTE().Rate(MaxSpectralEfficiency, 100)/1e6-1 || got > 260 {
		t.Fatalf("LTE peak DL = %.2f Mb/s, want ≈180–260", got)
	}
}

func TestRateMonotoneInPRBs(t *testing.T) {
	f := func(a, b uint8) bool {
		pa, pb := int(a%100)+1, int(b%100)+1
		if pa > pb {
			pa, pb = pb, pa
		}
		band := BandNR()
		return band.Rate(5, pa) <= band.Rate(5, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpectralEfficiencyShape(t *testing.T) {
	if se := SpectralEfficiency(-20); se > 0.05 {
		t.Fatalf("SE at −20 dB = %v, want ≈0", se)
	}
	if se := SpectralEfficiency(40); se != MaxSpectralEfficiency {
		t.Fatalf("SE at 40 dB = %v, want clipped at %v", se, MaxSpectralEfficiency)
	}
	prev := -1.0
	for s := -20.0; s <= 40; s += 0.5 {
		se := SpectralEfficiency(s)
		if se < prev {
			t.Fatalf("SE not monotone at %v dB", s)
		}
		prev = se
	}
}

func TestCQIAndMCSRanges(t *testing.T) {
	f := func(sinr float64) bool {
		if math.IsNaN(sinr) || math.IsInf(sinr, 0) {
			return true
		}
		sinr = math.Mod(sinr, 200)
		cqi := CQIFromSINR(sinr)
		mcs := MCSFromCQI(cqi)
		return cqi >= 1 && cqi <= 15 && mcs >= 0 && mcs <= 27
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// A strong link must reach the top of the table.
	if mcs := MCSFromCQI(CQIFromSINR(25)); mcs != 27 {
		t.Fatalf("MCS at 25 dB SINR = %d, want 27", mcs)
	}
}

func TestServiceRadiusNR(t *testing.T) {
	// §3.2: "the coverage radius of one gNB is approximate 230m in dense
	// urban areas". Find the LoS distance where RSRP crosses −105 dBm.
	c := &Cell{
		Tech: NR, Band: BandNR(), Pos: geom.Point{},
		Antenna: DefaultSector(0), EIRPPerREdBm: DefaultEIRPPerRE(NR),
	}
	radius := serviceRadius(c)
	if radius < 180 || radius > 300 {
		t.Fatalf("NR service radius = %.0f m, want ≈230 m", radius)
	}
}

func TestServiceRadiusLTE(t *testing.T) {
	// §3.2: "typical 4G link distance is much longer, at around 520m".
	c := &Cell{
		Tech: LTE, Band: BandLTE(), Pos: geom.Point{},
		Antenna: DefaultSector(0), EIRPPerREdBm: DefaultEIRPPerRE(LTE),
	}
	radius := serviceRadius(c)
	if radius < 430 || radius > 640 {
		t.Fatalf("LTE service radius = %.0f m, want ≈520 m", radius)
	}
	nr := &Cell{
		Tech: NR, Band: BandNR(), Pos: geom.Point{},
		Antenna: DefaultSector(0), EIRPPerREdBm: DefaultEIRPPerRE(NR),
	}
	if serviceRadius(nr) >= radius {
		t.Fatal("NR radius must be smaller than LTE radius")
	}
}

func serviceRadius(c *Cell) float64 {
	for d := 1.0; d < 2000; d += 1 {
		rsrp := RSRPAt(c, geom.Point{X: d}, OpenField{}, 0)
		if rsrp < ServiceThresholdDBm {
			return d
		}
	}
	return 2000
}

func TestIndoorPenaltyLargerForNR(t *testing.T) {
	nr, lte := PropagationFor(NR), PropagationFor(LTE)
	nrPenalty := nr.PathLoss(100, 1, true) - nr.PathLoss(100, 0, false)
	ltePenalty := lte.PathLoss(100, 1, true) - lte.PathLoss(100, 0, false)
	if nrPenalty <= ltePenalty {
		t.Fatalf("NR indoor penalty (%.1f dB) must exceed LTE's (%.1f dB)", nrPenalty, ltePenalty)
	}
}

func TestAntennaPattern(t *testing.T) {
	a := DefaultSector(90)
	if g := a.GainDBi(90); g != a.MaxGainDBi {
		t.Fatalf("boresight gain = %v", g)
	}
	// At the 3 dB beamwidth the pattern is 12 dB down in this model's
	// parabolic form evaluated at θ = beamwidth.
	if g := a.GainDBi(90 + 65); math.Abs((a.MaxGainDBi-g)-12) > 1e-9 {
		t.Fatalf("gain at beamwidth edge = %v", g)
	}
	if g := a.GainDBi(270); a.MaxGainDBi-g != a.FrontToBack {
		t.Fatalf("back-lobe attenuation = %v, want %v", a.MaxGainDBi-g, a.FrontToBack)
	}
	if !a.InFoV(120) || a.InFoV(200) {
		t.Fatal("InFoV misclassification")
	}
}

func TestMeasureCellSINRDropsWithInterference(t *testing.T) {
	c := &Cell{PCI: 1, Tech: NR, Band: BandNR()}
	clean := MeasureCell(c, geom.Point{}, -80, nil)
	dirty := MeasureCell(c, geom.Point{}, -80, []InterferenceTerm{{PCI: 2, RSRPdBm: -85, Load: 1}})
	if dirty.SINRdB >= clean.SINRdB {
		t.Fatal("interference must reduce SINR")
	}
	if dirty.RSRQdB >= clean.RSRQdB {
		t.Fatal("interference must reduce RSRQ")
	}
	if clean.RSRQdB > -3 || clean.RSRQdB < -25 {
		t.Fatalf("RSRQ out of reportable range: %v", clean.RSRQdB)
	}
}

func TestMeasurementUsable(t *testing.T) {
	c := &Cell{PCI: 1, Tech: NR, Band: BandNR()}
	if m := MeasureCell(c, geom.Point{}, -104.9, nil); !m.Usable() {
		t.Fatal("−104.9 dBm should be usable")
	}
	if m := MeasureCell(c, geom.Point{}, -105.1, nil); m.Usable() {
		t.Fatal("−105.1 dBm should be unusable")
	}
}

func TestHARQAttemptDistribution(t *testing.T) {
	// Paper Fig. 10: all retransmissions succeed within ≤4 attempts (4G)
	// and ≤2 (5G); residual loss is effectively impossible.
	r := rng.New(1).Stream("harq")
	for _, tech := range []Tech{LTE, NR} {
		h := HARQFor(tech)
		maxAttempts := 0
		losses := 0
		n := 200000
		for i := 0; i < n; i++ {
			a, lost := h.Attempts(r.Float64())
			if a > maxAttempts {
				maxAttempts = a
			}
			if lost {
				losses++
			}
		}
		if losses != 0 {
			t.Fatalf("%v: HARQ residual losses = %d, want 0", tech, losses)
		}
		limit := 4
		if tech == NR {
			limit = 3
		}
		if maxAttempts > limit {
			t.Fatalf("%v: max attempts = %d, want ≤ %d", tech, maxAttempts, limit)
		}
		if maxAttempts < 2 {
			t.Fatalf("%v: max attempts = %d, retransmissions should occur", tech, maxAttempts)
		}
	}
}

func TestHARQFirstAttemptRate(t *testing.T) {
	r := rng.New(2).Stream("harq")
	h := HARQFor(NR)
	first := 0
	n := 100000
	for i := 0; i < n; i++ {
		a, _ := h.Attempts(r.Float64())
		if a == 1 {
			first++
		}
	}
	got := float64(first) / float64(n)
	if math.Abs(got-(1-h.BlerTarget)) > 0.01 {
		t.Fatalf("first-attempt success = %.3f, want ≈%.2f", got, 1-h.BlerTarget)
	}
}

func TestShadowerCorrelation(t *testing.T) {
	r := rng.New(3).Stream("shadow")
	s := NewShadower(r, 8, 20)
	v0 := s.Next(0)
	v1 := s.Next(0.1) // tiny move: nearly identical
	if math.Abs(v1-v0) > 1.5 {
		t.Fatalf("shadowing jumped %v dB over 0.1 m", math.Abs(v1-v0))
	}
	// Large move: decorrelated. Check statistically over many shadowers.
	var corrNum, varSum float64
	n := 5000
	for i := 0; i < n; i++ {
		sh := NewShadower(rng.New(int64(i)).Stream("s"), 8, 20)
		a := sh.Next(0)
		b := sh.Next(200)
		corrNum += a * b
		varSum += a * a
	}
	rho := corrNum / varSum
	if math.Abs(rho) > 0.05 {
		t.Fatalf("correlation after 200 m = %.3f, want ≈0", rho)
	}
}

func TestShadowerStd(t *testing.T) {
	var ss float64
	n := 20000
	for i := 0; i < n; i++ {
		sh := NewShadower(rng.New(int64(i)).Stream("std"), 8, 20)
		v := sh.Value()
		ss += v * v
	}
	std := math.Sqrt(ss / float64(n))
	if math.Abs(std-8) > 0.3 {
		t.Fatalf("shadowing std = %.2f, want ≈8", std)
	}
}

func TestULRateBelowDLRate(t *testing.T) {
	for _, b := range []Band{BandLTE(), BandNR()} {
		if b.ULRate(5, b.PRBs) >= b.Rate(5, b.PRBs) {
			t.Fatalf("%s: UL rate should be below DL rate", b.Name)
		}
	}
}

func TestTechString(t *testing.T) {
	if LTE.String() != "4G" || NR.String() != "5G" {
		t.Fatal("Tech.String mismatch")
	}
}
