package radio

import "math"

// MaxSpectralEfficiency is the per-layer ceiling at MCS 27: 256-QAM (8
// bits/symbol) at code rate 0.925, the highest entry the paper observes
// ("we often monitor the MCS index is 27, which corresponds to a maximum
// code rate of 0.925 ... in 256 QAM").
const MaxSpectralEfficiency = 8 * 0.925

// SpectralEfficiency maps SINR (dB) to achievable bits per resource
// element per layer using the attenuated-Shannon model common in system
// simulators: SE = η·log2(1+SINR), clipped to the MCS-27 ceiling.
func SpectralEfficiency(sinrDB float64) float64 {
	const eta = 0.75
	lin := math.Pow(10, sinrDB/10)
	se := eta * math.Log2(1+lin)
	if se > MaxSpectralEfficiency {
		se = MaxSpectralEfficiency
	}
	if se < 0 {
		se = 0
	}
	return se
}

// CQIFromSINR maps SINR to the 15-level channel quality indicator the UE
// reports. The mapping is the standard ~1.9 dB/step staircase anchored so
// CQI 15 needs ≈20 dB.
func CQIFromSINR(sinrDB float64) int {
	cqi := int(math.Round((sinrDB + 6.7) / 1.9))
	if cqi < 1 {
		cqi = 1
	}
	if cqi > 15 {
		cqi = 15
	}
	return cqi
}

// MCSFromCQI maps the reported CQI to the scheduled MCS index (0–27, the
// 256-QAM table of TS 38.214).
func MCSFromCQI(cqi int) int {
	mcs := cqi*2 - 3
	if mcs < 0 {
		mcs = 0
	}
	if mcs > 27 {
		mcs = 27
	}
	return mcs
}

// HARQ models the MAC-layer hybrid-ARQ process that hides radio loss from
// the transport layer. The paper identifies a retransmission threshold of
// 32 from the PDSCH configuration and observes that in practice every
// transport block succeeds within ≤4 attempts on 4G and ≤2 on 5G, so no
// RAN loss ever reaches TCP (§4.2).
type HARQ struct {
	// BlerTarget is the first-transmission block error rate the link
	// adaptation aims for (10 % is the standard operating point).
	BlerTarget float64
	// RetxBler is the error probability of the first retransmission; soft
	// combining makes each further retry geometrically more reliable
	// (attempt k ≥ 2 fails with RetxBler^(k−1)).
	RetxBler float64
	// MaxAttempts is the retransmission threshold (32 per the paper).
	MaxAttempts int
}

// HARQFor returns the calibrated HARQ profile for a technology. NR's wider
// bandwidth and faster feedback make retries converge in fewer attempts.
func HARQFor(t Tech) HARQ {
	switch t {
	case NR:
		return HARQ{BlerTarget: 0.10, RetxBler: 0.02, MaxAttempts: 32}
	default:
		return HARQ{BlerTarget: 0.10, RetxBler: 0.12, MaxAttempts: 32}
	}
}

// MeanAttempts returns the expected number of transmissions per transport
// block: E[A] = 1 + Σ P(A ≥ k) over the geometric soft-combining chain.
func (h HARQ) MeanAttempts() float64 {
	mean := 1.0
	survive := h.BlerTarget
	retx := h.RetxBler
	for k := 2; k <= h.MaxAttempts; k++ {
		mean += survive
		survive *= retx
		retx *= h.RetxBler
	}
	return mean
}

// Attempts draws the number of transmissions needed for one transport
// block given a uniform random value u ∈ [0,1). The first attempt fails
// with BlerTarget; each retry fails with RetxBler; attempts are capped at
// MaxAttempts. The returned residualLoss is true only if every attempt
// failed (probability ≈ BlerTarget·RetxBler^31 ≈ 10⁻⁵⁶ — effectively never,
// matching the paper's conclusion that the bottleneck is not the RAN).
func (h HARQ) Attempts(u float64) (attempts int, residualLoss bool) {
	attempts = 1
	p := h.BlerTarget
	retxP := h.RetxBler
	for u < p && attempts < h.MaxAttempts {
		u /= p // re-condition the uniform draw on the failure event
		p = retxP
		retxP *= h.RetxBler // soft combining: each retry more reliable
		attempts++
	}
	if u < p {
		return attempts, true
	}
	return attempts, false
}
