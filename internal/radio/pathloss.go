package radio

import "math"

// Propagation holds the calibrated path-loss model for one band. The model
// is close-in log-distance: PL(d) = PL0 + 10·n·log10(d) with d in meters,
// plus per-wall penetration loss (brick/concrete campus construction) and
// an additional outdoor-to-indoor bulk loss when the receiver is inside.
type Propagation struct {
	// PL0 is the fitted close-in intercept at 1 m. It is a calibration
	// constant, not free-space loss: for NR it absorbs the massive-MIMO
	// beamforming gain of the gNB panels, for LTE the feeder losses and
	// electrical downtilt of legacy eNBs.
	PL0 float64
	// Exponent is the near-range path-loss exponent, up to BreakM.
	Exponent float64
	// BreakM is the breakpoint distance; beyond it loss steepens to
	// Exponent2 (downtilt null, street clutter). The paper's observation
	// of a sharp 5G disconnect at ≈230 m despite a healthy mid-range RSRP
	// distribution implies exactly this two-slope shape.
	BreakM    float64
	Exponent2 float64

	WallLossDB  float64 // penetration loss through the exterior wall when ending indoors
	IndoorExtra float64 // additional loss once indoors (clutter, inner walls)
	BlockDB     float64 // diffraction loss per building obstructing an outdoor path
	BlockCapDB  float64 // cap on total outdoor blockage loss
	ShadowStdDB float64 // log-normal shadow-fading standard deviation
}

// PropagationFor returns the calibrated urban-campus propagation model for
// a band. Values reproduce the paper's observations: the 3.5 GHz carrier
// loses service (RSRP < −105 dBm) around 230 m, the 1.8 GHz carrier around
// 520 m, and the indoor transition costs 5G roughly 2.5× the bit-rate hit
// of 4G (§3.3: −50.59 % vs −20.38 %).
func PropagationFor(t Tech) Propagation {
	switch t {
	case NR:
		return Propagation{
			PL0:         17.4,
			Exponent:    4.3,
			BreakM:      170,
			Exponent2:   16.5,
			WallLossDB:  13,
			IndoorExtra: 6,
			BlockDB:     3,
			BlockCapDB:  6,
			ShadowStdDB: 6.5,
		}
	default:
		return Propagation{
			PL0:         55.2,
			Exponent:    2.9,
			BreakM:      450,
			Exponent2:   6,
			WallLossDB:  4,
			IndoorExtra: 1.5,
			BlockDB:     2,
			BlockCapDB:  5,
			ShadowStdDB: 6,
		}
	}
}

// PathLoss returns loss in dB over distance d (meters) with the given
// number of exterior-wall crossings on the direct path, ending indoors or
// not. Distances below 1 m are clamped.
//
// Outdoor receivers behind buildings do not take full per-wall penetration
// loss — the signal diffracts around obstacles — so outdoor blockage is
// BlockDB per obstructing wall, capped at BlockCapDB. An indoor receiver
// additionally pays the full exterior-wall penetration plus indoor
// clutter, which is what drives the paper's 50.59 % (5G) vs 20.38 % (4G)
// indoor bit-rate collapse.
func (p Propagation) PathLoss(d float64, wallCrossings int, indoor bool) float64 {
	if d < 1 {
		d = 1
	}
	pl := p.PL0 + 10*p.Exponent*math.Log10(math.Min(d, p.BreakM))
	if d > p.BreakM {
		pl += 10 * p.Exponent2 * math.Log10(d/p.BreakM)
	}
	blockWalls := wallCrossings
	if indoor && blockWalls > 0 {
		blockWalls-- // the final wall is charged as penetration instead
	}
	block := float64(blockWalls) * p.BlockDB
	if block > p.BlockCapDB {
		block = p.BlockCapDB
	}
	pl += block
	if indoor {
		pl += p.WallLossDB + p.IndoorExtra
	}
	return pl
}

// ServiceThresholdDBm is the RSRP below which the network cannot sustain a
// connection (Rel-15 TS 36.211, cited in §3.1 of the paper).
const ServiceThresholdDBm = -105

// noisePerREdBm returns the thermal noise power per resource element:
// −174 dBm/Hz + 10·log10(12·SCS) + noise figure.
func noisePerREdBm(b Band) float64 {
	const noiseFigureDB = 7
	return -174 + 10*math.Log10(12*b.SCSkHz*1000) + noiseFigureDB
}
