package radio

import (
	"math"

	"fivegsim/internal/geom"
)

// CellBatch is the structure-of-arrays view of a fixed cell list, built
// once per deployment and shared by every hot evaluation path (survey
// sampling, field-map builds, population attach). Each per-cell constant
// the scalar path re-derives on every call — the PropagationFor switch,
// the 10·n products, the per-band thermal noise power — is precomputed
// into a flat slice, so the kernels below run as straight-line float
// loops over candidate indices with no branches on Tech and no math.Pow
// off the fast path.
//
// Every kernel reproduces the scalar reference (RSRPAt, MeasureCell)
// bit for bit: precomputation only hoists subexpressions the scalar
// code already evaluates as a unit (10·Exponent, WallLossDB+IndoorExtra,
// dbmToMw(noisePerREdBm(band))), never re-associates a sum. The
// equivalence is pinned by TestBatchRSRPMatchesScalar and
// TestBatchMeasureMatchesScalar, not assumed.
//
// Load is deliberately NOT cached: population load coupling mutates
// Cell.Load between ticks, so interference terms read it live through
// the retained cell pointers.
type CellBatch struct {
	cells []*Cell
	pcis  []int

	posX, posY []float64
	eirp       []float64

	// Antenna pattern: boresight, 3 dB beamwidth, peak gain, front-to-back.
	bsDeg, bwDeg, maxGain, f2b []float64

	// Propagation: intercept, 10·n near slope, breakpoint, 10·n₂ far
	// slope, per-wall diffraction, diffraction cap, and the combined
	// indoor penetration (WallLossDB + IndoorExtra, the unit PathLoss
	// adds when ending indoors).
	pl0, exp10, breakM, exp210 []float64
	blockDB, blockCap, indoor  []float64

	shadowStd []float64
	noiseMw   []float64
}

// NewCellBatch precomputes the batch for cells. The slice is retained
// (not copied): batch index i is cells[i] forever.
func NewCellBatch(cells []*Cell) *CellBatch {
	n := len(cells)
	b := &CellBatch{
		cells: cells,
		pcis:  make([]int, n),
		posX:  make([]float64, n), posY: make([]float64, n),
		eirp:  make([]float64, n),
		bsDeg: make([]float64, n), bwDeg: make([]float64, n),
		maxGain: make([]float64, n), f2b: make([]float64, n),
		pl0: make([]float64, n), exp10: make([]float64, n),
		breakM: make([]float64, n), exp210: make([]float64, n),
		blockDB: make([]float64, n), blockCap: make([]float64, n),
		indoor:    make([]float64, n),
		shadowStd: make([]float64, n),
		noiseMw:   make([]float64, n),
	}
	for i, c := range cells {
		prop := PropagationFor(c.Tech)
		b.pcis[i] = c.PCI
		b.posX[i], b.posY[i] = c.Pos.X, c.Pos.Y
		b.eirp[i] = c.EIRPPerREdBm
		b.bsDeg[i] = c.Antenna.BoresightDeg
		b.bwDeg[i] = c.Antenna.BeamwidthDeg
		b.maxGain[i] = c.Antenna.MaxGainDBi
		b.f2b[i] = c.Antenna.FrontToBack
		b.pl0[i] = prop.PL0
		b.exp10[i] = 10 * prop.Exponent
		b.breakM[i] = prop.BreakM
		b.exp210[i] = 10 * prop.Exponent2
		b.blockDB[i] = prop.BlockDB
		b.blockCap[i] = prop.BlockCapDB
		b.indoor[i] = prop.WallLossDB + prop.IndoorExtra
		b.shadowStd[i] = prop.ShadowStdDB
		b.noiseMw[i] = dbmToMw(noisePerREdBm(c.Band))
	}
	return b
}

// Len returns the number of cells in the batch.
func (b *CellBatch) Len() int { return len(b.cells) }

// Cell returns the cell at batch index i.
func (b *CellBatch) Cell(i int) *Cell { return b.cells[i] }

// PCI returns the PCI at batch index i.
func (b *CellBatch) PCI(i int) int { return b.pcis[i] }

// ShadowStd returns the shadow-fading standard deviation (dB) at batch
// index i — the deployment layer's shadow-field kernel scales its unit
// value noise by this.
func (b *CellBatch) ShadowStd(i int) float64 { return b.shadowStd[i] }

// RSRPInto evaluates the shortlist idx at point p, writing the RSRP of
// cell idx[k] to dst[k]. The environment inputs come from the caller,
// who can amortize them across the shortlist: walls[k] is the
// exterior-wall crossing count on the path from cell idx[k] to p,
// indoor whether p itself is inside a building (one test per point, not
// one per cell), and shadow[k] the correlated shadow-fading value (dB).
//
// Bit-identical to RSRPAt with the same environment: every operation
// appears in the same order and association as the scalar chain
// PropagationFor → PathLoss → GainDBi → sum.
func (b *CellBatch) RSRPInto(dst []float64, idx []int32, p geom.Point, walls []int32, indoor bool, shadow []float64) {
	for k, ci := range idx {
		i := int(ci)
		dx, dy := p.X-b.posX[i], p.Y-b.posY[i]
		d := math.Hypot(dx, dy)

		// Sector gain (SectorAntenna.GainDBi inlined on the precomputed
		// pattern columns; 12·q·q associates as the scalar's
		// 12·(θ/bw)·(θ/bw)).
		az := math.Atan2(dy, dx) * 180 / math.Pi
		if az < 0 {
			az += 360
		}
		theta := geom.AngleDiff(az, b.bsDeg[i])
		q := theta / b.bwDeg[i]
		atten := 12 * q * q
		if atten > b.f2b[i] {
			atten = b.f2b[i]
		}

		// Path loss (Propagation.PathLoss inlined; exp10/exp210 hold the
		// scalar's 10·Exponent products, indoor[i] its WallLossDB +
		// IndoorExtra unit).
		dd := d
		if dd < 1 {
			dd = 1
		}
		pl := b.pl0[i] + b.exp10[i]*math.Log10(math.Min(dd, b.breakM[i]))
		if dd > b.breakM[i] {
			pl += b.exp210[i] * math.Log10(dd/b.breakM[i])
		}
		bw := int(walls[k])
		if indoor && bw > 0 {
			bw-- // the final wall is charged as penetration instead
		}
		block := float64(bw) * b.blockDB[i]
		if block > b.blockCap[i] {
			block = b.blockCap[i]
		}
		pl += block
		if indoor {
			pl += b.indoor[i]
		}

		dst[k] = b.eirp[i] + (b.maxGain[i] - atten) - pl + shadow[k]
	}
}

// TermsMwInto converts the shortlist's RSRP values to load-scaled linear
// interference terms: dst[k] = mW(rsrp[k]) · clamp01(load of cell
// idx[k]), the per-neighbor quantity MeasureCell accumulates. Computing
// the terms once per point instead of once per (serving, neighbor) pair
// takes the all-cells measurement from O(n²) math.Pow calls to O(n);
// summing the precomputed terms in the same neighbor order keeps the
// totals bit-identical. Load reads live through the cell pointers.
func (b *CellBatch) TermsMwInto(dst []float64, idx []int32, rsrp []float64) {
	for k, ci := range idx {
		dst[k] = dbmToMw(rsrp[k]) * clamp01(b.cells[ci].Load)
	}
}

// MeasureOne computes the full KPI sample for shortlist entry k serving
// at p, with interference summed over the other shortlist entries. rsrp
// and termMw are the RSRPInto / TermsMwInto outputs for idx.
// Bit-identical to MeasureCell over the equivalent InterferenceTerm
// list: the interference sum skips serving-PCI terms and accumulates in
// shortlist order, and the KPI chain is the shared measureFrom core.
func (b *CellBatch) MeasureOne(idx []int32, rsrp, termMw []float64, k int, p geom.Point) Measurement {
	i := int(idx[k])
	serving := b.cells[i]
	sig := dbmToMw(rsrp[k])
	var interf float64
	for j, cj := range idx {
		if b.pcis[cj] == serving.PCI {
			continue
		}
		interf += termMw[j]
	}
	return measureFrom(serving, p, rsrp[k], sig, interf, b.noiseMw[i])
}
