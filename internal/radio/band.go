// Package radio models the physical layer of the measured networks: the
// LTE b3 and NR n78 carriers, path loss at 1.8/3.5 GHz, sector antennas,
// shadow fading, and the SINR → CQI/MCS → bit-rate chain.
//
// The constants are calibrated against the paper's published figures: NR
// peak PHY rate 1200.98 Mb/s at 264 PRBs with TDD 3:1 (Rel-15 TS 38.306),
// MCS 27 / 256-QAM / code rate 0.925 as the top of the link-adaptation
// table, ≈230 m usable 5G radius vs ≈520 m for 4G on the same campus, and
// the RSRP service threshold of −105 dBm (Rel-15 TS 36.211).
package radio

import "fmt"

// Tech identifies the radio access technology of a carrier or cell.
type Tech int

const (
	// LTE is 4G (the b3 master layer under NSA).
	LTE Tech = iota
	// NR is 5G new radio (the n78 data layer under NSA).
	NR
)

// String returns the marketing name of the technology.
func (t Tech) String() string {
	switch t {
	case LTE:
		return "4G"
	case NR:
		return "5G"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Duplex is the duplexing scheme of a band.
type Duplex int

const (
	// FDD uses paired spectrum (LTE b3).
	FDD Duplex = iota
	// TDD time-shares one carrier (NR n78, 3:1 DL:UL in the measured ISP).
	TDD
)

// Band describes one carrier configuration.
type Band struct {
	Name         string  // 3GPP band name
	Tech         Tech    // LTE or NR
	CarrierMHz   float64 // center frequency
	BandwidthMHz float64 // channel bandwidth
	Duplex       Duplex
	DLShare      float64 // fraction of airtime available for downlink
	ULShare      float64 // fraction of airtime available for uplink
	PRBs         int     // usable physical resource blocks
	SCSkHz       float64 // subcarrier spacing
	Layers       int     // spatial layers the UE sustains
	Overhead     float64 // effective L1 overhead (control, RS, imperfect rank)
}

// BandLTE returns the measured 4G carrier: b3, 1.8 GHz band, 20 MHz FDD.
// The paper's campus eNBs run 1840–1860 MHz.
func BandLTE() Band {
	return Band{
		Name:         "b3",
		Tech:         LTE,
		CarrierMHz:   1850,
		BandwidthMHz: 20,
		Duplex:       FDD,
		DLShare:      1.0,
		ULShare:      1.0,
		PRBs:         100,
		SCSkHz:       15,
		Layers:       2,
		Overhead:     0.14,
	}
}

// BandNR returns the measured 5G carrier: n78, 3.5 GHz, 100 MHz TDD with a
// 3:1 downlink:uplink slot ratio (the paper's ISP configuration following
// Rel-15 TS 38.306). The UE is observed with 260–264 allocated PRBs; we use
// 264. Overhead is calibrated so the peak DL PHY rate equals the paper's
// 1200.98 Mb/s (see PeakDLRate).
func BandNR() Band {
	return Band{
		Name:         "n78",
		Tech:         NR,
		CarrierMHz:   3500,
		BandwidthMHz: 100,
		Duplex:       TDD,
		DLShare:      0.75,
		ULShare:      0.25,
		PRBs:         264,
		SCSkHz:       30,
		Layers:       4,
		Overhead:     nrOverhead,
	}
}

// nrOverhead makes BandNR().PeakDLRate() come out at 1200.98 Mb/s. It folds
// together PDCCH/DMRS/CSI-RS overhead and the average rank actually
// achieved by the phone, which the paper does not decompose.
const nrOverhead = 0.390175

// SymbolsPerSecond returns OFDM symbols per second per subcarrier: 14
// symbols per slot, slot duration 1 ms / (SCS/15 kHz).
func (b Band) SymbolsPerSecond() float64 {
	slotsPerSecond := 1000 * b.SCSkHz / 15
	return 14 * slotsPerSecond
}

// REsPerSecond returns resource elements per second over nPRB resource
// blocks (12 subcarriers each).
func (b Band) REsPerSecond(nPRB int) float64 {
	return float64(nPRB) * 12 * b.SymbolsPerSecond()
}

// Rate returns the downlink PHY bit-rate in bits/s for the given spectral
// efficiency per layer (bits per resource element) and PRB allocation.
func (b Band) Rate(sePerLayer float64, nPRB int) float64 {
	return sePerLayer * float64(b.Layers) * b.REsPerSecond(nPRB) * (1 - b.Overhead) * b.DLShare
}

// ULRate is the uplink analogue of Rate. The UE transmits single-layer
// (LTE) or dual-layer (NR) uplink; the measured baselines are ≈50/100 Mb/s
// (4G day/night) and ≈130 Mb/s (5G).
func (b Band) ULRate(sePerLayer float64, nPRB int) float64 {
	ulLayers := 1.0
	if b.Tech == NR {
		ulLayers = 2
	}
	return sePerLayer * ulLayers * b.REsPerSecond(nPRB) * (1 - b.Overhead) * b.ULShare
}

// PeakDLRate returns the maximum downlink PHY rate: all PRBs, MCS 27.
func (b Band) PeakDLRate() float64 {
	return b.Rate(MaxSpectralEfficiency, b.PRBs)
}
