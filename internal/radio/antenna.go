package radio

import "fivegsim/internal/geom"

// SectorAntenna is the fan-pattern panel antenna of one cell: peak gain at
// boresight with a parabolic roll-off out to a bounded front-to-back ratio
// (3GPP TR 36.814-style horizontal pattern). The paper attributes the
// coverage defects at locations B and C (Fig. 2b) to exactly this limited
// field of view.
type SectorAntenna struct {
	BoresightDeg float64 // azimuth the sector faces, degrees CCW from +x
	BeamwidthDeg float64 // 3 dB beamwidth (typically 65°)
	MaxGainDBi   float64 // boresight gain
	FrontToBack  float64 // maximum attenuation relative to boresight, dB
}

// DefaultSector returns the standard macro-sector pattern used by both the
// eNBs and gNBs in the campus model.
func DefaultSector(boresightDeg float64) SectorAntenna {
	return SectorAntenna{
		BoresightDeg: boresightDeg,
		BeamwidthDeg: 65,
		MaxGainDBi:   17,
		FrontToBack:  25,
	}
}

// GainDBi returns the antenna gain toward the given azimuth.
func (a SectorAntenna) GainDBi(towardDeg float64) float64 {
	theta := geom.AngleDiff(towardDeg, a.BoresightDeg)
	atten := 12 * (theta / a.BeamwidthDeg) * (theta / a.BeamwidthDeg)
	if atten > a.FrontToBack {
		atten = a.FrontToBack
	}
	return a.MaxGainDBi - atten
}

// InFoV reports whether the azimuth is within the sector's half-power
// field of view.
func (a SectorAntenna) InFoV(towardDeg float64) bool {
	return geom.AngleDiff(towardDeg, a.BoresightDeg) <= a.BeamwidthDeg
}
