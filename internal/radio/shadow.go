package radio

import (
	"math"
	"math/rand"
)

// Shadower produces spatially correlated log-normal shadow fading along a
// trajectory (Gudmundson model): successive samples are an AR(1) process
// whose correlation decays exponentially with distance moved.
type Shadower struct {
	rng    *rand.Rand
	stdDB  float64
	decorr float64 // decorrelation distance, meters
	value  float64
	seeded bool
}

// NewShadower returns a shadower with the given std (dB) and decorrelation
// distance (meters).
func NewShadower(rng *rand.Rand, stdDB, decorrM float64) *Shadower {
	return &Shadower{rng: rng, stdDB: stdDB, decorr: decorrM}
}

// Next advances the process by movedM meters and returns the new shadowing
// value in dB.
func (s *Shadower) Next(movedM float64) float64 {
	if !s.seeded {
		s.value = s.rng.NormFloat64() * s.stdDB
		s.seeded = true
		return s.value
	}
	if movedM < 0 {
		movedM = 0
	}
	rho := math.Exp(-movedM / s.decorr)
	s.value = rho*s.value + math.Sqrt(1-rho*rho)*s.rng.NormFloat64()*s.stdDB
	return s.value
}

// Value returns the current shadowing value without advancing.
func (s *Shadower) Value() float64 {
	if !s.seeded {
		return s.Next(0)
	}
	return s.value
}
