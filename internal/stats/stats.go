// Package stats provides the small statistical toolkit the measurement
// experiments need: summaries (mean ± std), percentiles, empirical CDFs,
// and histogram binning.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the first two moments and range of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String formats a Summary as "mean ± std".
func (s Summary) String() string { return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.Std) }

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Move past equal values so the CDF is right-continuous.
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the value at CDF level q ∈ [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	return Percentile(c.sorted, q*100)
}

// Points returns up to n evenly spaced (x, F(x)) points for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(1, n-1)
		pts = append(pts, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Bin is one histogram bucket over [Lo, Hi).
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Frac returns the bin's share of total.
func (b Bin) Frac(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(b.Count) / float64(total)
}

// Histogram counts xs into the half-open ranges defined by edges
// ([e0,e1), [e1,e2), …). Values outside [e0, eLast) are dropped into the
// nearest edge bin, matching how the paper buckets RSRP into fixed
// categories.
func Histogram(xs []float64, edges []float64) []Bin {
	if len(edges) < 2 {
		panic("stats: Histogram needs at least two edges")
	}
	bins := make([]Bin, len(edges)-1)
	for i := range bins {
		bins[i] = Bin{Lo: edges[i], Hi: edges[i+1]}
	}
	for _, x := range xs {
		idx := sort.SearchFloat64s(edges, x)
		// SearchFloat64s returns the insertion point; shift to bin index.
		if idx > 0 && (idx == len(edges) || edges[idx] != x) {
			idx--
		}
		if idx >= len(bins) {
			idx = len(bins) - 1
		}
		bins[idx].Count++
	}
	return bins
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or 0 when undefined (empty input or zero variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
