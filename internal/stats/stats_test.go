package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", q)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		c := NewCDF(xs)
		prev := -1.0
		for _, x := range xs {
			v := c.At(x)
			if v < 0 || v > 1 {
				return false
			}
			_ = prev
		}
		// Check monotonicity on a sweep.
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		step := (hi - lo) / 32
		if step <= 0 {
			return true
		}
		last := 0.0
		for x := lo; x <= hi; x += step {
			v := c.At(x)
			if v+1e-12 < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	// Paper-style RSRP buckets.
	edges := []float64{-140, -105, -90, -80, -70, -60, -40}
	xs := []float64{-120, -100, -95, -85, -75, -65, -50, -41}
	bins := Histogram(xs, edges)
	wantCounts := []int{1, 2, 1, 1, 1, 2}
	if len(bins) != len(wantCounts) {
		t.Fatalf("got %d bins", len(bins))
	}
	total := 0
	for i, b := range bins {
		if b.Count != wantCounts[i] {
			t.Errorf("bin %d [%v,%v) count = %d, want %d", i, b.Lo, b.Hi, b.Count, wantCounts[i])
		}
		total += b.Count
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %d != %d", total, len(xs))
	}
}

func TestHistogramConservesMassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1000))
			}
		}
		edges := []float64{-1000, -10, 0, 10, 1000}
		bins := Histogram(xs, edges)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Fatalf("last point F = %v, want 1", pts[len(pts)-1][1])
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if r := Pearson(xs, []float64{2, 4, 6, 8, 10}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	if r := Pearson(xs, []float64{10, 8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v", r)
	}
	if r := Pearson(xs, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Fatalf("zero-variance correlation = %v", r)
	}
	if r := Pearson(xs, []float64{1, 2}); r != 0 {
		t.Fatalf("mismatched lengths should be 0, got %v", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(pairs []float64) bool {
		if len(pairs) < 4 {
			return true
		}
		for _, v := range pairs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // squared terms overflow float64
			}
		}
		half := len(pairs) / 2
		r := Pearson(pairs[:half], pairs[half:2*half])
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
