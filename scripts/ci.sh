#!/usr/bin/env bash
# CI gate for fivegsim: vet, build, the tier-1 test suite, and a race
# pass over the parallel campaign engine. The race step runs -short:
# the long statistical sweeps trim to one seed, but every Workers>1
# path stays on — TestRunAllParallelRace dispatches experiments across
# an 8-worker pool with a shared registry and tracer, and the
# worker-equivalence tests race the survey shards, campaign walks and
# probe sweeps. `make race-full` runs the unabridged suite under -race.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race -short (parallel engine under the race detector) =="
go test -race -short ./...

echo "== fault determinism short suite =="
go test -short -run 'Fault|Injection|Plan|Scenario|Ctx|Cancellation' ./internal/fault/ ./internal/par/ .

echo "ci: all green"
