#!/usr/bin/env bash
# CI gate for fivegsim: vet, build, the tier-1 test suite, and a race
# pass over the parallel campaign engine. The race step runs -short:
# the long statistical sweeps trim to one seed, but every Workers>1
# path stays on — TestRunAllParallelRace dispatches experiments across
# an 8-worker pool with a shared registry and tracer, and the
# worker-equivalence tests race the survey shards, campaign walks and
# probe sweeps. `make race-full` runs the unabridged suite under -race.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race -short (parallel engine under the race detector) =="
go test -race -short ./...

echo "== fault determinism short suite =="
go test -short -run 'Fault|Injection|Plan|Scenario|Ctx|Cancellation' ./internal/fault/ ./internal/par/ .

echo "== population suite (PRB properties, determinism, N=1, alloc guards) =="
go test -race -short ./internal/pop/ ./internal/traffic/ ./internal/deploy/

echo "== bench smoke (quick hot-path benches vs checked-in baseline) =="
go run ./cmd/fgperf bench -quick -out /tmp/fgperf_current.json -compare BENCH_6.json -threshold 0.15

echo "== bench gate self-check (must trip on a synthetic regression) =="
# Doctor a baseline from the run above: same host fingerprint, but every
# ns/op forced to 1, so the current numbers look like a massive slowdown.
# The comparator must exit nonzero, proving the regression path works.
sed 's/"ns_per_op": [0-9]*/"ns_per_op": 1/' /tmp/fgperf_current.json > /tmp/fgperf_doctored.json
if go run ./cmd/fgperf bench -quick -compare /tmp/fgperf_doctored.json -threshold 0.15 >/dev/null 2>&1; then
	echo "bench gate FAILED to catch a synthetic regression" >&2
	exit 1
fi
echo "bench gate trips correctly"

echo "ci: all green"
