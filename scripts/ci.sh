#!/usr/bin/env bash
# CI gate for fivegsim: vet, build, the tier-1 test suite, and a race
# pass over the parallel campaign engine. The race step runs -short:
# the long statistical sweeps trim to one seed, but every Workers>1
# path stays on — TestRunAllParallelRace dispatches experiments across
# an 8-worker pool with a shared registry and tracer, and the
# worker-equivalence tests race the survey shards, campaign walks and
# probe sweeps, and TestSurveyConcurrentWithTicks runs a sharded survey
# against concurrent population ticks on one shared campus. `make
# race-full` runs the unabridged suite under -race.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race -short (parallel engine under the race detector) =="
go test -race -short ./...

echo "== fault determinism short suite =="
go test -short -run 'Fault|Injection|Plan|Scenario|Ctx|Cancellation' ./internal/fault/ ./internal/par/ .

echo "== population suite (PRB properties, determinism, N=1, alloc guards) =="
go test -race -short ./internal/pop/ ./internal/traffic/ ./internal/deploy/

echo "== pop-dynamics property suite (churn conservation, A3 invariants, ping-pong, cancellation) =="
go test -race -short -run 'Churn|A3|PingPong|LoadCoupling|Dynamics|AttachSkip|ProbeContract|EstimateETA' \
	./internal/pop/ ./internal/handoff/ ./internal/obs/

echo "== live telemetry smoke (fgobs serve: /metrics + /progress on a quick campaign) =="
# Start a served campaign on an ephemeral port, scrape it while (or just
# after) it runs, and require population and DES series in the
# Prometheus exposition. SIGINT is the one shutdown path — the server
# must exit cleanly on it (context cancellation end to end).
go build -o /tmp/fgobs_ci ./cmd/fgobs
/tmp/fgobs_ci serve -addr 127.0.0.1:0 -quick -workers 2 -run X12,F10 >/tmp/fgobs_ci.log 2>&1 &
FGOBS_PID=$!
trap 'kill "$FGOBS_PID" 2>/dev/null || true' EXIT
ADDR=""
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's|.*serving telemetry on http://\([^ ]*\).*|\1|p' /tmp/fgobs_ci.log)
	[ -n "$ADDR" ] && break
	sleep 0.2
done
[ -n "$ADDR" ] || { echo "fgobs serve never bound an address" >&2; cat /tmp/fgobs_ci.log >&2; exit 1; }
for _ in $(seq 1 150); do
	curl -fsS "http://$ADDR/metrics" > /tmp/fgobs_metrics.txt 2>/dev/null || true
	if grep -q '^pop_' /tmp/fgobs_metrics.txt && grep -q '^des_' /tmp/fgobs_metrics.txt; then
		break
	fi
	sleep 0.2
done
grep -q '^pop_' /tmp/fgobs_metrics.txt || { echo "no pop_ series in /metrics" >&2; cat /tmp/fgobs_ci.log >&2; exit 1; }
grep -q '^des_' /tmp/fgobs_metrics.txt || { echo "no des_ series in /metrics" >&2; cat /tmp/fgobs_ci.log >&2; exit 1; }
curl -fsS "http://$ADDR/progress" | grep -q '"total":2' || { echo "/progress missing campaign totals" >&2; exit 1; }
kill -INT "$FGOBS_PID"
if ! wait "$FGOBS_PID"; then
	echo "fgobs serve did not exit cleanly on SIGINT" >&2
	cat /tmp/fgobs_ci.log >&2
	exit 1
fi
trap - EXIT
echo "live telemetry serves pop_/des_ series and shuts down clean"

echo "== campaign service smoke (fgserve: submit -> stream -> /metrics -> SIGINT) =="
# Start the campaign service on an ephemeral port, submit a quick spec
# with the experiments listed OUT of paper order, and require: a live
# serve_ series in /metrics while the campaign runs, streamed results
# re-ordered to paper order (T1 before F4), a terminal done status, and
# a clean drain on SIGINT.
go build -o /tmp/fgserve_ci ./cmd/fgserve
/tmp/fgserve_ci -addr 127.0.0.1:0 >/tmp/fgserve_ci.log 2>&1 &
FGSERVE_PID=$!
trap 'kill "$FGSERVE_PID" 2>/dev/null || true' EXIT
ADDR=""
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's|.*serving campaigns on http://\([^ ]*\).*|\1|p' /tmp/fgserve_ci.log)
	[ -n "$ADDR" ] && break
	sleep 0.2
done
[ -n "$ADDR" ] || { echo "fgserve never bound an address" >&2; cat /tmp/fgserve_ci.log >&2; exit 1; }
CID=$(curl -fsS -X POST "http://$ADDR/campaigns" \
	-d '{"schema":"fgserve.spec/v1","name":"ci smoke","experiments":["F4","T1"],"seeds":[7],"quick":true}' \
	| sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$CID" ] || { echo "campaign submit failed" >&2; cat /tmp/fgserve_ci.log >&2; exit 1; }
curl -fsS "http://$ADDR/metrics" > /tmp/fgserve_metrics.txt
grep -q '^serve_campaigns_submitted 1' /tmp/fgserve_metrics.txt || {
	echo "no live serve_ series in /metrics" >&2; cat /tmp/fgserve_metrics.txt >&2; exit 1; }
ORDER=$(curl -fsS --max-time 120 "http://$ADDR/campaigns/$CID/stream" \
	| sed -n 's|.*"kind":"result".*"result":{"schema":"fivegsim.result/v1","id":"\([A-Z0-9]*\)".*|\1|p' \
	| paste -sd, -)
[ "$ORDER" = "T1,F4" ] || { echo "streamed results '$ORDER', want paper order T1,F4" >&2; exit 1; }
curl -fsS "http://$ADDR/campaigns/$CID" | grep -q '"state":"done"' || {
	echo "campaign never reached done" >&2; exit 1; }
curl -fsS "http://$ADDR/metrics" | grep -q '^serve_units_completed 2' || {
	echo "serve_units_completed never reached 2" >&2; exit 1; }
kill -INT "$FGSERVE_PID"
if ! wait "$FGSERVE_PID"; then
	echo "fgserve did not exit cleanly on SIGINT" >&2
	cat /tmp/fgserve_ci.log >&2
	exit 1
fi
grep -q 'drained clean' /tmp/fgserve_ci.log || { echo "fgserve never drained clean" >&2; cat /tmp/fgserve_ci.log >&2; exit 1; }
trap - EXIT
echo "campaign service streams paper-order results and drains clean"

echo "== bench smoke (quick hot-path benches vs checked-in baseline) =="
go run ./cmd/fgperf bench -quick -out /tmp/fgperf_current.json -compare BENCH_10.json -threshold 0.15

echo "== bench gate self-check (must trip on a synthetic regression) =="
# Doctor a baseline from the run above: same host fingerprint, but every
# ns/op forced to 1, so the current numbers look like a massive slowdown.
# The comparator must exit nonzero, proving the regression path works.
sed 's/"ns_per_op": [0-9]*/"ns_per_op": 1/' /tmp/fgperf_current.json > /tmp/fgperf_doctored.json
# -filter keeps the re-run to one cheap bench; the comparator still sees
# the doctored DESStep number and must trip on it.
if go run ./cmd/fgperf bench -quick -filter '^DESStep$' -compare /tmp/fgperf_doctored.json -threshold 0.15 >/dev/null 2>&1; then
	echo "bench gate FAILED to catch a synthetic regression" >&2
	exit 1
fi
echo "bench gate trips correctly"

echo "ci: all green"
