#!/usr/bin/env bash
# CI gate for fivegsim: vet, build, the tier-1 test suite, and the same
# suite under the race detector (the obs registry is the only shared
# mutable state; atomics keep it race-clean).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all green"
