package fivegsim

import (
	"time"

	"fivegsim/internal/energy"
	"fivegsim/internal/radio"
	"fivegsim/internal/traffic"
)

func init() {
	register("T4", "Energy of LTE / NR NSA / NR Oracle / dynamic switching", runTable4)
	register("F21", "Device power breakdown by application", runFig21)
	register("F22", "Energy per bit under saturated traffic", runFig22)
	register("F23", "Energy-management showcase (web loads every 3 s)", runFig23)
}

func runTable4(cfg Config) Result {
	res := Result{ID: "T4", Title: "Trace-driven energy (J)", Values: map[string]float64{}}
	paper := map[string][4]float64{
		"Web":   {85.44, 113.94, 95.69, 85.41},
		"Video": {227.13, 140.19, 123.03, 133.66},
		"File":  {357.67, 157.29, 139.72, 150.80},
	}
	traces := []struct {
		name  string
		trace energy.Trace
	}{
		{"Web", traffic.Web(cfg.Seed)},
		{"Video", traffic.Video(cfg.Seed)},
		{"File", traffic.File(cfg.Seed)},
	}
	for _, tc := range traces {
		row := line("%-5s:", tc.name)
		for i, m := range energy.Models() {
			r := energy.Replay(m, tc.trace)
			r.RecordObs(cfg.Obs, m)
			row += line("  %-11s %6.1f J (paper %6.2f)", m, r.EnergyJ, paper[tc.name][i])
			res.Values[tc.name+"/"+m.String()] = r.EnergyJ
		}
		res.Lines = append(res.Lines, row)
	}
	res.Lines = append(res.Lines,
		line("dyn-switch saves %.1f%% over NSA for web (paper 25.04%%); oracle gains stay modest for bulk (paper 11–16%%)",
			100*(1-res.Values["Web/Dyn. switch"]/res.Values["Web/NR NSA"])))
	return res
}

func runFig21(cfg Config) Result {
	rows := energy.RunFig21()
	res := Result{ID: "F21", Title: "Power breakdown by app", Values: map[string]float64{}}
	var nrShare float64
	for _, b := range rows {
		res.Lines = append(res.Lines, line("%v %-9s: system %.2f + screen %.2f + app %.2f + radio %.2f = %.2f W (radio %.0f%%)",
			b.Tech, b.App.Name, b.System, b.Screen, b.AppW, b.Radio, b.Total(), 100*b.RadioShare()))
		if b.Tech == radio.NR {
			nrShare += b.RadioShare() / 4
		}
	}
	res.Lines = append(res.Lines, line("mean 5G radio share: %.1f%% (paper 55.18%%, ≈1.8× the screen)", 100*nrShare))
	res.Values["nrShare"] = nrShare
	return res
}

func runFig22(cfg Config) Result {
	durations := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
		20 * time.Second, 35 * time.Second, 50 * time.Second}
	pts := energy.RunFig22(durations)
	res := Result{ID: "F22", Title: "Energy per bit, saturated transfers", Values: map[string]float64{}}
	byDur := map[time.Duration]map[radio.Tech]float64{}
	for _, p := range pts {
		if byDur[p.Duration] == nil {
			byDur[p.Duration] = map[radio.Tech]float64{}
		}
		byDur[p.Duration][p.Tech] = p.JPerBit
	}
	for _, d := range durations {
		m := byDur[d]
		res.Lines = append(res.Lines, line("t=%2.0fs: 4G %6.1f nJ/bit   5G %5.1f nJ/bit   ratio %.1f×",
			d.Seconds(), m[radio.LTE]*1e9, m[radio.NR]*1e9, m[radio.LTE]/m[radio.NR]))
	}
	res.Lines = append(res.Lines,
		"paper: the energy-per-bit of 5G is ≈1/4 of 4G — 5G is efficient only when its bit-rate is actually used")
	res.Values["ratioAt50s"] = byDur[50*time.Second][radio.LTE] / byDur[50*time.Second][radio.NR]
	return res
}

func runFig23(cfg Config) Result {
	// Ten web loads, 3 s apart (t1=10 s offset in the paper; we start at 0).
	tr := energy.Trace{BinDur: 100 * time.Millisecond, Bytes: make([]int64, 320)}
	for l := 0; l < 10; l++ {
		for k := 0; k < 3; k++ {
			tr.Bytes[l*30+k] = 1 << 20
		}
	}
	lte, nsa, m := energy.Showcase(tr)
	return Result{
		ID: "F23", Title: "Energy-management showcase",
		Lines: []string{
			line("t1 promotion start: %v   t2 transfer start: %v   t3 transfer end: %v",
				m.PromotionStart, m.TransferStart.Round(time.Millisecond), m.TransferEnd),
			line("t4 LTE tail end: %v   t5 NR tail end: %v (the double NSA tail)",
				m.LTETailEnd.Round(10*time.Millisecond), m.NRTailEnd.Round(10*time.Millisecond)),
			line("session energy: 4G %.1f J, 5G %.1f J → 5G costs %.2f× (paper 1.67×)",
				lte.EnergyJ, nsa.EnergyJ, nsa.EnergyJ/lte.EnergyJ),
			line("tail after last load: 4G %.1f s vs 5G %.1f s (paper ≈10 s vs ≈20 s)",
				(m.LTETailEnd - m.TransferEnd).Seconds(), (m.NRTailEnd - m.TransferEnd).Seconds()),
		},
		Values: map[string]float64{
			"ratio":     nsa.EnergyJ / lte.EnergyJ,
			"lteTailS":  (m.LTETailEnd - m.TransferEnd).Seconds(),
			"nrTailS":   (m.NRTailEnd - m.TransferEnd).Seconds(),
			"lteEnergy": lte.EnergyJ,
			"nsaEnergy": nsa.EnergyJ,
		},
	}
}
