package fivegsim

import (
	"time"

	"fivegsim/internal/cc"
	"fivegsim/internal/des"
	"fivegsim/internal/handoff"
	"fivegsim/internal/netsim"
	"fivegsim/internal/obs"
	"fivegsim/internal/par"
	"fivegsim/internal/radio"
	"fivegsim/internal/rng"
	"fivegsim/internal/stats"
	"fivegsim/internal/transport"
	"fivegsim/internal/wire"
)

func init() {
	register("T3", "In-network buffer estimation (max-min delay)", runTable3)
	register("F7", "UDP baselines and TCP bandwidth utilization", runFig7)
	register("F8", "cwnd evolution: Cubic vs BBR over 5G", runFig8)
	register("F9", "UDP packet loss vs load fraction", runFig9)
	register("F10", "RAN HARQ retransmission statistics", runFig10)
	register("F11", "Bursty loss pattern of 5G", runFig11)
	register("F12", "TCP throughput drop across hand-offs", runFig12)
}

func bulkDur(cfg Config) time.Duration {
	if cfg.Quick {
		return 8 * time.Second
	}
	return 20 * time.Second
}

func udpDur(cfg Config) time.Duration {
	if cfg.Quick {
		return 6 * time.Second
	}
	return 15 * time.Second
}

func runTable3(cfg Config) Result {
	d := 20 * time.Second
	if cfg.Quick {
		d = 8 * time.Second
	}
	// The two technologies' estimation runs are independent DES worlds;
	// fan them out when workers allow.
	ests := par.Map(cfg.Workers, 2, func(i int) wire.BufferEstimate {
		return wire.EstimateBuffers([]radio.Tech{radio.NR, radio.LTE}[i], d, cfg.Seed)
	})
	nr, lte := ests[0], ests[1]
	return Result{
		ID: "T3", Title: "Buffer sizes (60 B packets at an assumed 1 Gb/s)",
		Lines: []string{
			line("        RAN      wired    whole path"),
			line("4G   %6d   %8d   %8d   (paper 468 / 10539 / 11007)", lte.RAN, lte.Wired, lte.WholePath),
			line("5G   %6d   %8d   %8d   (paper 2586 / 26724 / 29310)", nr.RAN, nr.Wired, nr.WholePath),
			line("wired ratio 5G/4G: %.2f× (paper ≈2.5×) — the wired buffer dominates and is"+
				" under-provisioned for 5G; the Stanford rule wants 880/130 ≈ 6.8×", float64(nr.Wired)/float64(lte.Wired)),
		},
		Values: map[string]float64{
			"wired5G": float64(nr.Wired), "wired4G": float64(lte.Wired),
			"ran5G": float64(nr.RAN), "ran4G": float64(lte.RAN),
		},
	}
}

func runFig7(cfg Config) Result {
	res := Result{ID: "F7", Title: "UDP baselines and TCP utilization", Values: map[string]float64{}}
	paperBase := map[string]float64{"5G day": 880, "5G night": 900, "4G day": 130, "4G night": 200}
	baselines := map[radio.Tech]float64{}
	for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
		for _, daytime := range []bool{true, false} {
			name := tech.String() + " night"
			if daytime {
				name = tech.String() + " day"
			}
			b := netsim.UDPBaseline(cfg.obsPath(tech, daytime), udpDur(cfg))
			res.Lines = append(res.Lines, line("UDP baseline %-9s: %6.0f Mb/s (paper %.0f)", name, b.DeliveredBps/1e6, paperBase[name]))
			res.Values["udp"+name] = b.DeliveredBps
			if daytime {
				baselines[tech] = b.DeliveredBps
			}
		}
	}
	paperUtil := map[string][2]float64{ // 5G, 4G (−1 = not reported)
		"reno": {21.1, 52.9}, "cubic": {31.9, 64.4}, "vegas": {12.1, -1}, "veno": {14.3, -1}, "bbr": {82.5, 79.1},
	}
	for _, tech := range []radio.Tech{radio.NR, radio.LTE} {
		for _, name := range cc.Names() {
			r := transport.RunBulk(cfg.obsPath(tech, true), name, bulkDur(cfg))
			util := r.Utilization(baselines[tech])
			idx := 0
			if tech == radio.LTE {
				idx = 1
			}
			ref := paperUtil[name][idx]
			refStr := "n/r"
			if ref >= 0 {
				refStr = line("%.1f%%", ref)
			}
			res.Lines = append(res.Lines, line("%v %-6s: %6.1f Mb/s  util %5.1f%% (paper %s)",
				tech, name, r.ThroughputBps/1e6, 100*util, refStr))
			res.Values[tech.String()+"_"+name] = util
		}
	}
	return res
}

func runFig8(cfg Config) Result {
	d := bulkDur(cfg)
	pathCfg := cfg.obsPath(radio.NR, true)
	bbr := transport.RunBulk(pathCfg, "bbr", d)
	cubic := transport.RunBulk(pathCfg, "cubic", d)
	res := Result{ID: "F8", Title: "cwnd evolution over 5G", Values: map[string]float64{}}
	pick := func(tr []transport.CwndSample, at time.Duration) int {
		best := 0
		for _, s := range tr {
			if s.At <= at {
				best = s.Cwnd
			}
		}
		return best
	}
	for t := time.Duration(0); t <= d; t += d / 8 {
		res.Lines = append(res.Lines, line("t=%4.1fs  cwnd bbr=%7d KB  cubic=%5d KB",
			t.Seconds(), pick(bbr.CwndTrace, t)/1000, pick(cubic.CwndTrace, t)/1000))
	}
	res.Lines = append(res.Lines, line("cubic: %d loss events, %d retransmissions (the frequent multiplicative decreases of Fig. 8)",
		cubic.LossEvents, cubic.Retransmits))
	res.Values["bbrFinalKB"] = float64(pick(bbr.CwndTrace, d)) / 1000
	res.Values["cubicFinalKB"] = float64(pick(cubic.CwndTrace, d)) / 1000
	res.Values["cubicLossEvents"] = float64(cubic.LossEvents)
	return res
}

func runFig9(cfg Config) Result {
	res := Result{ID: "F9", Title: "UDP loss vs load", Values: map[string]float64{}}
	paper5 := map[string]float64{"1/5": 0.5, "1/4": 0.7, "1/3": 1.0, "1/2": 3.1, "1": 4.5}
	techs := []radio.Tech{radio.NR, radio.LTE}
	loads := []struct {
		name string
		frac float64
	}{{"1/5", 0.2}, {"1/4", 0.25}, {"1/3", 1.0 / 3}, {"1/2", 0.5}, {"1", 1}}
	// Each tech × load point is an independent DES world: fan the sweep
	// out across cfg.Workers, one sub-registry per point, merged in sweep
	// order; rows are assembled from the ordered results afterwards.
	type point struct {
		loss float64
		reg  *obs.Registry
	}
	points := par.Map(cfg.Workers, len(techs)*len(loads), func(k int) point {
		c, reg := cfg.shardObs()
		pcfg := c.obsPath(techs[k/len(loads)], true)
		r := netsim.RunUDP(pcfg, pcfg.RANRateBps*loads[k%len(loads)].frac, udpDur(cfg), false)
		return point{loss: r.LossRate, reg: reg}
	})
	for ti, tech := range techs {
		row := tech.String() + ": "
		for li, f := range loads {
			p := points[ti*len(loads)+li]
			cfg.Obs.Merge(p.reg)
			ref := ""
			if tech == radio.NR {
				ref = line("(≈%.1f)", paper5[f.name])
			}
			row += line("%s→%.2f%%%s ", f.name, 100*p.loss, ref)
			res.Values[tech.String()+"@"+f.name] = p.loss
		}
		res.Lines = append(res.Lines, row)
	}
	res.Lines = append(res.Lines, "paper: 5G loss exceeds 3.1% at 1/2 load — ≈10× the 4G session")
	return res
}

func runFig10(cfg Config) Result {
	res := Result{ID: "F10", Title: "HARQ retransmissions", Values: map[string]float64{}}
	for _, tech := range []radio.Tech{radio.LTE, radio.NR} {
		pcfg := cfg.obsPath(tech, true)
		sch := des.New()
		path := netsim.NewPath(sch, pcfg)
		path.ToUE = netsim.ReceiverFunc(func(p *netsim.Packet) {})
		interval := time.Duration(float64((netsim.MSS+netsim.HeaderBytes)*8) / pcfg.RANRateBps * float64(time.Second))
		var tick func()
		end := udpDur(cfg)
		tick = func() {
			if sch.Now() >= end {
				return
			}
			path.ServerIngress.Receive(&netsim.Packet{Len: netsim.MSS, Wire: netsim.MSS + netsim.HeaderBytes})
			sch.After(interval, tick)
		}
		tick()
		sch.RunUntil(end + time.Second)
		row := tech.String() + " retx distribution: "
		maxK := 0
		for k := 1; k <= 6; k++ {
			if frac, ok := path.RAN.Retransmissions()[k]; ok {
				row += line("%d×=%.2f%% ", k, 100*frac)
				maxK = k
			}
		}
		row += line("(max %d; paper: ≤4 on 4G, ≤2 on 5G; residual loss %d)", maxK, path.RAN.ResidualLoss)
		res.Lines = append(res.Lines, row)
		res.Values["max"+tech.String()] = float64(maxK)
	}
	return res
}

func runFig11(cfg Config) Result {
	pcfg := cfg.obsPath(radio.NR, true)
	r := netsim.RunUDP(pcfg, pcfg.RANRateBps*0.9, udpDur(cfg), true)
	runs := r.LossRuns()
	long := 0
	maxRun := 0
	for _, l := range runs {
		if l >= 5 {
			long++
		}
		if l > maxRun {
			maxRun = l
		}
	}
	return Result{
		ID: "F11", Title: "Bursty loss pattern",
		Lines: []string{
			line("5G at 0.9× baseline: loss %.2f%%, %d loss runs, %.1f%% are bursts ≥5 pkts, longest run %d",
				100*r.LossRate, len(runs), 100*float64(long)/float64(max(1, len(runs))), maxRun),
			"paper: \"the packet loss in 5G exhibits a clear bursty pattern ... caused by the intermittent buffer overflow\"",
		},
		Values: map[string]float64{"burstFrac": float64(long) / float64(max(1, len(runs)))},
	}
}

func runFig12(cfg Config) Result {
	res := Result{ID: "F12", Title: "TCP throughput drop at hand-off", Values: map[string]float64{}}
	paper := map[handoff.Kind]float64{handoff.FourToFour: 20.10, handoff.FiveToFive: 73.15, handoff.FiveToFour: 83.04}
	reps := 12
	if cfg.Quick {
		reps = 5
	}
	for _, kind := range []handoff.Kind{handoff.FourToFour, handoff.FiveToFive, handoff.FiveToFour} {
		tech := radio.NR
		if kind == handoff.FourToFour {
			tech = radio.LTE
		}
		// Each rep is an independent flow seeded by its rep index; fan
		// the reps out and merge their telemetry shards in rep order.
		type rep struct {
			drop float64
			reg  *obs.Registry
		}
		outs := par.Map(cfg.Workers, reps, func(i int) rep {
			c, reg := cfg.shardObs()
			return rep{drop: hoThroughputDrop(c, tech, kind, cfg.Seed+int64(i)), reg: reg}
		})
		drops := make([]float64, len(outs))
		for i, o := range outs {
			drops[i] = o.drop
			cfg.Obs.Merge(o.reg)
		}
		s := stats.Summarize(drops)
		res.Lines = append(res.Lines, line("%-5s: throughput drop %5.1f%% ± %.1f (paper %.2f%%)", kind, 100*s.Mean, 100*s.Std, paper[kind]))
		res.Values["drop"+kind.String()] = s.Mean
	}
	res.Lines = append(res.Lines, "paper: the NSA roll-back makes 5G hand-offs interrupt TCP far longer than 4G ones")
	return res
}

// hoThroughputDrop runs a BBR flow, injects one hand-off outage of the
// kind's signaling latency, and measures the windowed throughput drop
// right after the hand-off (Fig. 12 methodology: 10 ms windows around the
// event; we use the 200 ms after vs the 1 s before).
func hoThroughputDrop(cfg Config, tech radio.Tech, kind handoff.Kind, seed int64) float64 {
	pcfg := cfg.obsPath(tech, true)
	pcfg.Seed = seed
	sch := des.New()
	path := netsim.NewPath(sch, pcfg)
	conn := transport.NewConn(sch, path, "bbr", transport.Bulk)
	conn.Start()
	hoAt := 6 * time.Second
	_, outage := handoff.Execute(kind, rng.New(seed).Stream("f12"))
	// A 5G→4G hand-off also drops the radio rate to the 4G baseline.
	//
	sch.At(hoAt, func() {
		path.Outage(outage)
		if kind == handoff.FiveToFour {
			path.SetRANRate(netsim.DefaultPath(radio.LTE, true).RANRateBps)
		}
	})
	sch.RunUntil(hoAt + time.Second)
	var before, after float64
	nb := 0
	haveAfter := false
	for _, w := range conn.RxRates() {
		if w.At > hoAt-time.Second && w.At <= hoAt {
			before += w.Bps
			nb++
		}
		// The first full window immediately after the hand-off (the
		// paper's "immediately after" measurement).
		if !haveAfter && w.At > hoAt {
			after = w.Bps
			haveAfter = true
		}
	}
	if nb == 0 || !haveAfter || before == 0 {
		return 0
	}
	drop := 1 - after/(before/float64(nb))
	if drop < 0 {
		drop = 0
	}
	return drop
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
