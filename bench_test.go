package fivegsim

import (
	"strings"
	"testing"
	"time"

	"fivegsim/internal/des"
	"fivegsim/internal/obs"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation (quick fidelity: shorter flows, fewer samples — every
// qualitative result is preserved). The headline metric of each
// experiment is attached via b.ReportMetric so `go test -bench` output
// doubles as a compact reproduction report.

func benchExperiment(b *testing.B, id string, metric string) {
	b.Helper()
	cfg := QuickConfig()
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if metric != "" {
		if v, ok := last.Values[metric]; ok {
			// ReportMetric units must not contain whitespace.
			b.ReportMetric(v, strings.ReplaceAll(metric, " ", "_"))
		}
	}
}

func BenchmarkTable1_PhysicalInfo(b *testing.B)      { benchExperiment(b, "T1", "rsrp5G") }
func BenchmarkTable2_RSRPDistribution(b *testing.B)  { benchExperiment(b, "T2", "holes5G") }
func BenchmarkTable3_BufferEstimation(b *testing.B)  { benchExperiment(b, "T3", "wired5G") }
func BenchmarkTable4_EnergyModels(b *testing.B)      { benchExperiment(b, "T4", "Web/NR NSA") }
func BenchmarkFigure2_CoverageMap(b *testing.B)      { benchExperiment(b, "F2", "radius5G") }
func BenchmarkFigure3_IndoorOutdoorGap(b *testing.B) { benchExperiment(b, "F3", "drop5G") }
func BenchmarkFigure4_HandoffRSRQTrace(b *testing.B) { benchExperiment(b, "F4", "hoIdx") }
func BenchmarkFigure5_HandoffRSRQGap(b *testing.B)   { benchExperiment(b, "F5", "overall") }
func BenchmarkFigure6_HandoffLatency(b *testing.B)   { benchExperiment(b, "F6", "latency5G-5G") }
func BenchmarkFigure7_Throughput(b *testing.B)       { benchExperiment(b, "F7", "5G_bbr") }
func BenchmarkFigure8_CwndEvolution(b *testing.B)    { benchExperiment(b, "F8", "cubicLossEvents") }
func BenchmarkFigure9_LossVsLoad(b *testing.B)       { benchExperiment(b, "F9", "5G@1/2") }
func BenchmarkFigure10_HARQRetx(b *testing.B)        { benchExperiment(b, "F10", "max5G") }
func BenchmarkFigure11_BurstyLoss(b *testing.B)      { benchExperiment(b, "F11", "burstFrac") }
func BenchmarkFigure12_HandoffThroughputDrop(b *testing.B) {
	benchExperiment(b, "F12", "drop5G-5G")
}
func BenchmarkFigure13_RTTScatter(b *testing.B)    { benchExperiment(b, "F13", "oneWay5Gms") }
func BenchmarkFigure14_HopBreakdown(b *testing.B)  { benchExperiment(b, "F14", "coreGapMs") }
func BenchmarkFigure15_RTTvsDistance(b *testing.B) { benchExperiment(b, "F15", "") }
func BenchmarkFigure16_PageLoadTime(b *testing.B)  { benchExperiment(b, "F16", "dlReduction") }
func BenchmarkFigure17_ImagePLT(b *testing.B)      { benchExperiment(b, "F17", "") }
func BenchmarkFigure18_VideoThroughput(b *testing.B) {
	benchExperiment(b, "F18", "5G5.7Kstatic")
}
func BenchmarkFigure19_VideoFluctuation(b *testing.B) { benchExperiment(b, "F19", "freezes") }
func BenchmarkFigure20_FrameDelay(b *testing.B)       { benchExperiment(b, "F20", "delay5Gms") }
func BenchmarkFigure21_PowerBreakdown(b *testing.B)   { benchExperiment(b, "F21", "nrShare") }
func BenchmarkFigure22_EnergyPerBit(b *testing.B)     { benchExperiment(b, "F22", "ratioAt50s") }
func BenchmarkFigure23_EnergyTrace(b *testing.B)      { benchExperiment(b, "F23", "ratio") }

// Campaign-engine benches: the full quick campaign serially and on an
// 8-worker pool. Reports are bit-identical either way (the determinism
// contract, see DESIGN.md); only wall-clock may differ. A full RunAll is
// minutes of work — run these with `-benchtime=1x`:
//
//	go test -run xxx -bench BenchmarkRunAllWorkers -benchtime=1x .

func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	cfg := QuickConfig()
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		if res := RunAll(cfg); len(res) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

func BenchmarkRunAllWorkers1(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllWorkers8(b *testing.B) { benchRunAll(b, 8) }

// Telemetry overhead benches: the DES scheduler with observability
// detached (the default), attached, and attached with per-callback
// profiling. The no-op path is the one every pre-existing experiment
// runs on, so ObsOff must stay within a few percent of the pre-obs
// scheduler (EXPERIMENTS.md records the measured ratios).

// benchScheduler drives a self-perpetuating event chain with a standing
// population of pending timers, approximating the scheduler load of a
// packet-level run: every fired event reschedules itself and one in four
// cancels a previously armed timer.
func benchScheduler(b *testing.B, s *des.Scheduler) {
	b.Helper()
	const fanout = 32
	fired := 0
	var timers [fanout]des.Timer
	var tick func()
	tick = func() {
		fired++
		if fired >= b.N {
			return
		}
		i := fired % fanout
		if fired%4 == 0 {
			timers[i].Cancel()
		}
		timers[i] = s.After(time.Duration(fanout+i)*time.Microsecond, func() {})
		s.After(time.Microsecond, tick)
	}
	s.After(0, tick)
	b.ResetTimer()
	s.Run()
}

func BenchmarkSchedulerObsOff(b *testing.B) {
	benchScheduler(b, des.New())
}

func BenchmarkSchedulerObsOn(b *testing.B) {
	s := des.New()
	s.SetObs(obs.NewRegistry(), nil)
	benchScheduler(b, s)
}

func BenchmarkSchedulerObsProfiled(b *testing.B) {
	s := des.New()
	s.SetObs(obs.NewRegistry(), nil)
	s.SetProfile(true)
	benchScheduler(b, s)
}

// Ablation benches (the DESIGN.md extensions beyond the paper's figures).

// BenchmarkAblation_BufferSizing verifies the §4.2 remedy: Cubic's 5G
// throughput as the wired bottleneck buffer scales ×2.
func BenchmarkAblation_BufferSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ablationBufferSizing(QuickConfig())
		b.ReportMetric(res, "util_gain_x")
	}
}

// BenchmarkAblation_SAHandoff compares the hypothetical standalone-mode
// hand-off against the measured NSA ladder.
func BenchmarkAblation_SAHandoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationSAHandoff(QuickConfig()), "nsa_over_sa_x")
	}
}

// BenchmarkAblation_A3Hysteresis sweeps the hand-off trigger threshold
// and reports the ping-pong ratio at the ISP's 3 dB setting.
func BenchmarkAblation_A3Hysteresis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationA3Hysteresis(QuickConfig()), "ho_per_min_at_1db")
	}
}

// BenchmarkExtension_MPTCP pools the two radios with multipath TCP (the
// paper's §6.3 future-work item).
func BenchmarkExtension_MPTCP(b *testing.B) {
	benchExperiment(b, "X8", "totalMbps")
}

// BenchmarkExtension_MEC runs the §8 edge-computing ablation.
func BenchmarkExtension_MEC(b *testing.B) {
	benchExperiment(b, "X2", "cubicGain")
}

// BenchmarkExtension_DSL runs the §8 5G-as-DSL feasibility study.
func BenchmarkExtension_DSL(b *testing.B) {
	benchExperiment(b, "X1", "perHouseMbps")
}

// BenchmarkExtension_RRCInactive measures the SA energy-state extension.
func BenchmarkExtension_RRCInactive(b *testing.B) {
	benchExperiment(b, "X6", "rrciJ")
}

// BenchmarkExtension_PopulationLoad runs the population-scale cell-load
// experiment (quick: 2000 PPP UEs × 25 scheduling ticks).
func BenchmarkExtension_PopulationLoad(b *testing.B) {
	benchExperiment(b, "X12", "jain")
}
